"""Shared fixtures for the figure-regeneration benchmarks.

Scaling series are computed once per session and cached; each benchmark
asserts the paper's qualitative claims against the cached series and
times one representative cell with pytest-benchmark.  Rendered tables are
written to ``benchmarks/_generated/`` (EXPERIMENTS.md quotes them).
"""
from __future__ import annotations

import pathlib

import pytest

from repro.bench import render_series, scaling_series

GENERATED = pathlib.Path(__file__).parent / "_generated"

#: the node counts every figure uses (16 cores per node -> 16..128 cores)
FIGURE_NODES = (1, 2, 4, 8)


@pytest.fixture(scope="session")
def series_cache():
    cache: dict[str, dict] = {}

    def get(app: str):
        if app not in cache:
            cache[app] = scaling_series(app, node_counts=FIGURE_NODES)
            GENERATED.mkdir(exist_ok=True)
            out = GENERATED / f"{app}_scaling.txt"
            out.write_text(render_series(app, cache[app]) + "\n")
        return cache[app]

    return get


def at_cores(series: dict, framework: str, cores: int):
    for pt in series[framework]:
        if pt.cores == cores:
            return pt
    raise KeyError(f"no point at {cores} cores for {framework}")
