"""Figure 7: tpacf scalability.

Paper claims encoded:

* "Triolet and C+MPI+OpenMP scale similarly.  Triolet is slightly faster
  due to a more even distribution of computation time across nodes";
* "Eden has somewhat worse sequential performance and a higher
  communication overhead" -- below both across the range;
* tpacf is the paper's best-scaling app for Triolet (it reaches ~100x at
  128 cores in Fig. 7).
"""
import pytest

from conftest import at_cores
from repro.bench import make_problem, run_point, sequential_seconds


@pytest.fixture(scope="module")
def series(series_cache):
    return series_cache("tpacf")


def test_fig7_all_runs_numerically_correct(benchmark, series):
    def checks():
        for fw, pts in series.items():
            for pt in pts:
                assert pt.correct, (fw, pt.nodes)


    benchmark(checks)

def test_fig7_triolet_slightly_faster_than_cmpi_at_scale(benchmark, series):
    def checks():
        for cores in (64, 128):
            t = at_cores(series, "triolet", cores).speedup
            c = at_cores(series, "cmpi", cores).speedup
            assert t > c
            assert t < 1.5 * c  # "slightly", not dramatically


    benchmark(checks)

def test_fig7_triolet_reaches_high_speedup(benchmark, series):
    def checks():
        assert at_cores(series, "triolet", 128).speedup >= 85


    benchmark(checks)

def test_fig7_eden_below_both_at_scale(benchmark, series):
    def checks():
        for cores in (64, 128):
            e = at_cores(series, "eden", cores).speedup
            assert e < at_cores(series, "triolet", cores).speedup
            assert e < at_cores(series, "cmpi", cores).speedup


    benchmark(checks)

def test_fig7_everyone_scales_with_nodes(benchmark, series):
    def checks():
        for fw in ("triolet", "cmpi", "eden"):
            speeds = [pt.speedup for pt in series[fw]]
            assert speeds[-1] > 2.5 * speeds[0]


    benchmark(checks)

def test_fig7_benchmark_triolet_128(benchmark):
    p = make_problem("tpacf")
    ref = sequential_seconds("tpacf", p)
    pt = benchmark.pedantic(
        lambda: run_point("tpacf", "triolet", 8, problem=p, reference=ref),
        rounds=1,
        iterations=1,
    )
    assert pt.correct
