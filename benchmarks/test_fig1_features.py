"""Figure 1: the feature matrix of fusible encodings.

Each cell of the published matrix is verified by *probing the real
implementation*: parallel = slicing and independently evaluating the
pieces; zip = lockstep pairing exists and fuses; filter/nested =
variable-length output expressible; mutation = side-effecting consumer
supported.  The benchmark times the probe battery.
"""
import numpy as np
import pytest

from repro.core.encodings import (
    FEATURE_MATRIX,
    Support,
    array_indexer,
    can_convert,
    collector_from_list,
    concat_map_fold,
    concat_map_step,
    filter_step,
    fold_from_list,
    histogram_into,
    map_idx,
    render_figure1,
    stepper_from_list,
    zip_idx,
    zip_step,
)
from repro.serial import register_function


@register_function
def _neg(x):
    return -x


def probe_indexer() -> dict:
    idx = map_idx(_neg, array_indexer(np.arange(8.0)))
    left, right = idx.slice(0, 4), idx.slice(4, 8)
    parallel = [left.lookup(i) for i in range(4)] + [
        right.lookup(i) for i in range(4)
    ] == [-float(i) for i in range(8)]
    z = zip_idx(array_indexer(np.arange(3)), array_indexer(np.ones(3)))
    zips = z.lookup(1) == (1, 1.0)
    return {
        "parallel": parallel,
        "zip": zips,
        # no filter/concatMap constructor exists for Idx; no mutation.
        "filter": False,
        "nested_traversal": False,
        "mutation": False,
    }


def probe_stepper() -> dict:
    st = filter_step(lambda x: x % 2 == 0, stepper_from_list([1, 2, 3, 4]))
    filt = st.to_list() == [2, 4]
    z = zip_step(stepper_from_list([1, 2]), stepper_from_list("ab"))
    zips = z.to_list() == [(1, "a"), (2, "b")]
    nested = concat_map_step(
        lambda x: stepper_from_list([x] * x), stepper_from_list([2, 1])
    ).to_list() == [2, 2, 1]
    return {
        "parallel": False,  # only "next element" is reachable
        "zip": zips,
        "filter": filt,
        "nested_traversal": nested,  # works, but SLOW per §3.1
        "mutation": False,
    }


def probe_fold() -> dict:
    nested = concat_map_fold(
        lambda x: fold_from_list(list(range(x))), fold_from_list([2, 3])
    ).to_list() == [0, 1, 0, 1, 2]
    filt = (
        fold_from_list([1, -2, 3]).fold(
            lambda acc, x: acc + [x] if x > 0 else acc, []
        )
        == [1, 3]
    )
    return {
        "parallel": False,
        "zip": False,  # no way to interleave two folds
        "filter": filt,
        "nested_traversal": nested,
        "mutation": False,
    }


def probe_collector() -> dict:
    hist = histogram_into(collector_from_list([0, 1, 1]), np.zeros(2))
    mutation = list(hist) == [1.0, 2.0]
    out = []
    collector_from_list([1, -2, 3]).collect(
        lambda x: out.append(x) if x > 0 else None
    )
    filt = out == [1, 3]
    return {
        "parallel": False,
        "zip": False,
        "filter": filt,
        "nested_traversal": True,  # collectors nest like folds
        "mutation": mutation,
    }


PROBES = {
    "Indexer": probe_indexer,
    "Stepper": probe_stepper,
    "Fold": probe_fold,
    "Collector": probe_collector,
}


def check_matrix() -> list[str]:
    mismatches = []
    for enc, probe in PROBES.items():
        probed = probe()
        for feature, supported in probed.items():
            declared = FEATURE_MATRIX[enc][feature]
            usable = declared in (Support.YES, Support.SLOW)
            if usable != supported:
                mismatches.append(f"{enc}.{feature}: {declared} vs probed {supported}")
    return mismatches


def test_fig1_feature_matrix(benchmark):
    mismatches = benchmark(check_matrix)
    assert mismatches == []


def test_fig1_conversions_downward_only(benchmark):
    def probe():
        order = ["Indexer", "Stepper", "Fold", "Collector"]
        ok = all(
            can_convert(a, b) == (order.index(a) < order.index(b))
            for a in order
            for b in order
            if a != b
        )
        return ok

    assert benchmark(probe)


def test_fig1_rendering(benchmark):
    text = benchmark(render_figure1)
    assert "Indexer" in text and "slow" in text
    from conftest import GENERATED

    GENERATED.mkdir(exist_ok=True)
    (GENERATED / "fig1_features.txt").write_text(text + "\n")
