"""The paper's headline numbers (§1, §6), across all four apps.

"Triolet consistently yields higher parallel performance than Eden,
achieves 23-100% of the performance of C+MPI+OpenMP versions, and yields
a speedup up to 9.6-99x relative to simple loops in sequential C."
"""
import pytest

from conftest import at_cores

ALL_APPS = ("mriq", "sgemm", "tpacf", "cutcp")


@pytest.fixture(scope="module")
def all_series(series_cache):
    return {app: series_cache(app) for app in ALL_APPS}


def test_triolet_consistently_above_eden(benchmark, all_series):
    def check():
        wins = []
        for app, series in all_series.items():
            for t_pt, e_pt in zip(series["triolet"], series["eden"]):
                if e_pt.failed:  # Eden's sgemm buffer failures count as losses
                    wins.append(True)
                else:
                    wins.append(t_pt.speedup > e_pt.speedup)
        return wins

    assert all(benchmark(check))


def test_triolet_fraction_of_cmpi_at_128(benchmark, all_series):
    """Paper: 23-100%.  The shape claim: Triolet spans a wide band whose
    bottom comes from the saturating, allocation-heavy apps and whose top
    is at (or just above) parity."""

    def fractions():
        return {
            app: at_cores(series, "triolet", 128).speedup
            / at_cores(series, "cmpi", 128).speedup
            for app, series in all_series.items()
        }

    fr = benchmark(fractions)
    assert min(fr.values()) < 0.65  # a clearly-saturating low end...
    assert min(fr.values()) > 0.2
    assert max(fr.values()) >= 0.9  # ...and a near/at-parity high end
    assert max(fr.values()) < 1.3
    assert fr["cutcp"] == min(fr.values())  # the GC-bound app is the floor


def test_triolet_speedups_over_sequential_c_at_128(benchmark, all_series):
    """Paper: 9.6-99x.  Our band: tens to ~120x, worst on cutcp."""

    def speedups():
        return {
            app: at_cores(series, "triolet", 128).speedup
            for app, series in all_series.items()
        }

    sp = benchmark(speedups)
    assert all(s > 9.6 for s in sp.values())
    assert max(sp.values()) <= 128
    assert sp["cutcp"] == min(sp.values())
    assert max(sp.values()) / min(sp.values()) > 2.0  # a wide spread, as in §1
