"""Figure 8: cutcp scalability.

Paper claims encoded:

* "Performance of Triolet and C+MPI+OpenMP saturates quickly, as the
  overhead of summing the large output arrays dominates execution time";
* "As in sgemm, Triolet has significant garbage collection overhead" --
  Triolet sits clearly below C+MPI at scale (the ~60% allocation share is
  quantified in test_ablations.py);
* this is the paper's worst Triolet-vs-C+MPI ratio (the 23% end of the
  headline range comes from saturating apps).
"""
import pytest

from conftest import at_cores
from repro.bench import make_problem, run_point, sequential_seconds


@pytest.fixture(scope="module")
def series(series_cache):
    return series_cache("cutcp")


def test_fig8_all_runs_numerically_correct(benchmark, series):
    def checks():
        for fw, pts in series.items():
            for pt in pts:
                assert pt.correct, (fw, pt.nodes)


    benchmark(checks)

def test_fig8_saturation(benchmark, series):
    def checks():
        """Efficiency collapses with scale for both Triolet and C+MPI."""
        for fw in ("triolet", "cmpi"):
            eff16 = at_cores(series, fw, 16).speedup / 16
            eff128 = at_cores(series, fw, 128).speedup / 128
            assert eff128 < 0.65 * eff16, fw


    benchmark(checks)

def test_fig8_triolet_clearly_below_cmpi(benchmark, series):
    def checks():
        for cores in (32, 64, 128):
            t = at_cores(series, "triolet", cores).speedup
            c = at_cores(series, "cmpi", cores).speedup
            assert t < 0.85 * c


    benchmark(checks)

def test_fig8_triolet_gc_share_substantial(benchmark, series):
    def checks():
        """§4.5: '~60% of Triolet's execution time at 8 nodes arises from
        allocation overhead' -- checked via the runtime's GC ledger."""
        from repro.apps.cutcp import run_triolet
        from repro.bench.calibrate import costs_for
        from repro.cluster.machine import PAPER_MACHINE

        p = make_problem("cutcp")
        run = run_triolet(p, PAPER_MACHINE, costs_for("cutcp", "triolet", p))
        per_node_gc = run.detail["gc_time"] / PAPER_MACHINE.nodes
        share = per_node_gc / run.elapsed
        assert 0.3 <= share <= 0.8


    benchmark(checks)

def test_fig8_benchmark_triolet_128(benchmark):
    p = make_problem("cutcp")
    ref = sequential_seconds("cutcp", p)
    pt = benchmark.pedantic(
        lambda: run_point("cutcp", "triolet", 8, problem=p, reference=ref),
        rounds=1,
        iterations=1,
    )
    assert pt.correct
