"""Figure 4: mri-q scalability (speedup over sequential C vs. cores).

Paper claims encoded:

* Triolet is "nearly on par with manually written MPI and OpenMP" across
  the range;
* both scale near-linearly to 128 cores (the compute-dominated app);
* Eden "loses performance across the entire range" (sequential sinf/cosf
  penalty) and its effective scalability is reduced by delayed tasks.
"""
import pytest

from conftest import FIGURE_NODES, at_cores
from repro.bench import run_point, make_problem, sequential_seconds


@pytest.fixture(scope="module")
def series(series_cache):
    return series_cache("mriq")


def test_fig4_all_runs_numerically_correct(benchmark, series):
    def checks():
        for fw, pts in series.items():
            for pt in pts:
                assert pt.correct, (fw, pt.nodes)


    benchmark(checks)

def test_fig4_triolet_near_cmpi_everywhere(benchmark, series):
    def checks():
        for tri_pt, c_pt in zip(series["triolet"], series["cmpi"]):
            assert tri_pt.speedup >= 0.85 * c_pt.speedup


    benchmark(checks)

def test_fig4_near_linear_scaling_at_128(benchmark, series):
    def checks():
        assert at_cores(series, "cmpi", 128).speedup >= 0.85 * 128
        assert at_cores(series, "triolet", 128).speedup >= 0.80 * 128


    benchmark(checks)

def test_fig4_eden_below_across_entire_range(benchmark, series):
    def checks():
        for e_pt, t_pt in zip(series["eden"], series["triolet"]):
            assert e_pt.speedup < t_pt.speedup


    benchmark(checks)

def test_fig4_eden_scales_but_sublinearly(benchmark, series):
    def checks():
        e16 = at_cores(series, "eden", 16).speedup
        e128 = at_cores(series, "eden", 128).speedup
        assert e128 > 2.5 * e16  # it does scale...
        assert e128 < 0.75 * 128  # ...but well below linear


    benchmark(checks)

def test_fig4_benchmark_triolet_128(benchmark):
    """Time regenerating the headline cell (8 nodes, Triolet)."""
    p = make_problem("mriq")
    ref = sequential_seconds("mriq", p)
    pt = benchmark.pedantic(
        lambda: run_point("mriq", "triolet", 8, problem=p, reference=ref),
        rounds=1,
        iterations=1,
    )
    assert pt.correct
