"""Figure 5: sgemm scalability.

Paper claims encoded:

* "All versions of the code exhibit limited scalability due to
  transposition time and communication time" -- sublinear at 128 cores;
* "C+MPI+OpenMP and Triolet spend similar amounts of time in
  communication and in parallel computation, resulting in similar
  performance.  Triolet's performance stops rising toward 8 nodes";
* "The Eden code fails at 2 nodes because the array data is too large
  for Eden's message-passing runtime to buffer" (it runs at 1 node);
* at 8 nodes a large share of Triolet's overhead vs C+MPI is GC
  (quantified in test_ablations.py).
"""
import pytest

from conftest import at_cores
from repro.bench import make_problem, run_point, sequential_seconds


@pytest.fixture(scope="module")
def series(series_cache):
    return series_cache("sgemm")


def test_fig5_successful_runs_correct(benchmark, series):
    def checks():
        for fw, pts in series.items():
            for pt in pts:
                if not pt.failed:
                    assert pt.correct, (fw, pt.nodes)


    benchmark(checks)

def test_fig5_limited_scalability(benchmark, series):
    def checks():
        assert at_cores(series, "cmpi", 128).speedup < 0.75 * 128
        assert at_cores(series, "triolet", 128).speedup < 0.75 * 128


    benchmark(checks)

def test_fig5_triolet_similar_to_cmpi_at_low_counts(benchmark, series):
    def checks():
        for cores in (16, 32):
            t = at_cores(series, "triolet", cores).speedup
            c = at_cores(series, "cmpi", cores).speedup
            assert t >= 0.75 * c


    benchmark(checks)

def test_fig5_triolet_flattens_toward_8_nodes(benchmark, series):
    def checks():
        """Speedup-per-core falls as message construction grows."""
        eff = [
            at_cores(series, "triolet", cores).speedup / cores
            for cores in (16, 32, 64, 128)
        ]
        assert eff == sorted(eff, reverse=True)
        assert eff[-1] < 0.6 * eff[0]


    benchmark(checks)

def test_fig5_eden_runs_at_one_node(benchmark, series):
    def checks():
        pt = at_cores(series, "eden", 16)
        assert not pt.failed and pt.correct
        assert pt.speedup > 5


    benchmark(checks)

def test_fig5_eden_fails_from_two_nodes_on(benchmark, series):
    def checks():
        for cores in (32, 64, 128):
            pt = at_cores(series, "eden", cores)
            assert pt.failed is not None
            assert "buffer" in pt.failed


    benchmark(checks)

def test_fig5_benchmark_triolet_128(benchmark):
    p = make_problem("sgemm")
    ref = sequential_seconds("sgemm", p)
    pt = benchmark.pedantic(
        lambda: run_point("sgemm", "triolet", 8, problem=p, reference=ref),
        rounds=1,
        iterations=1,
    )
    assert pt.correct
