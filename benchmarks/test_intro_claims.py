"""The paper's §1 motivating measurements, reproduced.

* The naive list-based Eden floatHistD has per-thread performance "an
  order of magnitude lower than sequential C chiefly due to the overhead
  of list manipulation".
* The optimized style (custom skeletons + unboxed arrays -- our Eden
  baseline) yields "sequential performance within a small multiplicative
  factor of C" -- "exactly what skeletons should make unnecessary".
* Triolet closes the gap without the manual transformation.
"""
import numpy as np
import pytest

from repro.apps.cutcp import make_problem, solve_ref
from repro.apps.cutcp.kernel import atom_contribution
from repro.baselines.eden import EdenRuntime
from repro.baselines.eden.naive import (
    NAIVE_LIST_FACTOR,
    float_hist_d,
    naive_list_costs,
)
from repro.baselines.seqc import run_seqc
from repro.bench.calibrate import costs_for
from repro.cluster.machine import MachineSpec
from repro.core import meter

SINGLE_CORE = MachineSpec(nodes=1, cores_per_node=1)


@pytest.fixture(scope="module")
def problem():
    return make_problem(na=80, grid=(12, 12, 12), cutoff=3.0, seed=4)


@pytest.fixture(scope="module")
def c_reference(problem):
    costs = costs_for("cutcp", "c", problem)
    return run_seqc(lambda: solve_ref(problem), costs)


def _gridpts(problem):
    """The §1 ``gridPts``: one atom -> a *list* of (point, value) cells."""

    def fn(atom):
        flat, s = atom_contribution(
            np.asarray(atom), problem.grid_dim, problem.spacing, problem.cutoff
        )
        return list(zip(flat.tolist(), s.tolist()))

    return fn


def _run_naive(problem, ntasks=1):
    base = costs_for("cutcp", "c", problem)
    rt = EdenRuntime(SINGLE_CORE, costs=naive_list_costs(base))
    hist = float_hist_d(
        rt, _gridpts(problem), [tuple(a) for a in problem.atoms],
        problem.grid_size, ntasks=ntasks,
    )
    return np.asarray(hist), rt.elapsed


def test_naive_eden_result_is_correct(benchmark, problem, c_reference):
    hist, _ = benchmark.pedantic(
        lambda: _run_naive(problem), rounds=1, iterations=1
    )
    np.testing.assert_allclose(
        hist.reshape(problem.grid_dim), c_reference.value, rtol=1e-9
    )


def test_naive_eden_order_of_magnitude_slower_per_thread(
    benchmark, problem, c_reference
):
    _, naive_elapsed = benchmark.pedantic(
        lambda: _run_naive(problem), rounds=1, iterations=1
    )
    ratio = naive_elapsed / c_reference.seconds
    assert 7.0 <= ratio <= 16.0  # "an order of magnitude"


def test_optimized_eden_within_small_factor_of_c(benchmark, problem, c_reference):
    """The manual optimization (imperative loops over unboxed arrays) the
    paper performs -- our standard Eden baseline's task code."""
    from repro.apps.cutcp.eden import _work

    def run():
        costs = costs_for("cutcp", "eden", problem)
        with meter.metered() as m:
            _work(problem.atoms, (problem.grid_dim, problem.spacing, problem.cutoff))
        return costs.task_seconds(m)

    optimized = benchmark.pedantic(run, rounds=1, iterations=1)
    ratio = optimized / c_reference.seconds
    assert 1.0 <= ratio <= 4.0  # "within a small multiplicative factor"


def test_list_overhead_is_measured_not_assumed(benchmark, problem):
    """The factor comes from metered list-cell steps, priced per step."""

    def run():
        gridpts = _gridpts(problem)
        atoms = [tuple(a) for a in problem.atoms[:20]]
        cells = sum(len(gridpts(a)) for a in atoms)
        with meter.metered() as m:
            from repro.baselines.eden.naive import _task

            _task(atoms, (gridpts, problem.grid_size))
        return m, cells

    m, cells = benchmark.pedantic(run, rounds=1, iterations=1)
    assert m.steps == 2 * cells  # build + consume, one step per cons cell
    assert m.steps > 0
    assert NAIVE_LIST_FACTOR >= 8.0
