"""Figure 3: sequential execution time of the four benchmarks.

Paper claims encoded here:

* every sequential C time sits in the 20-200 s dataset-selection window
  ("We select data sets with a sequential C running time between 20 and
  200 seconds");
* C <= Triolet <= Eden for every app (the bar ordering in Fig. 3);
* mri-q's Eden bar is ~50% above C ("about 50% longer run time on a
  single thread").
"""
import json

import pytest

from conftest import GENERATED
from repro.bench import figure3_rows


@pytest.fixture(scope="module")
def rows():
    data = figure3_rows()
    GENERATED.mkdir(exist_ok=True)
    lines = [f"{'app':<8}{'C':>10}{'Eden':>10}{'Triolet':>10}   (virtual seconds)"]
    for r in data:
        lines.append(
            f"{r['app']:<8}{r['c']:>10.1f}{r['eden']:>10.1f}{r['triolet']:>10.1f}"
        )
    (GENERATED / "fig3_sequential.txt").write_text("\n".join(lines) + "\n")
    return {r["app"]: r for r in data}


def test_fig3_times_in_dataset_window(benchmark, rows):
    def check():
        return [r["c"] for r in rows.values()]

    c_times = benchmark(check)
    assert all(20.0 <= t <= 200.0 for t in c_times)


def test_fig3_framework_ordering(benchmark, rows):
    def orderings():
        return {
            app: (r["c"] <= r["triolet"] <= r["eden"]) for app, r in rows.items()
        }

    assert all(benchmark(orderings).values())


def test_fig3_mriq_eden_50_percent_longer(benchmark, rows):
    ratio = benchmark(lambda: rows["mriq"]["eden"] / rows["mriq"]["c"])
    assert 1.3 <= ratio <= 1.7  # paper: "about 50% longer"


def test_fig3_triolet_close_to_c(benchmark, rows):
    """§6: 'On code that is not communication-bound, performance rivals
    that of C' -- sequentially Triolet stays within ~25% of C except
    cutcp's nested-iterator overhead."""

    def ratios():
        return {app: r["triolet"] / r["c"] for app, r in rows.items()}

    rs = benchmark(ratios)
    for app, ratio in rs.items():
        assert ratio <= (1.35 if app != "cutcp" else 1.6), (app, ratio)
