"""Ablation benchmarks for the paper's design choices.

Each ablation removes one Triolet mechanism and measures the damage in
virtual time or shipped bytes, reproducing the paper's motivating
observations:

* hybrid iterators vs. stepper-only loops (§3.1: "roughly a factor of two
  to five slower than imperative loop nests");
* sliced data sources vs. whole-structure shipping (§2/§3.5);
* two-level (nodes + shared-memory threads) vs. flat process-per-core
  parallelism (§1: "Eden's scalability ... is limited by its inability to
  take advantage of shared memory");
* dynamic work stealing vs. static scheduling on irregular loops;
* garbage collection vs. libc malloc (§4.3/§4.5, the substitution the
  authors themselves performed).
"""
import numpy as np
import pytest

import repro.triolet as tri
from repro.bench import make_problem
from repro.bench.calibrate import STEPPER_SLOWDOWN, costs_for
from repro.cluster.machine import PAPER_MACHINE
from repro.core import meter
from repro.core.iterators import iterate, to_step, StepFlat
from repro.runtime import LIBC_MALLOC, CostContext
from repro.runtime.worksteal import static_for_makespan, work_stealing_makespan
from repro.serial import register_function, serialize


@register_function
def _pos(x):
    return x > 0


@register_function
def _expand(x):
    return np.arange(float(int(x) % 7))


class TestHybridVsStepperOnly:
    """§3.1/§3.2: the hybrid encoding vs. forcing steppers everywhere."""

    def test_stepper_only_loses_partitionability(self, benchmark):
        def probe():
            xs = np.arange(1000.0) - 500.0
            hybrid = tri.filter(_pos, iterate(xs))
            stepper_only = StepFlat(to_step(hybrid))
            return hybrid.constructor, stepper_only.constructor

        h, s = benchmark(probe)
        assert h == "IdxNest"  # outer loop still block-splittable
        assert s == "StepFlat"  # only "next element" reachable

    def test_stepper_only_costs_2_to_5x(self, benchmark):
        """Virtual-time ratio of stepper-only vs. hybrid execution."""
        xs = np.arange(4000.0) - 2000.0
        costs = CostContext(unit_time=1e-7, step_overhead=2.5e-7)

        def run_both():
            pipeline = tri.concat_map(_expand, tri.filter(_pos, iterate(xs)))
            with meter.metered() as m_h:
                tri.sum(pipeline)
            hybrid_t = costs.task_seconds(m_h)
            with meter.metered() as m_s:
                tri.sum(StepFlat(to_step(pipeline)))
            stepper_t = costs.task_seconds(m_s)
            return stepper_t / hybrid_t

        ratio = benchmark(run_both)
        lo, hi = STEPPER_SLOWDOWN
        assert lo * 0.8 <= ratio <= hi * 1.2


class TestFusedVsScanBasedFilter:
    """§3.1: indexer-encoded filter needs a multipass parallel scan;
    hybrid iterators fuse filtering into a single pass."""

    def test_scan_based_filter_is_multipass(self, benchmark):
        xs = np.arange(5000.0) - 2500.0

        def scan_based():
            """filter-pack via prefix sums of keep-flags (the classic
            data-parallel formulation the paper's §3.1 describes)."""
            with meter.metered() as m:
                flags = (xs > 0).astype(np.float64)
                meter.tally_visits(xs.size)  # pass: compute flags
                meter.tally_pass()
                positions = tri.prefix_sum(flags)  # 2 passes + temporary
                out = np.empty(int(positions[-1]) if len(positions) else 0)
                keep = xs[xs > 0]
                out[:] = keep
                meter.tally_visits(xs.size)  # pass: scatter/pack
                meter.tally_pass()
                total = float(out.sum())
            return total, m

        def fused():
            with meter.metered() as m:
                total = tri.sum(tri.filter(_pos, iterate(xs)))
            return total, m

        (scan_total, scan_m), (fused_total, fused_m) = benchmark(
            lambda: (scan_based(), fused())
        )
        assert scan_total == fused_total
        assert fused_m.materializations == 0 and fused_m.passes == 0
        assert scan_m.passes >= 3
        assert scan_m.materializations >= 1
        assert scan_m.visits > 2 * fused_m.visits


class TestSlicedVsWholeShipping:
    """§3.5: slice extraction vs. dragging the whole array along."""

    def test_whole_object_ships_orders_of_magnitude_more(self, benchmark):
        def probe():
            xs = np.arange(100_000.0)
            sliced = iterate(xs)
            whole = iterate(list(xs))  # Python list -> WholeObjectSource
            sliced_chunk = sliced.idx.slice(0, 1000)
            whole_chunk = whole.idx.slice(0, 1000)
            return len(serialize(sliced_chunk)), len(serialize(whole_chunk))

        sliced_bytes, whole_bytes = benchmark(probe)
        assert whole_bytes > 50 * sliced_bytes


class TestTwoLevelVsFlat:
    """Two-level runtime vs. a flat 128-process view of the machine."""

    def test_flat_parallelism_ships_more_and_runs_slower(self, benchmark):
        from repro.apps.cutcp import run_eden, run_triolet

        p = make_problem("cutcp")
        # Same calibrated sequential speed for both, and the cheap
        # allocator on the two-level side, isolating the *structural*
        # difference (shared-memory combining vs. per-process shipping).
        costs = costs_for("cutcp", "c", p)

        def run_both():
            two_level = run_triolet(p, PAPER_MACHINE, costs, alloc=LIBC_MALLOC)
            flat = run_eden(p, PAPER_MACHINE, costs)
            return two_level, flat

        two_level, flat = benchmark.pedantic(run_both, rounds=1, iterations=1)
        # Flat: every process returns a whole private grid over the
        # network path; two-level sums 16 of them in shared memory first.
        assert flat.bytes_shipped > 3 * two_level.bytes_shipped
        assert flat.elapsed > two_level.elapsed


class TestWorkStealingVsStatic:
    """Dynamic vs. static scheduling on a triangular (irregular) loop."""

    def test_static_schedule_suffers_on_triangular_work(self, benchmark):
        def probe():
            m = 512
            durations = [float(m - i) for i in range(m)]  # tpacf row costs
            dyn = work_stealing_makespan(durations, 16)
            stat = static_for_makespan(durations, 16)
            return stat / dyn

        ratio = benchmark(probe)
        assert ratio > 1.5  # static eats the triangle's heavy prefix


class TestGcVsMalloc:
    """§4.3/§4.5: substitute libc malloc for the garbage collector."""

    def test_sgemm_gc_share_of_overhead(self, benchmark):
        from repro.apps.sgemm import run_cmpi_app, run_triolet

        p = make_problem("sgemm")
        costs = costs_for("sgemm", "triolet", p)

        def run_all():
            gc_run = run_triolet(p, PAPER_MACHINE, costs)
            malloc_run = run_triolet(p, PAPER_MACHINE, costs, alloc=LIBC_MALLOC)
            cmpi_run = run_cmpi_app(p, PAPER_MACHINE, costs_for("sgemm", "cmpi", p))
            return gc_run, malloc_run, cmpi_run

        gc_run, malloc_run, cmpi_run = benchmark.pedantic(
            run_all, rounds=1, iterations=1
        )
        overhead = gc_run.elapsed - cmpi_run.elapsed
        gc_part = gc_run.elapsed - malloc_run.elapsed
        assert overhead > 0
        # Paper: ~40% of the 8-node overhead is GC.  Our model attributes
        # a substantial share (not all, not none) to the collector.
        assert 0.25 <= gc_part / overhead <= 0.95

    def test_cutcp_allocation_share_of_runtime(self, benchmark):
        from repro.apps.cutcp import run_triolet

        p = make_problem("cutcp")
        costs = costs_for("cutcp", "triolet", p)

        def run_both():
            gc_run = run_triolet(p, PAPER_MACHINE, costs)
            malloc_run = run_triolet(p, PAPER_MACHINE, costs, alloc=LIBC_MALLOC)
            return (gc_run.elapsed - malloc_run.elapsed) / gc_run.elapsed

        share = benchmark.pedantic(run_both, rounds=1, iterations=1)
        # Paper: "Approximately 60% of Triolet's execution time at 8 nodes
        # arises from allocation overhead."
        assert 0.30 <= share <= 0.75

    def test_malloc_substitution_never_changes_results(self, benchmark):
        from repro.apps.tpacf import run_triolet

        p = make_problem("tpacf")
        costs = costs_for("tpacf", "triolet", p)

        def run_both():
            a = run_triolet(p, PAPER_MACHINE, costs)
            b = run_triolet(p, PAPER_MACHINE, costs, alloc=LIBC_MALLOC)
            return a, b

        a, b = benchmark.pedantic(run_both, rounds=1, iterations=1)
        for key in ("dd", "dr", "rr"):
            np.testing.assert_array_equal(a.value[key], b.value[key])
