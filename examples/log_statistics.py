#!/usr/bin/env python3
"""Data-analytics flavored demo of the extended skeleton library.

A synthetic request-latency log is analyzed on the simulated cluster:
per-service latency totals (``group_reduce``), robust mean/variance
(``mean_variance``'s mergeable Welford monoid), the slowest request
(``argmax``), an SLO check (``all_match``), and a running cumulative
load (``scan``) -- all through the same par/localpar machinery as the
paper's benchmarks.

Usage:  python examples/log_statistics.py
"""
import numpy as np

import repro.triolet as tri
from repro.cluster.machine import PAPER_MACHINE
from repro.runtime import CostContext, triolet_runtime
from repro.serial import register_function

SERVICES = ("auth", "search", "checkout", "images")


@register_function
def service_of(record):
    return int(record[0])


@register_function
def latency_of(record):
    return float(record[1])


@register_function
def add(a, b):
    return a + b


@register_function
def combine_pairs(a, b):
    # (service, latency) pairs reduce on the latency component.
    return (a[0], a[1] + b[1])


@register_function
def pair_key(pair):
    return pair[0]


@register_function
def keep_latency(record):
    return record[1]


def main():
    rng = np.random.default_rng(7)
    n = 20_000
    service = rng.integers(0, len(SERVICES), n)
    base = np.array([12.0, 35.0, 60.0, 8.0])[service]
    latency = rng.gamma(shape=2.0, scale=base / 2.0)
    log = np.column_stack([service.astype(float), latency])

    costs = CostContext(unit_time=5e-9)
    with triolet_runtime(PAPER_MACHINE, costs=costs) as rt:
        records = tri.par(log)
        pairs = tri.map(keep_latency_pair, records)
        totals = {
            k: v[1]
            for k, v in tri.group_reduce(pair_key, combine_pairs, pairs).items()
        }
        mean, var = tri.mean_variance(tri.map(latency_of, tri.par(log)))
        worst = tri.argmax(tri.map(latency_of, tri.par(log)))

    print(f"{n} log records across {len(SERVICES)} services\n")
    print(f"{'service':<10}{'total latency':>16}{'share':>9}")
    grand = sum(totals.values())
    for sid, name in enumerate(SERVICES):
        t = totals.get(sid, 0.0)
        print(f"{name:<10}{t:>16.1f}{t / grand:>9.1%}")

    print(f"\nmean latency : {mean:8.2f} ms  (numpy: {latency.mean():.2f})")
    print(f"std deviation: {np.sqrt(var):8.2f} ms")
    print(f"worst request: #{worst} -> {latency[worst]:.1f} ms "
          f"({SERVICES[int(service[worst])]})")

    # Short-circuiting SLO check (sequential by design: it can stop early).
    slo = 500.0
    ok = tri.all_match(lambda x: x < slo, tri.map(latency_of, tri.iterate(log)))
    print(f"all under {slo:.0f} ms SLO: {ok}")

    # Cumulative load curve over the first records (fused sequential scan).
    running = tri.collect_list(tri.take(5, tri.scan(add, 0.0, latency[:100])))
    print("cumulative load, first 5 records:",
          [round(v, 1) for v in running])

    print("\n" + rt.report())

    # Verify against straight numpy.
    for sid in range(len(SERVICES)):
        assert np.isclose(totals.get(sid, 0.0), latency[service == sid].sum())
    assert np.isclose(mean, latency.mean())
    print("\nOK: all statistics match numpy")


@register_function
def keep_latency_pair(record):
    # group_reduce folds whole elements; keep (service, latency) pairs
    # reduced on the latency component.
    return (int(record[0]), float(record[1]))


if __name__ == "__main__":
    main()
