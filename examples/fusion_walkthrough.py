#!/usr/bin/env python3
"""The paper's §3.2 fusion walkthrough, three ways at once.

For ``sum(filter(positive, xs))`` this script shows:

1. the *symbolic* reduction chain (the Fig. 2 equations replayed, as the
   paper prints them);
2. the *live* structure of the pipeline the library actually builds
   (constructors, nest shape, partitionability);
3. the *measured* execution facts (one pass, zero temporaries), against
   the multipass scan-based alternative §3.1 describes.

Usage:  python examples/fusion_walkthrough.py
"""
import numpy as np

import repro.triolet as tri
from repro.core import meter
from repro.core.fusion.simplify import derive
from repro.core.iterators import iterate
from repro.serial import register_function


@register_function
def positive(x):
    return x > 0


def main():
    xs = np.array([1.0, -2.0, -4.0, 1.0, 3.0, 4.0])  # the paper's example

    print("=" * 72)
    print("1. SYMBOLIC: the Fig. 2 equations, replayed")
    print("=" * 72)
    for i, step in enumerate(derive("ys", [("filter", "f")], "sum")):
        prefix = "   " if i == 0 else " = "
        print(f"{prefix}{step}")

    print()
    print("=" * 72)
    print("2. LIVE: what the library builds for sum(filter(positive, xs))")
    print("=" * 72)
    stages = [
        ("iterate(xs)", iterate(xs)),
        ("filter(positive, ...)", tri.filter(positive, iterate(xs))),
    ]
    for label, it in stages:
        rep = tri.analyze(it)
        print(f"  {label:<24} -> {rep.describe()}")

    print()
    print("=" * 72)
    print("3. MEASURED: fused single pass vs the multipass scan approach")
    print("=" * 72)
    with meter.metered() as fused:
        total = tri.sum(tri.filter(positive, iterate(xs)))
    print(f"  fused hybrid iterators : sum = {total}")
    print(f"    visits={fused.visits}  temporaries={fused.materializations}"
          f"  passes-over-temporaries={fused.passes}")

    with meter.metered() as multipass:
        flags = (xs > 0).astype(np.float64)
        meter.tally_visits(xs.size)
        meter.tally_pass()
        positions = tri.prefix_sum(flags)  # §3.1's parallel-scan approach
        packed = xs[xs > 0]
        meter.tally_visits(xs.size)
        meter.tally_pass()
        total2 = float(packed.sum())
    print(f"  scan-based filter-pack : sum = {total2}")
    print(f"    visits={multipass.visits}  temporaries={multipass.materializations}"
          f"  passes={multipass.passes}")

    assert total == total2 == 9.0
    assert fused.materializations == 0
    assert multipass.passes >= 3
    print("\nOK: same answer; only the hybrid iterators fuse it into one pass")


if __name__ == "__main__":
    main()
