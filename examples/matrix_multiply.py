#!/usr/bin/env python3
"""The paper's two-line distributed matrix multiply (§2, §4.3).

    zipped_AB = outerproduct(rows(A), rows(BT))
    AB = [dot(u, v) for (u, v) in par(zipped_AB)]

The 2-D block decomposition -- which costs "over 120 lines of code" in
both Eden and C+MPI+OpenMP -- falls out of the outer-product source's
slice method: when the runtime carves the Dim2 domain into a process
grid, each block's slice carries exactly the A-rows and B^T-rows the
block needs.  This script shows the grid the runtime chose, the bytes it
shipped, and verifies the product against numpy.

Usage:  python examples/matrix_multiply.py [n]
"""
import sys

import numpy as np

import repro.triolet as tri
from repro.cluster.machine import PAPER_MACHINE
from repro.runtime import CostContext, triolet_runtime
from repro.serial import closure, register_function


@register_function
def block_dot(alpha, uv):
    u, v = uv
    return float(alpha * (u @ v))


@register_function
def transpose_elem(B, yx):
    y, x = yx
    return B[x, y]


def main():
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 96
    rng = np.random.default_rng(0)
    A = rng.standard_normal((n, n))
    B = rng.standard_normal((n, n))
    alpha = 1.5

    costs = CostContext(unit_time=1e-9)
    with triolet_runtime(PAPER_MACHINE, costs=costs) as rt:
        # Transpose B over shared memory (too little work per byte for
        # the network), then the two famous lines.
        h, w = B.shape
        BT = tri.build(
            tri.map(closure(transpose_elem, B), tri.localpar(tri.arrayRange((w, h))))
        )
        zipped_AB = tri.outerproduct(tri.rows(A), tri.rows(BT))
        AB = tri.build(tri.map(closure(block_dot, alpha), tri.par(zipped_AB)))

    np.testing.assert_allclose(AB, alpha * (A @ B), rtol=1e-10)
    print(f"alpha*A@B for {n}x{n}: verified against numpy")
    for s in rt.sections:
        print(
            f"  [{s.hint:>8}] {s.kind:<6} partition={s.partition:<8} "
            f"makespan={s.makespan * 1e3:9.3f} virtual ms  "
            f"bytes={s.bytes_shipped:,}"
        )
    print(f"total virtual time: {rt.elapsed * 1e3:.3f} ms")


if __name__ == "__main__":
    main()
