#!/usr/bin/env python3
"""Chaos run: mri-q survives a rank crash and a straggling node.

Runs the paper's mri-q benchmark (§4.2) twice on the simulated 4-node
cluster: once fault-free, and once under a deterministic `FaultPlan`
that crashes one rank early in the distributed section and makes
another node a 3x straggler.  The fault-tolerant runtime re-partitions
the crashed rank's slice across the survivors (the §3.5 sliceable
sources make the re-extraction free of checkpointing) and caps the
straggler with a speculative backup copy — so the *numerical result is
unchanged*, and the only casualty is virtual time, itemized in the
`RecoveryReport`.

Usage:  python examples/chaos_run.py
"""
import numpy as np

from repro.apps import mriq
from repro.bench.calibrate import costs_for
from repro.cluster.faults import FaultPlan, RankCrash, SlowNode
from repro.cluster.machine import PAPER_MACHINE

MACHINE = PAPER_MACHINE.scaled(nodes=4, cores_per_node=4)


def main():
    p = mriq.make_problem(npix=1024, nk=128, seed=7)
    costs = costs_for("mriq", "triolet", p)

    # --- 1. the fault-free baseline -------------------------------------
    clean = mriq.run_triolet(p, MACHINE, costs)
    print(f"fault-free     : makespan {clean.elapsed * 1e3:.3f} virtual ms")

    # --- 2. the same run under a deterministic fault storm ---------------
    plan = FaultPlan(
        faults=(
            RankCrash(rank=2, at=1e-5),     # rank 2 dies early on
            SlowNode(node=1, factor=3.0),   # node 1 straggles 3x
        )
    )
    storm = mriq.run_triolet(p, MACHINE, costs, faults=plan)
    report = storm.detail["recovery"]
    inflation = storm.elapsed / clean.elapsed
    print(f"under faults   : makespan {storm.elapsed * 1e3:.3f} virtual ms "
          f"({inflation:.2f}x)")
    print("recovery report:")
    for line in report.describe().splitlines():
        print("  " + line)

    # --- 3. the whole point: the answer did not change -------------------
    identical = np.allclose(storm.value, clean.value, rtol=1e-12, atol=1e-12)
    print(f"results identical despite crash + straggler: {identical}")

    assert identical
    assert report.faults.get("crash") == 1
    assert report.attempts >= 2          # the section was re-executed
    assert storm.elapsed > clean.elapsed  # recovery costs time, not truth
    print("OK: mri-q survived the fault storm with an unchanged result")


if __name__ == "__main__":
    main()
