#!/usr/bin/env python3
"""The substrate, bare: mpi4py-style rank programs on the simulated cluster.

Everything Triolet's runtime does rides on :mod:`repro.cluster` -- a
deterministic simulated cluster whose ranks are threads, whose messages
are really serialized, and whose clocks follow a LogGP cost model.  This
example uses it directly, the way the C+MPI+OpenMP baselines do: a
parallel matrix-vector product with explicit scatter / broadcast /
gather, mirroring the mpi4py tutorial's matvec.

Usage:  python examples/simulated_mpi.py
"""
import numpy as np

from repro.cluster import MachineSpec, run_spmd
from repro.partition import block_bounds

ROWS_TAG, OUT_TAG = 1, 2


def matvec_rank(comm, A, x):
    """Each rank multiplies a block of rows; the root assembles."""
    rank, size = comm.rank, comm.size
    bounds = block_bounds(A.shape[0], size)

    if rank == 0:
        for dst in range(1, size):
            lo, hi = bounds[dst]
            comm.Send(A[lo:hi], dst, ROWS_TAG)
        my_rows = A[bounds[0][0] : bounds[0][1]]
    else:
        my_rows = comm.Recv(0, ROWS_TAG)

    x = comm.bcast(x if rank == 0 else None, root=0)

    y_local = my_rows @ x
    comm.compute(1e-9 * my_rows.size)  # ~1ns per multiply-add

    if rank == 0:
        y = np.empty(A.shape[0])
        y[bounds[0][0] : bounds[0][1]] = y_local
        for src in range(1, size):
            lo, hi = bounds[src]
            y[lo:hi] = comm.Recv(src, OUT_TAG)
        return y
    comm.Send(y_local, 0, OUT_TAG)
    return None


def main():
    rng = np.random.default_rng(3)
    A = rng.standard_normal((2048, 512))
    x = rng.standard_normal(512)

    machine = MachineSpec(nodes=8, cores_per_node=16)
    res = run_spmd(machine, matvec_rank, nranks=8, args=(A, x))

    np.testing.assert_allclose(res.root_result, A @ x, rtol=1e-10)
    print("A@x verified against numpy")
    print(f"ranks          : {len(res.final_clocks)}")
    print(f"virtual makespan: {res.makespan * 1e3:.3f} ms")
    print(f"bytes sent      : {res.metrics.bytes_sent:,} "
          f"in {res.metrics.messages_sent} messages")
    print("per-rank finish times (ms):",
          [round(t * 1e3, 3) for t in res.final_clocks])

    # Determinism: the virtual timeline is a pure function of the program.
    res2 = run_spmd(machine, matvec_rank, nranks=8, args=(A, x))
    assert res2.final_clocks == res.final_clocks
    print("re-run produced identical virtual clocks (deterministic)")


if __name__ == "__main__":
    main()
