#!/usr/bin/env python3
"""Quickstart: the paper's §2 dot product, from fusion to the cluster.

Runs the canonical Triolet example::

    def dot(xs, ys):
        return sum(x*y for (x, y) in par(zip(xs, ys)))

three ways: sequentially, on one simulated multicore node (``localpar``),
and distributed over the simulated 8-node x 16-core cluster (``par``) --
then shows what the fusion machinery and the runtime ledger observed.

Usage:  python examples/quickstart.py
"""
import numpy as np

import repro.triolet as tri
from repro.cluster.machine import PAPER_MACHINE
from repro.core import meter
from repro.runtime import CostContext, triolet_runtime
from repro.serial import register_function


@register_function
def multiply(pair):
    x, y = pair
    return x * y


def dot(xs, ys):
    """sum(x*y for (x, y) in par(zip(xs, ys))) -- desugared."""
    return tri.sum(tri.map(multiply, tri.par(tri.zip(xs, ys))))


def main():
    rng = np.random.default_rng(42)
    n = 100_000
    xs, ys = rng.standard_normal(n), rng.standard_normal(n)

    # --- 1. what the skeleton calls build (before any execution) -------
    pipeline = tri.map(multiply, tri.par(tri.zip(xs, ys)))
    report = tri.analyze(pipeline)
    print("fused pipeline :", report.describe())
    print("numpy reference:", float(xs @ ys))

    # --- 2. sequential execution (no runtime installed) -----------------
    with meter.metered() as m:
        seq = tri.sum(tri.map(multiply, tri.zip(xs, ys)))
    print(f"sequential     : {seq:.6f}  ({m.visits} visits, "
          f"{m.materializations} temporaries)")

    # --- 3. the simulated cluster ---------------------------------------
    costs = CostContext(unit_time=2e-9)  # ~2ns per multiply-add in C
    with triolet_runtime(PAPER_MACHINE, costs=costs) as rt:
        par_result = dot(xs, ys)
    s = rt.last_section
    print(f"cluster        : {par_result:.6f}")
    print(f"  section      : {s.partition} over {s.nodes} nodes "
          f"({s.cores} cores)")
    print(f"  makespan     : {s.makespan * 1e3:.3f} virtual ms")
    print(f"  bytes shipped: {s.bytes_shipped:,}")
    print(f"  messages     : {s.messages}")

    seq_time = costs.seconds_for_visits(n)
    print(f"  speedup      : {seq_time / s.makespan:.1f}x over one core")

    assert np.isclose(par_result, float(xs @ ys))
    assert np.isclose(seq, float(xs @ ys))
    print("OK: all three agree with numpy")


if __name__ == "__main__":
    main()
