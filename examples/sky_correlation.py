#!/usr/bin/env python3
"""tpacf-style angular correlation: the paper's Fig. 6 listing, live.

Computes the two-point angular correlation estimator

    w(theta) = (DD - 2*DR + RR) / RR

from one "observed" catalog and a family of random catalogs, using the
nested par/localpar structure of Fig. 6: ``par`` across random data sets,
``localpar`` across the triangular pair loops within each set, private
histograms summed up the reduction tree.

Usage:  python examples/sky_correlation.py
"""
import numpy as np

from repro.apps.tpacf import make_problem
from repro.apps.tpacf.triolet import (
    _corr1_cross,
    _corr1_self,
    _self_pairs_row,
    correlation,
    random_sets_correlation,
)
from repro.cluster.machine import PAPER_MACHINE
from repro.runtime import CostContext, triolet_runtime
from repro.serial import closure
import repro.triolet as tri


def main():
    p = make_problem(m=96, nr=16, nbins=16, seed=11)
    costs = CostContext(unit_time=5e-8)

    with triolet_runtime(PAPER_MACHINE, costs=costs) as rt:
        indexed_obs = tri.zip(tri.indices(tri.domain(p.obs)), tri.iterate(p.obs))
        dd = correlation(
            p.nbins,
            tri.map(closure(_self_pairs_row, p.nbins, p.obs), tri.par(indexed_obs)),
        )
        dr = random_sets_correlation(
            p.nbins, closure(_corr1_cross, p.nbins, p.obs), p.rands
        )
        rr = random_sets_correlation(p.nbins, closure(_corr1_self, p.nbins), p.rands)

    # Landy-Szalay-style estimator (normalized pair counts).
    m, nr = p.m, p.nr
    dd_n = dd / (m * (m - 1) / 2)
    dr_n = dr / (nr * m * m)
    rr_n = rr / (nr * m * (m - 1) / 2)
    with np.errstate(divide="ignore", invalid="ignore"):
        w = (dd_n - 2 * dr_n + rr_n) / rr_n

    print(f"{p.nr} random catalogs of {p.m} objects, {p.nbins} angular bins")
    print(f"{'bin':>4} {'DD':>8} {'DR':>8} {'RR':>8} {'w(theta)':>10}")
    for b in range(p.nbins):
        wtxt = f"{w[b]:10.4f}" if np.isfinite(w[b]) else "       n/a"
        print(f"{b:>4} {dd[b]:>8.0f} {dr[b]:>8.0f} {rr[b]:>8.0f} {wtxt}")

    print(f"\nparallel sections: {len(rt.sections)}, "
          f"total virtual time {rt.elapsed:.4f} s, "
          f"bytes shipped {rt.total_bytes_shipped():,}")
    # Uniform random sky: the correlation should hover around zero.
    finite = w[np.isfinite(w)]
    print(f"mean |w| over finite bins: {np.abs(finite).mean():.4f} "
          "(uniform sky -> near 0)")


if __name__ == "__main__":
    main()
