#!/usr/bin/env python3
"""Resident job service: a mixed multi-tenant workload on one cluster.

Starts a `JobServer` on a 4-node simulated cluster and feeds it a mixed
stream from two tenants -- `ops` (weight 2) running mri-q and sgemm,
`science` (weight 1) running tpacf -- with a registered shared dataset
and a permanent rank loss injected into one mid-stream job.  Shows what
the service layer adds on top of the one-shot runtime:

* repeat jobs hit the shared fusion-plan cache (compiled == 0) and
  ship zero input bytes (datasets already resident, rebuilt arrays
  deduped onto resident handles);
* the scheduler serves tenants in deficit fair-share order over
  *virtual* time -- deterministic, weight-2 gets twice the service;
* the rank loss shrinks the machine for the rest of the session, yet
  every job's value stays bit-identical to a solo fault-free run.

Usage:  python examples/service_run.py
"""
import numpy as np

from repro.apps import mriq, sgemm, tpacf
from repro.bench.calibrate import costs_for
from repro.cluster.faults import FaultPlan, RankLoss
from repro.cluster.machine import PAPER_MACHINE
from repro.service import (
    JobServer,
    mriq_job,
    register_mriq_dataset,
    run_solo,
    sgemm_job,
    tpacf_job,
)

MACHINE = PAPER_MACHINE.scaled(nodes=4, cores_per_node=4)


def main():
    pm = mriq.make_problem(npix=1024, nk=128, seed=7)
    ps = sgemm.make_problem(n=64, seed=7)
    pt = tpacf.make_problem(m=48, nr=16, seed=7)
    costs = {
        "mriq": costs_for("mriq", "triolet", pm),
        "sgemm": costs_for("sgemm", "triolet", ps),
        "tpacf": costs_for("tpacf", "triolet", pt),
    }

    srv = JobServer(MACHINE)
    srv.add_tenant("ops", weight=2.0)
    srv.add_tenant("science", weight=1.0)
    register_mriq_dataset(srv, "mriq", pm)  # resident for every tenant

    # A mixed stream, submitted up front; nothing runs until drain().
    handles = [
        srv.submit(mriq_job(pm, dataset="mriq"), tenant="ops",
                   name="mriq-cold", costs=costs["mriq"]),
        srv.submit(sgemm_job(ps), tenant="ops",
                   name="sgemm-cold", costs=costs["sgemm"]),
        srv.submit(tpacf_job(pt), tenant="science",
                   name="tpacf-cold", costs=costs["tpacf"]),
        # mid-stream: rank 3 dies permanently during this job
        srv.submit(mriq_job(pm, dataset="mriq"), tenant="ops",
                   name="mriq-lossy", costs=costs["mriq"],
                   faults=FaultPlan([RankLoss(rank=3, at=1e-6)])),
        # queued behind the loss: run on the 3 survivors
        srv.submit(sgemm_job(ps), tenant="ops",
                   name="sgemm-warm", costs=costs["sgemm"]),
        srv.submit(mriq_job(pm, dataset="mriq"), tenant="science",
                   name="mriq-warm", costs=costs["mriq"]),
    ]
    srv.drain()

    print(f"{'job':<12} {'tenant':<8} {'virt s':>10} {'shipped':>9} "
          f"{'compiled':>9} {'plan hits':>10}")
    for h in handles:
        m = h.metrics
        print(f"{h.name:<12} {h.tenant:<8} {m['virtual_seconds']:>10.4f} "
              f"{m['shipped_bytes']:>9,} {m['planner']['compiled']:>9} "
              f"{m['planner']['hits']:>10}")

    print(f"\nmachine shrank: {MACHINE.nodes} -> {srv.live_ranks} live ranks "
          f"(loss absorbed by 'mriq-lossy' outlives the job)")

    # Bit-identity: the shared, shrunken, multi-tenant session computed
    # exactly what fresh one-shot runtimes compute.
    solo_m, _ = run_solo(mriq_job(pm), MACHINE, costs=costs["mriq"])
    solo_s, _ = run_solo(sgemm_job(ps), MACHINE, costs=costs["sgemm"])
    assert all(np.array_equal(h.result(), solo_m)
               for h in handles if h.name.startswith("mriq"))
    assert all(np.array_equal(h.result(), solo_s)
               for h in handles if h.name.startswith("sgemm"))
    print("bit-identical to solo runs: True")

    print("\nper-tenant rollup:")
    for name, rep in srv.tenant_report().items():
        print(f"  {name:<8} jobs={rep['jobs_run']} "
              f"visits={rep['visits']:,.0f} "
              f"virtual={rep['compute_seconds']:.4f}s "
              f"weighted={rep['consumed'] / rep['weight']:.4f}")


if __name__ == "__main__":
    main()
