#!/usr/bin/env python3
"""cutcp-style molecular modeling: a distributed floating-point histogram.

The paper's §1 motivating example::

    floatHist [f a r | a <- atoms, r <- gridPts a]

Atoms are distributed with ``par``; each expands to a dynamically sized
set of nearby grid points (the irregular inner loop that defeats
indexer-only fusion); contributions scatter into per-thread private
grids that are summed within nodes over shared memory and across nodes
through the tree reduction.

Usage:  python examples/molecular_potential.py
"""
import numpy as np

import repro.triolet as tri
from repro.apps.cutcp import make_problem, solve_ref
from repro.apps.cutcp.triolet import _contrib
from repro.cluster.machine import PAPER_MACHINE
from repro.runtime import CostContext, LIBC_MALLOC, BOEHM_GC, triolet_runtime
from repro.serial import closure


def run(p, alloc):
    costs = CostContext(unit_time=1e-8)
    with triolet_runtime(PAPER_MACHINE, costs=costs, alloc=alloc) as rt:
        contrib = closure(_contrib, list(p.grid_dim), p.spacing, p.cutoff)
        grid = tri.histogram(p.grid_size, tri.map(contrib, tri.par(p.atoms)))
    return grid.reshape(p.grid_dim), rt


def main():
    p = make_problem(na=400, grid=(24, 24, 24), cutoff=4.0, seed=2)
    print(f"{p.na} atoms, {p.grid_dim} grid, cutoff {p.cutoff}")

    grid, rt = run(p, BOEHM_GC)
    ref = solve_ref(p)
    np.testing.assert_allclose(grid, ref, rtol=1e-9)
    print("potential grid verified against the sequential reference")

    zmax, ymax, xmax = np.unravel_index(np.argmax(np.abs(grid)), p.grid_dim)
    print(f"strongest potential {grid[zmax, ymax, xmax]:+.4f} "
          f"at grid point ({zmax}, {ymax}, {xmax})")

    s = rt.last_section
    print(f"par section: {s.nodes} nodes, makespan {s.makespan:.4f} virtual s, "
          f"bytes shipped {s.bytes_shipped:,}, GC time {s.gc_time:.4f} s")

    # The §4.5 observation, reproduced live: swap the garbage collector
    # for libc malloc and watch the runtime drop.
    _, rt_malloc = run(p, LIBC_MALLOC)
    share = (rt.elapsed - rt_malloc.elapsed) / rt.elapsed
    print(f"allocation share of runtime (GC vs malloc substitution): "
          f"{share:.0%}  (paper §4.5: ~60%)")


if __name__ == "__main__":
    main()
