"""The Triolet runtime: two-level parallelism over the simulated cluster."""
from repro.runtime.costs import CostContext, use_costs, current_costs
from repro.runtime.driver import (
    TrioletRuntime,
    SectionRecord,
    NodeContext,
    triolet_runtime,
    add_section_observer,
    remove_section_observer,
    observing_sections,
)
from repro.runtime.gc_model import (
    AllocatorModel,
    BOEHM_GC,
    LIBC_MALLOC,
    GHC_GC,
    FREE_ALLOC,
)
from repro.runtime.checkpoint import (
    CheckpointConfig,
    CheckpointPolicy,
    CheckpointStore,
    run_restartable,
)
from repro.runtime.recovery import (
    RecoveryPolicy,
    RecoveryReport,
    DEFAULT_RECOVERY,
    NO_RECOVERY,
    FailureBudget,
    JobFailure,
    TransientFault,
    PermanentFault,
    BudgetExhausted,
    classify_failure,
)
from repro.runtime.stencil import run_stencil
from repro.runtime.worksteal import work_stealing_makespan, static_for_makespan

__all__ = [
    "run_stencil",
    "RecoveryPolicy",
    "RecoveryReport",
    "DEFAULT_RECOVERY",
    "NO_RECOVERY",
    "FailureBudget",
    "JobFailure",
    "TransientFault",
    "PermanentFault",
    "BudgetExhausted",
    "classify_failure",
    "CheckpointConfig",
    "CheckpointPolicy",
    "CheckpointStore",
    "run_restartable",
    "CostContext",
    "use_costs",
    "current_costs",
    "TrioletRuntime",
    "SectionRecord",
    "NodeContext",
    "triolet_runtime",
    "add_section_observer",
    "remove_section_observer",
    "observing_sections",
    "AllocatorModel",
    "BOEHM_GC",
    "LIBC_MALLOC",
    "GHC_GC",
    "FREE_ALLOC",
    "work_stealing_makespan",
    "static_for_makespan",
]
