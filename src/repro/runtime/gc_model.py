"""Allocator / garbage-collector cost models.

Paper §4.3: "At 8 nodes, 40% of Triolet's overhead relative to
C+MPI+OpenMP is attributable to the garbage collector, which is slow when
allocating objects comprising tens of megabytes.  The garbage collection
overhead was determined by comparing to the run time when libc malloc was
substituted for garbage-collected memory allocation."  §4.5:
"Approximately 60% of Triolet's execution time at 8 nodes arises from
allocation overhead."

An allocator model maps an allocation of ``nbytes`` to virtual seconds.
The ablation benchmark swaps ``BOEHM_GC`` for ``LIBC_MALLOC`` and
re-measures, exactly as the authors did.
"""
from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class AllocatorModel:
    """Linear-plus-floor cost of allocating one object."""

    name: str
    per_byte: float  # seconds per allocated byte (zeroing, GC pressure)
    per_alloc: float  # fixed seconds per allocation

    def __call__(self, nbytes: int) -> float:
        if nbytes < 0:
            raise ValueError(f"negative allocation: {nbytes}")
        return self.per_alloc + nbytes * self.per_byte


#: Triolet's Boehm-style conservative GC: large allocations trigger
#: collection work proportional to the heap it must scan.
BOEHM_GC = AllocatorModel("boehm-gc", per_byte=2.0e-9, per_alloc=5e-7)

#: libc malloc: big allocations are mmap'd; near-constant cost per byte
#: (page zeroing only).
LIBC_MALLOC = AllocatorModel("libc-malloc", per_byte=6e-11, per_alloc=2e-7)

#: GHC's copying generational GC, as Eden inherits it.
GHC_GC = AllocatorModel("ghc-gc", per_byte=7e-10, per_alloc=3e-7)

#: No allocation cost (for isolating other effects in ablations).
FREE_ALLOC = AllocatorModel("free", per_byte=0.0, per_alloc=0.0)
