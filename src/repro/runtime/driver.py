"""The Triolet runtime: two-level parallel execution of skeletons (§3.4-§3.5).

"Triolet uses a two-level work distribution policy that first distributes
large units of work to cluster nodes, then subdivides this work among
cores within a node."

Execution of one hinted consumer ("a parallel section"):

1. the outer domain is block-partitioned across nodes (a 2-D grid for
   Dim2 iterators whose source supports inner slicing -- the sgemm case);
2. the main rank slices the *iterator* per node; slicing the iterator
   slices its data sources, so serializing the chunk ships exactly the
   data subset (§3.5) -- over the *simulated* network, with real bytes;
3. each node splits its chunk into core tasks, really executes each task's
   fused loop under a cost meter, and models TBB-style work stealing to
   get the node's virtual makespan;
4. partials flow back through a tree reduction (reduce consumers) or a
   gather plus block assembly (build consumers);
5. the section's makespan advances the program's virtual clock.

Nested hints compose: a ``localpar`` loop encountered inside a node task
re-enters the same machinery with the cores available to that task,
giving the paper's "different inter-node and intra-node parallelization
strategies".

Numerical results are always real; only elapsed time is virtual.
"""
from __future__ import annotations

import contextvars
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.cluster.comm import Comm
from repro.cluster.faults import FaultPlan, RankFailure
from repro.cluster.limits import RuntimeLimits, UNLIMITED
from repro.cluster.machine import MachineSpec
from repro.cluster.metrics import RunMetrics
from repro.cluster.process import run_spmd
from repro.cluster.simclock import VirtualClock
from repro.cluster.transport import rank_extras, resolve_transport
from repro.core import meter
from repro.core.domains import Dim2
from repro.core.engine import execute as _engine
from repro.core.fusion import planner
from repro.core.iterators.executor import ConsumeSpec, use_executor
from repro.core.iterators.iter_type import (
    IdxFlat,
    IdxNest,
    Iter,
    ParHint,
)
from repro.data.handle import bind_store
from repro.data.plane import DataPlane, chunk_requirements
from repro.obs.spans import active as _obs_active, obs_span as _obs_span
from repro.partition import block2d_bounds, block_bounds, grid_shape
from repro.runtime.checkpoint import CheckpointConfig
from repro.runtime.costs import CostContext, use_costs
from repro.runtime.gc_model import BOEHM_GC, AllocatorModel
from repro.runtime.recovery import (
    DEFAULT_RECOVERY,
    BudgetExhausted,
    FailureBudget,
    PermanentFault,
    RecoveryPolicy,
    RecoveryReport,
    classify_failure,
)
from repro.runtime.worksteal import work_stealing_makespan
from repro.serial.sizeof import transitive_size

_CHUNK_TAG = 99

# ---------------------------------------------------------------------------
# Section observers: callbacks fired at every distributed section boundary
# with the section's full context (runtime, record, partition bounds,
# shipping plan).  This is how external invariant checkers -- notably
# ``repro.testing.invariants`` -- see inside the driver without the driver
# importing them.  Observers must not mutate the payload.

_SECTION_OBSERVERS: list = []


def add_section_observer(fn) -> None:
    """Register *fn* to be called with a payload dict after every
    distributed section.  Payload keys: ``runtime``, ``record``,
    ``iterator``, ``partition``, ``bounds``, ``nchunks``, ``ship``,
    ``spec``, ``attempts``, ``dead_ranks``, ``survivors``,
    ``rank_losses``."""
    _SECTION_OBSERVERS.append(fn)


def remove_section_observer(fn) -> None:
    try:
        _SECTION_OBSERVERS.remove(fn)
    except ValueError:
        pass


@contextmanager
def observing_sections(fn):
    """Scoped :func:`add_section_observer` (what test fixtures want)."""
    add_section_observer(fn)
    try:
        yield fn
    finally:
        remove_section_observer(fn)


def _notify_section(payload: dict) -> None:
    for fn in list(_SECTION_OBSERVERS):
        fn(payload)


@dataclass
class NodeContext:
    """Ambient state while a node task executes (nested-hint support).

    ``nested_work`` accumulates the *sequential* virtual seconds of nested
    parallel regions (``localpar`` loops inside this task).  TBB-style
    work stealing is composable: nested tasks go into the same per-node
    deques, so the scheduler model treats nested work as a stealable pool
    shared by all cores rather than confining it to this task's core.
    """

    cores: int  # cores of the node this task runs on (split granularity)
    nested_work: float = 0.0  # sequential seconds of nested regions


_node_ctx: contextvars.ContextVar[NodeContext | None] = contextvars.ContextVar(
    "repro_node_ctx", default=None
)

#: Where metered-region tallies merge.  ``None`` means the runtime's own
#: ``meter_total`` (the shared-heap default).  Process-isolated transports
#: install a rank-local meter here so forked workers tally into state that
#: travels back through :func:`repro.cluster.transport.rank_extras`
#: instead of into a doomed copy of the driver's global meter.
_meter_sink: contextvars.ContextVar[meter.CostMeter | None] = (
    contextvars.ContextVar("repro_meter_sink", default=None)
)


@dataclass
class SectionRecord:
    """One parallel section's ledger."""

    label: str
    kind: str  # "reduce" | "build" | "seq"
    hint: str
    nodes: int
    cores: int
    partition: str
    makespan: float
    bytes_shipped: int = 0
    messages: int = 0
    metrics: RunMetrics | None = None
    visits: int = 0
    gc_time: float = 0.0
    recovery: "RecoveryReport | None" = None  # fault/recovery accounting
    plan: str | None = None  # compiled bulk-execution plan, if vectorized
    data_plane: dict | None = None  # shipping stats when handles were used
    #: real elapsed seconds of the section's SPMD run; nonzero only on
    #: transports with wall-clock parallelism (sim stays byte-identical)
    wall_seconds: float = 0.0

    @property
    def vectorized(self) -> bool:
        return self.plan is not None

    def utilization(self) -> float:
        """Fraction of node-seconds spent computing (vs waiting/comm).

        Only meaningful for distributed sections carrying run metrics;
        the paper's saturation discussions are exactly about this number
        falling with scale.
        """
        if self.metrics is None or self.makespan <= 0 or self.nodes == 0:
            raise ValueError("utilization needs a distributed section's metrics")
        busy = sum(m.compute_time for m in self.metrics.per_rank)
        return busy / (self.nodes * self.makespan)


def _elements_of(partial: Any) -> int:
    """How many scalar elements a partial holds (for combine costing)."""
    if isinstance(partial, np.ndarray):
        return partial.size
    if isinstance(partial, (list, tuple)):
        return len(partial)
    return 1


class TrioletRuntime:
    """Executor implementing PAR/LOCAL hints on the simulated cluster."""

    def __init__(
        self,
        machine: MachineSpec,
        costs: CostContext | None = None,
        alloc: AllocatorModel = BOEHM_GC,
        limits: RuntimeLimits = UNLIMITED,
        task_grain: int = 4,
        topology: str = "two-level",
        scheduler: str = "worksteal",
        label: str = "",
        faults: FaultPlan | None = None,
        recovery: RecoveryPolicy | None = DEFAULT_RECOVERY,
        plane: DataPlane | None = None,
        budget: FailureBudget | None = None,
        checkpoint: CheckpointConfig | None = None,
        transport=None,
        planner_state=None,
        lost_ranks: int = 0,
    ):
        """``topology``: ``"two-level"`` (the paper's design: message
        passing across nodes, threads within) or ``"flat"`` (one rank per
        core, Eden-style -- the ablation of §1's third problem).
        ``scheduler``: ``"worksteal"`` (TBB-like) or ``"static"``
        (OpenMP-static-like) intra-node scheduling.
        ``faults``: optional deterministic fault schedule injected into
        every distributed section; ``recovery``: what the runtime does
        about fired faults (retry, re-execute, fragment, speculate) --
        consulted only when something actually fires, so the fault-free
        timeline is unchanged.  ``budget``: optional job-level
        :class:`~repro.runtime.recovery.FailureBudget` (deadline,
        job-wide re-executions, rank losses); ``checkpoint``: optional
        :class:`~repro.runtime.checkpoint.CheckpointConfig` persisting
        section outputs into a simulated durable store.

        Server-owned construction (:mod:`repro.service`): ``transport``
        reuses an already-resolved backend instead of resolving
        ``machine.transport`` again; ``planner_state`` is a
        :class:`~repro.core.fusion.planner.PlannerState` installed
        around everything this runtime executes, so attached jobs hit a
        resident server's warmed plan cache; ``lost_ranks`` seeds the
        permanent-loss count, so a job attaching after an earlier job's
        elastic shrink partitions over the survivors only."""
        if topology not in ("two-level", "flat"):
            raise ValueError(f"unknown topology: {topology!r}")
        if scheduler not in ("worksteal", "static"):
            raise ValueError(f"unknown scheduler: {scheduler!r}")
        self.machine = machine
        #: the backend executing this runtime's distributed sections
        #: (resolved once from ``machine.transport``, or shared from a
        #: resident server; see :mod:`repro.cluster.transport`)
        self.transport = (
            transport
            if transport is not None
            else resolve_transport(machine.transport)
        )
        #: server-owned plan cache, installed around everything this
        #: runtime executes (None: the process-global default cache)
        self.planner_state = planner_state
        self.costs = costs if costs is not None else CostContext()
        self.alloc = alloc
        self.limits = limits
        self.task_grain = task_grain
        self.topology = topology
        self.scheduler = scheduler
        self.label = label
        self.faults = faults
        self.recovery = recovery
        self.plane = plane if plane is not None else DataPlane()
        self.budget = budget
        self.checkpoint = checkpoint
        self.recovery_report = RecoveryReport(attempts=0)
        self.clock = VirtualClock()
        # Permanent losses persist across sections: the machine shrank,
        # every later section partitions over the survivors only.  A
        # server seeds this with losses absorbed by earlier jobs.
        self.lost_ranks = lost_ranks
        # Distributed-section sequence counter -- the checkpoint key.  It
        # counts program order, so a restarted (deterministic) job lines
        # its sections up with the stored blobs.
        self._dist_seq = 0
        self.sections: list[SectionRecord] = []
        obs = _obs_active()
        if obs is not None:
            # Spans opened without an explicit clock (application phases,
            # plan consults) read this runtime's virtual timeline.
            obs.use_clock(self.clock)
        # Union of every metered region this runtime executed (task loops,
        # sequential glue).  Nested regions shadow the installed meter, so
        # merging each region once counts every tally exactly once.
        self.meter_total = meter.CostMeter()

    def _planner_scope(self):
        """The plan-cache scope everything this runtime runs under:
        the server-owned state when one was injected, otherwise a no-op
        (the process-global default cache stays active)."""
        if self.planner_state is None:
            return nullcontext()
        return planner.use_state(self.planner_state)

    def _merge_meter(self, m: meter.CostMeter) -> None:
        """Fold one metered region into the runtime total -- or, inside a
        process-isolated rank, into that rank's local meter (carried back
        and merged for real at the section boundary)."""
        sink = _meter_sink.get()
        (self.meter_total if sink is None else sink).merge(m)

    def _merge_rank_extras(self, extras) -> None:
        """Merge rank-local driver state a non-shared-heap transport
        carried back: per-rank cost meters and plan-cache deltas."""
        for ext in extras or ():
            if not ext:
                continue
            m = ext.get("meter")
            if m is not None:
                self.meter_total.merge(m)
            pd = ext.get("planner")
            if pd is not None:
                planner.merge_stats(pd)

    # -- bookkeeping -----------------------------------------------------

    def _obs_section(self) -> None:
        """Fold the just-appended section record into the observability
        registry (no-op when no recorder is installed)."""
        obs = _obs_active()
        if obs is not None:
            obs.on_section(self.sections[-1])

    @property
    def elapsed(self) -> float:
        """Total virtual program time so far."""
        return self.clock.now

    @property
    def last_section(self) -> SectionRecord:
        if not self.sections:
            raise RuntimeError("no parallel section has run yet")
        return self.sections[-1]

    def total_gc_time(self) -> float:
        return sum(s.gc_time for s in self.sections)

    def total_bytes_shipped(self) -> int:
        return sum(s.bytes_shipped for s in self.sections)

    # -- the data plane ----------------------------------------------------

    def distribute(self, array, layout: str = "block"):
        """Place *array* on the data plane; returns a resident
        :class:`~repro.data.handle.DistArray` handle.

        Sections iterating (or closing) over the handle ship each rank
        its shard at most once; later compatible sections ship zero
        input bytes.  ``layout`` is ``"block"``, ``"block2d"`` or
        ``"replicated"``.
        """
        return self.plane.register(array, layout)

    def stencil(self, handle, radius: int, kernel, iterations: int = 1,
                label: str = "stencil"):
        """Run an iterative halo-exchange stencil over *handle*.

        Each iteration is one distributed section whose block interiors
        reuse the handle's resident placement (zero interior bytes from
        iteration 2 on) and whose ghost rows ship as first-class halo
        placements -- only the *dirty* ones after the first exchange.
        See :mod:`repro.runtime.stencil` for the kernel contract and
        recovery semantics.  Returns the handle; its master copy holds
        the final state.
        """
        from repro.runtime.stencil import run_stencil

        with self._planner_scope():
            return run_stencil(self, handle, radius, kernel,
                               iterations=iterations, label=label)

    def report(self) -> str:
        """Human-readable ledger of every section this runtime ran."""
        lines = [
            f"TrioletRuntime on {self.machine.nodes}x"
            f"{self.machine.cores_per_node} cores "
            f"({self.topology}, {self.scheduler}): "
            f"{len(self.sections)} sections, {self.elapsed:.6f} virtual s"
        ]
        for i, s in enumerate(self.sections):
            lines.append(
                f"  [{i}] {s.hint:<8} {s.kind:<6} {s.partition:<10} "
                f"makespan={s.makespan:.6f}s bytes={s.bytes_shipped:,} "
                f"msgs={s.messages} gc={s.gc_time:.6f}s"
            )
        return "\n".join(lines)

    # -- sequential glue ---------------------------------------------------

    def run_sequential(self, fn, *args, label: str = "seq", **kwargs) -> Any:
        """Run plain code at the main rank, charging its metered time."""
        with self._planner_scope(), _obs_span(
            "section", label, clock=self.clock
        ) as osp:
            with meter.metered() as m:
                out = fn(*args, **kwargs)
            self._merge_meter(m)
            dt = self.costs.task_seconds(m)
            self.clock.advance(dt)
            osp.set(kind="seq", visits=m.visits)
        self.sections.append(
            SectionRecord(
                label=label,
                kind="seq",
                hint="seq",
                nodes=1,
                cores=1,
                partition="none",
                makespan=dt,
                visits=m.visits,
            )
        )
        self._obs_section()
        return out

    def charge_visits(self, visits: float, label: str = "seq") -> None:
        """Charge main-rank compute for work done outside the meter."""
        with _obs_span("section", label, clock=self.clock) as osp:
            dt = self.costs.seconds_for_visits(visits)
            self.clock.advance(dt)
            osp.set(kind="seq", visits=int(visits))
        self.sections.append(
            SectionRecord(
                label=label,
                kind="seq",
                hint="seq",
                nodes=1,
                cores=1,
                partition="none",
                makespan=dt,
                visits=int(visits),
            )
        )
        self._obs_section()

    # -- the Executor interface ----------------------------------------------

    def execute(self, it: Iter, spec: ConsumeSpec) -> Any:
        with self._planner_scope():
            return self._execute(it, spec)

    def _execute(self, it: Iter, spec: ConsumeSpec) -> Any:
        nc = _node_ctx.get()
        if nc is not None:
            # Nested hint inside a node task: feed the node's work pool.
            result, seq_work = self._nested_execute(it, spec, nc.cores)
            nc.nested_work += seq_work
            return result
        if it.hint is ParHint.LOCAL:
            return self._toplevel_local(it, spec)
        if it.hint is ParHint.PAR:
            return self._distributed(it, spec)
        return spec.seq_fn(it)

    # -- partitioning helpers ---------------------------------------------

    @staticmethod
    def _partitionable(it: Iter) -> bool:
        return isinstance(it, (IdxFlat, IdxNest))

    @staticmethod
    def _reslice(it: Iter, lo: int, hi: int) -> Iter:
        """A hint-free sub-iterator over outer positions [lo, hi).

        Constructs ``type(it)`` rather than the base constructor so
        refined iterators (``IndexedIter``) keep their structural plan
        key: every rank's slice must *hit* the plan the driver warmed.
        """
        if isinstance(it, (IdxFlat, IdxNest)):
            return type(it)(it.idx.slice(lo, hi))
        raise TypeError(f"cannot slice {type(it).__name__}")

    @staticmethod
    def _reslice_block(it: Iter, rows, cols) -> Iter:
        if isinstance(it, (IdxFlat, IdxNest)):
            return type(it)(it.idx.slice_block(rows, cols))
        raise TypeError(f"cannot slice {type(it).__name__}")

    def _can_block_2d(self, it: Iter) -> bool:
        if not isinstance(it, (IdxFlat, IdxNest)):
            return False
        if not isinstance(it.domain, Dim2):
            return False
        src = it.idx.source
        try:
            src.slice_inner(0, it.domain.w)
        except TypeError:
            return False
        return True

    # -- node-level execution (threads model) --------------------------------

    def _split_for_cores(self, it: Iter, cores: int) -> list[Iter]:
        """Split a chunk into core tasks (work-stealing granularity)."""
        if not self._partitionable(it):
            return [it]
        extent = it.domain.outer_extent
        if extent <= 1:
            return [it]
        ntasks = min(extent, max(1, cores) * self.task_grain)
        return [
            self._reslice(it, lo, hi)
            for lo, hi in block_bounds(extent, ntasks)
            if hi > lo
        ]

    def _run_tasks(
        self, it: Iter, spec: ConsumeSpec, cores: int
    ) -> tuple[list[Any], list[float], list[float], float]:
        """Execute a chunk's tasks for real; return partials and timings.

        Returns ``(partials, serial_durations, nested_works, gc_time)``:
        ``serial_durations[i]`` is task *i*'s own (unstealable) compute
        time, ``nested_works[i]`` the sequential total of its nested
        parallel regions (stealable by any core), and ``gc_time`` the
        total allocator/GC time for the tasks' private results -- kept
        separate because collections are stop-the-world and do not
        parallelize across the node's cores (§4.3, §4.5).
        """
        subits = self._split_for_cores(it, cores)
        serial: list[float] = []
        nested: list[float] = []
        partials: list[Any] = []
        gc_time = 0.0
        # Reduce consumers keep one private accumulator per *thread*
        # ("sequentially builds one histogram per thread", §3.4); build
        # consumers materialize every block.  Charge allocations
        # accordingly, paper-scaled (§4.3/§4.5 GC overhead).
        alloc_cap = min(cores, len(subits)) if spec.kind == "reduce" else len(subits)
        for i, sub in enumerate(subits):
            nc = NodeContext(cores=cores)
            token = _node_ctx.set(nc)
            try:
                with meter.metered() as m:
                    partials.append(spec.seq_fn(sub))
            finally:
                _node_ctx.reset(token)
            self._merge_meter(m)
            if i < alloc_cap:
                gc_time += self.alloc(
                    int(_result_bytes(partials[-1]) * self.costs.wire_scale)
                )
            serial.append(self.costs.task_seconds(m))
            nested.append(nc.nested_work)
        return partials, serial, nested, gc_time

    def _combine_partials(self, spec: ConsumeSpec, partials: list[Any]) -> tuple[Any, float]:
        if spec.kind == "reduce":
            result = partials[0]
            combine_elems = 0
            for p in partials[1:]:
                result = spec.combine(result, p)
                combine_elems += _elements_of(p)
            return result, self.costs.combine_seconds(combine_elems)
        return _concat_build(partials), 0.0

    def _node_execute(
        self, it: Iter, spec: ConsumeSpec, cores: int
    ) -> tuple[Any, float]:
        """Run a chunk on one node: real tasks, modelled thread overlap.

        Node makespan model for composable work stealing: each task's
        serial part occupies one core; its nested parallel regions spill
        into the shared deques.  The makespan is bounded below by total
        work over cores and by the longest task's critical path, and above
        by greedy list scheduling of (serial + span) task durations.

        Returns ``(combined_result, node_makespan_seconds)``.
        """
        partials, serial, nested, gc_time = self._run_tasks(it, spec, cores)
        total_work = sum(serial) + sum(nested)
        durations = [s + w / cores for s, w in zip(serial, nested)]
        if self.scheduler == "static":
            from repro.runtime.worksteal import static_for_makespan

            listed = static_for_makespan(
                durations, cores, barrier_overhead=self.machine.thread_spawn_overhead
            )
            makespan = listed + gc_time
        else:
            listed = work_stealing_makespan(
                durations,
                cores,
                steal_overhead=self.machine.steal_overhead,
                spawn_overhead=self.machine.thread_spawn_overhead,
            )
            # GC is stop-the-world: allocator time serializes on the node.
            makespan = max(listed, total_work / cores) + gc_time
        result, combine_dt = self._combine_partials(spec, partials)
        return result, makespan + combine_dt, gc_time

    def _nested_execute(
        self, it: Iter, spec: ConsumeSpec, cores: int
    ) -> tuple[Any, float]:
        """A nested parallel region: real execution, sequential-time total.

        The parent folds the returned sequential seconds into the node's
        stealable work pool (see :class:`NodeContext`); granularity of the
        split still follows the node's core count.
        """
        if not self._partitionable(it):
            with meter.metered() as m:
                out = spec.seq_fn(it)
            self._merge_meter(m)
            return out, self.costs.task_seconds(m)
        partials, serial, nested, gc_time = self._run_tasks(it, spec, cores)
        result, combine_dt = self._combine_partials(spec, partials)
        return result, sum(serial) + sum(nested) + gc_time + combine_dt

    def _warm_plan(self, it: Iter) -> str | None:
        """Compile (or fetch) the bulk-execution plan before partitioning.

        Sliced chunks share the parent pipeline's structural key, so every
        rank's tasks -- and post-crash re-executions -- hit the fusion-plan
        cache instead of recompiling.
        """
        if not _engine.vectorization_enabled():
            return None
        with _obs_span("plan", "plan_for", clock=self.clock) as sp:
            p = planner.plan_for(it)
            sp.set(compiled=p is not None)
        return p.describe() if p is not None else None

    # -- top-level localpar ---------------------------------------------------

    def _toplevel_local(self, it: Iter, spec: ConsumeSpec) -> Any:
        """``localpar`` at top level: the main node's cores, no network."""
        if not self._partitionable(it):
            return self._sequential_fallback(it, spec, "localpar-unpartitionable")
        with _obs_span("section", "localpar", clock=self.clock) as osp:
            plan = self._warm_plan(it)
            result, makespan, gc_time = self._node_execute(
                it, spec, self.machine.cores_per_node
            )
            self.clock.advance(makespan)
            osp.set(kind=spec.kind, nodes=1,
                    cores=self.machine.cores_per_node)
        self.sections.append(
            SectionRecord(
                label="localpar",
                kind=spec.kind,
                hint="localpar",
                nodes=1,
                cores=self.machine.cores_per_node,
                partition=f"1d x{min(it.domain.outer_extent, self.machine.cores_per_node * self.task_grain)}",
                makespan=makespan,
                gc_time=gc_time,
                plan=plan,
            )
        )
        self._obs_section()
        return result

    def _sequential_fallback(self, it: Iter, spec: ConsumeSpec, label: str) -> Any:
        with _obs_span("section", label, clock=self.clock) as osp:
            with meter.metered() as m:
                out = spec.seq_fn(it)
            self._merge_meter(m)
            dt = self.costs.task_seconds(m)
            self.clock.advance(dt)
            osp.set(kind=spec.kind, visits=m.visits)
        self.sections.append(
            SectionRecord(
                label=label,
                kind=spec.kind,
                hint="seq",
                nodes=1,
                cores=1,
                partition="none",
                makespan=dt,
                visits=m.visits,
            )
        )
        self._obs_section()
        return out

    # -- distributed sections ---------------------------------------------

    def _partition(
        self, it: Iter, nranks_max: int, *, allow_2d: bool = True
    ) -> tuple[list[Iter], str, Any, bool]:
        """Slice *it* into per-rank chunks (2-D grid when the source
        supports inner slicing, 1-D blocks otherwise).

        ``allow_2d=False`` forces 1-D outer blocks even for grid-sliceable
        Dim2 iterators -- required for order-sensitive consumers, whose
        partials must merge in element order (a 2-D grid's row-major
        block order interleaves rows).

        The last element of the returned tuple flags cost-feedback
        repartitioning: for handle-backed 1-D sections the data plane's
        rebalancer may supply weighted bounds, migrating shard
        boundaries toward faster ranks.
        """
        if allow_2d and self._can_block_2d(it):
            dom: Dim2 = it.domain  # type: ignore[assignment]
            nchunks = min(nranks_max, max(1, dom.size))
            py, px = grid_shape(nchunks, dom.h, dom.w)
            blocks = block2d_bounds(dom.h, dom.w, py, px)
            chunks = [self._reslice_block(it, r, c) for r, c in blocks]
            return chunks, f"2d {py}x{px}", blocks, False
        extent = it.domain.outer_extent
        nchunks = min(nranks_max, max(1, extent))
        bounds = None
        if nchunks > 1 and chunk_requirements(it):
            bounds = self.plane.partition_bounds(extent, nchunks)
        rebalanced = bounds is not None
        if bounds is None:
            bounds = block_bounds(extent, nchunks)
        chunks = [self._reslice(it, lo, hi) for lo, hi in bounds]
        label = f"1d x{nchunks}" + (" rebal" if rebalanced else "")
        return chunks, label, bounds, rebalanced

    def _distributed(self, it: Iter, spec: ConsumeSpec) -> Any:
        """``par``: nodes via simulated MPI, cores via the threads model.

        Fault tolerance: when an injected rank crash kills an attempt,
        the section is re-partitioned across the surviving ranks and
        re-executed -- the sliceable sources re-extract exactly the
        slices the replacement ranks need (§3.5), so no checkpoint or
        data shuffle is required.  The failed attempt's virtual time and
        a backoff are charged to the section's makespan and reported.
        """
        if not self._partitionable(it):
            # Variable-length outer loops cannot be partitioned (§3.2's
            # whole point is to avoid producing them); run sequentially.
            return self._sequential_fallback(it, spec, "par-unpartitionable")
        with _obs_span("section", "par", clock=self.clock) as osp:
            out = self._distributed_body(it, spec, osp)
        self._obs_section()
        return out

    def _distributed_body(self, it: Iter, spec: ConsumeSpec, osp) -> Any:
        """The attempt loop of a distributed section (see
        :meth:`_distributed`; *osp* is its enclosing section span)."""
        obs = _obs_active()
        # Flat topology: one rank per core, no shared-memory level.
        flat = self.topology == "flat"
        nranks_max = max(
            1,
            (
                self.machine.nodes * self.machine.cores_per_node
                if flat
                else self.machine.nodes
            )
            - self.lost_ranks,
        )
        seq = self._dist_seq
        self._dist_seq += 1
        if self.faults is not None:
            # Section-gated faults (RankLoss(section=...)) key on program
            # order, not virtual time, because every section's clocks
            # restart at zero.
            self.faults.begin_section(seq)
        ck = self.checkpoint
        if ck is not None:
            hit = ck.store.fetch(ck.job, seq)
            if hit is not None:
                # Restart-from-last-checkpoint: this section's output is
                # already durable; restore it instead of executing.
                return self._restore_section(seq, hit, spec, osp, nranks_max)

        cores = 1 if flat else self.machine.cores_per_node
        costs = self.costs
        machine = self.machine
        rec = self.recovery
        plan = self._warm_plan(it)

        # 2-D grid partitioning reorders partials (row-major blocks, not
        # element order): forbid it for order-sensitive reduces, and for
        # builds over nested iterators whose blocks are not rectangular.
        allow_2d = (
            isinstance(it, IdxFlat)
            if spec.kind == "build"
            else not spec.ordered
        )

        attempt = 0
        dead = 0
        lost_time = 0.0
        reexecuted = 0
        reshipped = 0
        losses = 0  # permanent rank losses absorbed in this section
        absorb = False  # shrink happened: survivors absorb via migration
        section_acc: RecoveryReport | None = None
        while True:
            chunks, partition, block_meta, rebalanced = self._partition(
                it, nranks_max - dead, allow_2d=allow_2d
            )
            if attempt > 0:
                reexecuted += len(chunks)
            # Section-boundary placement planning: what handle rows does
            # each rank's chunk (sources + closure environments) need, and
            # which of them are already resident or cached there?  None
            # when the section touches no handles -- the legacy
            # ship-the-slice path below is then byte-for-byte unchanged.
            # After an elastic shrink, ``absorb`` routes the survivors'
            # grown requirements through the weighted-bounds migration
            # path (hulls grow to the new blocks, only missing rows ship).
            reqs = self.plane.requirements(chunks)
            ship = self.plane.plan_section(
                reqs, migrated=rebalanced or absorb,
                recovery=attempt > 0,
            )
            if ship is not None and attempt > 0:
                # Bytes shipped again because a crash invalidated
                # placement: recovery traffic, not steady-state traffic.
                reshipped += ship.stats["input_bytes"]

            def rank_body(comm: Comm):
                if ship is None:
                    my_chunk = _distribute_chunks(comm, chunks)
                    store_cm = bind_store(None)
                else:
                    my_chunk = _distribute_plane_chunks(
                        comm, chunks, ship.ops, self.plane
                    )
                    store_cm = self.plane.bound_store(comm.rank)
                with store_cm:
                    with _obs_span(
                        "kernel", "node_execute", rank=comm.rank,
                        clock=comm.clock,
                    ) as ksp:
                        result, makespan, gc_time = self._node_execute(
                            my_chunk, spec, cores
                        )
                        comm.compute(makespan)
                        ksp.set(makespan=makespan, gc_time=gc_time)
                    comm.metrics.gc_time += gc_time  # already inside makespan
                    comm.alloc(_result_bytes(result))
                    if spec.kind == "reduce":
                        charged = _charged_combine(comm, spec.combine, costs)
                        return comm.reduce(result, charged, root=0)
                    gathered = comm.gather(result, root=0)
                    if comm.rank != 0:
                        return None
                    return _assemble_build(gathered, block_meta, partition)

            def rank_fn(comm: Comm):
                if self.transport.shared_heap:
                    return rank_body(comm)
                # Process-isolated rank: driver-global state mutated here
                # dies with the worker.  Tally into a rank-local meter and
                # capture the plan-cache delta, published through
                # rank_extras() -- installed at rank *start* so a crashed
                # rank's partial tallies still travel back to the driver.
                ext = rank_extras()
                local_meter = meter.CostMeter()
                if ext is not None:
                    ext["meter"] = local_meter
                mtok = _meter_sink.set(local_meter)
                psnap = planner.stats_snapshot()
                try:
                    return rank_body(comm)
                finally:
                    if ext is not None:
                        ext["planner"] = planner.stats_delta(psnap)
                    _meter_sink.reset(mtok)

            try:
                res = run_spmd(
                    machine,
                    rank_fn,
                    nranks=len(chunks),
                    ranks_per_node=self.machine.cores_per_node if flat else 1,
                    limits=self.limits,
                    alloc_cost=self.alloc,
                    wire_scale=self.costs.wire_scale,
                    faults=self.faults,
                    recovery=rec,
                    trace=obs is not None,
                    transport=self.transport,
                )
                if obs is not None and res.trace is not None:
                    obs.absorb_events(res.trace.events, osp)
                break
            except BaseException as exc:
                infos = getattr(exc, "rank_failures", None)
                crash_trace = getattr(exc, "trace_log", None)
                if obs is not None and crash_trace is not None:
                    # The failed attempt's messages and fault stamps stay
                    # visible in the trace, tied to the same section.
                    obs.absorb_events(crash_trace.events, osp)
                if not self.transport.shared_heap:
                    # A crashed attempt's completed-task tallies are real
                    # work; sim ranks merge as they run, so merge the
                    # partial extras the transport saved on the exception.
                    self._merge_rank_extras(getattr(exc, "rank_extras", None))
                rank_failed = infos is not None and all(
                    isinstance(i.error, RankFailure) for i in infos
                )
                permanent = [
                    i
                    for i in (infos or ())
                    if getattr(i.error, "permanent", False)
                ]
                recoverable = (
                    rec is not None
                    and rank_failed
                    and attempt < rec.max_reexecutions
                    and len(chunks) - len(infos) >= 1
                )
                if recoverable and self.budget is not None:
                    # Job-level budget: charged per recovery act, across
                    # sections.  Exhaustion beats further recovery.
                    try:
                        self.budget.charge_reexecution()
                        if permanent:
                            self.budget.charge_rank_losses(len(permanent))
                    except BudgetExhausted as bex:
                        self.recovery_report.failure = "budget"
                        raise bex from exc
                if not recoverable:
                    self.recovery_report.failure = classify_failure(exc)
                    if rank_failed and permanent:
                        # An unabsorbable permanent loss is a structured
                        # job failure, not a substrate error.
                        raise PermanentFault(str(exc)) from exc
                    raise
                # The crashed attempt ran until the failure; its
                # survivors' progress is discarded, its time is not.
                partial = getattr(exc, "recovery_report", None)
                if partial is not None:
                    partial.attempts = 1
                    if section_acc is None:
                        section_acc = RecoveryReport(attempts=0)
                    section_acc.merge(partial)
                if permanent:
                    # The machine shrank for good: later sections
                    # partition over the survivors only.
                    self.lost_ranks += len(permanent)
                    losses += len(permanent)
                if self.plane.has_state():
                    if permanent and rec.lineage_recovery:
                        # Elastic shrink: survivors keep their shards
                        # under renumbered ranks; only the dead ranks'
                        # intervals are marked for lineage replay and the
                        # next attempt re-ships just those rows.
                        self.plane.shrink([i.rank for i in infos])
                        absorb = True
                    else:
                        # Transient crash (the rank heals): every
                        # resident shard and cached slice is suspect (the
                        # re-partition also renumbers ranks), so the data
                        # plane forgets all placement.  The next attempt
                        # -- and later sections -- re-materialize from
                        # the master copy, and those bytes are attributed
                        # to recovery.
                        self.plane.invalidate()
                lost_time += max(i.vtime for i in infos) + rec.backoff(attempt)
                dead += len(infos)
                attempt += 1

        if not self.transport.shared_heap:
            # Section-boundary merge of rank-local state (sim ranks share
            # the heap and merged directly as they ran).
            self._merge_rank_extras(res.extras)
            if ship is not None:
                # Mirror the shipping ops into the driver-side rank
                # stores: forked workers applied them to fork-private
                # copies, and the next section's fork must inherit the
                # resident shards for zero-reship placement to hold.
                for dst, ops in enumerate(ship.ops):
                    if ops:
                        self.plane.worker_store(dst).apply(ops)

        makespan = lost_time + res.makespan
        # Section checkpointing: persist the output into the simulated
        # durable store, charging the write to the section's makespan
        # (ranks write their shares in parallel; durability is not free).
        ckpt_bytes = 0
        ckpt_dt = 0.0
        if ck is not None:
            nbytes = ck.store.maybe_put(ck.job, seq, res.root_result, ck.policy)
            if nbytes is not None:
                ckpt_bytes = nbytes
                ckpt_dt = ck.policy.write_seconds(nbytes, writers=len(chunks))
                makespan += ckpt_dt
                if obs is not None:
                    obs.instant(
                        "checkpoint", f"write s{seq}",
                        attrs={"bytes": nbytes, "seconds": ckpt_dt,
                               "job": ck.job, "seq": seq},
                    )
        # The section starts when the main rank reaches it.
        self.clock.advance(makespan)
        if ship is not None:
            # Section lineage: which handles fed this section (the replay
            # chain for shards lost to a later permanent rank loss).
            self.plane.record_section(seq, plan, reqs)
        section_report = None
        if (
            res.recovery is not None
            or section_acc is not None
            or reshipped
            or ckpt_bytes
        ):
            # Failed attempts' counters (crashes seen, time lost) belong
            # to the section alongside the successful attempt's.
            section_report = section_acc or RecoveryReport(attempts=0)
            if res.recovery is not None:
                section_report.merge(res.recovery)
            section_report.reexecuted_chunks = reexecuted
            section_report.added_time = lost_time
            section_report.reshipped_bytes = reshipped
            section_report.rank_losses = losses
            if ckpt_bytes:
                section_report.checkpoints = 1
                section_report.checkpoint_bytes = ckpt_bytes
                section_report.checkpoint_time = ckpt_dt
            if ship is not None:
                section_report.lineage_replays = ship.stats.get(
                    "lineage_replays", 0
                )
                section_report.replayed_bytes = ship.stats.get(
                    "replayed_bytes", 0
                )
                if absorb:
                    # The successful attempt's migrations are the
                    # survivors absorbing the lost rank's partition.
                    section_report.shrink_migrations = ship.stats.get(
                        "migrations", 0
                    )
                    section_report.shrink_migrated_bytes = ship.stats.get(
                        "migrated_bytes", 0
                    )
            self.recovery_report.merge(section_report)
        data_plane = None
        if ship is not None:
            data_plane = dict(ship.stats)
            if not partition.startswith("2d"):
                # Cost feedback: per-rank virtual compute time for the
                # blocks just executed feeds the rebalancer.
                self.plane.feedback(
                    block_meta,
                    [m.compute_time for m in res.metrics.per_rank],
                )
        self.sections.append(
            SectionRecord(
                label="par",
                kind=spec.kind,
                hint="par",
                nodes=len(chunks),
                cores=len(chunks) * cores,
                partition=partition,
                makespan=makespan,
                bytes_shipped=res.metrics.bytes_sent,
                messages=res.metrics.messages_sent,
                metrics=res.metrics,
                gc_time=res.metrics.gc_time,
                recovery=section_report,
                plan=plan,
                data_plane=data_plane,
                wall_seconds=(
                    res.wall_seconds if self.transport.wall_clock else 0.0
                ),
            )
        )
        osp.set(
            kind=spec.kind,
            partition=partition,
            nodes=len(chunks),
            attempts=attempt + 1,
            dead_ranks=dead,
            makespan=makespan,
            bytes_shipped=res.metrics.bytes_sent,
        )
        if self.transport.wall_clock:
            # Real transports also report measured elapsed time; the
            # virtual makespan above stays the cross-backend invariant.
            osp.set(wall_seconds=res.wall_seconds, transport=res.transport)
        if losses:
            osp.set(rank_losses=losses)
        if ckpt_bytes:
            osp.set(checkpoint_bytes=ckpt_bytes)
        if _SECTION_OBSERVERS:
            _notify_section(
                {
                    "runtime": self,
                    "record": self.sections[-1],
                    "iterator": it,
                    "partition": partition,
                    "bounds": block_meta,
                    "nchunks": len(chunks),
                    "ship": ship,
                    "spec": spec,
                    "attempts": attempt + 1,
                    "dead_ranks": dead,
                    "survivors": nranks_max - dead,
                    "rank_losses": losses,
                }
            )
        if self.budget is not None:
            # The deadline is program time: checked after the section's
            # ledger entry so a killed job still accounts consistently.
            try:
                self.budget.check_deadline(self.clock.now)
            except BudgetExhausted:
                self.recovery_report.failure = "budget"
                raise
        return res.root_result

    def _restore_section(
        self, seq: int, hit: tuple[Any, int], spec: ConsumeSpec, osp,
        nranks: int,
    ) -> Any:
        """Serve one distributed section from its durable checkpoint.

        The stored blob round-tripped through the real wire format, so
        the restored value is bit-identical to the computed one; only the
        durable read cost (ranks reading in parallel) reaches the clock.
        """
        value, nbytes = hit
        ck = self.checkpoint
        dt = ck.policy.read_seconds(nbytes, readers=nranks)
        obs = _obs_active()
        if obs is not None:
            obs.instant(
                "checkpoint", f"restore s{seq}",
                attrs={"bytes": nbytes, "seconds": dt, "job": ck.job,
                       "seq": seq},
            )
        self.clock.advance(dt)
        rep = RecoveryReport(attempts=0)
        rep.restores = 1
        rep.restored_bytes = nbytes
        rep.checkpoint_time = dt
        self.recovery_report.merge(rep)
        self.sections.append(
            SectionRecord(
                label="par-restore",
                kind=spec.kind,
                hint="par",
                nodes=1,
                cores=1,
                partition="checkpoint",
                makespan=dt,
                recovery=rep,
            )
        )
        osp.set(kind=spec.kind, partition="checkpoint", restored=True,
                makespan=dt)
        return value


def _distribute_chunks(comm: Comm, chunks: list[Iter]) -> Iter:
    """Main rank ships every node its sliced chunk (really serialized)."""
    if comm.rank == 0:
        for dst in range(1, comm.size):
            comm.send(chunks[dst], dst, _CHUNK_TAG)
        return chunks[0]
    return comm.recv(0, _CHUNK_TAG)


def _distribute_plane_chunks(
    comm: Comm, chunks: list[Iter], ops: list[list], plane: DataPlane
) -> Iter:
    """Ship each rank its chunk plus its data-plane shipping ops.

    The chunk's handle-backed sources serialize as ids (a few bytes);
    the ops carry the rows a rank is actually missing -- nothing when the
    section's requirements are already resident, which is what makes the
    second compatible section ship zero input bytes.  Still one message
    per rank on the same tag, so message counts match the legacy path.
    """
    if comm.rank == 0:
        for dst in range(1, comm.size):
            comm.send((ops[dst], chunks[dst]), dst, _CHUNK_TAG)
        return chunks[0]
    my_ops, chunk = comm.recv(0, _CHUNK_TAG)
    if my_ops:
        plane.worker_store(comm.rank).apply(my_ops)
    return chunk


def _charged_combine(comm: Comm, combine, costs: CostContext):
    """Wrap a combine so each tree-reduction hop pays its compute cost."""

    def charged(a, b):
        comm.compute(costs.combine_seconds(_elements_of(b)))
        return combine(a, b)

    return charged


def _result_bytes(result: Any) -> int:
    if isinstance(result, np.ndarray):
        return result.size * result.dtype.itemsize
    return transitive_size(result)


def _concat_build(partials: list[Any]) -> Any:
    """Concatenate consecutive outer-block build partials."""
    if len(partials) == 1:
        return partials[0]
    if all(isinstance(p, np.ndarray) for p in partials):
        # Nested (variable-length) blocks whose elements were all
        # filtered out materialize as 0-element 1-D arrays whatever the
        # element shape, so ragged ndims can appear next to (k, ...)
        # blocks and a plain concatenate raises.  Only then drop the
        # empty partials (value-preserving; all-empty matches the
        # sequential result).  Rectangular partials of equal ndim --
        # including legitimately empty (0, w) row blocks -- concatenate
        # unfiltered so degenerate domain extents survive.
        if len({p.ndim for p in partials}) > 1:
            partials = [p for p in partials if p.size] or partials[:1]
        if len(partials) == 1:
            return partials[0]
        return np.concatenate(partials, axis=0)
    out = []
    for p in partials:
        out.extend(p)
    return out


def _assemble_build(gathered: list[Any], block_meta, partition: str) -> Any:
    """Assemble per-node build partials at the root."""
    if partition.startswith("2d"):
        # gathered[k] is the (rows x cols[, elem...]) block for
        # block_meta[k], row-major over the process grid.  Concatenate
        # explicitly along the two *domain* axes -- np.block joins along
        # the trailing axes, which scrambles element values that are
        # themselves arrays (pair-valued builds).
        # A zero-size block has no elements to infer the element shape
        # from, so it arrives as a bare (rows x cols) array even when the
        # elements are themselves arrays; restore the trailing dims from
        # any non-empty block before concatenating.
        proto = next((g for g in gathered if g.size), None)
        if proto is not None and proto.ndim > 2:
            gathered = [
                g.reshape(g.shape[:2] + proto.shape[2:])
                if g.size == 0 and g.ndim < proto.ndim
                else g
                for g in gathered
            ]
        row_starts = sorted({r[0] for r, _c in block_meta})
        grid_rows: list[np.ndarray] = []
        for rs in row_starts:
            row_blocks = [
                g
                for g, (r, _c) in zip(gathered, block_meta)
                if r[0] == rs
            ]
            grid_rows.append(
                row_blocks[0]
                if len(row_blocks) == 1
                else np.concatenate(row_blocks, axis=1)
            )
        if len(grid_rows) == 1:
            return grid_rows[0]
        return np.concatenate(grid_rows, axis=0)
    return _concat_build(gathered)


@contextmanager
def triolet_runtime(
    machine: MachineSpec,
    costs: CostContext | None = None,
    alloc: AllocatorModel = BOEHM_GC,
    limits: RuntimeLimits = UNLIMITED,
    task_grain: int = 4,
    topology: str = "two-level",
    scheduler: str = "worksteal",
    faults: FaultPlan | None = None,
    recovery: RecoveryPolicy | None = DEFAULT_RECOVERY,
    plane: DataPlane | None = None,
    budget: FailureBudget | None = None,
    checkpoint: CheckpointConfig | None = None,
    transport=None,
    planner_state=None,
):
    """Install a :class:`TrioletRuntime` as the skeleton executor."""
    rt = TrioletRuntime(
        machine,
        costs=costs,
        alloc=alloc,
        limits=limits,
        task_grain=task_grain,
        topology=topology,
        scheduler=scheduler,
        faults=faults,
        recovery=recovery,
        plane=plane,
        budget=budget,
        checkpoint=checkpoint,
        transport=transport,
        planner_state=planner_state,
    )
    with use_executor(rt), use_costs(rt.costs):
        yield rt
