"""Intra-node schedulers (virtual-time makespan models).

Triolet's runtime "uses Threading Building Blocks for thread parallelism"
-- i.e. dynamic work stealing within a node -- while the C+OpenMP
baseline uses static ``parallel for`` scheduling.  Both are modelled as
makespan computations over per-task virtual durations: tasks really
execute (sequentially, producing real results and real meters); only the
overlap is modelled.

``work_stealing_makespan`` is greedy list scheduling (earliest-free core
takes the next task plus a steal overhead) -- within a factor of 2 of
optimal (Graham) and an accurate model of TBB-style deques for the task
counts these benchmarks produce.
"""
from __future__ import annotations

import heapq
from typing import Sequence


def work_stealing_makespan(
    durations: Sequence[float],
    cores: int,
    steal_overhead: float = 0.0,
    spawn_overhead: float = 0.0,
) -> float:
    """Makespan of dynamic (work-stealing) execution of *durations*."""
    if cores < 1:
        raise ValueError(f"need at least one core, got {cores}")
    if any(d < 0 for d in durations):
        raise ValueError("negative task duration")
    if not durations:
        return spawn_overhead
    # Earliest-free-core list scheduling in task order (a work-stealing
    # deque serves tasks approximately in order under contention).
    free = [0.0] * min(cores, len(durations))
    heapq.heapify(free)
    for d in durations:
        t = heapq.heappop(free)
        heapq.heappush(free, t + steal_overhead + d)
    return max(free) + spawn_overhead


def static_for_makespan(
    durations: Sequence[float],
    cores: int,
    barrier_overhead: float = 0.0,
) -> float:
    """Makespan of an OpenMP-style static ``parallel for``.

    Tasks are pre-assigned in contiguous blocks; imbalance is not
    recovered (the reason dynamic scheduling wins on irregular loops).
    """
    if cores < 1:
        raise ValueError(f"need at least one core, got {cores}")
    n = len(durations)
    if n == 0:
        return barrier_overhead
    worst = 0.0
    for k in range(cores):
        lo, hi = n * k // cores, n * (k + 1) // cores
        worst = max(worst, sum(durations[lo:hi]))
    return worst + barrier_overhead
