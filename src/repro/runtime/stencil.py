"""The ``stencil`` skeleton: iterative halo-exchange over a resident array.

A radius-``r`` stencil updates row ``i`` from rows ``[i-r, i+r]``.  Run
distributed, each rank owns one block of rows (the same block partition
as any other section, so the array's resident placement is reused), and
needs ``r`` *ghost* rows beyond each block edge per iteration -- the halo.
The data plane places halos as ghost-flagged slice-cache entries
(:meth:`~repro.data.plane.DataPlane.plan_stencil`), so:

* iteration 1 ships each rank its block (ordinary placement) plus its
  ghost rows;
* iteration ``k >= 2`` ships **zero interior bytes** (resident hits) and
  only the *dirty* halos -- ghost intervals whose rows were overwritten
  by the previous iteration.  Ghosts covering never-written boundary
  rows stay fresh indefinitely and keep serving halo hits;
* a transient ``RankCrash`` invalidates placement; a permanent
  ``RankLoss`` shrinks the plane, and the retry re-materializes interiors
  through the same lineage-replay path as every other section.  The
  master copy only ever holds *completed* iterations (updates commit
  after a successful attempt), so any retry re-reads exactly the state
  the failed attempt read -- recovery is bit-identical by construction.

Boundary semantics are Dirichlet: rows within ``radius`` of either array
edge are held fixed, so every padded read window sits inside the array.

The kernel contract is vectorized-NumPy: ``kernel(xpad)`` receives the
rank's padded row window (its writable rows plus ``radius`` rows of
context on each side) and returns the updated writable rows, i.e. an
array of ``len(xpad) - 2 * radius`` rows.  For 1-D heat::

    rt.stencil(h, radius=1, kernel=lambda x: 0.5 * (x[:-2] + x[2:]),
               iterations=50)

Job-level :class:`~repro.runtime.recovery.FailureBudget` charging and
section checkpointing are not wired into stencil sections (they are
per-pipeline features of the driver's consume path); the fault /
recovery machinery itself is shared.
"""
from __future__ import annotations

import numpy as np

from repro.cluster.comm import Comm
from repro.cluster.faults import RankFailure
from repro.cluster.process import run_spmd
from repro.cluster.transport import rank_extras
from repro.core import meter
from repro.core.fusion import planner
from repro.core.iterators.transforms import iterate
from repro.obs.spans import active as _obs_active, obs_span as _obs_span
from repro.partition import block_bounds
from repro.runtime.driver import (
    _CHUNK_TAG,
    SectionRecord,
    _meter_sink,
    _notify_section,
    _SECTION_OBSERVERS,
)
from repro.runtime.recovery import (
    PermanentFault,
    RecoveryReport,
    classify_failure,
)


def run_stencil(rt, handle, radius: int, kernel, iterations: int = 1,
                label: str = "stencil"):
    """Execute *iterations* stencil sweeps over *handle* on runtime *rt*.

    *handle* may be a plain ndarray (distributed on first use) or an
    existing :class:`~repro.data.handle.DistArray`.  Returns the handle;
    its master copy holds the final state.
    """
    if radius < 1:
        raise ValueError(f"stencil radius must be >= 1, got {radius}")
    if iterations < 0:
        raise ValueError(f"iterations must be >= 0, got {iterations}")
    handle = rt.plane.register(handle)
    for _ in range(iterations):
        _one_iteration(rt, handle, radius, kernel, label)
    return handle


def _one_iteration(rt, handle, radius: int, kernel, label: str) -> None:
    """One sweep: one distributed section with its own attempt loop."""
    obs = _obs_active()
    aid = handle.array_id
    n = len(handle)
    row_nbytes = handle.row_nbytes()
    flat = rt.topology == "flat"
    nranks_max = max(
        1,
        (
            rt.machine.nodes * rt.machine.cores_per_node
            if flat
            else rt.machine.nodes
        )
        - rt.lost_ranks,
    )
    cores = 1 if flat else rt.machine.cores_per_node
    seq = rt._dist_seq
    rt._dist_seq += 1
    if rt.faults is not None:
        rt.faults.begin_section(seq)
    rec = rt.recovery

    with _obs_span("section", label, clock=rt.clock) as osp:
        attempt = 0
        dead = 0
        lost_time = 0.0
        reexecuted = 0
        reshipped = 0
        losses = 0
        absorb = False
        section_acc: RecoveryReport | None = None
        while True:
            nchunks = max(1, min(nranks_max - dead, n))
            bounds = block_bounds(n, nchunks)
            if attempt > 0:
                reexecuted += nchunks
            ship = rt.plane.plan_stencil(
                aid, bounds, radius,
                migrated=absorb, recovery=attempt > 0,
            )
            if attempt > 0:
                reshipped += ship.stats["input_bytes"]
            rank_fn = _make_rank_fn(rt, handle, aid, n, radius, kernel,
                                    bounds, ship.ops)
            try:
                res = run_spmd(
                    rt.machine,
                    rank_fn,
                    nranks=nchunks,
                    ranks_per_node=rt.machine.cores_per_node if flat else 1,
                    limits=rt.limits,
                    alloc_cost=rt.alloc,
                    wire_scale=rt.costs.wire_scale,
                    faults=rt.faults,
                    recovery=rec,
                    trace=obs is not None,
                    transport=rt.transport,
                )
                if obs is not None and res.trace is not None:
                    obs.absorb_events(res.trace.events, osp)
                break
            except BaseException as exc:
                infos = getattr(exc, "rank_failures", None)
                crash_trace = getattr(exc, "trace_log", None)
                if obs is not None and crash_trace is not None:
                    obs.absorb_events(crash_trace.events, osp)
                if not rt.transport.shared_heap:
                    rt._merge_rank_extras(getattr(exc, "rank_extras", None))
                rank_failed = infos is not None and all(
                    isinstance(i.error, RankFailure) for i in infos
                )
                permanent = [
                    i
                    for i in (infos or ())
                    if getattr(i.error, "permanent", False)
                ]
                recoverable = (
                    rec is not None
                    and rank_failed
                    and attempt < rec.max_reexecutions
                    and nchunks - len(infos) >= 1
                )
                if not recoverable:
                    rt.recovery_report.failure = classify_failure(exc)
                    if rank_failed and permanent:
                        raise PermanentFault(str(exc)) from exc
                    raise
                partial = getattr(exc, "recovery_report", None)
                if partial is not None:
                    partial.attempts = 1
                    if section_acc is None:
                        section_acc = RecoveryReport(attempts=0)
                    section_acc.merge(partial)
                if permanent:
                    rt.lost_ranks += len(permanent)
                    losses += len(permanent)
                if rt.plane.has_state():
                    if permanent and rec.lineage_recovery:
                        # Elastic shrink: survivors keep their shards;
                        # the retry's plan re-materializes only the lost
                        # rows (and re-grows hulls to the new, wider
                        # blocks through the migration path).
                        rt.plane.shrink([i.rank for i in infos])
                        absorb = True
                    else:
                        # Transient crash: all placement state is
                        # suspect; the retry re-places from the master,
                        # which still holds the *previous* iteration
                        # (updates commit only on success), so the retry
                        # reads exactly what the dead attempt read.
                        rt.plane.invalidate()
                lost_time += max(i.vtime for i in infos) + rec.backoff(attempt)
                dead += len(infos)
                attempt += 1

        if not rt.transport.shared_heap:
            rt._merge_rank_extras(res.extras)
            # Forked workers applied shipping ops to fork-private store
            # copies; mirror them so the next iteration's plan sees the
            # resident shards and fresh ghosts.
            for dst, ops in enumerate(ship.ops):
                if ops:
                    rt.plane.worker_store(dst).apply(ops)

        # Commit the completed sweep: master write, rank-store interior
        # mirror (zero wire cost -- each rank computed its own rows),
        # hull reset, and dirty-ghost invalidation.
        rt.plane.commit_stencil(aid, bounds, res.root_result)
        reqs = [{aid: [lo, hi, False]} for lo, hi in bounds]
        rt.plane.record_section(seq, None, reqs)

        makespan = lost_time + res.makespan
        rt.clock.advance(makespan)

        section_report = None
        if res.recovery is not None or section_acc is not None or reshipped:
            section_report = section_acc or RecoveryReport(attempts=0)
            if res.recovery is not None:
                section_report.merge(res.recovery)
            section_report.reexecuted_chunks = reexecuted
            section_report.added_time = lost_time
            section_report.reshipped_bytes = reshipped
            section_report.rank_losses = losses
            section_report.lineage_replays = ship.stats.get(
                "lineage_replays", 0
            )
            section_report.replayed_bytes = ship.stats.get(
                "replayed_bytes", 0
            )
            if absorb:
                section_report.shrink_migrations = ship.stats.get(
                    "migrations", 0
                )
                section_report.shrink_migrated_bytes = ship.stats.get(
                    "migrated_bytes", 0
                )
            rt.recovery_report.merge(section_report)

        partition = f"1d x{nchunks} halo r{radius}"
        rt.sections.append(
            SectionRecord(
                label=label,
                kind="stencil",
                hint="par",
                nodes=nchunks,
                cores=nchunks * cores,
                partition=partition,
                makespan=makespan,
                bytes_shipped=res.metrics.bytes_sent,
                messages=res.metrics.messages_sent,
                metrics=res.metrics,
                gc_time=res.metrics.gc_time,
                recovery=section_report,
                data_plane=dict(ship.stats),
                wall_seconds=(
                    res.wall_seconds if rt.transport.wall_clock else 0.0
                ),
            )
        )
        osp.set(
            kind="stencil",
            partition=partition,
            nodes=nchunks,
            attempts=attempt + 1,
            dead_ranks=dead,
            makespan=makespan,
            bytes_shipped=res.metrics.bytes_sent,
            radius=radius,
            halo_bytes=ship.stats["halo_bytes"],
        )
        if losses:
            osp.set(rank_losses=losses)
        if _SECTION_OBSERVERS:
            _notify_section(
                {
                    "runtime": rt,
                    "record": rt.sections[-1],
                    "iterator": iterate(handle),
                    "partition": partition,
                    "bounds": bounds,
                    "nchunks": nchunks,
                    "ship": ship,
                    "spec": None,
                    "attempts": attempt + 1,
                    "dead_ranks": dead,
                    "survivors": nranks_max - dead,
                    "rank_losses": losses,
                    "halo": {
                        "aid": aid,
                        "radius": radius,
                        "row_nbytes": row_nbytes,
                    },
                }
            )
    rt._obs_section()


def _make_rank_fn(rt, handle, aid: int, n: int, radius: int, kernel,
                  bounds, ops):
    """Build the per-rank body for one stencil sweep.

    Rank 0 reads the master copy (which holds the previous iteration);
    other ranks assemble their padded window from resident block rows
    plus ghost cache entries.  Every rank returns its ``(wlo, whi, rows)``
    update, gathered at the root for the driver-side commit.
    """
    plane = rt.plane
    costs = rt.costs
    elem_shape = handle.array.shape[1:]
    dtype = handle.array.dtype

    def rank_body(comm: Comm):
        if comm.rank == 0:
            for dst in range(1, comm.size):
                comm.send((ops[dst], bounds[dst]), dst, _CHUNK_TAG)
            blo, bhi = bounds[0]
        else:
            my_ops, (blo, bhi) = comm.recv(0, _CHUNK_TAG)
            if my_ops:
                plane.worker_store(comm.rank).apply(my_ops)
        # Dirichlet boundaries: rows within ``radius`` of either array
        # edge are fixed, so the writable range clamps to them and the
        # padded read window always sits inside [0, n).
        wlo, whi = max(blo, radius), min(bhi, n - radius)
        with _obs_span(
            "kernel", "stencil_kernel", rank=comm.rank, clock=comm.clock
        ) as ksp:
            if whi > wlo:
                rlo, rhi = wlo - radius, whi + radius
                if comm.rank == 0:
                    xpad = handle.array[rlo:rhi]
                else:
                    store = plane.worker_store(comm.rank)
                    parts = []
                    if rlo < blo:
                        parts.append(store.view(aid, rlo, blo))
                    parts.append(store.view(aid, max(rlo, blo),
                                            min(rhi, bhi)))
                    if rhi > bhi:
                        parts.append(store.view(aid, bhi, rhi))
                    xpad = (
                        parts[0]
                        if len(parts) == 1
                        else np.concatenate(parts, axis=0)
                    )
                with meter.metered() as m:
                    meter.tally_visits(whi - wlo)
                    rows = np.asarray(kernel(xpad))
                if len(rows) != whi - wlo:
                    raise ValueError(
                        f"stencil kernel returned {len(rows)} rows for a "
                        f"{whi - wlo}-row writable window (input was "
                        f"{rhi - rlo} padded rows, radius {radius})"
                    )
                rt._merge_meter(m)
                dt = costs.task_seconds(m)
            else:
                rows = np.empty((0,) + elem_shape, dtype=dtype)
                dt = 0.0
            comm.compute(dt)
            ksp.set(makespan=dt, rows=int(whi - wlo))
        comm.alloc(rows.nbytes)
        gathered = comm.gather((wlo, whi, rows), root=0)
        return gathered if comm.rank == 0 else None

    def rank_fn(comm: Comm):
        if rt.transport.shared_heap:
            return rank_body(comm)
        ext = rank_extras()
        local_meter = meter.CostMeter()
        if ext is not None:
            ext["meter"] = local_meter
        mtok = _meter_sink.set(local_meter)
        psnap = planner.stats_snapshot()
        try:
            return rank_body(comm)
        finally:
            if ext is not None:
                ext["planner"] = planner.stats_delta(psnap)
            _meter_sink.reset(mtok)

    return rank_fn
