"""Fault tolerance for the Triolet runtime (policy + accounting).

The cluster substrate (:mod:`repro.cluster.faults`) *injects* faults;
this module decides what the runtime does about them:

* **retry** -- transient send failures are retried with capped
  exponential backoff charged to the sender's virtual clock;
* **re-execution** -- when an injected :class:`~repro.cluster.faults.
  RankFailure` kills a rank mid-section, the driver re-partitions the
  section's iterator across the surviving ranks and re-executes it.  The
  paper's sliceable data sources (§3.5) make this cheap to express: a
  replacement rank re-extracts exactly the slice it needs, no
  checkpointing required;
* **graceful degradation** -- a message rejected by the runtime's
  byte cap (:class:`~repro.cluster.limits.BufferOverflowError`) is
  fragmented into limit-sized pieces instead of failing the run.  The
  Eden baseline installs no policy, so it keeps failing exactly as in
  Fig. 5;
* **speculation** -- a straggled task overrunning its ``task_timeout``
  is capped by a backup copy on a healthy core (Hadoop-style).

Every decision is deterministic: backoffs are a pure function of the
attempt number, re-execution of the re-sliced sections recomputes the
same numbers, and the added virtual time is reported, not hidden.
"""
from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.metrics import RunMetrics

__all__ = ["RecoveryPolicy", "RecoveryReport", "DEFAULT_RECOVERY", "NO_RECOVERY"]


@dataclass(frozen=True)
class RecoveryPolicy:
    """What the runtime is allowed to do when a fault fires.

    The policy is consulted *only* when a fault or limit actually fires,
    so installing one on a fault-free run leaves the virtual timeline
    bit-identical (the zero-cost-when-disabled guarantee).
    """

    #: retries per send after a transient failure before giving up
    max_retries: int = 4
    #: first backoff (virtual seconds); doubles per attempt
    backoff_base: float = 1e-4
    #: backoff ceiling (virtual seconds)
    backoff_cap: float = 5e-3
    #: fragment messages rejected by the runtime's byte cap
    fragment: bool = True
    #: virtual seconds a straggled task may overrun its normal duration
    #: before a speculative backup copy caps it; ``None`` disables
    task_timeout: float | None = 0.05
    #: how many times a distributed section may be re-executed after
    #: rank crashes before the failure is propagated
    max_reexecutions: int = 2

    def backoff(self, attempt: int) -> float:
        """Capped exponential backoff for 0-based *attempt*."""
        return min(self.backoff_base * (2.0**attempt), self.backoff_cap)


#: The Triolet runtime's default posture: retry, fragment, speculate.
DEFAULT_RECOVERY = RecoveryPolicy()

#: Explicitly no tolerance (the Eden posture, for ablations).
NO_RECOVERY: RecoveryPolicy | None = None


@dataclass
class RecoveryReport:
    """What faults a run saw and what recovering from them cost.

    Attached to :class:`~repro.cluster.process.SpmdResult` whenever a
    fault plan or recovery policy is installed, and accumulated across
    sections on :class:`~repro.runtime.driver.TrioletRuntime`.
    """

    #: injected faults by kind: delay / send / crash / straggler
    faults: dict[str, int] = field(default_factory=dict)
    retries: int = 0
    backoff_time: float = 0.0
    reexecuted_chunks: int = 0
    rejected_messages: int = 0
    fragmented_messages: int = 0
    fragments_sent: int = 0
    speculations: int = 0
    straggler_time: float = 0.0
    #: virtual seconds lost to failed attempts + re-execution backoff
    added_time: float = 0.0
    #: data-plane bytes shipped again because a crash invalidated
    #: resident placement (recovery traffic, not steady-state traffic)
    reshipped_bytes: int = 0
    #: section execution attempts (1 = no re-execution was needed)
    attempts: int = 1

    @classmethod
    def from_run(cls, metrics: RunMetrics) -> "RecoveryReport":
        """Fold one SPMD run's fault counters into a report."""
        return cls(
            faults={k: v for k, v in metrics.fault_counts().items() if v},
            retries=metrics.send_retries,
            backoff_time=metrics.backoff_time,
            rejected_messages=metrics.messages_rejected,
            fragmented_messages=metrics.messages_fragmented,
            fragments_sent=metrics.fragments_sent,
            speculations=metrics.speculations,
            straggler_time=metrics.straggler_time,
        )

    @property
    def total_faults(self) -> int:
        return sum(self.faults.values())

    def merge(self, other: "RecoveryReport") -> None:
        """Accumulate *other* into this report (all counters add up; an
        accumulator should therefore start with ``attempts=0``)."""
        for k, v in other.faults.items():
            self.faults[k] = self.faults.get(k, 0) + v
        self.retries += other.retries
        self.backoff_time += other.backoff_time
        self.reexecuted_chunks += other.reexecuted_chunks
        self.rejected_messages += other.rejected_messages
        self.fragmented_messages += other.fragmented_messages
        self.fragments_sent += other.fragments_sent
        self.speculations += other.speculations
        self.straggler_time += other.straggler_time
        self.added_time += other.added_time
        self.reshipped_bytes += other.reshipped_bytes
        self.attempts += other.attempts

    def describe(self) -> str:
        """Human-readable summary (used by examples and reports)."""
        fault_str = (
            ", ".join(f"{k}={v}" for k, v in sorted(self.faults.items()))
            or "none"
        )
        lines = [
            f"faults injected: {fault_str}",
            f"send retries: {self.retries} "
            f"(backoff {self.backoff_time * 1e3:.3f}ms)",
            f"re-executed chunks: {self.reexecuted_chunks} "
            f"over {self.attempts} attempt(s)",
            f"data-plane bytes re-shipped for recovery: "
            f"{self.reshipped_bytes:,}",
            f"messages rejected/fragmented: {self.rejected_messages}/"
            f"{self.fragmented_messages} ({self.fragments_sent} fragments)",
            f"speculative backups: {self.speculations} "
            f"(straggler time {self.straggler_time * 1e3:.3f}ms)",
            f"virtual time added by faults & recovery: "
            f"{self.added_time * 1e3:.3f}ms",
        ]
        return "\n".join(lines)
