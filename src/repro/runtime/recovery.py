"""Fault tolerance for the Triolet runtime (policy + accounting).

The cluster substrate (:mod:`repro.cluster.faults`) *injects* faults;
this module decides what the runtime does about them:

* **retry** -- transient send failures are retried with capped
  exponential backoff charged to the sender's virtual clock;
* **re-execution** -- when an injected :class:`~repro.cluster.faults.
  RankFailure` kills a rank mid-section, the driver re-partitions the
  section's iterator across the surviving ranks and re-executes it.  The
  paper's sliceable data sources (§3.5) make this cheap to express: a
  replacement rank re-extracts exactly the slice it needs, no
  checkpointing required;
* **graceful degradation** -- a message rejected by the runtime's
  byte cap (:class:`~repro.cluster.limits.BufferOverflowError`) is
  fragmented into limit-sized pieces instead of failing the run.  The
  Eden baseline installs no policy, so it keeps failing exactly as in
  Fig. 5;
* **speculation** -- a straggled task overrunning its ``task_timeout``
  is capped by a backup copy on a healthy core (Hadoop-style);
* **elastic shrink** -- a *permanent* rank loss
  (:class:`~repro.cluster.faults.RankLoss`) shrinks the machine: the
  data plane renumbers surviving shards and absorbs the lost rank's
  partition through the weighted-bounds migration path, and every later
  section runs degraded on the survivors;
* **failure taxonomy & budgets** -- when the runtime gives up, the
  terminal error is classified (:class:`TransientFault` /
  :class:`PermanentFault` / :class:`BudgetExhausted`), and an optional
  :class:`FailureBudget` bounds the whole *job*: a virtual-time
  deadline, a job-wide re-execution budget, and a cap on absorbed rank
  losses.

Every decision is deterministic: backoffs are a pure function of the
attempt number, re-execution of the re-sliced sections recomputes the
same numbers, and the added virtual time is reported, not hidden.
"""
from __future__ import annotations

from dataclasses import dataclass, field, fields

from repro.cluster.faults import RankFailure, TransientSendError
from repro.cluster.metrics import RunMetrics

__all__ = [
    "RecoveryPolicy",
    "RecoveryReport",
    "DEFAULT_RECOVERY",
    "NO_RECOVERY",
    "FailureBudget",
    "JobFailure",
    "TransientFault",
    "PermanentFault",
    "BudgetExhausted",
    "classify_failure",
]


@dataclass(frozen=True)
class RecoveryPolicy:
    """What the runtime is allowed to do when a fault fires.

    The policy is consulted *only* when a fault or limit actually fires,
    so installing one on a fault-free run leaves the virtual timeline
    bit-identical (the zero-cost-when-disabled guarantee).
    """

    #: retries per send after a transient failure before giving up
    max_retries: int = 4
    #: first backoff (virtual seconds); doubles per attempt
    backoff_base: float = 1e-4
    #: backoff ceiling (virtual seconds)
    backoff_cap: float = 5e-3
    #: fragment messages rejected by the runtime's byte cap
    fragment: bool = True
    #: virtual seconds a straggled task may overrun its normal duration
    #: before a speculative backup copy caps it; ``None`` disables
    task_timeout: float | None = 0.05
    #: how many times a distributed section may be re-executed after
    #: rank crashes before the failure is propagated
    max_reexecutions: int = 2
    #: on a *permanent* rank loss, shrink the data plane (survivors keep
    #: their shards, the lost shard re-materializes from lineage) instead
    #: of dropping all placement and re-shipping everything
    lineage_recovery: bool = True

    def backoff(self, attempt: int) -> float:
        """Capped exponential backoff for 0-based *attempt*."""
        return min(self.backoff_base * (2.0**attempt), self.backoff_cap)


#: The Triolet runtime's default posture: retry, fragment, speculate.
DEFAULT_RECOVERY = RecoveryPolicy()

#: Explicitly no tolerance (the Eden posture, for ablations).
NO_RECOVERY: RecoveryPolicy | None = None


# -- failure taxonomy --------------------------------------------------------


class JobFailure(RuntimeError):
    """Base of the structured failure taxonomy.

    When the runtime exhausts its tolerance it raises (or chains) one of
    the three leaf classes so callers can branch on *why* the job died
    rather than on substrate exception types.  ``kind`` is the stable
    string surfaced through :attr:`RecoveryReport.failure`.
    """

    kind = "unknown"


class TransientFault(JobFailure):
    """A retryable fault survived every retry (e.g. a send failure burst
    longer than the retry budget).  Rerunning the job could succeed."""

    kind = "transient"


class PermanentFault(JobFailure):
    """A permanent rank loss the runtime could not absorb (no recovery
    policy, no survivors, or re-execution budget exhausted)."""

    kind = "permanent"


class BudgetExhausted(JobFailure):
    """The job-level :class:`FailureBudget` ran out: deadline passed,
    job-wide re-executions spent, or too many rank losses absorbed."""

    kind = "budget"


def classify_failure(exc: BaseException) -> str:
    """Map an escaped exception onto the taxonomy's ``kind`` string."""
    seen = set()
    e: BaseException | None = exc
    while e is not None and id(e) not in seen:
        seen.add(id(e))
        if isinstance(e, JobFailure):
            return e.kind
        if isinstance(e, RankFailure):
            return "permanent" if getattr(e, "permanent", False) else "transient"
        if isinstance(e, TransientSendError):
            return "transient"
        e = e.__cause__ or e.__context__
    return "unknown"


@dataclass
class FailureBudget:
    """Job-wide limits on how much failure a run may absorb.

    All limits are optional (``None`` = unlimited).  The driver charges
    the budget as it recovers; crossing any limit raises
    :class:`BudgetExhausted` instead of recovering further.  ``deadline``
    is in *virtual* seconds of program time.
    """

    deadline: float | None = None
    max_reexecutions: int | None = None
    max_rank_losses: int | None = None
    reexecutions_used: int = 0
    rank_losses_used: int = 0

    def charge_reexecution(self) -> None:
        self.reexecutions_used += 1
        if (
            self.max_reexecutions is not None
            and self.reexecutions_used > self.max_reexecutions
        ):
            raise BudgetExhausted(
                f"job re-execution budget exhausted "
                f"({self.reexecutions_used} > {self.max_reexecutions})"
            )

    def charge_rank_losses(self, n: int) -> None:
        self.rank_losses_used += n
        if (
            self.max_rank_losses is not None
            and self.rank_losses_used > self.max_rank_losses
        ):
            raise BudgetExhausted(
                f"rank-loss budget exhausted "
                f"({self.rank_losses_used} > {self.max_rank_losses})"
            )

    def check_deadline(self, now: float) -> None:
        if self.deadline is not None and now > self.deadline:
            raise BudgetExhausted(
                f"job deadline exceeded: virtual t={now:.6g}s > "
                f"{self.deadline:.6g}s"
            )


@dataclass
class RecoveryReport:
    """What faults a run saw and what recovering from them cost.

    Attached to :class:`~repro.cluster.process.SpmdResult` whenever a
    fault plan or recovery policy is installed, and accumulated across
    sections on :class:`~repro.runtime.driver.TrioletRuntime`.
    """

    #: injected faults by kind: delay / send / crash / straggler
    faults: dict[str, int] = field(default_factory=dict)
    retries: int = 0
    backoff_time: float = 0.0
    reexecuted_chunks: int = 0
    rejected_messages: int = 0
    fragmented_messages: int = 0
    fragments_sent: int = 0
    speculations: int = 0
    straggler_time: float = 0.0
    #: virtual seconds lost to failed attempts + re-execution backoff
    added_time: float = 0.0
    #: data-plane bytes shipped again because a crash invalidated
    #: resident placement (recovery traffic, not steady-state traffic)
    reshipped_bytes: int = 0
    #: section execution attempts (1 = no re-execution was needed)
    attempts: int = 1
    #: permanent rank losses absorbed by elastic shrink
    rank_losses: int = 0
    #: lost shards re-materialized by replaying their lineage chain
    lineage_replays: int = 0
    #: bytes of those replays (the selective part of reshipped_bytes)
    replayed_bytes: int = 0
    #: boundary migrations planned to absorb lost ranks' partitions
    shrink_migrations: int = 0
    shrink_migrated_bytes: int = 0
    #: section outputs written to the simulated durable store
    checkpoints: int = 0
    checkpoint_bytes: int = 0
    #: sections restored from the durable store instead of re-running
    restores: int = 0
    restored_bytes: int = 0
    #: virtual seconds spent on durable-store writes and reads
    checkpoint_time: float = 0.0
    #: terminal classification ("transient" | "permanent" | "budget")
    #: when the job died; ``None`` while it is healthy
    failure: str | None = None

    @classmethod
    def from_run(cls, metrics: RunMetrics) -> "RecoveryReport":
        """Fold one SPMD run's fault counters into a report."""
        return cls(
            faults={k: v for k, v in metrics.fault_counts().items() if v},
            retries=metrics.send_retries,
            backoff_time=metrics.backoff_time,
            rejected_messages=metrics.messages_rejected,
            fragmented_messages=metrics.messages_fragmented,
            fragments_sent=metrics.fragments_sent,
            speculations=metrics.speculations,
            straggler_time=metrics.straggler_time,
        )

    @property
    def total_faults(self) -> int:
        return sum(self.faults.values())

    def merge(self, other: "RecoveryReport") -> None:
        """Accumulate *other* into this report (all counters add up; an
        accumulator should therefore start with ``attempts=0``).

        Field-generic on purpose: an earlier version enumerated counters
        by hand and silently dropped newly added ones, so merged reports
        disagreed with a report over the concatenated runs.  Every
        numeric dataclass field now participates automatically; only the
        fault histogram and the terminal classification need bespoke
        rules (latest non-``None`` classification wins).
        """
        for k, v in other.faults.items():
            self.faults[k] = self.faults.get(k, 0) + v
        for f in fields(self):
            if f.name in ("faults", "failure"):
                continue
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))
        if other.failure is not None:
            self.failure = other.failure

    def describe(self) -> str:
        """Human-readable summary (used by examples and reports)."""
        fault_str = (
            ", ".join(f"{k}={v}" for k, v in sorted(self.faults.items()))
            or "none"
        )
        lines = [
            f"faults injected: {fault_str}",
            f"send retries: {self.retries} "
            f"(backoff {self.backoff_time * 1e3:.3f}ms)",
            f"re-executed chunks: {self.reexecuted_chunks} "
            f"over {self.attempts} attempt(s)",
            f"data-plane bytes re-shipped for recovery: "
            f"{self.reshipped_bytes:,}",
            f"permanent rank losses absorbed: {self.rank_losses} "
            f"(lineage replays: {self.lineage_replays}, "
            f"{self.replayed_bytes:,} bytes; shrink migrations: "
            f"{self.shrink_migrations}, {self.shrink_migrated_bytes:,} bytes)",
            f"checkpoints written/restored: {self.checkpoints}"
            f"/{self.restores} ({self.checkpoint_bytes:,}"
            f"/{self.restored_bytes:,} bytes, "
            f"{self.checkpoint_time * 1e3:.3f}ms)",
            f"messages rejected/fragmented: {self.rejected_messages}/"
            f"{self.fragmented_messages} ({self.fragments_sent} fragments)",
            f"speculative backups: {self.speculations} "
            f"(straggler time {self.straggler_time * 1e3:.3f}ms)",
            f"virtual time added by faults & recovery: "
            f"{self.added_time * 1e3:.3f}ms",
        ]
        if self.failure is not None:
            lines.append(f"job failed: {self.failure}")
        return "\n".join(lines)
