"""Cost contexts: converting measured loop statistics to virtual seconds.

The split of responsibilities (DESIGN.md §5): element visit counts,
stepper steps, message bytes and partition shapes are *measured* from the
real execution; this module holds the calibrated *constants* that convert
them to virtual seconds on the paper's machine.

``unit_time`` is "seconds per innermost element visit for this framework
running this app's kernel" -- i.e. Fig. 3 sequential time divided by total
visits.  The per-framework factors relative to sequential C live in
:mod:`repro.bench.calibrate`.
"""
from __future__ import annotations

import contextvars
from contextlib import contextmanager
from dataclasses import dataclass

from repro.core.meter import CostMeter


@dataclass(frozen=True)
class CostContext:
    """Constants converting meter readings into virtual seconds."""

    #: virtual seconds per innermost element visit
    unit_time: float = 1e-8
    #: extra virtual seconds per stepper step (the encoding overhead the
    #: paper measured as 2-5x on nested stepper loops)
    step_overhead: float = 0.0
    #: scale factor from sandbox-sized problems to paper-sized problems
    #: (applied to task compute times)
    compute_scale: float = 1.0
    #: scale factor applied to message byte counts when charging network
    #: time and checking buffer limits (paper-sized data volumes)
    wire_scale: float = 1.0
    #: seconds per element when merging two partial results (a plain
    #: streaming add, NOT the app kernel's per-visit cost; unscaled by
    #: ``compute_scale`` -- partial sizes scale with the data, so callers
    #: apply ``wire_scale`` to the element count instead)
    combine_time_per_element: float = 1.5e-9

    def combine_seconds(self, elements: float) -> float:
        """Cost of merging a partial result of *elements* scalars."""
        return elements * self.wire_scale * self.combine_time_per_element

    def task_seconds(self, m: CostMeter) -> float:
        """Virtual compute seconds for a task with meter reading *m*."""
        return (
            m.visits * self.unit_time + m.steps * self.step_overhead
        ) * self.compute_scale

    def seconds_for_visits(self, visits: float) -> float:
        return visits * self.unit_time * self.compute_scale


_current: contextvars.ContextVar[CostContext] = contextvars.ContextVar(
    "repro_cost_context", default=CostContext()
)


@contextmanager
def use_costs(ctx: CostContext):
    token = _current.set(ctx)
    try:
        yield ctx
    finally:
        _current.reset(token)


def current_costs() -> CostContext:
    return _current.get()
