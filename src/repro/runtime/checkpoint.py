"""Section checkpointing into a simulated durable store.

Lineage replay (:mod:`repro.data.lineage`) recovers *data-plane shards*;
checkpoints recover *section outputs*: the value a distributed section
reduced or gathered back to the main rank.  A
:class:`CheckpointPolicy` decides which section outputs are worth
persisting; the driver serializes the output through the real wire
format (:func:`repro.serial.serialize`, so a restore is bit-identical by
construction), stores the blob in a :class:`CheckpointStore` keyed by
``(job, section sequence)``, and charges the write to the virtual clock
with a per-rank parallel bandwidth model -- durability is never free.

Driver-level recovery is restart-from-last-checkpoint: re-run the job
with the same store and every already-checkpointed section returns its
stored output (charged at read cost) instead of executing, so the
restarted run pays only for the sections past the last checkpoint.
:func:`run_restartable` packages the restart loop.

The store is *simulated* durable: it survives runtime teardown (it is
plain driver-side state, deliberately outside the simulated machine),
but the byte costs of reaching it are modeled as if it were a remote
filesystem.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.cluster.faults import RankFailure
from repro.runtime.recovery import JobFailure
from repro.serial import SerializationError, deserialize, serialize

__all__ = [
    "CheckpointPolicy",
    "CheckpointStore",
    "CheckpointConfig",
    "run_restartable",
]


@dataclass(frozen=True)
class CheckpointPolicy:
    """Which section outputs to persist, and what touching the durable
    store costs on the virtual clock.

    ``every=N`` checkpoints every Nth distributed section (1 = all);
    ``min_bytes`` skips outputs too small to be worth a durable write.
    The cost model is per-operation latency plus bytes over aggregate
    bandwidth: ranks write their output shares in parallel, so the byte
    term shrinks with the writer count (the read side mirrors it).
    """

    every: int = 1
    min_bytes: int = 0
    #: durable-store bandwidth (bytes per virtual second, per writer)
    bandwidth: float = 2e8
    #: per-operation durable-store latency (virtual seconds)
    latency: float = 5e-4

    def should(self, seq: int, nbytes: int) -> bool:
        return self.every > 0 and seq % self.every == 0 and nbytes >= self.min_bytes

    def write_seconds(self, nbytes: int, writers: int = 1) -> float:
        return self.latency + nbytes / (self.bandwidth * max(1, writers))

    def read_seconds(self, nbytes: int, readers: int = 1) -> float:
        return self.latency + nbytes / (self.bandwidth * max(1, readers))


class CheckpointStore:
    """Simulated durable store: ``(job, section seq) -> serialized blob``.

    Deliberately *outside* the simulated machine, so it survives runtime
    teardown (that is what makes it durable) -- a restarted job passes
    the same store object back in.  Values round-trip through the real
    wire format, so a restored output is bit-identical to the computed
    one and a value the wire cannot carry is skipped, not corrupted.
    """

    def __init__(self):
        self._blobs: dict[tuple[str, int], bytes] = {}
        self.puts = 0
        self.bytes_written = 0
        self.fetches = 0
        self.bytes_read = 0
        self.skipped = 0

    def __len__(self) -> int:
        return len(self._blobs)

    @property
    def bytes_stored(self) -> int:
        return sum(len(b) for b in self._blobs.values())

    def maybe_put(self, job: str, seq: int, value: Any,
                  policy: CheckpointPolicy) -> int | None:
        """Persist *value* if *policy* admits it; returns the blob size
        actually written, or ``None`` when skipped (policy said no, or
        the value is not serializable)."""
        try:
            blob = serialize(value)
        except SerializationError:
            self.skipped += 1
            return None
        if not policy.should(seq, len(blob)):
            self.skipped += 1
            return None
        self._blobs[(job, seq)] = blob
        self.puts += 1
        self.bytes_written += len(blob)
        return len(blob)

    def fetch(self, job: str, seq: int) -> tuple[Any, int] | None:
        """``(value, blob bytes)`` for a stored checkpoint, or ``None``.

        Deserializes a fresh value each time -- a restored run must not
        alias a previous run's objects.
        """
        blob = self._blobs.get((job, seq))
        if blob is None:
            return None
        self.fetches += 1
        self.bytes_read += len(blob)
        return deserialize(blob), len(blob)

    def last_seq(self, job: str) -> int | None:
        seqs = [s for (j, s) in self._blobs if j == job]
        return max(seqs) if seqs else None

    def drop_job(self, job: str) -> int:
        victims = [k for k in self._blobs if k[0] == job]
        for k in victims:
            del self._blobs[k]
        return len(victims)

    def describe(self) -> str:
        return (
            f"checkpoint store: {len(self)} blob(s), "
            f"{self.bytes_stored:,} bytes held "
            f"(written {self.bytes_written:,}, read {self.bytes_read:,}, "
            f"skipped {self.skipped})"
        )


@dataclass
class CheckpointConfig:
    """Checkpointing as installed on one runtime: the durable store, the
    admission policy, and the job key namespacing this run's blobs."""

    store: CheckpointStore
    policy: CheckpointPolicy = field(default_factory=CheckpointPolicy)
    job: str = "job"


def run_restartable(
    make_runtime: Callable[[], Any],
    job_fn: Callable[[Any], Any],
    max_restarts: int = 2,
    retry_on: tuple = (RankFailure, JobFailure),
) -> tuple[Any, Any, int]:
    """Driver-level restart-from-last-checkpoint.

    ``make_runtime()`` must return a fresh runtime context manager whose
    runtime carries a :class:`CheckpointConfig` sharing one durable
    store across attempts; ``job_fn(rt)`` runs the job.  On a *retry_on*
    failure the job is re-run from scratch: sections already
    checkpointed restore instead of executing, so only the uncovered
    tail re-runs.  (A consumed :class:`~repro.cluster.faults.FaultPlan`
    shared across attempts does not re-fire, matching a real transient
    environment fault.)

    Returns ``(value, final runtime, restarts used)``.
    """
    restarts = 0
    while True:
        try:
            with make_runtime() as rt:
                return job_fn(rt), rt, restarts
        except retry_on:
            if restarts >= max_restarts:
                raise
            restarts += 1
