"""Transitive byte accounting.

The simulated network charges per byte actually shipped.  For most values
we simply measure ``len(serialize(obj))``; this module adds a cheaper
estimator used by cost-model code that wants a size *without* producing
the bytes (e.g. deciding a partitioning, or the Eden baseline's boxed-list
inflation factor).
"""
from __future__ import annotations

import dataclasses
from typing import Any

import numpy as np

#: Estimated overhead per boxed cell in a GHC-style runtime (info pointer
#: plus payload slots); used by the Eden baseline's list-of-boxed-values
#: cost inflation.
BOXED_CELL_BYTES = 24


def transitive_size(obj: Any, _seen: set[int] | None = None) -> int:
    """Estimate the serialized size of *obj* in bytes.

    This walks the object graph the same way the serializer does, charging
    arrays their raw buffer size and scalars their fixed encodings, but
    avoids building the byte string.  Shared references are counted once,
    matching the serializer's transitive copy semantics closely enough for
    cost modelling (the serializer itself would duplicate shared subtrees;
    messages in this codebase are trees).
    """
    if _seen is None:
        _seen = set()
    if obj is None or isinstance(obj, bool):
        return 1
    if isinstance(obj, int):
        return 1 + max(1, (abs(obj).bit_length() + 7) // 7)
    if isinstance(obj, float):
        return 9
    if isinstance(obj, complex):
        return 17
    if isinstance(obj, str):
        return 2 + len(obj.encode("utf-8"))
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return 2 + len(obj)
    if isinstance(obj, np.ndarray):
        return 16 + 8 * obj.ndim + obj.size * obj.dtype.itemsize
    if isinstance(obj, np.generic):
        return 16 + np.asarray(obj).dtype.itemsize
    oid = id(obj)
    if oid in _seen:
        return 2
    _seen.add(oid)
    try:
        if isinstance(obj, (tuple, list, set, frozenset)):
            return 2 + sum(transitive_size(x, _seen) for x in obj)
        if isinstance(obj, dict):
            return 2 + sum(
                transitive_size(k, _seen) + transitive_size(v, _seen)
                for k, v in obj.items()
            )
        if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
            return 2 + sum(
                transitive_size(getattr(obj, f.name), _seen)
                for f in dataclasses.fields(obj)
            )
    finally:
        _seen.discard(oid)
    # Opaque object: charge a boxed cell.
    return BOXED_CELL_BYTES
