"""Block-copy serialization for numpy arrays.

The paper (§3.4): "Since the majority of serialized data typically resides
in pointer-free arrays, such arrays are serialized using a block copy to
minimize serialization time."

An array is encoded as a small fixed header (dtype string, number of
dimensions, shape) followed by the raw C-contiguous buffer.  A
C-contiguous array -- in particular the row-slice views the §3.5
partition layer produces -- is appended to the output buffer as a
zero-copy ``memoryview`` of its data (no ``tobytes()`` intermediate);
Fortran-ordered and strided views are made contiguous first, and that
compaction is counted in :func:`copy_stats` and charged to the caller
through :func:`array_payload_bytes` so the cost model sees it.
"""
from __future__ import annotations

import struct
from contextlib import contextmanager

import numpy as np

# Header layout: dtype-string length (H), ndim (B), then shape as q's.
_HEADER_FMT = "<HB"


def new_copy_stats() -> dict:
    """A fresh, zeroed copy-counter dict (see :func:`use_copy_stats`)."""
    return {
        "arrays": 0,  # arrays packed
        "zero_copy_bytes": 0,  # payload bytes appended as buffer views
        "compacted": 0,  # non-contiguous arrays that needed a copy
        "compacted_bytes": 0,
        # non-contiguous views compacted at the buffer-view *ship* gate
        # (Comm.Send, shared-memory segments): gpaw's contiguity rule -- a
        # buffer send requires contiguous data, so strided views pay an
        # explicit compaction copy instead of silently degrading to a
        # pickled/element-wise path.
        "noncontiguous_compacted": 0,
    }


#: The process-default counter set; a resident server scopes its own
#: with :func:`use_copy_stats` instead of resetting this between jobs.
_GLOBAL_STATS = new_copy_stats()
_stats = _GLOBAL_STATS


@contextmanager
def use_copy_stats(stats: dict):
    """Install *stats* as the active copy-counter sink.

    A plain module-global swap (not a context variable) so counters
    tallied from simulated rank threads land in the same dict the
    installing driver reads.
    """
    global _stats
    prev = _stats
    _stats = stats
    try:
        yield stats
    finally:
        _stats = prev


def copy_stats() -> dict:
    """Serialization copy counters (see :func:`reset_copy_stats`)."""
    return dict(_stats)


def reset_copy_stats() -> None:
    """Zero the *active* counter set (per-run compatibility shim)."""
    for k in _stats:
        _stats[k] = 0


def ensure_contiguous(arr: np.ndarray) -> np.ndarray:
    """Contiguity gate for the zero-copy buffer ship paths.

    Buffer-protocol sends (``Comm.Send``, shared-memory segments, mpi4py
    buffer messages) move one contiguous block.  A C-contiguous array
    passes through untouched; any other layout -- Fortran order, strided
    or transposed views -- is compacted with an explicit copy, counted
    under ``copy_stats()["noncontiguous_compacted"]``, and never falls
    back to a pickled element-wise encoding.
    """
    if arr.flags.c_contiguous:
        return arr
    a = np.ascontiguousarray(arr)
    _stats["noncontiguous_compacted"] += 1
    _stats["compacted_bytes"] += a.nbytes
    return a


def pack_array_into(arr: np.ndarray, out: bytearray) -> None:
    """Append *arr*'s encoding to *out*, zero-copy for contiguous data.

    The payload of a C-contiguous array is appended directly from its
    buffer; only non-contiguous views pay a compaction copy first.
    """
    a = arr if arr.flags.c_contiguous else np.ascontiguousarray(arr)
    _stats["arrays"] += 1
    if a is not arr:
        _stats["compacted"] += 1
        _stats["compacted_bytes"] += a.nbytes
    dt = a.dtype.str.encode("ascii")
    out += struct.pack(_HEADER_FMT, len(dt), a.ndim) + dt
    out += struct.pack("<%dq" % a.ndim, *a.shape)
    if a.nbytes:
        out += memoryview(a).cast("B")
        _stats["zero_copy_bytes"] += a.nbytes


def pack_array(arr: np.ndarray) -> bytes:
    """Serialize *arr* to bytes: header + one block copy of the buffer."""
    out = bytearray()
    pack_array_into(arr, out)
    return bytes(out)


def unpack_array(buf: memoryview, offset: int = 0) -> tuple[np.ndarray, int]:
    """Deserialize an array from *buf* at *offset*.

    Returns the array and the offset one past its encoding.  The array is a
    fresh writable copy (a receiver owns its message payload).
    """
    dtlen, ndim = struct.unpack_from(_HEADER_FMT, buf, offset)
    offset += struct.calcsize(_HEADER_FMT)
    dt = bytes(buf[offset : offset + dtlen]).decode("ascii")
    offset += dtlen
    shape = struct.unpack_from("<%dq" % ndim, buf, offset)
    offset += 8 * ndim
    dtype = np.dtype(dt)
    count = 1
    for s in shape:
        count *= s
    nbytes = count * dtype.itemsize
    arr = np.frombuffer(buf[offset : offset + nbytes], dtype=dtype).copy()
    return arr.reshape(shape), offset + nbytes


def array_payload_bytes(arr: np.ndarray) -> int:
    """Wire size of *arr*: raw data plus the (tiny) header."""
    dt = arr.dtype.str.encode("ascii")
    return (
        struct.calcsize(_HEADER_FMT)
        + len(dt)
        + 8 * arr.ndim
        + arr.size * arr.dtype.itemsize
    )
