"""Block-copy serialization for numpy arrays.

The paper (§3.4): "Since the majority of serialized data typically resides
in pointer-free arrays, such arrays are serialized using a block copy to
minimize serialization time."

An array is encoded as a small fixed header (dtype string, number of
dimensions, shape) followed by the raw C-contiguous buffer.  Fortran-ordered
and strided views are made contiguous first; the extra copy is charged to
the caller through :func:`array_payload_bytes` so the cost model sees it.
"""
from __future__ import annotations

import struct

import numpy as np

# Header layout: dtype-string length (H), ndim (B), then shape as q's.
_HEADER_FMT = "<HB"


def pack_array(arr: np.ndarray) -> bytes:
    """Serialize *arr* to bytes: header + one block copy of the buffer."""
    # ascontiguousarray promotes 0-d arrays to 1-d; preserve the rank.
    a = arr if arr.flags.c_contiguous else np.ascontiguousarray(arr)
    dt = a.dtype.str.encode("ascii")
    header = struct.pack(_HEADER_FMT, len(dt), a.ndim) + dt
    header += struct.pack("<%dq" % a.ndim, *a.shape)
    return header + a.tobytes()


def unpack_array(buf: memoryview, offset: int = 0) -> tuple[np.ndarray, int]:
    """Deserialize an array from *buf* at *offset*.

    Returns the array and the offset one past its encoding.  The array is a
    fresh writable copy (a receiver owns its message payload).
    """
    dtlen, ndim = struct.unpack_from(_HEADER_FMT, buf, offset)
    offset += struct.calcsize(_HEADER_FMT)
    dt = bytes(buf[offset : offset + dtlen]).decode("ascii")
    offset += dtlen
    shape = struct.unpack_from("<%dq" % ndim, buf, offset)
    offset += 8 * ndim
    dtype = np.dtype(dt)
    count = 1
    for s in shape:
        count *= s
    nbytes = count * dtype.itemsize
    arr = np.frombuffer(buf[offset : offset + nbytes], dtype=dtype).copy()
    return arr.reshape(shape), offset + nbytes


def array_payload_bytes(arr: np.ndarray) -> int:
    """Wire size of *arr*: raw data plus the (tiny) header."""
    dt = arr.dtype.str.encode("ascii")
    return (
        struct.calcsize(_HEADER_FMT)
        + len(dt)
        + 8 * arr.ndim
        + arr.size * arr.dtype.itemsize
    )
