"""Closure and global-data serialization.

Paper §3.4: "Functions are represented by heap-allocated closures and are
also serialized.  Serializing an object transitively serializes all objects
that it references.  Pointers to global data are serialized as a segment
identifier and offset."

Python functions cannot be shipped by value safely or cheaply, and on a
real cluster Triolet ships a *code pointer* (all nodes run the same
program image) plus a captured environment.  We reproduce exactly that
split:

* every function that can appear inside a message is registered once (at
  import time on "all nodes") under a stable code id via
  :func:`register_function` -- the analogue of the shared program image;
* a :class:`Closure` pairs a code id with a tuple of captured values, and
  serializes as the id plus the environment, so the wire cost is dominated
  by the environment -- which is what the paper's array-partitioning work
  (§3.5) minimizes;
* :class:`GlobalSegment` registers large read-only data once per node;
  a :class:`GlobalRef` into it serializes as (segment id, offset) in O(1)
  bytes, never dragging the data itself across the network.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.serial import serializer
from repro.serial.serializer import (
    SerializationError,
    _decode,
    _decode_str,
    _encode,
    _encode_str,
    register_type,
)

# The "program image": code id -> function object.  Populated identically
# on every simulated rank because ranks share the interpreter.
_CODE_SEGMENT: dict[str, Callable] = {}
_FUNC_TO_ID: dict[Callable, str] = {}


def register_function(fn: Callable, code_id: str | None = None) -> Callable:
    """Register *fn* in the shared code segment.

    Usable as a decorator.  The default code id is the qualified name,
    which is stable across ranks because all ranks import the same
    modules.
    """
    if code_id is not None:
        existing = _CODE_SEGMENT.get(code_id)
        if existing is not None and existing is not fn:
            raise ValueError(
                f"code id already bound to a different function: {code_id!r}"
            )
        cid = code_id
    else:
        # Default ids come from the qualified name.  Distinct lambdas (or
        # distinct invocations of a def) can share a qualname; disambiguate
        # with a counter.  Safe here because every simulated rank shares
        # this interpreter's registry; a real cluster would additionally
        # need deterministic registration order on all nodes.
        base = f"{fn.__module__}.{fn.__qualname__}"
        cid = base
        k = 1
        while _CODE_SEGMENT.get(cid) is not None and _CODE_SEGMENT[cid] is not fn:
            k += 1
            cid = f"{base}#{k}"
    _CODE_SEGMENT[cid] = fn
    _FUNC_TO_ID[fn] = cid
    return fn


def lookup_function(code_id: str) -> Callable:
    fn = _CODE_SEGMENT.get(code_id)
    if fn is None:
        raise SerializationError(f"code id not in program image: {code_id!r}")
    return fn


# Environment-entry resolver hook.  The data plane (repro.data) registers
# its DistArray handle type here so that closure environments carrying
# handles are resolved to rank-local array views at call time, on whichever
# rank the closure actually runs.  Kept as a hook to avoid a serial -> data
# import cycle.
_ENV_TYPES: tuple = ()
_ENV_RESOLVER: Callable[[Any], Any] | None = None


def set_env_resolver(types: tuple, fn: Callable[[Any], Any]) -> None:
    """Register *fn* to resolve environment entries of the given *types*."""
    global _ENV_TYPES, _ENV_RESOLVER
    _ENV_TYPES, _ENV_RESOLVER = types, fn


def resolve_env(env: tuple) -> tuple:
    """Resolve handle-typed entries of a closure environment in place.

    Identity (and allocation-free) when no resolver is registered or the
    environment carries no handles -- the overwhelmingly common case.
    """
    if _ENV_RESOLVER is None or not env:
        return env
    if not any(isinstance(e, _ENV_TYPES) for e in env):
        return env
    fn = _ENV_RESOLVER
    return tuple(fn(e) if isinstance(e, _ENV_TYPES) else e for e in env)


@dataclass(frozen=True)
class Closure:
    """A serializable function: code pointer + captured environment.

    Calling the closure applies the underlying function to the environment
    followed by the call arguments, i.e. ``Closure(f, (a, b))(x)`` computes
    ``f(a, b, x)``.  Environment entries that are data-plane handles are
    resolved to local data at call time (see :func:`set_env_resolver`).
    """

    code_id: str
    env: tuple = ()

    def __call__(self, *args: Any) -> Any:
        return lookup_function(self.code_id)(*resolve_env(self.env), *args)

    def bind(self, *extra: Any) -> "Closure":
        """Partially apply: extend the captured environment."""
        return Closure(self.code_id, self.env + extra)


def closure(fn: Callable, *env: Any) -> Closure:
    """Build a :class:`Closure` over *fn*, registering it if needed."""
    cid = _FUNC_TO_ID.get(fn)
    if cid is None:
        register_function(fn)
        cid = _FUNC_TO_ID[fn]
    return Closure(cid, env)


def _encode_closure(obj: Closure, out: bytearray) -> None:
    _encode_str(obj.code_id, out)
    _encode(obj.env, out)


def _decode_closure(buf: memoryview, offset: int):
    cid, offset = _decode_str(buf, offset)
    env, offset = _decode(buf, offset)
    # Fail fast if the receiving "program image" lacks the code.
    lookup_function(cid)
    return Closure(cid, env), offset


register_type("repro.Closure", Closure, _encode_closure, _decode_closure)


# ---------------------------------------------------------------------------
# Global segments


class GlobalSegment:
    """A named, node-resident pool of read-only global data.

    ``intern`` returns a :class:`GlobalRef` whose wire representation is a
    (segment, offset) pair -- a handful of bytes regardless of how large the
    referenced object is.  All simulated ranks share the interpreter, so a
    single registry faithfully models "the same global data exists at the
    same offset in every node's image".
    """

    _segments: dict[str, "GlobalSegment"] = {}

    def __init__(self, name: str):
        if name in GlobalSegment._segments:
            raise ValueError(f"global segment already exists: {name!r}")
        self.name = name
        self._objects: list[Any] = []
        GlobalSegment._segments[name] = self

    @classmethod
    def get(cls, name: str) -> "GlobalSegment":
        seg = cls._segments.get(name)
        if seg is None:
            raise SerializationError(f"unknown global segment: {name!r}")
        return seg

    @classmethod
    def get_or_create(cls, name: str) -> "GlobalSegment":
        return cls._segments.get(name) or cls(name)

    @classmethod
    def drop(cls, name: str) -> None:
        """Remove a segment (test hygiene)."""
        cls._segments.pop(name, None)

    def intern(self, obj: Any) -> "GlobalRef":
        self._objects.append(obj)
        return GlobalRef(self.name, len(self._objects) - 1)

    def fetch(self, offset: int) -> Any:
        return self._objects[offset]


@dataclass(frozen=True)
class GlobalRef:
    """Serializable pointer to global data: segment id + offset."""

    segment: str
    offset: int

    def deref(self) -> Any:
        return GlobalSegment.get(self.segment).fetch(self.offset)


def _encode_globalref(obj: GlobalRef, out: bytearray) -> None:
    _encode_str(obj.segment, out)
    serializer._pack_varint(obj.offset, out)


def _decode_globalref(buf: memoryview, offset: int):
    seg, offset = _decode_str(buf, offset)
    off, offset = serializer._unpack_varint(buf, offset)
    return GlobalRef(seg, off), offset


register_type("repro.GlobalRef", GlobalRef, _encode_globalref, _decode_globalref)
