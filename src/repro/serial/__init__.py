"""Serialization substrate.

Triolet's runtime serializes objects to byte arrays before sending them
between cluster nodes (paper §3.4).  The compiler generates serialization
code from algebraic data type definitions; functions are serialized as
closures; pointers to global data are serialized as a segment identifier
plus offset; pointer-free arrays are block-copied.

This package reproduces each of those mechanisms:

* :mod:`repro.serial.serializer` -- self-describing binary format with a
  type registry; ``@serializable`` plays the role of compiler-generated
  serialization for dataclass ADTs.
* :mod:`repro.serial.arrays` -- numpy arrays serialized as a small header
  plus a single block copy of the raw buffer.
* :mod:`repro.serial.closures` -- closures as (code id, environment);
  global data as segment references that cost O(1) bytes on the wire.
* :mod:`repro.serial.sizeof` -- transitive byte accounting used by the
  simulated network's cost model.
"""
from repro.serial.serializer import (
    serialize,
    deserialize,
    serializable,
    SerializationError,
)
from repro.serial.arrays import (
    copy_stats,
    ensure_contiguous,
    new_copy_stats,
    reset_copy_stats,
    use_copy_stats,
)
from repro.serial.sizeof import transitive_size
from repro.serial.closures import (
    Closure,
    closure,
    register_function,
    resolve_env,
    set_env_resolver,
    GlobalSegment,
    GlobalRef,
)


def reset() -> None:
    """Reset per-run serialization statistics.

    ``copy_stats()`` counters otherwise accumulate across benchmark
    repetitions; :mod:`repro.bench` calls this between runs so reported
    deltas are per-run.
    """
    reset_copy_stats()


__all__ = [
    "serialize",
    "deserialize",
    "serializable",
    "SerializationError",
    "copy_stats",
    "ensure_contiguous",
    "new_copy_stats",
    "use_copy_stats",
    "reset_copy_stats",
    "reset",
    "transitive_size",
    "Closure",
    "closure",
    "register_function",
    "resolve_env",
    "set_env_resolver",
    "GlobalSegment",
    "GlobalRef",
]
