"""Self-describing binary serializer with a type registry.

Triolet's compiler "automatically generates serialization code from the
definitions of algebraic data types" (§3.4).  The Python analogue: any
dataclass decorated with :func:`serializable` gets field-by-field
serialization derived from its declaration, registered under a stable type
tag.  Built-in containers, scalars and numpy arrays are handled natively;
numpy arrays take the block-copy fast path of :mod:`repro.serial.arrays`.

The format is intentionally simple (one tag byte per value) so the byte
counts reported to the simulated network are honest and reproducible --
this module never falls back to ``pickle``.
"""
from __future__ import annotations

import dataclasses
import struct
from typing import Any, Callable

import numpy as np

from repro.serial.arrays import pack_array_into, unpack_array


class SerializationError(TypeError):
    """Raised when a value has no registered serialization."""


# Tag bytes.
_T_NONE = 0x00
_T_FALSE = 0x01
_T_TRUE = 0x02
_T_INT = 0x03
_T_FLOAT = 0x04
_T_COMPLEX = 0x05
_T_STR = 0x06
_T_BYTES = 0x07
_T_TUPLE = 0x08
_T_LIST = 0x09
_T_DICT = 0x0A
_T_ARRAY = 0x0B
_T_REGISTERED = 0x0C
_T_NPSCALAR = 0x0D
_T_SET = 0x0E
_T_FROZENSET = 0x0F
_T_SLICE = 0x10

# name -> (encoder(obj, out), decoder(buf, offset) -> (obj, offset))
_REGISTRY: dict[str, tuple[Callable, Callable]] = {}
# python type -> registered name (for encoding dispatch)
_TYPE_TO_NAME: dict[type, str] = {}


def register_type(
    name: str,
    typ: type,
    encode: Callable[[Any, bytearray], None],
    decode: Callable[[memoryview, int], tuple[Any, int]],
) -> None:
    """Register a custom type under a stable wire *name*."""
    if name in _REGISTRY and _TYPE_TO_NAME.get(typ) != name:
        raise ValueError(f"serializer type name already registered: {name!r}")
    _REGISTRY[name] = (encode, decode)
    _TYPE_TO_NAME[typ] = name


def serializable(cls):
    """Class decorator: derive serialization for a dataclass ADT.

    Mirrors Triolet's compiler-generated serialization for algebraic data
    types.  Fields are encoded in declaration order with the generic
    encoder, so they may hold arrays, containers, or other serializable
    ADTs.
    """
    if not dataclasses.is_dataclass(cls):
        cls = dataclasses.dataclass(cls)
    fields = [f.name for f in dataclasses.fields(cls)]
    name = f"{cls.__module__}.{cls.__qualname__}"

    def encode(obj, out: bytearray) -> None:
        for f in fields:
            _encode(getattr(obj, f), out)

    def decode(buf: memoryview, offset: int):
        values = []
        for _ in fields:
            v, offset = _decode(buf, offset)
            values.append(v)
        return cls(*values), offset

    register_type(name, cls, encode, decode)
    cls.__serial_name__ = name
    return cls


def _pack_varint(n: int, out: bytearray) -> None:
    """Unsigned LEB128."""
    if n < 0:
        raise ValueError("varint must be non-negative")
    while True:
        b = n & 0x7F
        n >>= 7
        if n:
            out.append(b | 0x80)
        else:
            out.append(b)
            return


def _unpack_varint(buf: memoryview, offset: int) -> tuple[int, int]:
    shift = 0
    result = 0
    while True:
        b = buf[offset]
        offset += 1
        result |= (b & 0x7F) << shift
        if not (b & 0x80):
            return result, offset
        shift += 7


def _encode_str(s: str, out: bytearray) -> None:
    data = s.encode("utf-8")
    _pack_varint(len(data), out)
    out += data


def _decode_str(buf: memoryview, offset: int) -> tuple[str, int]:
    n, offset = _unpack_varint(buf, offset)
    return bytes(buf[offset : offset + n]).decode("utf-8"), offset + n


def _encode(obj: Any, out: bytearray) -> None:
    if obj is None:
        out.append(_T_NONE)
    elif obj is False:
        out.append(_T_FALSE)
    elif obj is True:
        out.append(_T_TRUE)
    elif type(obj) is int:
        out.append(_T_INT)
        _pack_varint(_zigzag(obj), out)
    elif type(obj) is float:
        out.append(_T_FLOAT)
        out += struct.pack("<d", obj)
    elif type(obj) is complex:
        out.append(_T_COMPLEX)
        out += struct.pack("<dd", obj.real, obj.imag)
    elif type(obj) is str:
        out.append(_T_STR)
        _encode_str(obj, out)
    elif type(obj) is bytes:
        out.append(_T_BYTES)
        _pack_varint(len(obj), out)
        out += obj
    elif type(obj) is tuple:
        out.append(_T_TUPLE)
        _pack_varint(len(obj), out)
        for x in obj:
            _encode(x, out)
    elif type(obj) is list:
        out.append(_T_LIST)
        _pack_varint(len(obj), out)
        for x in obj:
            _encode(x, out)
    elif type(obj) is dict:
        out.append(_T_DICT)
        _pack_varint(len(obj), out)
        for k, v in obj.items():
            _encode(k, out)
            _encode(v, out)
    elif type(obj) is set or type(obj) is frozenset:
        out.append(_T_SET if type(obj) is set else _T_FROZENSET)
        _pack_varint(len(obj), out)
        for x in sorted(obj, key=repr):
            _encode(x, out)
    elif type(obj) is slice:
        out.append(_T_SLICE)
        _encode(obj.start, out)
        _encode(obj.stop, out)
        _encode(obj.step, out)
    elif isinstance(obj, np.ndarray):
        out.append(_T_ARRAY)
        pack_array_into(obj, out)
    elif isinstance(obj, np.generic):
        out.append(_T_NPSCALAR)
        pack_array_into(np.asarray(obj), out)
    else:
        name = _TYPE_TO_NAME.get(type(obj))
        if name is None:
            raise SerializationError(
                f"no serialization registered for {type(obj).__name__}; "
                f"decorate it with @serializable or register_type()"
            )
        out.append(_T_REGISTERED)
        _encode_str(name, out)
        _REGISTRY[name][0](obj, out)


def _zigzag(n: int) -> int:
    """Map signed ints to unsigned: 0,-1,1,-2,... -> 0,1,2,3,..."""
    return (n << 1) if n >= 0 else ((-n << 1) - 1)


def _unzigzag(z: int) -> int:
    return (z >> 1) if (z & 1) == 0 else -((z + 1) >> 1)


def _decode(buf: memoryview, offset: int) -> tuple[Any, int]:
    tag = buf[offset]
    offset += 1
    if tag == _T_NONE:
        return None, offset
    if tag == _T_FALSE:
        return False, offset
    if tag == _T_TRUE:
        return True, offset
    if tag == _T_INT:
        z, offset = _unpack_varint(buf, offset)
        return _unzigzag(z), offset
    if tag == _T_FLOAT:
        (v,) = struct.unpack_from("<d", buf, offset)
        return v, offset + 8
    if tag == _T_COMPLEX:
        re, im = struct.unpack_from("<dd", buf, offset)
        return complex(re, im), offset + 16
    if tag == _T_STR:
        return _decode_str(buf, offset)
    if tag == _T_BYTES:
        n, offset = _unpack_varint(buf, offset)
        return bytes(buf[offset : offset + n]), offset + n
    if tag == _T_TUPLE:
        n, offset = _unpack_varint(buf, offset)
        items = []
        for _ in range(n):
            v, offset = _decode(buf, offset)
            items.append(v)
        return tuple(items), offset
    if tag == _T_LIST:
        n, offset = _unpack_varint(buf, offset)
        items = []
        for _ in range(n):
            v, offset = _decode(buf, offset)
            items.append(v)
        return items, offset
    if tag == _T_DICT:
        n, offset = _unpack_varint(buf, offset)
        d = {}
        for _ in range(n):
            k, offset = _decode(buf, offset)
            v, offset = _decode(buf, offset)
            d[k] = v
        return d, offset
    if tag in (_T_SET, _T_FROZENSET):
        n, offset = _unpack_varint(buf, offset)
        items = []
        for _ in range(n):
            v, offset = _decode(buf, offset)
            items.append(v)
        return (set(items) if tag == _T_SET else frozenset(items)), offset
    if tag == _T_SLICE:
        start, offset = _decode(buf, offset)
        stop, offset = _decode(buf, offset)
        step, offset = _decode(buf, offset)
        return slice(start, stop, step), offset
    if tag == _T_ARRAY:
        return unpack_array(buf, offset)
    if tag == _T_NPSCALAR:
        arr, offset = unpack_array(buf, offset)
        return arr[()], offset
    if tag == _T_REGISTERED:
        name, offset = _decode_str(buf, offset)
        entry = _REGISTRY.get(name)
        if entry is None:
            raise SerializationError(f"unknown registered type on wire: {name!r}")
        return entry[1](buf, offset)
    raise SerializationError(f"bad tag byte {tag:#x} at offset {offset - 1}")


def serialize(obj: Any) -> bytes:
    """Serialize *obj* to a self-describing byte string."""
    out = bytearray()
    _encode(obj, out)
    return bytes(out)


def deserialize(data: bytes | bytearray | memoryview) -> Any:
    """Inverse of :func:`serialize`."""
    buf = memoryview(data)
    obj, offset = _decode(buf, 0)
    if offset != len(buf):
        raise SerializationError(
            f"trailing garbage: consumed {offset} of {len(buf)} bytes"
        )
    return obj
