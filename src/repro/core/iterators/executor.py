"""The executor hook: where skeletons meet the runtime (paper §3.4).

"A skeleton in the library consists of code that, depending on the input
iterator's parallelism hint, invokes low-level skeletons for distributing
work across nodes, cores within a node, and/or sequential loop iterations
in a task."

Consumers (``sum``, ``reduce``, ``histogram``, ``build``) package their
sequential loop as a :class:`ConsumeSpec` and hand it to the *current
executor*.  The default executor runs the fused sequential loop in
place; the Triolet runtime (:mod:`repro.runtime.driver`) installs itself
as the executor and implements the PAR/LOCAL hints by slicing the
iterator across the simulated machine.  This is exactly the decoupling
that lets the same source code run sequentially, threaded, or
distributed.
"""
from __future__ import annotations

import contextvars
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Protocol

from repro.core.iterators.iter_type import Iter, ParHint
from repro.serial import Closure


@dataclass(frozen=True)
class ConsumeSpec:
    """A consumer, decomposed for two-level parallel execution.

    kind
        ``"reduce"`` -- partials are merged pairwise with ``combine``;
        ``"build"``  -- partials are per-block arrays the runtime
        assembles by partition structure.
    seq_fn
        The fused sequential loop: ``Iter -> partial``.  Running it on the
        whole iterator gives the sequential semantics; running it on
        slices gives per-task partials.
    combine
        Associative merge of two partials (reduce kinds only).
    ordered
        The combine is associative but *not* commutative (list concat,
        string append): partials must merge in ascending outer-position
        order.  The runtime then restricts itself to partitions whose
        rank order is element order (1-D outer blocks), never a 2-D
        grid, whose row-major block order interleaves rows.
    """

    kind: str
    seq_fn: Closure
    combine: Closure | None = None
    ordered: bool = False

    def __post_init__(self):
        if self.kind not in ("reduce", "build"):
            raise ValueError(f"unknown consumer kind: {self.kind!r}")
        if self.kind == "reduce" and self.combine is None:
            raise ValueError("reduce consumers need a combine function")


class Executor(Protocol):
    """Anything that can run a consumer over an iterator."""

    def execute(self, it: Iter, spec: ConsumeSpec) -> Any: ...


class SequentialExecutor:
    """The default executor: ignore hints, run the fused loop here."""

    def execute(self, it: Iter, spec: ConsumeSpec) -> Any:
        return spec.seq_fn(it)


_SEQUENTIAL = SequentialExecutor()

_current: contextvars.ContextVar[Executor] = contextvars.ContextVar(
    "repro_executor", default=_SEQUENTIAL
)


@contextmanager
def use_executor(executor: Executor):
    """Install *executor* for the dynamic extent (the runtime does this)."""
    token = _current.set(executor)
    try:
        yield executor
    finally:
        _current.reset(token)


def current_executor() -> Executor:
    return _current.get()


def dispatch(it: Iter, spec: ConsumeSpec) -> Any:
    """Route a consumer: hinted iterators go to the installed executor."""
    if it.hint is not ParHint.SEQ:
        return _current.get().execute(it, spec)
    return spec.seq_fn(it)
