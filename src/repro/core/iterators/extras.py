"""Extended skeleton library beyond the paper's Fig. 2 core.

These are the operations a production skeleton library grows around the
four fundamental transforms, all built on the same constructor-dispatch
machinery so they fuse and (where semantics allow) parallelize:

* ``enumerate_iter``, ``take``, ``drop``, ``append`` -- structural;
* ``scan`` -- sequential fused prefix reduction; ``prefix_sum`` -- the
  *multipass parallel* scan of §3.1 ("because parallel scan is a
  multipass algorithm, fusion is impossible"), used by the fusion
  ablation to show exactly that;
* ``any_match`` / ``all_match`` / ``find_first`` -- short-circuiting
  consumers (driven through steppers, the encoding that can stop);
* ``group_reduce`` -- reduce-by-key with dict-monoid partials (fully
  parallelizable);
* ``mean_variance`` -- Welford-mergeable statistics (a non-trivial
  monoid exercising the same reduce tree);
* ``argmin``/``argmax``.
"""
from __future__ import annotations

from typing import Any, Callable

import numpy as np

from repro.core import meter
from repro.core.encodings.indexer import as_closure
from repro.core.encodings.stepper import Step, yield_, skip, DONE
from repro.core.iterators.executor import ConsumeSpec, dispatch
from repro.core.iterators.iter_type import IdxFlat, Iter, StepFlat
from repro.core.iterators.reductions import treduce
from repro.core.iterators.transforms import iterate, to_step, tzip
from repro.serial import Closure, closure, register_function


# ---------------------------------------------------------------------------
# Structural combinators


def enumerate_iter(it: Any) -> Iter:
    """Pair each element with its position: ``(i, x)``.

    Flat indexers keep random access (zip with the index iterator);
    variable-length iterators get a counting stepper.
    """
    it = iterate(it)
    if isinstance(it, IdxFlat):
        from repro.core.domains.multi import indices

        return tzip(indices(it.domain), it)
    st = to_step(it)
    return StepFlat(Step((st.state0, 0), closure(_step_enum, st.stepf)))


@register_function
def _step_enum(inner, state):
    inner_state, i = state
    tag, value, inner_state2 = inner(inner_state)
    if tag == 0:  # Yield
        return yield_((i, value), (inner_state2, i + 1))
    if tag == 1:  # Skip
        return skip((inner_state2, i))
    return DONE


def take(n: int, it: Any) -> Iter:
    """The first *n* elements."""
    if n < 0:
        raise ValueError(f"take needs n >= 0, got {n}")
    it = iterate(it)
    if isinstance(it, IdxFlat):
        hi = min(n, it.domain.outer_extent)
        return IdxFlat(it.idx.slice(0, hi), it.hint)
    st = to_step(it)
    return StepFlat(Step((st.state0, 0), closure(_step_take, st.stepf, n)))


@register_function
def _step_take(inner, n, state):
    inner_state, taken = state
    if taken >= n:
        return DONE
    tag, value, inner_state2 = inner(inner_state)
    if tag == 0:
        return yield_(value, (inner_state2, taken + 1))
    if tag == 1:
        return skip((inner_state2, taken))
    return DONE


def drop(n: int, it: Any) -> Iter:
    """All but the first *n* elements."""
    if n < 0:
        raise ValueError(f"drop needs n >= 0, got {n}")
    it = iterate(it)
    if isinstance(it, IdxFlat):
        extent = it.domain.outer_extent
        lo = min(n, extent)
        return IdxFlat(it.idx.slice(lo, extent), it.hint)
    st = to_step(it)
    return StepFlat(Step((st.state0, 0), closure(_step_drop, st.stepf, n)))


@register_function
def _step_drop(inner, n, state):
    inner_state, dropped = state
    tag, value, inner_state2 = inner(inner_state)
    if tag == 0:
        if dropped < n:
            return skip((inner_state2, dropped + 1))
        return yield_(value, (inner_state2, n))
    if tag == 1:
        return skip((inner_state2, dropped))
    return DONE


def append(a: Any, b: Any) -> Iter:
    """Concatenate two iterators (sequential stepper form)."""
    sa, sb = to_step(iterate(a)), to_step(iterate(b))
    return StepFlat(
        Step((0, sa.state0), closure(_step_append, sa.stepf, sb.stepf, sb.state0))
    )


@register_function
def _step_append(first, second, second_state0, state):
    which, inner_state = state
    stepf = first if which == 0 else second
    tag, value, inner_state2 = stepf(inner_state)
    if tag == 0:
        return yield_(value, (which, inner_state2))
    if tag == 1:
        return skip((which, inner_state2))
    if which == 0:
        return skip((1, second_state0))
    return DONE


# ---------------------------------------------------------------------------
# Scans


def scan(op: Callable | Closure, init: Any, it: Any) -> Iter:
    """Fused sequential inclusive prefix reduction.

    Scans are inherently order-dependent, so the result is a stepper
    (sequential) regardless of the input's shape -- fusion survives,
    parallelism does not.  For a parallel prefix sum see
    :func:`prefix_sum`.
    """
    st = to_step(iterate(it))
    opc = as_closure(op)
    return StepFlat(Step((st.state0, init), closure(_step_scan, opc, st.stepf)))


@register_function
def _step_scan(op, inner, state):
    inner_state, acc = state
    tag, value, inner_state2 = inner(inner_state)
    if tag == 0:
        acc2 = op(acc, value)
        return yield_(acc2, (inner_state2, acc2))
    if tag == 1:
        return skip((inner_state2, acc))
    return DONE


def prefix_sum(xs: np.ndarray, nblocks: int = 16) -> np.ndarray:
    """Block-parallel inclusive prefix sum -- deliberately multipass.

    §3.1: "The usual solution is to precompute the necessary index
    information using a parallel scan, but because parallel scan is a
    multipass algorithm, fusion is impossible; all temporary values have
    to be saved to memory at some point."

    Pass 1 reduces each block to a sum; the block offsets are scanned;
    pass 2 re-reads the data to produce the local prefixes.  The meter
    records two full passes and the materialized block sums, which is
    exactly what the fusion ablation contrasts with the hybrid
    iterators' single fused pass.
    """
    from repro.partition import block_bounds
    from repro.serial.sizeof import transitive_size

    if nblocks < 1:
        raise ValueError(f"need at least one block, got {nblocks}")
    xs = np.asarray(xs, dtype=np.float64)
    if xs.size == 0:
        return xs.copy()
    bounds = block_bounds(len(xs), min(nblocks, len(xs)))
    # Pass 1: per-block sums (parallelizable; temporaries materialize).
    block_sums = np.array([xs[lo:hi].sum() for lo, hi in bounds])
    meter.tally_visits(xs.size)
    meter.tally_pass()
    meter.tally_materialization(transitive_size(block_sums))
    offsets = np.concatenate([[0.0], np.cumsum(block_sums)[:-1]])
    # Pass 2: per-block local scans shifted by their offsets.
    out = np.empty_like(xs)
    for (lo, hi), base in zip(bounds, offsets):
        out[lo:hi] = base + np.cumsum(xs[lo:hi])
    meter.tally_visits(xs.size)
    meter.tally_pass()
    return out


# ---------------------------------------------------------------------------
# Short-circuiting consumers (steppers are the encoding that can stop)


def find_first(pred: Callable, it: Any, default: Any = None) -> Any:
    """The first element satisfying *pred*, without visiting the rest."""
    st = to_step(iterate(it))
    state = st.state0
    stepf = st.stepf
    while True:
        meter.tally_steps()
        tag, value, state = stepf(state)
        if tag == 0:
            meter.tally_visits()
            if pred(value):
                return value
        elif tag == 2:
            return default


_SENTINEL = object()


def any_match(pred: Callable, it: Any) -> bool:
    return find_first(pred, it, default=_SENTINEL) is not _SENTINEL


def all_match(pred: Callable, it: Any) -> bool:
    return find_first(lambda x: not pred(x), it, default=_SENTINEL) is _SENTINEL


# ---------------------------------------------------------------------------
# Keyed and statistical reductions (parallelizable monoids)


@register_function
def _group_insert(key_fn, op, acc: dict, x):
    k = key_fn(x)
    if k in acc:
        acc[k] = op(acc[k], x)
    else:
        acc[k] = x
    return acc


@register_function
def _merge_dicts(op, a: dict, b: dict) -> dict:
    out = dict(a)
    for k, v in b.items():
        out[k] = op(out[k], v) if k in out else v
    return out


def group_reduce(key_fn: Callable | Closure, op: Callable | Closure, it: Any) -> dict:
    """Reduce elements sharing a key: ``{k: op-fold of elements}``.

    Dict partials merge associatively, so a ``par`` input distributes
    like any histogram.
    """
    kc, opc = as_closure(key_fn), as_closure(op)
    from repro.core.iterators.reductions import _seq_reduce

    it = iterate(it)
    spec = ConsumeSpec(
        kind="reduce",
        seq_fn=closure(_seq_group, kc, opc),
        combine=closure(_merge_dicts, opc),
    )
    return dispatch(it, spec)


@register_function
def _seq_group(key_fn, op, it: Iter) -> dict:
    from repro.core.iterators.reductions import _seq_reduce

    return _seq_reduce(
        closure(_group_insert, key_fn, op),
        closure(_merge_dicts, op),
        {},
        None,
        it,
    )


@register_function
def _welford_insert(acc, x):
    n, total, m2 = acc
    n2 = n + 1
    delta = x - (total / n if n else 0.0)
    total2 = total + x
    mean2 = total2 / n2
    m2b = m2 + delta * (x - mean2)
    return (n2, total2, m2b)


@register_function
def _welford_merge(a, b):
    na, ta, m2a = a
    nb, tb, m2b = b
    if na == 0:
        return b
    if nb == 0:
        return a
    n = na + nb
    delta = tb / nb - ta / na
    return (n, ta + tb, m2a + m2b + delta * delta * na * nb / n)


def mean_variance(it: Any) -> tuple[float, float]:
    """Streaming mean and population variance (Chan/Welford merge).

    The partial ``(count, sum, M2)`` is a true monoid, so ``par`` inputs
    reduce tree-wise without precision loss from naive sum-of-squares.
    """
    it = iterate(it)
    from repro.core.iterators.reductions import _seq_reduce

    spec = ConsumeSpec(
        kind="reduce",
        seq_fn=closure(_seq_welford),
        combine=closure(_welford_merge),
    )
    n, total, m2 = dispatch(it, spec)
    if n == 0:
        raise ValueError("mean_variance of an empty iterator")
    return total / n, m2 / n


@register_function
def _seq_welford(it: Iter):
    from repro.core.iterators.reductions import _seq_reduce

    return _seq_reduce(
        closure(_welford_insert), closure(_welford_merge), (0, 0.0, 0.0), None, it
    )


@register_function
def _argbest_op(better, acc, ix):
    i, x = ix
    if acc is None:
        return (i, x)
    if better(x, acc[1]):
        return (i, x)
    return acc


@register_function
def _argbest_merge(better, a, b):
    if a is None:
        return b
    if b is None:
        return a
    return b if better(b[1], a[1]) else a


def _argbest(better: Closure, it: Any) -> tuple:
    pairs = enumerate_iter(iterate(it))
    out = treduce(
        closure(_argbest_op, better),
        None,
        pairs,
        combine=closure(_argbest_merge, better),
    )
    if out is None:
        raise ValueError("arg reduction over an empty iterator")
    return out


@register_function
def _lt(a, b):
    return a < b


@register_function
def _gt(a, b):
    return a > b


def argmin(it: Any) -> int:
    """Index of the smallest element (first on ties)."""
    return _argbest(closure(_lt), it)[0]


def argmax(it: Any) -> int:
    """Index of the largest element (first on ties)."""
    return _argbest(closure(_gt), it)[0]
