"""Iterator consumers: reductions, histograms, builds (paper Fig. 2).

"Functions that consume iterators, like collect and sum, transform each
level of nesting into a loop."  Every consumer here follows the same
recipe: a *sequential* constructor-dispatched loop (the Fig. 2 equations
for ``sum`` and ``collect``), wrapped in a :class:`ConsumeSpec` and routed
through :func:`repro.core.iterators.executor.dispatch`, which consults
the parallelism hint.

Partials are always monoidal (reduce with identity ``empty``), so the
same code yields the per-thread / per-node / cluster-level aggregation
tree of §2's ``dot`` walkthrough: "Each thread computes its own private
sum, and these are summed on each node, producing a single value per node
that is sent back to the main thread."
"""
from __future__ import annotations

from typing import Any, Callable

import numpy as np

from repro.core import meter
from repro.core.domains import Dim2
from repro.core.encodings.indexer import as_closure
from repro.core.encodings.stepper import fold_step
from repro.core.engine import execute as _engine
from repro.core.iterators.executor import ConsumeSpec, dispatch
from repro.core.iterators.iter_type import (
    IdxFlat,
    IdxNest,
    Iter,
    StepFlat,
    StepNest,
)
from repro.core.iterators.transforms import iterate
from repro.serial import Closure, closure, register_function

# ---------------------------------------------------------------------------
# Generic monoidal reduce


@register_function
def _seq_reduce(op, combine, init, bulk_consume, it: Iter):
    """The fused sequential reduction loop (Fig. 2 ``sum``, generalized).

    *op* folds one element into the accumulator; *combine* merges two
    partial accumulators (they coincide for ``sum`` but differ for e.g.
    ``count``); *bulk_consume* turns a whole ndarray of values into one
    partial for the vectorized fast path.
    """
    if isinstance(it, IdxFlat):
        idx = it.idx
        if bulk_consume is not None and idx.bulk is not None:
            values = idx.eval_all()
            return combine(init, bulk_consume(values))
        handled, out = _engine.try_reduce(it, op, combine, init, bulk_consume)
        if handled:
            return out
        ctx = idx.source.context()
        extract = idx.extract
        acc = init
        for i in idx.domain.iter_indices():
            acc = op(acc, extract(ctx, i))
        meter.tally_visits(idx.domain.size)
        return acc
    if isinstance(it, StepFlat):
        return fold_step(op, init, it.step)
    if isinstance(it, IdxNest):
        handled, out = _engine.try_reduce(it, op, combine, init, bulk_consume)
        if handled:
            return out
        idx = it.idx
        ctx = idx.source.context()
        extract = idx.extract
        acc = init
        for i in idx.domain.iter_indices():
            inner = extract(ctx, i)
            acc = _seq_reduce(op, combine, acc, bulk_consume, inner)
        return acc
    if isinstance(it, StepNest):
        state = it.step.state0
        stepf = it.step.stepf
        acc = init
        while True:
            meter.tally_steps()
            tag, inner, state = stepf(state)
            if tag == 0:  # Yield
                acc = _seq_reduce(op, combine, acc, bulk_consume, inner)
            elif tag == 2:  # Done
                return acc
    raise TypeError(f"not an iterator: {type(it).__name__}")


def treduce(
    op: Callable | Closure,
    init: Any,
    it: Any,
    bulk: Callable | Closure | None = None,
    combine: Callable | Closure | None = None,
) -> Any:
    """``reduce``: monoidal reduction with identity *init*.

    ``bulk`` optionally reduces a whole ndarray of values at once (e.g.
    ``np.sum``) on the indexer fast path; ``combine`` merges two partial
    accumulators and defaults to *op* (correct whenever elements and
    accumulators share a type, as in ``sum``).
    """
    it = iterate(it)
    opc = as_closure(op)
    cc = as_closure(combine) if combine is not None else opc
    bc = as_closure(bulk) if bulk is not None else None
    spec = ConsumeSpec(
        kind="reduce",
        seq_fn=closure(_seq_reduce, opc, cc, init, bc),
        combine=cc,
    )
    return dispatch(it, spec)


@register_function
def _add(a, b):
    return a + b


@register_function
def _np_sum(values):
    # Sum along the element axis only: elements may themselves be arrays
    # (e.g. summing rows), and ``a + b`` semantics are elementwise.
    return np.sum(values, axis=0)


def tsum(it: Any, zero: Any = 0.0) -> Any:
    """``sum`` (Fig. 2): works on numbers and on numpy-array elements."""
    return treduce(_add, zero, it, bulk=_np_sum)


def tmin(it: Any, top: Any = np.inf) -> Any:
    return treduce(min, top, it, bulk=closure(_np_min))


def tmax(it: Any, bottom: Any = -np.inf) -> Any:
    return treduce(max, bottom, it, bulk=closure(_np_max))


@register_function
def _np_min(values):
    return np.min(values) if len(values) else np.inf


@register_function
def _np_max(values):
    return np.max(values) if len(values) else -np.inf


def count(it: Any) -> int:
    """Number of innermost elements."""
    return treduce(_count_op, 0, it, bulk=_count_bulk, combine=_add)


@register_function
def _count_op(acc, _x):
    return acc + 1


@register_function
def _count_bulk(values):
    return len(values)


# ---------------------------------------------------------------------------
# Histogramming (a collector consumer; paper §3.1, §4.4, §4.5)


@register_function
def _hist_scatter(hist, value):
    """Accumulate one histogram contribution; see ``histogram`` for forms.

    Visit accounting is the producer's job (the reduction loop tallies one
    visit per element; vectorized element kernels tally their inner counts
    with ``tally_inner``), so scattering tallies nothing extra.
    """
    if isinstance(value, tuple):
        b, w = value
        if isinstance(b, np.ndarray):
            np.add.at(hist, b, w)
        else:
            hist[b] += w
    else:
        if isinstance(value, np.ndarray):
            # Unweighted counts: per-bin totals are small integers, so
            # float accumulation is exact under any grouping and the
            # (much faster) bincount sum equals element-order np.add.at
            # bit for bit.  Weighted scatters above must keep np.add.at:
            # regrouping float weights would change the rounding.
            if value.size:
                hist += np.bincount(value, minlength=len(hist)).astype(
                    hist.dtype, copy=False
                )
        else:
            hist[value] += 1
    return hist


@register_function
def _seq_histogram(nbins, dtype_str, it: Iter):
    hist = np.zeros(nbins, dtype=np.dtype(dtype_str))
    scatter = closure(_hist_scatter)
    if isinstance(it, (IdxFlat, IdxNest)):
        # The scatter is order-equivalent over a whole chunk (np.add.at
        # performs the per-element additions in element order), so the
        # engine consumes entire chunks with one scatter call.
        handled, out = _engine.try_reduce(
            it, scatter, closure(_add), hist, None, chunk_op=scatter
        )
        if handled:
            return out
    return _seq_reduce(scatter, closure(_add), hist, None, it)


def histogram(nbins: int, it: Any, dtype=np.float64) -> np.ndarray:
    """``histogram``: collect elements into *nbins* counters.

    Elements may be: a bin index (count 1), a ``(bin, weight)`` pair, or
    -- for vectorized inner loops -- a pair of ndarrays ``(bins,
    weights)`` / an ndarray of bins, scattered with ``np.add.at``.

    Under a PAR/LOCAL hint each task builds a private histogram and the
    runtime adds them pairwise: "a distributed-parallel histogram performs
    a distributed reduction, which performs one threaded reduction per
    node, which sequentially builds one histogram per thread" (§3.4).
    """
    it = iterate(it)
    spec = ConsumeSpec(
        kind="reduce",
        seq_fn=closure(_seq_histogram, nbins, np.dtype(dtype).str),
        combine=closure(_add),
    )
    return dispatch(it, spec)


# ---------------------------------------------------------------------------
# Builds: materializing an iterator into an array / list


@register_function
def _append(acc: list, x):
    acc.append(x)
    return acc


@register_function
def _seq_collect(it: Iter) -> list:
    """Flatten into a list (the pack-into-array collector consumer)."""
    if isinstance(it, IdxFlat):
        if it.idx.bulk is None:
            handled, out = _engine.try_collect(it)
            if handled:
                return out
        values = it.idx.eval_all()
        return list(values)
    if isinstance(it, IdxNest):
        handled, out = _engine.try_collect(it)
        if handled:
            return out
    return _seq_reduce(closure(_append), closure(_add), [], None, it)


def collect_list(it: Any) -> list:
    """Materialize all innermost elements, in order, as a list."""
    it = iterate(it)
    if it.hint.value:  # parallel collect routes through the runtime
        spec = ConsumeSpec(
            kind="reduce",
            seq_fn=closure(_seq_collect),
            combine=closure(_add),
            ordered=True,  # list concat: associative, not commutative
        )
        return dispatch(it, spec)
    return _seq_collect(it)


@register_function
def _seq_build(it: Iter):
    """Materialize an iterator as a numpy array shaped by its domain."""
    if isinstance(it, IdxFlat):
        dom = it.idx.domain
        if it.idx.bulk is None:
            handled, out = _engine.try_build(it)
            if handled:
                return out
        values = it.idx.eval_all()
        arr = np.asarray(values)
        if isinstance(dom, Dim2) and arr.ndim >= 1 and arr.shape[0] == dom.size:
            # Row-major evaluation of a Dim2 domain: restore the 2-D shape
            # (trailing dims belong to the element values themselves).
            return arr.reshape(dom.h, dom.w, *arr.shape[1:])
        return arr
    return np.asarray(_seq_collect(it))


def build(it: Any) -> np.ndarray:
    """``build``: evaluate into a dense array (2-D for Dim2 domains).

    This is the comprehension consumer: ``[f(x) for x in xs]`` desugars to
    ``build(map(f, xs))``.
    """
    it = iterate(it)
    spec = ConsumeSpec(kind="build", seq_fn=closure(_seq_build))
    return dispatch(it, spec)
