"""Ordered indexed streams and their merge algebra.

An :class:`IndexedIter` is a flat iterator over ``(index, value)`` pairs
whose index set is strictly increasing.  Following "Fast Collection
Operations from Indexed Stream Fusion", keeping the index set ordered
makes the relational combinators -- :func:`intersect`,
:func:`union_merge`, :func:`lookup` -- expressible inside the same
constructor algebra as ``map``/``zip``: each one computes *position*
arrays with a sorted-merge kernel (:mod:`repro.core.engine.merge_kernels`)
and defers all value movement to a lazy gather indexer
(:func:`~repro.core.encodings.indexer.gather_idx`).

Structurally an ``IndexedIter`` is always ``zip_idx(key_idx, value_idx)``
wrapped in its own ``Iter`` subclass:

* it *is* an ``IdxFlat``, so every existing consumer, the fusion
  planner, the vectorizing engine, and the distributed driver handle it
  unchanged (the subclass only refines the structural plan key);
* slicing the zip slices keys and values in lockstep, and slicing a
  gathered value stream ships only the touched base span -- which is
  what makes merged streams partition like dense ones.

Duplicate indices in source pairs are canonicalized at construction with
last-occurrence-wins (dict ``update`` semantics), again as a lazy
position gather.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro.core.domains import Seq
from repro.core.encodings.indexer import (
    Idx,
    _extract_array,
    _extract_gather,
    _extract_index,
    _extract_range,
    _extract_zip,
    array_indexer,
    as_closure,
    gather_idx,
    index_indexer,
    map_idx,
    zip_idx,
)
from repro.core.engine.bulk_forms import ELEMENTWISE, bulk_form_of, register_bulk
from repro.core.engine.merge_kernels import (
    as_index_array,
    canonical_positions,
    check_strictly_increasing,
    intersect_positions,
    union_positions,
)
from repro.core.iterators.iter_type import IdxFlat, Iter, ParHint
from repro.core.iterators.transforms import iterate
from repro.serial import Closure, closure, register_function
from repro.serial.closures import _FUNC_TO_ID, resolve_env
from repro.serial.serializer import serializable


@serializable
@dataclass(frozen=True)
class IndexedIter(IdxFlat):
    """A flat iterator over ordered ``(index, value)`` pairs.

    Invariant: ``idx`` is ``zip_idx(key_idx, value_idx)`` over a common
    ``Seq`` domain, with ``key_idx`` enumerating a strictly increasing
    ``int64`` index set.  Everything an ``IdxFlat`` can do (slice, fuse,
    vectorize, partition) applies unchanged; the subclass carries the
    ordering contract and the merge algebra below.
    """

    def _components(self) -> tuple[Idx, Idx]:
        idx = self.idx
        extract = idx.extract
        src = idx.source
        if (
            not isinstance(extract, Closure)
            or _FUNC_TO_ID.get(_extract_zip) != extract.code_id
            or len(extract.env[0]) != 2
            or len(src.members) != 2
        ):
            raise TypeError("IndexedIter.idx must be a two-member zip")
        key = Idx(idx.domain, extract.env[0][0], src.members[0])
        val = Idx(idx.domain, extract.env[0][1], src.members[1])
        return key, val

    @property
    def key_idx(self) -> Idx:
        return self._components()[0]

    @property
    def value_idx(self) -> Idx:
        return self._components()[1]

    def key_array(self) -> np.ndarray:
        """Materialize the index set (construction-time, untallied)."""
        return materialize_index(self.key_idx)

    def to_dict(self) -> dict:
        """Reference semantics: the stream as an index -> value dict."""
        return dict(self.elements())


# ---------------------------------------------------------------------------
# Index-set materialization.  Merges need the operand key arrays eagerly;
# this evaluates a key indexer *without* meter tallies (construction-time
# work happens identically on every execution path and must not perturb
# the differential cost checks).


def materialize_index(idx: Idx) -> np.ndarray:
    n = idx.domain.size
    ctx = idx.source.context()
    cid = idx.extract.code_id if isinstance(idx.extract, Closure) else None
    if cid == _FUNC_TO_ID.get(_extract_array):
        return as_index_array(ctx[:n])
    if cid == _FUNC_TO_ID.get(_extract_index):
        return np.arange(n, dtype=np.int64) + int(ctx[0])
    if cid == _FUNC_TO_ID.get(_extract_range):
        start, step = ctx
        return start + step * np.arange(n, dtype=np.int64)
    if cid == _FUNC_TO_ID.get(_extract_gather):
        pos, _base_ctx = ctx
        base = Idx(Seq(int(pos.max()) + 1 if len(pos) else 0),
                   idx.extract.env[0], idx.source.base)
        return materialize_index(base)[pos]
    extract = idx.extract
    return as_index_array([extract(ctx, i) for i in range(n)])


# ---------------------------------------------------------------------------
# Registered merge combinators (the library's "program image")


@register_function
def _pair_add(p):
    return p[0] + p[1]


@register_function
def _pair_add_bulk(p):
    return np.add(p[0], p[1])


register_bulk(_pair_add, _pair_add_bulk, kind=ELEMENTWISE)


@register_function
def _merge_select(f, vvm):
    va, vb, m = vvm
    if m == 3:
        return f((va, vb))
    return va if m == 1 else vb


@register_function
def _merge_select_bulk(f, vvm):
    vas, vbs, ms = vvm
    bf = bulk_form_of(f.code_id) if isinstance(f, Closure) else None
    if bf is not None:
        both = bf.fn(*resolve_env(f.env), (vas, vbs))
    else:
        both = np.asarray([f((va, vb)) for va, vb in zip(vas, vbs)])
    return np.where(ms == 3, both, np.where(ms == 1, vas, vbs))


register_bulk(_merge_select, _merge_select_bulk, kind=ELEMENTWISE)


# ---------------------------------------------------------------------------
# Constructors


def _hint_of(*its: Iter) -> ParHint:
    return max((it.hint for it in its), default=ParHint.SEQ)


def _value_iter(values: Any) -> IdxFlat:
    vit = iterate(values)
    if not isinstance(vit, IdxFlat):
        raise TypeError(
            "indexed streams need random-access values, got "
            f"{type(vit).__name__}"
        )
    if not isinstance(vit.idx.domain, Seq):
        raise TypeError("indexed streams are 1-D (Seq domains only)")
    return vit


def indexed(values: Any) -> IndexedIter:
    """The dense indexed view of *values*: keys are ``0 .. n-1``.

    Key enumeration rides an
    :class:`~repro.core.sources.IndexOffsetSource` (16 wire bytes, stays
    global under block partitioning), so the dense view costs nothing
    over iterating the values directly.
    """
    vit = _value_iter(values)
    key = index_indexer(Seq(vit.idx.domain.size))
    return IndexedIter(zip_idx(key, vit.idx), vit.hint)


def indexed_pairs(keys: Any, values: Any) -> IndexedIter:
    """An indexed stream from parallel ``keys``/``values`` arrays.

    ``keys`` must be sorted ``int64``; duplicates are canonicalized with
    last-occurrence-wins (the dict semantics), implemented as a lazy
    position gather over the values.
    """
    keys = as_index_array(keys)
    vit = _value_iter(values)
    if len(keys) != vit.idx.domain.size:
        raise ValueError(
            f"{len(keys)} keys vs {vit.idx.domain.size} values"
        )
    pos = canonical_positions(keys)
    if len(pos) != len(keys):
        key_idx = array_indexer(keys[pos])
        val_idx = gather_idx(vit.idx, pos)
    else:
        key_idx = array_indexer(keys)
        val_idx = vit.idx
    return IndexedIter(zip_idx(key_idx, val_idx), vit.hint)


def as_indexed(x: Any) -> IndexedIter:
    """Coerce to an indexed stream (dense view for plain collections)."""
    if isinstance(x, IndexedIter):
        return x
    return indexed(x)


# ---------------------------------------------------------------------------
# The merge algebra


def map_values(
    f: Callable | Closure, stream: Any, bulk: Callable | Closure | None = None
) -> IndexedIter:
    """Map *f* over the values, keeping keys (and the subclass) intact.

    Unlike ``tri.map`` -- which sees pairs and returns a plain iterator
    -- this rebuilds the key/value zip, so the result is still an
    ``IndexedIter`` and still merges.
    """
    s = as_indexed(stream)
    key, val = s._components()
    return IndexedIter(zip_idx(key, map_idx(as_closure(f), val, f_bulk=bulk)),
                       s.hint)


def intersect(
    a: Any, b: Any, combine: Callable | Closure | None = None
) -> IndexedIter:
    """Keys present in both streams; values combined (default: pairs).

    The key merge gallops the smaller index set through the larger one
    eagerly; values stay lazy gathers, so distributing the result ships
    only the base rows each rank's key window actually touches.
    *combine*, if given, receives the ``(va, vb)`` pair (register a bulk
    form for it to keep the vectorized engine engaged).
    """
    a, b = as_indexed(a), as_indexed(b)
    ka, kb = a.key_array(), b.key_array()
    pa, pb = intersect_positions(ka, kb)
    val = zip_idx(gather_idx(a.value_idx, pa), gather_idx(b.value_idx, pb))
    if combine is not None:
        val = map_idx(as_closure(combine), val)
    return IndexedIter(zip_idx(array_indexer(ka[pa]), val), _hint_of(a, b))


def union_merge(
    a: Any, b: Any, combine: Callable | Closure | None = None
) -> IndexedIter:
    """All keys of either stream; shared keys combined (default: ``+``).

    One-sided keys keep their own value.  *combine* receives the
    ``(va, vb)`` pair, exactly as in :func:`intersect`.
    """
    a, b = as_indexed(a), as_indexed(b)
    ka, kb = a.key_array(), b.key_array()
    hint = _hint_of(a, b)
    if len(ka) == 0:
        return IndexedIter(b.idx, hint)
    if len(kb) == 0:
        return IndexedIter(a.idx, hint)
    keys, pa, pb, mask = union_positions(ka, kb)
    fc = as_closure(combine) if combine is not None else closure(_pair_add)
    val = map_idx(
        closure(_merge_select, fc),
        zip_idx(
            gather_idx(a.value_idx, pa),
            gather_idx(b.value_idx, pb),
            array_indexer(mask),
        ),
    )
    return IndexedIter(zip_idx(array_indexer(keys), val), hint)


def lookup(stream: Any, keys: Any) -> IndexedIter:
    """Probe *stream* at sorted query *keys*; absent keys drop out.

    This is the asymmetric intersect: the (usually small) probe set
    gallops through the stream's index set, and the result's values are
    a lazy gather of the stream's.
    """
    s = as_indexed(stream)
    ks = s.key_array()
    kq = check_strictly_increasing(np.unique(as_index_array(keys)))
    ps, _pq = intersect_positions(ks, kq)
    return IndexedIter(
        zip_idx(array_indexer(ks[ps]), gather_idx(s.value_idx, ps)),
        s.hint,
    )
