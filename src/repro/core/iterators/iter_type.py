"""The hybrid iterator ADT (paper §3.2).

::

    data Iter d a where
      IdxFlat  :: Idx d a            -> Iter d a
      StepFlat :: Step a             -> Iter Seq a
      IdxNest  :: Idx d (Iter Seq a) -> Iter Seq a
      StepNest :: Step (Iter Seq a)  -> Iter Seq a

An iterator is a loop nest with an indexer or a stepper at each nesting
level.  ``IdxFlat`` is the only constructor generic over domains (§3.3);
the nested/variable-length constructors always produce 1-D sequences,
because "removing arbitrary elements of a 2D array does not in general
yield a 2D array".

Each iterator also carries the parallelism flag of §3.4 ("We add a field
to Iter holding a flag to indicate what degree of parallelism to use"),
set by :func:`repro.core.hints.par` / :func:`repro.core.hints.localpar`.
"""
from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from enum import IntEnum
from typing import Iterator as PyIterator

from repro.core.domains import Domain
from repro.core.encodings.indexer import Idx
from repro.core.encodings.stepper import Step
from repro.serial.serializer import register_type, serializable


class ParHint(IntEnum):
    """How a skeleton should execute this iterator's outer loop."""

    SEQ = 0  # sequential (the default)
    LOCAL = 1  # threads within one node (``localpar``)
    PAR = 2  # distributed across nodes + threads (``par``)


def _encode_hint(obj: "ParHint", out: bytearray) -> None:
    out.append(int(obj))


def _decode_hint(buf: memoryview, offset: int):
    return ParHint(buf[offset]), offset + 1


register_type("repro.ParHint", ParHint, _encode_hint, _decode_hint)


class Iter:
    """Base class of the four iterator constructors."""

    hint: ParHint

    @property
    def domain(self) -> Domain:
        raise NotImplementedError

    def with_hint(self, hint: ParHint) -> "Iter":
        return dataclasses.replace(self, hint=hint)

    def elements(self) -> PyIterator:
        """Sequentially enumerate the innermost elements (flattened)."""
        raise NotImplementedError

    @property
    def constructor(self) -> str:
        return type(self).__name__


@serializable
@dataclass(frozen=True)
class IdxFlat(Iter):
    """A flat random-access loop over any domain: values by index."""

    idx: Idx
    hint: ParHint = ParHint.SEQ

    @property
    def domain(self) -> Domain:
        return self.idx.domain

    def elements(self) -> PyIterator:
        from repro.core import meter

        ctx = self.idx.source.context()
        extract = self.idx.extract
        for i in self.idx.domain.iter_indices():
            meter.tally_visits()
            yield extract(ctx, i)


@serializable
@dataclass(frozen=True)
class StepFlat(Iter):
    """A flat sequential, possibly variable-length loop."""

    step: Step
    hint: ParHint = ParHint.SEQ

    @property
    def domain(self) -> Domain:
        raise TypeError(
            "a StepFlat iterator has no statically known extent; its "
            "length is only discovered by running it"
        )

    def elements(self) -> PyIterator:
        return self.step.drive()


@serializable
@dataclass(frozen=True)
class IdxNest(Iter):
    """A random-access outer loop whose elements are inner iterators.

    This is the shape ``filter``/``concatMap`` produce from an indexable
    input: the outer level stays partitionable while irregularity is
    isolated in the inner iterators (§3.2's key idea).
    """

    idx: Idx  # elements are Iter
    hint: ParHint = ParHint.SEQ

    @property
    def domain(self) -> Domain:
        return self.idx.domain

    def elements(self) -> PyIterator:
        ctx = self.idx.source.context()
        extract = self.idx.extract
        for i in self.idx.domain.iter_indices():
            inner = extract(ctx, i)
            yield from inner.elements()


@serializable
@dataclass(frozen=True)
class StepNest(Iter):
    """A sequential outer loop whose elements are inner iterators."""

    step: Step  # yields Iter
    hint: ParHint = ParHint.SEQ

    @property
    def domain(self) -> Domain:
        raise TypeError(
            "a StepNest iterator has no statically known extent; its "
            "length is only discovered by running it"
        )

    def elements(self) -> PyIterator:
        for inner in self.step.drive():
            yield from inner.elements()
