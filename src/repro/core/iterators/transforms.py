"""Constructor-dispatched skeleton transforms (paper Fig. 2).

Each function inspects its input iterator's constructor ("what loop
structure was passed in") and executes the equation from Fig. 2 for that
constructor.  "A function's output loop structure is always determined
solely by its input loop structure", so pipelines of these calls always
reduce to a statically known nest of indexers and steppers -- which is
the whole fusion story.

Where the paper's compiler performs constructor-aware *inlining*, Python
performs constructor dispatch at iterator-construction time; the result
is the same fused structure, observable with
:func:`repro.core.fusion.report.analyze`.
"""
from __future__ import annotations

from typing import Any, Callable

import numpy as np

from repro.core.encodings.indexer import (
    Idx,
    array_indexer,
    as_closure,
    map_idx,
    whole_list_indexer,
    zip_idx,
)
from repro.core.encodings.stepper import (
    Step,
    concat_map_step,
    filter_step,
    map_step,
    unit_stepper,
    zip_step,
)
from repro.core.encodings.conversions import idx_to_step
from repro.core.iterators.iter_type import (
    IdxFlat,
    IdxNest,
    Iter,
    ParHint,
    StepFlat,
    StepNest,
)
from repro.serial import Closure, closure, register_function


def iterate(source: Any) -> Iter:
    """Coerce a value to an iterator.

    Arrays become partitionable indexer iterators; plain Python lists
    become whole-object iterators (they have no sliceable buffer); Iters
    pass through; other iterables are materialized first.
    """
    if isinstance(source, Iter):
        return source
    if isinstance(source, Idx):
        return IdxFlat(source)
    if isinstance(source, Step):
        return StepFlat(source)
    if hasattr(source, "__triolet_idx__"):
        # Data-plane handles (and anything else indexer-shaped) supply
        # their own indexer, whose source resolves on the executing rank.
        return IdxFlat(source.__triolet_idx__())
    if isinstance(source, np.ndarray):
        return IdxFlat(array_indexer(source))
    if isinstance(source, range):
        from repro.core.encodings.indexer import range_indexer

        return IdxFlat(range_indexer(len(source), source.start, source.step))
    if isinstance(source, list):
        return IdxFlat(whole_list_indexer(source))
    if hasattr(source, "__iter__"):
        return IdxFlat(whole_list_indexer(list(source)))
    raise TypeError(f"cannot iterate over {type(source).__name__}")


# ---------------------------------------------------------------------------
# Registered inner-iterator combinators (the library's "program image")


@register_function
def _map_inner(f, inner: Iter) -> Iter:
    return tmap(f, inner)


@register_function
def _filter_unit(pred, x) -> Iter:
    # filter over one element: a stepper yielding x or nothing.
    return StepFlat(filter_step(pred, unit_stepper(x)))


@register_function
def _filter_inner(pred, inner: Iter) -> Iter:
    return tfilter(pred, inner)


@register_function
def _concat_elem(f, x) -> Iter:
    return iterate(f(x))


@register_function
def _concat_inner(f, inner: Iter) -> Iter:
    return concat_map(f, inner)


@register_function
def _to_step_fn(it: Iter) -> Step:
    return to_step(it)


# ---------------------------------------------------------------------------
# Fig. 2 functions


def to_step(it: Iter) -> Step:
    """``toStep``: flatten any iterator into a sequential stepper."""
    if isinstance(it, IdxFlat):
        return idx_to_step(it.idx)
    if isinstance(it, StepFlat):
        return it.step
    if isinstance(it, IdxNest):
        return concat_map_step(closure(_to_step_fn), idx_to_step(it.idx))
    if isinstance(it, StepNest):
        return concat_map_step(closure(_to_step_fn), it.step)
    raise TypeError(f"not an iterator: {type(it).__name__}")


def tmap(f: Callable | Closure, it: Iter, bulk: Callable | Closure | None = None) -> Iter:
    """``map``: apply *f* to every innermost element.

    ``bulk`` optionally supplies the vectorized form of *f* (ndarray ->
    ndarray) used on the indexer fast path.
    """
    it = iterate(it)
    fc = as_closure(f)
    if isinstance(it, IdxFlat):
        return IdxFlat(map_idx(fc, it.idx, f_bulk=bulk), it.hint)
    if isinstance(it, StepFlat):
        return StepFlat(map_step(fc, it.step), it.hint)
    inner = closure(_map_inner, fc)
    if isinstance(it, IdxNest):
        return IdxNest(map_idx(inner, it.idx), it.hint)
    return StepNest(map_step(inner, it.step), it.hint)


def tzip(*its: Any) -> Iter:
    """``zip``: lockstep pairing (Fig. 2's two-equation dispatch).

    Flat indexers zip into a flat indexer, preserving parallelism; any
    variable-length operand forces a sequential stepper zip.
    """
    its = [iterate(x) for x in its]
    if len(its) < 2:
        raise ValueError("zip needs at least two iterators")
    if all(isinstance(it, IdxFlat) for it in its):
        hint = max((it.hint for it in its), default=ParHint.SEQ)
        return IdxFlat(zip_idx(*(it.idx for it in its)), hint)
    steps = [to_step(it) for it in its]
    zipped = steps[0]
    for s in steps[1:]:
        zipped = zip_step(zipped, s)
    if len(steps) > 2:
        zipped = map_step(closure(_flatten_pairs), zipped)
    return StepFlat(zipped)


@register_function
def _flatten_pairs(nested):
    # ((..(a, b), c), d) -> (a, b, c, d)
    out = []
    cur = nested
    while isinstance(cur, tuple) and len(cur) == 2 and isinstance(cur[0], tuple):
        out.append(cur[1])
        cur = cur[0]
    if isinstance(cur, tuple):
        out.extend(reversed(cur))
    else:
        out.append(cur)
    out.reverse()
    return tuple(out)


def tfilter(pred: Callable | Closure, it: Any) -> Iter:
    """``filter``: keep elements satisfying *pred* (Fig. 2).

    On an indexable input, filtering does **not** reassign indices: it
    produces zero-or-one-element inner steppers under a random-access
    outer level (``IdxNest``), keeping the outer loop partitionable.
    """
    it = iterate(it)
    pc = as_closure(pred)
    if isinstance(it, IdxFlat):
        return IdxNest(map_idx(closure(_filter_unit, pc), it.idx), it.hint)
    if isinstance(it, StepFlat):
        return StepFlat(filter_step(pc, it.step), it.hint)
    if isinstance(it, IdxNest):
        return IdxNest(map_idx(closure(_filter_inner, pc), it.idx), it.hint)
    return StepNest(map_step(closure(_filter_inner, pc), it.step), it.hint)


def concat_map(f: Callable | Closure, it: Any) -> Iter:
    """``concatMap``: map *f* (element -> collection) and flatten (Fig. 2).

    Adds exactly one level of loop nesting, preserving outer-loop
    parallelism for indexable inputs.
    """
    it = iterate(it)
    fc = as_closure(f)
    if isinstance(it, IdxFlat):
        return IdxNest(map_idx(closure(_concat_elem, fc), it.idx), it.hint)
    if isinstance(it, StepFlat):
        return StepNest(map_step(closure(_concat_elem, fc), it.step), it.hint)
    if isinstance(it, IdxNest):
        return IdxNest(map_idx(closure(_concat_inner, fc), it.idx), it.hint)
    return StepNest(map_step(closure(_concat_inner, fc), it.step), it.hint)
