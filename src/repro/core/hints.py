"""Parallelism hints (paper §2, §3.4).

"The library functions ``par`` and ``localpar`` set a flag in an iterator
to indicate that it should be parallelized across the entire system or
across a single node, respectively."  ``seq`` clears the flag.

Because library code cannot examine user code to decide whether a loop is
worth parallelizing, these hints are the user's only -- and sufficient --
parallelization lever.
"""
from __future__ import annotations

from typing import Any

from repro.core.iterators.iter_type import Iter, ParHint
from repro.core.iterators.transforms import iterate


def par(it: Any) -> Iter:
    """Parallelize across the whole cluster (nodes + cores)."""
    return iterate(it).with_hint(ParHint.PAR)


def localpar(it: Any) -> Iter:
    """Parallelize across the cores of a single node (shared memory)."""
    return iterate(it).with_hint(ParHint.LOCAL)


def seq(it: Any) -> Iter:
    """Force sequential execution (the default)."""
    return iterate(it).with_hint(ParHint.SEQ)
