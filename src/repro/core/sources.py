"""Data sources: the "potentially large data" half of an indexer.

Paper §3.5: "we reorganize indexers' lookup functions into a (potentially
large) data source and a value-extracting function ... Then, we extend the
indexer type with a method for extracting a data subset or slice.  An
indexer's slice method builds a new indexer whose data source holds only
the data used by the extracted slice."

A :class:`DataSource` therefore supports:

* ``context()`` -- the value handed to extractor closures (arrays, tuples
  of arrays, ...); cheap to obtain, used in inner loops in place;
* ``slice_outer(lo, hi)`` -- a new source holding only the data that outer
  positions ``[lo, hi)`` touch (numpy views locally; serialization then
  block-copies exactly the view);
* ``slice_inner(lo, hi)`` -- same for the second axis, supported by 2-D
  sources such as :class:`OuterProductSource`;
* ``wire_size()`` -- estimated serialized bytes, used when the planner
  weighs communication cost.

Sources are serializable ADTs, so shipping a sliced iterator to a node
ships exactly the sliced source.
"""
from __future__ import annotations

from abc import abstractmethod
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.serial.serializer import serializable
from repro.serial.sizeof import transitive_size


class DataSource:
    """Base class for indexer data sources."""

    @abstractmethod
    def context(self) -> Any:
        """The object extractor closures receive as their first argument."""

    @abstractmethod
    def slice_outer(self, lo: int, hi: int) -> "DataSource":
        """A source holding only outer positions ``[lo, hi)``, rebased."""

    def slice_inner(self, lo: int, hi: int) -> "DataSource":
        raise TypeError(f"{type(self).__name__} has no inner axis to slice")

    def wire_size(self) -> int:
        return transitive_size(self)


@serializable
@dataclass(frozen=True)
class EmptySource(DataSource):
    """Source of iterators that carry no data (e.g. pure index ranges)."""

    def context(self) -> None:
        return None

    def slice_outer(self, lo: int, hi: int) -> "EmptySource":
        return self

    def wire_size(self) -> int:
        return 1


@serializable
@dataclass(frozen=True)
class IndexOffsetSource(DataSource):
    """Source of index-valued iterators (``indices``/``arrayRange``).

    Carries the slice origin so that extracted indices stay *global* when
    the iterator is block-partitioned: the consumer of a transpose loop
    must see the original coordinates, not chunk-local ones.
    """

    outer: int = 0
    inner: int = 0

    def context(self) -> tuple[int, int]:
        return (self.outer, self.inner)

    def slice_outer(self, lo: int, hi: int) -> "IndexOffsetSource":
        return IndexOffsetSource(self.outer + lo, self.inner)

    def slice_inner(self, lo: int, hi: int) -> "IndexOffsetSource":
        return IndexOffsetSource(self.outer, self.inner + lo)

    def wire_size(self) -> int:
        return 16


@serializable
@dataclass(frozen=True)
class RangeSource(DataSource):
    """An affine integer range ``start + i*step``; costs O(1) bytes."""

    start: int
    step: int

    def context(self) -> tuple[int, int]:
        return (self.start, self.step)

    def slice_outer(self, lo: int, hi: int) -> "RangeSource":
        return RangeSource(self.start + lo * self.step, self.step)

    def wire_size(self) -> int:
        return 16


@serializable
@dataclass(frozen=True)
class ArraySource(DataSource):
    """A numpy array traversed along axis 0.

    ``slice_outer`` takes a *view*; no copy happens until (and unless) the
    sliced source is serialized for shipment, at which point exactly the
    view's bytes travel.
    """

    arr: np.ndarray

    def context(self) -> np.ndarray:
        return self.arr

    def slice_outer(self, lo: int, hi: int) -> "ArraySource":
        if not (0 <= lo <= hi <= len(self.arr)):
            raise IndexError(
                f"slice [{lo}, {hi}) out of range for array of {len(self.arr)}"
            )
        return ArraySource(self.arr[lo:hi])

    def wire_size(self) -> int:
        return 16 + self.arr.size * self.arr.dtype.itemsize


@serializable
@dataclass(frozen=True)
class GatherSource(DataSource):
    """A base source read at explicit sorted positions (a lazy gather).

    ``pos`` holds strictly increasing ``int64`` positions into ``base``'s
    outer axis; element *i* of the gathered source is ``base[pos[i]]``.
    This is how merged indexed streams (``intersect``/``union_merge``)
    defer value movement: the merge computes positions eagerly, the data
    follows lazily through the ordinary extract/slice machinery.

    Slicing is where "ship only touched index ranges" happens: because
    ``pos`` is sorted, outer positions ``[lo, hi)`` touch exactly the
    base span ``[pos[lo], pos[hi-1] + 1)``, so ``slice_outer`` rebases
    the position window and slices the base to that span alone.
    """

    pos: np.ndarray
    base: DataSource

    def context(self) -> tuple:
        return (self.pos, self.base.context())

    def slice_outer(self, lo: int, hi: int) -> "GatherSource":
        if not (0 <= lo <= hi <= len(self.pos)):
            raise IndexError(
                f"slice [{lo}, {hi}) out of range for gather of {len(self.pos)}"
            )
        p = self.pos[lo:hi]
        if len(p) == 0:
            return GatherSource(p, self.base.slice_outer(0, 0))
        blo, bhi = int(p[0]), int(p[-1]) + 1
        return GatherSource(p - blo, self.base.slice_outer(blo, bhi))

    def wire_size(self) -> int:
        return 16 + self.pos.size * self.pos.dtype.itemsize + self.base.wire_size()


@serializable
@dataclass(frozen=True)
class TupleSource(DataSource):
    """Several sources traversed in lockstep (the source of a ``zip``)."""

    members: tuple

    def context(self) -> tuple:
        return tuple(m.context() for m in self.members)

    def slice_outer(self, lo: int, hi: int) -> "TupleSource":
        return TupleSource(tuple(m.slice_outer(lo, hi) for m in self.members))

    def wire_size(self) -> int:
        return 2 + sum(m.wire_size() for m in self.members)


@serializable
@dataclass(frozen=True)
class ReplicatedSource(DataSource):
    """Data every task needs in full (a broadcast operand).

    Slicing is the identity: the paper's example is mri-q, where every
    pixel task needs the whole k-space sample array.
    """

    value: Any

    def context(self) -> Any:
        return self.value

    def slice_outer(self, lo: int, hi: int) -> "ReplicatedSource":
        return self

    def slice_inner(self, lo: int, hi: int) -> "ReplicatedSource":
        return self


@serializable
@dataclass(frozen=True)
class OuterProductSource(DataSource):
    """The source of ``outerproduct(u, v)``: a 2-D iterator's data.

    Outer positions select from ``u``'s source, inner positions from
    ``v``'s.  Slicing a 2-D block extracts *only* the ``u`` rows covering
    the block's vertical extent and the ``v`` rows covering its horizontal
    extent -- the two-line sgemm decomposition of paper §2.
    """

    u: DataSource
    v: DataSource

    def context(self) -> tuple:
        return (self.u.context(), self.v.context())

    def slice_outer(self, lo: int, hi: int) -> "OuterProductSource":
        return OuterProductSource(self.u.slice_outer(lo, hi), self.v)

    def slice_inner(self, lo: int, hi: int) -> "OuterProductSource":
        return OuterProductSource(self.u, self.v.slice_outer(lo, hi))

    def wire_size(self) -> int:
        return 2 + self.u.wire_size() + self.v.wire_size()


@serializable
@dataclass(frozen=True)
class WholeObjectSource(DataSource):
    """A source that cannot be partitioned: slicing ships everything.

    This models prior frameworks' behaviour ("sends each distributed task
    a copy of all objects that are referenced by its input", §2) and is
    what the Eden baseline uses.  Extraction still rebases indices so the
    results stay correct; only the wire cost differs.
    """

    value: Any
    offset: int = 0

    def context(self) -> tuple[Any, int]:
        return (self.value, self.offset)

    def slice_outer(self, lo: int, hi: int) -> "WholeObjectSource":
        return WholeObjectSource(self.value, self.offset + lo)
