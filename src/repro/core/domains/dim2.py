"""Two-dimensional domains: ``data Dim2 = Dim2 Int Int`` (paper §3.3).

An ``Index Dim2`` is an ``(Int, Int)`` pair ``(y, x)``, row-major.  The
outer (partitionable) axis is ``y``; 2-D *block* decompositions are built
by the partition layer (:mod:`repro.partition.block2d`) from row blocks of
an outer-product iterator, mirroring how the paper's sgemm splits work.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.core.domains.base import Domain, DomainMismatchError
from repro.serial.serializer import serializable


@serializable
@dataclass(frozen=True)
class Dim2(Domain):
    """A dense 2-D index space ``(0..h-1) x (0..w-1)``."""

    h: int
    w: int

    def __post_init__(self):
        if self.h < 0 or self.w < 0:
            raise ValueError(f"Dim2 extents must be non-negative: {self.h}x{self.w}")

    @property
    def size(self) -> int:
        return self.h * self.w

    @property
    def outer_extent(self) -> int:
        return self.h

    def iter_indices(self) -> Iterator[tuple[int, int]]:
        return ((y, x) for y in range(self.h) for x in range(self.w))

    def outer_block(self, lo: int, hi: int) -> "Dim2":
        self.check_outer_range(lo, hi)
        return Dim2(hi - lo, self.w)

    def inner_block(self, lo: int, hi: int) -> "Dim2":
        """Sub-domain over columns ``[lo, hi)`` (for 2-D blocking)."""
        if not (0 <= lo <= hi <= self.w):
            raise IndexError(f"inner block [{lo}, {hi}) out of range for w={self.w}")
        return Dim2(self.h, hi - lo)

    def intersect(self, other: Domain) -> "Dim2":
        if not isinstance(other, Dim2):
            raise DomainMismatchError(f"cannot zip Dim2 with {type(other).__name__}")
        return Dim2(min(self.h, other.h), min(self.w, other.w))


@serializable
@dataclass(frozen=True)
class Dim3(Domain):
    """A dense 3-D index space, indices ``(z, y, x)``, outer axis ``z``."""

    d: int
    h: int
    w: int

    def __post_init__(self):
        if self.d < 0 or self.h < 0 or self.w < 0:
            raise ValueError(
                f"Dim3 extents must be non-negative: {self.d}x{self.h}x{self.w}"
            )

    @property
    def size(self) -> int:
        return self.d * self.h * self.w

    @property
    def outer_extent(self) -> int:
        return self.d

    def iter_indices(self) -> Iterator[tuple[int, int, int]]:
        return (
            (z, y, x)
            for z in range(self.d)
            for y in range(self.h)
            for x in range(self.w)
        )

    def outer_block(self, lo: int, hi: int) -> "Dim3":
        self.check_outer_range(lo, hi)
        return Dim3(hi - lo, self.h, self.w)

    def intersect(self, other: Domain) -> "Dim3":
        if not isinstance(other, Dim3):
            raise DomainMismatchError(f"cannot zip Dim3 with {type(other).__name__}")
        return Dim3(min(self.d, other.d), min(self.h, other.h), min(self.w, other.w))
