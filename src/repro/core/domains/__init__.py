"""Index-space domains (paper §3.3)."""
from repro.core.domains.base import Domain, DomainMismatchError
from repro.core.domains.seq import Seq
from repro.core.domains.dim2 import Dim2, Dim3

__all__ = ["Domain", "DomainMismatchError", "Seq", "Dim2", "Dim3"]
