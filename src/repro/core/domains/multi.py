"""Multidimensional iteration helpers (paper §2, §3.3).

* ``rows(A)`` -- "reinterpret the two-dimensional array A as a
  one-dimensional iterator over array rows"; slicing it ships only the
  selected rows.
* ``outerproduct(u, v)`` -- "creates a 2D iterator pairing rows of A with
  rows of BT"; a 2-D block slice ships only the rows covering the block.
* ``array_range(lo, hi)`` -- the multidimensional index space iterator
  used by e.g. matrix transposition (§3.3).
* ``domain(x)`` / ``indices(d)`` -- the Fig. 6 helpers.
"""
from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.domains.base import Domain
from repro.core.domains.dim2 import Dim2, Dim3
from repro.core.domains.seq import Seq
from repro.core.encodings.indexer import (
    array_indexer,
    index_indexer,
    outer_product_idx,
)
from repro.core.iterators.iter_type import IdxFlat, Iter
from repro.core.iterators.transforms import iterate


def rows(A: np.ndarray) -> Iter:
    """Iterate over the rows of a 2-D (or higher) array.

    Each element is a row (a numpy view); the iterator's source slices by
    rows, so a distributed task receives exactly its rows.
    """
    if hasattr(A, "__triolet_idx__"):
        if A.ndim < 2:
            raise ValueError(f"rows() needs a >=2-D array, got {A.ndim}-D")
        return IdxFlat(A.__triolet_idx__())
    A = np.asarray(A)
    if A.ndim < 2:
        raise ValueError(f"rows() needs a >=2-D array, got {A.ndim}-D")
    return IdxFlat(array_indexer(A))


def cols(A: np.ndarray) -> Iter:
    """Iterate over the columns of a 2-D array (transposes a view)."""
    A = np.asarray(A)
    if A.ndim != 2:
        raise ValueError(f"cols() needs a 2-D array, got {A.ndim}-D")
    return IdxFlat(array_indexer(A.T))


def outerproduct(u: Any, v: Any) -> Iter:
    """All pairs ``(u[i], v[j])`` as a Dim2 iterator (paper §2's sgemm)."""
    ui, vi = iterate(u), iterate(v)
    if not (isinstance(ui, IdxFlat) and isinstance(vi, IdxFlat)):
        raise TypeError(
            "outerproduct requires indexable (random-access) operands; "
            "variable-length iterators cannot form a 2-D block grid"
        )
    return IdxFlat(outer_product_idx(ui.idx, vi.idx))


def seq_domain(n: int) -> Seq:
    return Seq(n)


def array_range(lo: tuple | int, hi: tuple | int | None = None) -> Iter:
    """Iterate over all indices of a (possibly multidimensional) range.

    ``array_range((0, 0), (h, w))`` yields ``(y, x)`` pairs in row-major
    order, as in the paper's transposition example.  Only zero-based
    ranges are supported (the paper's examples use no other kind).
    """
    if hi is None:
        hi = lo
        lo = 0 if isinstance(hi, int) else tuple(0 for _ in hi)
    lo_t = (lo,) if isinstance(lo, int) else tuple(lo)
    hi_t = (hi,) if isinstance(hi, int) else tuple(hi)
    if len(lo_t) != len(hi_t):
        raise ValueError(f"rank mismatch: {lo_t} vs {hi_t}")
    if any(l != 0 for l in lo_t):
        raise NotImplementedError("array_range supports zero-based ranges")
    extents = tuple(max(0, h) for h in hi_t)
    if len(extents) == 1:
        dom: Domain = Seq(extents[0])
    elif len(extents) == 2:
        dom = Dim2(*extents)
    elif len(extents) == 3:
        dom = Dim3(*extents)
    else:
        raise NotImplementedError(f"{len(extents)}-D domains not supported")
    return IdxFlat(index_indexer(dom))


def domain(x: Any) -> Domain:
    """The index space of an array or iterator (Fig. 6's ``domain``)."""
    if isinstance(x, Domain):
        return x
    if isinstance(x, np.ndarray):
        return Seq(len(x))
    if isinstance(x, Iter):
        return x.domain
    if hasattr(x, "__triolet_idx__"):
        return x.__triolet_idx__().domain
    if isinstance(x, (list, tuple)):
        return Seq(len(x))
    raise TypeError(f"no domain for {type(x).__name__}")


def indices(d: Domain | Any) -> Iter:
    """Iterate over a domain's indices (Fig. 6's ``indices(domain(..))``)."""
    return IdxFlat(index_indexer(domain(d)))
