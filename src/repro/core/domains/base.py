"""The ``Domain`` protocol (paper §3.3).

"We introduce a type class called Domain to characterize index spaces.
Each index space is a type that is a member of Domain."  A domain knows
its size, enumerates its indices, intersects with another domain (for
``zipWith``), and -- because Triolet distributes work by splitting the
*outermost* axis -- can report its outer extent and produce contiguous
outer sub-blocks.

Indices are always local to their domain (0-based); slicing a domain
rebases indices, and the paired :class:`~repro.core.sources.DataSource`
is sliced in lockstep so extractor functions never see global offsets.
"""
from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Iterator


class Domain(ABC):
    """An index space: the shape of a loop nest."""

    @property
    @abstractmethod
    def size(self) -> int:
        """Total number of indices."""

    @property
    @abstractmethod
    def outer_extent(self) -> int:
        """Length of the outermost axis (the partitionable one)."""

    @abstractmethod
    def iter_indices(self) -> Iterator[Any]:
        """Enumerate indices in canonical (row-major) order."""

    @abstractmethod
    def outer_block(self, lo: int, hi: int) -> "Domain":
        """The sub-domain covering outer positions ``[lo, hi)``, rebased."""

    @abstractmethod
    def intersect(self, other: "Domain") -> "Domain":
        """Pointwise intersection, for ``zipWith`` (§3.3)."""

    def check_outer_range(self, lo: int, hi: int) -> None:
        if not (0 <= lo <= hi <= self.outer_extent):
            raise IndexError(
                f"outer block [{lo}, {hi}) out of range for extent "
                f"{self.outer_extent}"
            )

    @property
    def is_empty(self) -> bool:
        return self.size == 0

    def __len__(self) -> int:
        return self.size


class DomainMismatchError(TypeError):
    """Two domains of incompatible dimensionality were combined."""
