"""One-dimensional domains: ``data Seq = Seq Int`` (paper §3.3).

An ``Index Seq`` is an ``Int``.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.core.domains.base import Domain, DomainMismatchError
from repro.serial.serializer import serializable


@serializable
@dataclass(frozen=True)
class Seq(Domain):
    """A counted 1-D index space ``0 .. n-1``."""

    n: int

    def __post_init__(self):
        if self.n < 0:
            raise ValueError(f"Seq length must be non-negative, got {self.n}")

    @property
    def size(self) -> int:
        return self.n

    @property
    def outer_extent(self) -> int:
        return self.n

    def iter_indices(self) -> Iterator[int]:
        return iter(range(self.n))

    def outer_block(self, lo: int, hi: int) -> "Seq":
        self.check_outer_range(lo, hi)
        return Seq(hi - lo)

    def intersect(self, other: Domain) -> "Seq":
        if not isinstance(other, Seq):
            raise DomainMismatchError(
                f"cannot zip Seq with {type(other).__name__}"
            )
        return Seq(min(self.n, other.n))
