"""Execution meters: measured loop statistics.

Triolet's performance story rests on facts about the executed loop
structure: how many element visits happen, how many stepper steps (the
encoding the paper found 2-5x slower when misused), how many temporary
collections get materialized, and how many passes run over data.  The
meter records those facts during *real* execution; the virtual cost model
and the fusion tests both read them.

A meter is installed per task with :func:`metered`; nesting restores the
outer meter.  When no meter is installed, tallying is a no-op.
"""
from __future__ import annotations

import contextvars
from contextlib import contextmanager
from dataclasses import dataclass


@dataclass
class CostMeter:
    """Counters for one metered region."""

    visits: int = 0  # innermost elements produced/consumed
    steps: int = 0  # stepper step-function invocations
    lookups: int = 0  # indexer lookup invocations
    materializations: int = 0  # temporary collections built
    materialized_bytes: int = 0
    passes: int = 0  # complete traversals of a collection

    def merge(self, other: "CostMeter") -> None:
        self.visits += other.visits
        self.steps += other.steps
        self.lookups += other.lookups
        self.materializations += other.materializations
        self.materialized_bytes += other.materialized_bytes
        self.passes += other.passes


_current: contextvars.ContextVar[CostMeter | None] = contextvars.ContextVar(
    "repro_cost_meter", default=None
)


@contextmanager
def metered(meter: CostMeter | None = None):
    """Install *meter* (or a fresh one) for the dynamic extent; yields it."""
    m = meter if meter is not None else CostMeter()
    token = _current.set(m)
    try:
        yield m
    finally:
        _current.reset(token)


def current_meter() -> CostMeter | None:
    return _current.get()


def tally_visits(n: int = 1) -> None:
    m = _current.get()
    if m is not None:
        m.visits += n


def tally_steps(n: int = 1) -> None:
    m = _current.get()
    if m is not None:
        m.steps += n


def tally_lookups(n: int = 1) -> None:
    m = _current.get()
    if m is not None:
        m.lookups += n


def tally_inner(n: int) -> None:
    """Tally a vectorized inner loop of *n* element visits.

    For use inside element kernels the library already counts once per
    outer element: tallies ``n - 1`` so the region totals exactly ``n``.
    """
    m = _current.get()
    if m is not None and n > 1:
        m.visits += n - 1


def tally_pass() -> None:
    m = _current.get()
    if m is not None:
        m.passes += 1


def tally_materialization(nbytes: int) -> None:
    m = _current.get()
    if m is not None:
        m.materializations += 1
        m.materialized_bytes += nbytes
