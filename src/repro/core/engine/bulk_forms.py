"""Registry of bulk (batched) forms for scalar element kernels.

A scalar element function runs once per element with the element as its
last argument; its *bulk form* runs once per chunk with a batch of
elements.  The two must be bit-identical per element -- the engine's
whole contract is that switching it on never changes a result, only the
number of Python-level dispatches.

Bulk forms come in two kinds:

* ``ELEMENTWISE``: one output element per input element.  Called as
  ``bulk(*env, batch)`` where ``batch`` mirrors the scalar element shape
  (an ndarray of stacked elements, or a tuple of stacked components for
  zip/outer-product elements); returns the stacked outputs.
* ``SEGMENTED``: each input element expands to a variable-length run
  (the paper's ``concatMap`` shape).  Called the same way; returns
  ``(values, lengths)`` where ``values`` concatenates every element's
  output in order and ``lengths[i]`` is element *i*'s count.  ``values``
  may itself be a tuple of parallel arrays (e.g. cutcp's
  ``(indices, potentials)`` pairs).

Registration is keyed on the scalar function's serialized closure code
id, so a bulk form registered once applies to every closure over that
function, on every rank, including re-executions after a crash.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.serial.closures import _FUNC_TO_ID, Closure

ELEMENTWISE = "elementwise"
SEGMENTED = "segmented"


@dataclass(frozen=True)
class BulkForm:
    """A batched kernel plus its expansion kind."""

    fn: Callable[..., Any]
    kind: str  # ELEMENTWISE | SEGMENTED


_REGISTRY: dict[str, BulkForm] = {}


def _code_id_of(scalar_fn) -> str:
    if isinstance(scalar_fn, str):
        return scalar_fn
    if isinstance(scalar_fn, Closure):
        return scalar_fn.code_id
    code_id = _FUNC_TO_ID.get(scalar_fn)
    if code_id is None:
        raise KeyError(
            f"{scalar_fn!r} is not a registered serializable function; "
            "register_function() it before registering a bulk form"
        )
    return code_id


def register_bulk(scalar_fn, bulk_fn: Callable, kind: str = ELEMENTWISE) -> Callable:
    """Attach ``bulk_fn`` as the batched form of ``scalar_fn``.

    ``scalar_fn`` may be the registered function itself, a closure over
    it, or its code id string.  Returns ``bulk_fn`` so this can be used
    as a decorator factory target.
    """
    if kind not in (ELEMENTWISE, SEGMENTED):
        raise ValueError(f"unknown bulk form kind: {kind!r}")
    _REGISTRY[_code_id_of(scalar_fn)] = BulkForm(bulk_fn, kind)
    return bulk_fn


def bulk_form_of(code_id: str) -> BulkForm | None:
    """The registered bulk form for a closure code id, or ``None``."""
    return _REGISTRY.get(code_id)
