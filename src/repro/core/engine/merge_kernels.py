"""Position-merge kernels for ordered indexed streams.

An :class:`~repro.core.iterators.indexed.IndexedIter` is an ordered
stream of ``(index, value)`` pairs whose index set is a strictly
increasing ``int64`` array.  The merge combinators (``intersect``,
``union_merge``, ``lookup``) never move *values* at construction time:
they compute **position arrays** into their operands' value streams, and
the value movement stays lazy (a gather indexer that fuses and slices
like any other).

The kernels here are the NumPy forms of the classic sorted-merge loops:

* :func:`intersect_positions` -- galloping intersection: the smaller
  index set is binary-searched into the larger one (``searchsorted``),
  which is the vectorized equivalent of the exponential-probe gallop of
  "Fast Collection Operations from Indexed Stream Fusion";
* :func:`union_positions` -- the ordered union with a per-element
  presence mask (1 = left only, 2 = right only, 3 = both); absent-side
  positions hold the clamped insertion point, which keeps the position
  arrays non-decreasing (the gather-slicing invariant) and in bounds;
* :func:`canonical_positions` -- last-occurrence-wins deduplication of a
  sorted-with-duplicates index array (dict ``update`` semantics).

All kernels are pure position arithmetic over ``int64`` arrays: they
tally nothing, because construction-time work happens identically on
every execution path (scalar, vectorized, distributed, faulted) and must
not perturb the differential CostMeter checks.
"""
from __future__ import annotations

import numpy as np


def as_index_array(keys) -> np.ndarray:
    """Coerce *keys* to a 1-D ``int64`` array (no copy when possible)."""
    arr = np.asarray(keys, dtype=np.int64)
    if arr.ndim != 1:
        raise ValueError(f"index sets must be 1-D, got shape {arr.shape}")
    return arr


def check_strictly_increasing(keys: np.ndarray) -> np.ndarray:
    """Validate an index set: sorted, no duplicates."""
    keys = as_index_array(keys)
    if len(keys) > 1 and not bool(np.all(keys[1:] > keys[:-1])):
        raise ValueError("index set must be strictly increasing")
    return keys


def canonical_positions(keys: np.ndarray) -> np.ndarray:
    """Positions of the *last* occurrence of each distinct sorted key.

    ``keys`` must be sorted (duplicates allowed).  Later pairs win, which
    matches building a dict from the pair stream in order.
    """
    keys = as_index_array(keys)
    if len(keys) > 1 and bool(np.any(keys[1:] < keys[:-1])):
        raise ValueError("index set must be sorted")
    if len(keys) == 0:
        return np.empty(0, dtype=np.int64)
    last = np.nonzero(keys[1:] != keys[:-1])[0]
    return np.append(last, len(keys) - 1).astype(np.int64)


def _members(haystack: np.ndarray, needles: np.ndarray):
    """For each needle: (insertion point, found-in-haystack mask)."""
    pos = np.searchsorted(haystack, needles).astype(np.int64)
    if len(haystack) == 0:
        return pos, np.zeros(len(needles), dtype=bool)
    hit = (pos < len(haystack)) & (
        haystack[np.minimum(pos, len(haystack) - 1)] == needles
    )
    return pos, hit


def member_positions(
    haystack: np.ndarray, needles: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Probe *needles* (any order, duplicates fine) into a strictly
    increasing *haystack*: ``(positions, hit mask)`` per needle.

    This is the probe half of :func:`intersect_positions`, exposed for
    consumers that need per-occurrence membership (e.g. testing every
    CSR entry's column against a sparse operand's index set).
    """
    haystack = check_strictly_increasing(haystack)
    needles = as_index_array(needles)
    return _members(haystack, needles)


def intersect_positions(
    a: np.ndarray, b: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Positions ``(pos_a, pos_b)`` of the common keys of two index sets.

    Both inputs must be strictly increasing.  Gallops the smaller set
    through the larger one, so the cost is ``O(min * log(max))``.
    """
    a = as_index_array(a)
    b = as_index_array(b)
    if len(a) > len(b):
        pb, pa = intersect_positions(b, a)
        return pa, pb
    pos_in_b, hit = _members(b, a)
    pos_a = np.nonzero(hit)[0].astype(np.int64)
    return pos_a, pos_in_b[hit]


def union_positions(
    a: np.ndarray, b: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Ordered union of two strictly increasing index sets.

    Returns ``(keys, pos_a, pos_b, mask)`` where ``keys`` is the sorted
    union, ``mask`` holds 1 (left only), 2 (right only) or 3 (both), and
    the position arrays point into ``a``/``b``.  Where a side is absent
    the position is its (in-bounds) insertion point, so the arrays stay
    *non-decreasing* -- the invariant ``GatherSource.slice_outer`` needs
    to rebase a window onto the touched base span -- and the mask gates
    which value is actually used.
    """
    a = as_index_array(a)
    b = as_index_array(b)
    keys = np.union1d(a, b).astype(np.int64)
    pos_a, in_a = _members(a, keys)
    pos_b, in_b = _members(b, keys)
    mask = in_a.astype(np.int64) + 2 * in_b.astype(np.int64)
    # searchsorted insertion points are non-decreasing in sorted keys;
    # only the end cap (== len) needs clamping to stay addressable.
    pos_a = np.minimum(pos_a, max(len(a) - 1, 0)).astype(np.int64)
    pos_b = np.minimum(pos_b, max(len(b) - 1, 0)).astype(np.int64)
    return keys, pos_a, pos_b, mask
