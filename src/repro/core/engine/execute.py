"""Chunked execution of compiled plans under the scalar consumer contract.

Each ``try_*`` function mirrors one scalar consumer in
:mod:`repro.core.iterators.reductions` and returns ``(handled, result)``:
``(False, None)`` means "no plan -- run the scalar loop", so callers
degrade gracefully and the engine never has to support everything.

Bit-identity rules (why each consumption mode exists):

* ``chunk_op`` (histogram scatter): ``np.add.at`` over a chunk's
  concatenated contributions performs the same additions in the same
  order as per-element scatters, so the whole chunk goes down at once.
* per-segment ``bulk_consume``: a plain ``concatMap`` nest is consumed
  by the scalar path as ``combine(acc, bulk_consume(segment))`` per
  outer element (the inner ``IdxFlat`` takes the indexer fast path), so
  the engine does exactly that over ``np.split`` views.
* everything else folds elements one ``op`` at a time -- the *values*
  come from vectorized extraction, but reduction order (and therefore
  float bit patterns) matches the scalar loop exactly.

Metering is batch-aware: one ``tally_visits(n)`` / ``tally_steps(n)``
per chunk, with the increments computed by the plan to equal what the
scalar loop would have tallied (see :mod:`repro.core.engine.plan`).
"""
from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Any

import numpy as np

from repro.core import meter
from repro.core.domains import Dim2
from repro.core.fusion import planner

_DEFAULT_CHUNK = 1024

_enabled = os.environ.get("REPRO_VECTORIZE", "1") != "0"
_chunk = int(os.environ.get("REPRO_CHUNK", str(_DEFAULT_CHUNK)))


def vectorization_enabled() -> bool:
    return _enabled


@contextmanager
def use_vectorization(flag: bool):
    """Force the engine on/off for a dynamic extent (tests, benchmarks)."""
    global _enabled
    prev, _enabled = _enabled, bool(flag)
    try:
        yield
    finally:
        _enabled = prev


def chunk_size() -> int:
    return _chunk


def set_chunk_size(n: int) -> int:
    """Set the chunk size; returns the previous value."""
    global _chunk
    if n < 1:
        raise ValueError("chunk size must be >= 1")
    prev, _chunk = _chunk, int(n)
    return prev


def _plan(it):
    if not _enabled:
        return None
    return planner.plan_for(it)


def _tally(batch) -> None:
    meter.tally_visits(batch.visits)
    if batch.steps:
        meter.tally_steps(batch.steps)


def try_reduce(
    it, op, combine, init, bulk_consume, chunk_op=None
) -> tuple[bool, Any]:
    """Vectorized counterpart of the ``_seq_reduce`` scalar loop.

    ``chunk_op``, when given, consumes a whole chunk's value tree in one
    call (the histogram scatter); it must be order-equivalent to folding
    the chunk's elements one at a time.
    """
    plan = _plan(it)
    if plan is None:
        return False, None
    acc = init
    for batch in plan.run_chunks(it, _chunk):
        _tally(batch)
        if chunk_op is not None:
            # Segmented batches scatter their concatenation: same
            # additions, same order as per-element scatters.
            acc = chunk_op(acc, batch.chunk_value())
        elif bulk_consume is not None and batch.segment_consume_ok:
            for seg in batch.segments():
                acc = combine(acc, bulk_consume(seg))
        else:
            for v in batch.elements():
                acc = op(acc, v)
    return True, acc


def try_collect(it) -> tuple[bool, list]:
    """Vectorized counterpart of ``_seq_collect``."""
    plan = _plan(it)
    if plan is None:
        return False, []
    out: list = []
    for batch in plan.run_chunks(it, _chunk):
        _tally(batch)
        out.extend(batch.elements())
    return True, out


def try_build(it) -> tuple[bool, Any]:
    """Vectorized counterpart of ``_seq_build`` (flat pipelines only)."""
    plan = _plan(it)
    if plan is None or plan.kind != "flat" or plan.segmented:
        return False, None
    dom = it.idx.domain
    if dom.size == 0:
        return False, None
    parts = []
    for batch in plan.run_chunks(it, _chunk):
        if not isinstance(batch.vals, np.ndarray):
            return False, None  # tuple elements: let np.asarray decide
        _tally(batch)
        parts.append(batch.vals)
    arr = parts[0] if len(parts) == 1 else np.concatenate(parts)
    if isinstance(dom, Dim2) and arr.ndim >= 1 and arr.shape[0] == dom.size:
        return True, arr.reshape(dom.h, dom.w, *arr.shape[1:])
    return True, arr
