"""Vectorized execution engine for fused iterator pipelines.

The paper's compiler turns a fused comprehension into one tight native
loop (§3.4); our scalar encodings preserve the *semantics* of that loop
but pay one Python closure call per element.  This package restores the
performance half of the story in pure NumPy:

* :mod:`bulk_forms` -- a registry mapping an element kernel's closure
  code id to its batched (NumPy) form, so apps opt in per kernel;
* :mod:`plan` -- compiles a fused ``Iter`` (map/zip/filter/concatMap
  over indexer sources) into a chunked batch plan, with ``filter`` as a
  boolean mask and ``concatMap`` as segment expansion;
* :mod:`execute` -- runs a plan chunk-by-chunk under the same consumer
  contract as the scalar loops, with batch-aware meter accounting (one
  ``tally_visits(n)`` per chunk) so the measured loop statistics -- and
  therefore the simulated timeline -- are bit-identical to the scalar
  path.

Plans are cached by pipeline *structure* (closure code ids + domain
kind) in :mod:`repro.core.fusion.planner`, so every SPMD rank and every
post-crash re-execution reuses the compiled plan.
"""
from repro.core.engine.bulk_forms import (
    ELEMENTWISE,
    SEGMENTED,
    BulkForm,
    bulk_form_of,
    register_bulk,
)
from repro.core.engine.execute import (
    chunk_size,
    set_chunk_size,
    try_build,
    try_collect,
    try_reduce,
    use_vectorization,
    vectorization_enabled,
)

__all__ = [
    "ELEMENTWISE",
    "SEGMENTED",
    "BulkForm",
    "bulk_form_of",
    "register_bulk",
    "chunk_size",
    "set_chunk_size",
    "try_build",
    "try_collect",
    "try_reduce",
    "use_vectorization",
    "vectorization_enabled",
]
