"""Compile a fused iterator pipeline into a chunked NumPy batch plan.

The scalar encodings evaluate a fused pipeline one Python closure call
per element; this module walks the same closure tree **once**, at plan
time, and emits a small tree of batch nodes that evaluate a whole chunk
of the domain per call:

* indexer leaves (``_extract_array`` / ``_extract_range`` /
  ``_extract_index``) become sliced/fancy-indexed reads;
* ``_extract_map`` becomes an application of the kernel's registered
  bulk form (:mod:`repro.core.engine.bulk_forms`);
* ``_extract_zip`` / ``_extract_outer`` route chunk positions to their
  member chains;
* ``filter`` nests (``_filter_unit``) become boolean masks and
  ``concatMap`` nests (``_concat_elem``) become segment expansion, with
  ``_map_inner`` stages applied to the flattened values.

A plan is **structural**: it never captures closure environments (the
data), only code ids and tree shape.  At run time each batch node
re-navigates the live closure tree positionally, so one cached plan
serves every slice of a partitioned pipeline, every SPMD rank, and
every re-execution after a crash.

Bit-identity contract: a plan applied to a pipeline must produce the
same values, in the same order, as the scalar loop -- and the meter
accounting below reproduces the scalar loops' counter totals exactly
(one batched tally per chunk instead of one Python call per element):

======================  ====================================================
pipeline shape          scalar counters reproduced per chunk of *n*
======================  ====================================================
flat chain              ``visits += n`` (kernel bulk forms tally their own
                        inner-loop visits, as their scalar forms do)
filter nest             ``steps += 2n`` (unit stepper: test + exhaust),
                        ``visits += kept``
concatMap nest          ``visits += sum(lengths)``
======================  ====================================================

Closures whose code id has no registered bulk form make the pipeline
*unsupported*: :func:`compile_iter` returns ``None`` and the caller
falls back to the scalar loop (graceful degradation, cached too).
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

import numpy as np

from repro.core.domains import Dim2, Seq
from repro.core.encodings import indexer as _ix
from repro.core.engine.bulk_forms import (
    ELEMENTWISE,
    SEGMENTED,
    BulkForm,
    bulk_form_of,
)
from repro.core.iterators import transforms as _tr
from repro.core.iterators.iter_type import IdxFlat, IdxNest
from repro.serial.closures import _FUNC_TO_ID, Closure, resolve_env


class Unsupported(Exception):
    """This pipeline has no bulk evaluation; use the scalar loop."""


def _cid(fn) -> str:
    return _FUNC_TO_ID[fn]


_ID_ARRAY = _cid(_ix._extract_array)
_ID_RANGE = _cid(_ix._extract_range)
_ID_INDEX = _cid(_ix._extract_index)
_ID_MAP = _cid(_ix._extract_map)
_ID_ZIP = _cid(_ix._extract_zip)
_ID_OUTER = _cid(_ix._extract_outer)
_ID_GATHER = _cid(_ix._extract_gather)
_ID_MAP_INNER = _cid(_tr._map_inner)
_ID_FILTER_UNIT = _cid(_tr._filter_unit)
_ID_CONCAT_ELEM = _cid(_tr._concat_elem)


# ---------------------------------------------------------------------------
# Value-tree helpers: batch values mirror the scalar element shape, so a
# zip pipeline yields a tuple of stacked arrays (possibly nested).


def select_vals(vals, mask):
    if isinstance(vals, tuple):
        return tuple(select_vals(v, mask) for v in vals)
    return vals[mask]


def take_val(vals, i):
    if isinstance(vals, tuple):
        return tuple(take_val(v, i) for v in vals)
    return vals[i]


def vals_len(vals) -> int:
    while isinstance(vals, tuple):
        vals = vals[0]
    return len(vals)


def split_vals(vals, offsets) -> list:
    """Split a value tree into per-segment value trees (views)."""
    if isinstance(vals, tuple):
        member_splits = [split_vals(v, offsets) for v in vals]
        return [
            tuple(parts[k] for parts in member_splits)
            for k in range(len(member_splits[0]))
        ]
    return np.split(vals, offsets)


# ---------------------------------------------------------------------------
# Batch nodes.  ``eval(ctx, cl, pos)`` evaluates chunk positions ``pos``
# (a slice for Seq, a ``(ys, xs)`` index pair for Dim2) against the live
# source context ``ctx`` and extractor closure ``cl``.


@dataclass(frozen=True)
class _ArrayNode:
    def eval(self, ctx, cl, pos):
        return ctx[pos]


@dataclass(frozen=True)
class _RangeNode:
    def eval(self, ctx, cl, pos):
        start, step = ctx
        if isinstance(pos, slice):
            return start + step * np.arange(pos.start, pos.stop)
        return start + step * pos


@dataclass(frozen=True)
class _IndexNode:
    def eval(self, ctx, cl, pos):
        outer, inner = ctx
        if isinstance(pos, slice):
            return np.arange(pos.start, pos.stop) + outer
        if isinstance(pos, tuple):
            ys, xs = pos
            return (ys + outer, xs + inner)
        return pos + outer


@dataclass(frozen=True)
class _MapNode:
    bulk: BulkForm
    child: Any

    def eval(self, ctx, cl, pos):
        f_cl, g_cl = cl.env[0], cl.env[1]
        return self.bulk.fn(*resolve_env(f_cl.env), self.child.eval(ctx, g_cl, pos))


@dataclass(frozen=True)
class _GatherNode:
    child: Any

    def eval(self, ctx, cl, pos):
        pos_arr, base_ctx = ctx
        return self.child.eval(base_ctx, cl.env[0], pos_arr[pos])


@dataclass(frozen=True)
class _ZipNode:
    children: tuple

    def eval(self, ctx, cl, pos):
        gs = cl.env[0]
        return tuple(
            child.eval(ctx[k], gs[k], pos)
            for k, child in enumerate(self.children)
        )


@dataclass(frozen=True)
class _OuterNode:
    u: Any
    v: Any

    def eval(self, ctx, cl, pos):
        ys, xs = pos
        gu, gv = cl.env[0], cl.env[1]
        return (self.u.eval(ctx[0], gu, ys), self.v.eval(ctx[1], gv, xs))


# ---------------------------------------------------------------------------
# Batches: one evaluated chunk plus its exact scalar-equivalent tallies.


@dataclass
class Batch:
    """One chunk of evaluated pipeline output.

    ``vals`` holds the chunk's values, concatenated for segmented
    shapes; ``lengths`` gives per-outer-element counts when elements are
    variable-length.  ``visits``/``steps`` are the meter increments the
    scalar loop would have tallied for this chunk (the element kernels'
    own inner tallies excluded -- bulk forms perform those themselves).
    """

    vals: Any
    lengths: np.ndarray | None
    n_outer: int
    visits: int
    steps: int = 0
    segmented: bool = False  # vals concatenated; elements() yields segments
    nest: bool = False  # vals flattened; elements() yields single values
    segment_consume_ok: bool = False  # per-segment bulk_consume == scalar

    def chunk_value(self):
        """The whole chunk as one value tree (for histogram scatter)."""
        return self.vals

    def segments(self) -> list:
        offsets = np.cumsum(self.lengths[:-1]) if len(self.lengths) else []
        return split_vals(self.vals, offsets)

    def elements(self) -> Iterator[Any]:
        """Yield exactly what the scalar loop's ``op`` would receive."""
        if self.segmented:
            yield from self.segments()
        elif self.nest:
            for i in range(vals_len(self.vals)):
                yield take_val(self.vals, i)
        else:
            for i in range(self.n_outer):
                yield take_val(self.vals, i)


# ---------------------------------------------------------------------------
# Plans


@dataclass(frozen=True)
class Plan:
    """A compiled, structure-only chunked evaluation strategy."""

    kind: str  # "flat" | "nest"
    root: Any = None  # batch-node tree for the (base) extractor chain
    dim2: bool = False
    use_idx_bulk: bool = False  # flat: chunk via the indexer's own bulk
    segmented: bool = False  # flat: root map's bulk form is SEGMENTED
    producer_kind: str = ""  # nest: "filter" | "concat"
    producer: BulkForm | None = None  # nest: pred/f bulk form
    n_stages: int = 0  # nest: _map_inner stages above the producer
    stage_bulks: tuple = ()  # outermost-first ELEMENTWISE bulk forms

    def describe(self) -> str:
        if self.kind == "flat":
            how = "idx-bulk" if self.use_idx_bulk else "compiled"
            shape = "segmented" if self.segmented else "elementwise"
            return f"flat/{how}/{shape}"
        return f"nest/{self.producer_kind}+{self.n_stages}map"

    # -- execution ---------------------------------------------------------

    def run_chunks(self, it, chunk: int) -> Iterator[Batch]:
        idx = it.idx
        ctx = idx.source.context()
        if self.kind == "flat":
            if self.use_idx_bulk:
                yield from self._run_idx_bulk(idx, chunk)
            elif self.dim2:
                yield from self._run_flat_dim2(idx, ctx, chunk)
            else:
                yield from self._run_flat_seq(idx, ctx, chunk)
        else:
            yield from self._run_nest(idx, ctx, chunk)

    def _run_idx_bulk(self, idx, chunk):
        n_total = idx.domain.size
        for lo in range(0, n_total, chunk):
            hi = min(lo + chunk, n_total)
            sub = idx.slice(lo, hi)
            vals = sub.bulk(sub.source.context(), sub.domain)
            yield Batch(vals, None, hi - lo, visits=hi - lo)

    def _run_flat_seq(self, idx, ctx, chunk):
        n_total = idx.domain.size
        extract = idx.extract
        for lo in range(0, n_total, chunk):
            hi = min(lo + chunk, n_total)
            out = self.root.eval(ctx, extract, slice(lo, hi))
            if self.segmented:
                vals, lengths = out
                yield Batch(
                    vals,
                    np.asarray(lengths, dtype=np.int64),
                    hi - lo,
                    visits=hi - lo,
                    segmented=True,
                )
            else:
                yield Batch(out, None, hi - lo, visits=hi - lo)

    def _run_flat_dim2(self, idx, ctx, chunk):
        dom = idx.domain
        w = dom.w
        n_total = dom.size
        extract = idx.extract
        for lo in range(0, n_total, chunk):
            hi = min(lo + chunk, n_total)
            flat = np.arange(lo, hi)
            pos = (flat // w, flat % w)
            vals = self.root.eval(ctx, extract, pos)
            yield Batch(vals, None, hi - lo, visits=hi - lo)

    def _run_nest(self, idx, ctx, chunk):
        # Peel the live closure chain to the stage/producer environments.
        cl = idx.extract
        stage_cls = []
        for _ in range(self.n_stages):
            stage_cls.append(cl.env[0].env[0])  # fc inside _map_inner
            cl = cl.env[1]
        prod_cl = cl.env[0].env[0]  # pred / f inside _filter_unit / _concat_elem
        base_cl = cl.env[1]
        n_total = idx.domain.size
        for lo in range(0, n_total, chunk):
            hi = min(lo + chunk, n_total)
            n = hi - lo
            base = self.root.eval(ctx, base_cl, slice(lo, hi))
            if self.producer_kind == "filter":
                mask = np.asarray(
                    self.producer.fn(*resolve_env(prod_cl.env), base), dtype=bool
                )
                vals = select_vals(base, mask)
                lengths = mask.astype(np.int64)
                visits, steps = int(mask.sum()), 2 * n
            else:
                vals, lengths = self.producer.fn(*resolve_env(prod_cl.env), base)
                lengths = np.asarray(lengths, dtype=np.int64)
                visits, steps = int(lengths.sum()), 0
            for stage_cl, bf in zip(reversed(stage_cls), reversed(self.stage_bulks)):
                vals = bf.fn(*resolve_env(stage_cl.env), vals)
            yield Batch(
                vals,
                lengths,
                n,
                visits=visits,
                steps=steps,
                nest=True,
                segment_consume_ok=(
                    self.producer_kind == "concat" and self.n_stages == 0
                ),
            )


# ---------------------------------------------------------------------------
# Compilation


def _compile_extract(cl: Closure):
    """Extractor closure -> (batch node, root-is-segmented)."""
    cid = cl.code_id
    if cid == _ID_ARRAY:
        return _ArrayNode(), False
    if cid == _ID_RANGE:
        return _RangeNode(), False
    if cid == _ID_INDEX:
        return _IndexNode(), False
    if cid == _ID_MAP:
        f = cl.env[0]
        if not isinstance(f, Closure):
            raise Unsupported("mapped function is not a closure")
        child, seg = _compile_extract(cl.env[1])
        if seg:
            raise Unsupported("segmented bulk form below another map")
        bf = bulk_form_of(f.code_id)
        if bf is None:
            raise Unsupported(f"no bulk form registered for {f.code_id}")
        return _MapNode(bf, child), bf.kind == SEGMENTED
    if cid == _ID_GATHER:
        # Gathered positions are a plain fancy index, so the child chain
        # evaluates position *arrays* instead of slices; segmentation
        # status passes through unchanged.
        child, seg = _compile_extract(cl.env[0])
        return _GatherNode(child), seg
    if cid == _ID_ZIP:
        children = []
        for g in cl.env[0]:
            node, seg = _compile_extract(g)
            if seg:
                raise Unsupported("segmented bulk form inside zip")
            children.append(node)
        return _ZipNode(tuple(children)), False
    if cid == _ID_OUTER:
        un, useg = _compile_extract(cl.env[0])
        vn, vseg = _compile_extract(cl.env[1])
        if useg or vseg:
            raise Unsupported("segmented bulk form inside outer product")
        return _OuterNode(un, vn), False
    raise Unsupported(f"no bulk evaluation for extractor {cid}")


def compile_iter(it) -> Plan | None:
    """Compile *it* into a chunked batch plan, or ``None`` (scalar path)."""
    if isinstance(it, IdxFlat):
        idx = it.idx
        if isinstance(idx.domain, Seq):
            if idx.bulk is not None:
                return Plan(kind="flat", use_idx_bulk=True)
            try:
                node, seg = _compile_extract(idx.extract)
            except Unsupported:
                return None
            return Plan(kind="flat", root=node, segmented=seg)
        if isinstance(idx.domain, Dim2):
            # Dim2 bulk closures evaluate whole 2-D domains at once and
            # do not chunk; only compiled chains are chunked here.
            try:
                node, seg = _compile_extract(idx.extract)
            except Unsupported:
                return None
            if seg:
                return None
            return Plan(kind="flat", root=node, dim2=True)
        return None
    if isinstance(it, IdxNest):
        idx = it.idx
        if not isinstance(idx.domain, Seq):
            return None
        cl = idx.extract
        stage_fs: list[Closure] = []
        while (
            isinstance(cl, Closure)
            and cl.code_id == _ID_MAP
            and isinstance(cl.env[0], Closure)
            and cl.env[0].code_id == _ID_MAP_INNER
        ):
            stage_fs.append(cl.env[0].env[0])
            cl = cl.env[1]
        if not (
            isinstance(cl, Closure)
            and cl.code_id == _ID_MAP
            and isinstance(cl.env[0], Closure)
            and cl.env[0].code_id in (_ID_FILTER_UNIT, _ID_CONCAT_ELEM)
        ):
            return None  # _filter_inner / _concat_inner nests stay scalar
        prod_outer = cl.env[0]
        inner_fn = prod_outer.env[0]
        if not isinstance(inner_fn, Closure):
            return None
        pb = bulk_form_of(inner_fn.code_id)
        if prod_outer.code_id == _ID_FILTER_UNIT:
            if pb is None or pb.kind != ELEMENTWISE:
                return None
            producer_kind = "filter"
        else:
            if pb is None or pb.kind != SEGMENTED:
                return None
            producer_kind = "concat"
        stage_bulks = []
        for fc in stage_fs:
            if not isinstance(fc, Closure):
                return None
            bf = bulk_form_of(fc.code_id)
            if bf is None or bf.kind != ELEMENTWISE:
                return None
            stage_bulks.append(bf)
        try:
            node, seg = _compile_extract(cl.env[1])
        except Unsupported:
            return None
        if seg:
            return None
        return Plan(
            kind="nest",
            root=node,
            producer_kind=producer_kind,
            producer=pb,
            n_stages=len(stage_fs),
            stage_bulks=tuple(stage_bulks),
        )
    return None
