"""Triolet's primary contribution: fusible hybrid iterators.

Subpackages follow the paper's §3:

* :mod:`repro.core.encodings` -- the four fusible virtual-data-structure
  encodings of Fig. 1 (indexer, stepper, fold, collector) and the
  conversions between them (§3.1).
* :mod:`repro.core.iterators` -- the hybrid ``Iter`` type with its four
  constructors and the constructor-dispatched skeletons of Fig. 2 (§3.2).
* :mod:`repro.core.domains` -- the ``Domain`` class hierarchy (Seq, Dim2,
  Dim3) generalizing iterators to multidimensional index spaces (§3.3).
* :mod:`repro.core.sources` -- data sources with ``slice`` methods so
  parallel loops ship each task only the array subset it uses (§3.5).
* :mod:`repro.core.hints` -- ``par``/``localpar`` parallelism hints (§3.4).
"""
