"""Fusion-plan cache: compile each pipeline *structure* exactly once.

The vectorized engine (:mod:`repro.core.engine.plan`) compiles a fused
pipeline by walking its extractor closure tree.  That walk is pure
structure -- code ids, tuple shapes, domain kind -- and never touches
closure environments, so every slice of a partitioned pipeline, every
SPMD rank, and every re-execution after a crash shares one plan.  This
module provides the cache keyed on that structure, plus counters the
parity tests use to prove a re-executed task *hits* the cache instead of
recompiling.

Unsupported pipelines are cached too (negative caching): deciding "use
the scalar loop" costs one dict lookup on every later encounter.
"""
from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.core.engine.plan import Plan, compile_iter
from repro.core.iterators.iter_type import IdxFlat, IdxNest
from repro.obs.spans import count as _obs_count
from repro.serial.closures import Closure

_OPAQUE = "·"  # env entry that is data, not structure

#: Upper bound on remembered unsupported-pipeline structures.  Positive
#: entries are bounded by the program's pipeline count, but a workload
#: generating many distinct unsupported shapes would otherwise grow the
#: negative set without limit.
NEGATIVE_CACHE_MAX = 256


@dataclass
class PlannerStats:
    """Cache traffic counters (reset with :func:`reset_planner`)."""

    hits: int = 0
    misses: int = 0
    compiled: int = 0  # misses that produced a plan
    unsupported: int = 0  # misses that fell back to the scalar loop
    negative_evictions: int = 0  # unsupported entries dropped by the LRU bound


_cache: dict = {}
_negative: OrderedDict = OrderedDict()  # structural key -> None, LRU-bounded
_stats = PlannerStats()


def _env_key(entry):
    if isinstance(entry, Closure):
        return _closure_key(entry)
    if isinstance(entry, tuple):
        return ("T",) + tuple(_env_key(e) for e in entry)
    return _OPAQUE


def _closure_key(cl: Closure):
    return ("C", cl.code_id) + tuple(_env_key(e) for e in cl.env)


def structural_key(it) -> tuple | None:
    """The pipeline's structure: constructor, domain kind, closure tree.

    ``None`` for stepper iterators (never bulk-evaluated).  Environment
    *data* (arrays, scalars) is reduced to an opaque marker: two
    pipelines over different data share a key, which is exactly what
    makes the cache useful across slices, ranks, and re-executions.
    """
    if not isinstance(it, (IdxFlat, IdxNest)):
        return None
    idx = it.idx
    return (
        type(it).__name__,
        type(idx.domain).__name__,
        _closure_key(idx.extract),
        _closure_key(idx.bulk) if idx.bulk is not None else None,
    )


def plan_for(it) -> Plan | None:
    """The cached plan for *it*'s structure (compiling on first sight)."""
    key = structural_key(it)
    if key is None:
        return None
    try:
        plan = _cache[key]
    except KeyError:
        pass
    else:
        _stats.hits += 1
        _obs_count("planner.hits")
        return plan
    if key in _negative:
        _negative.move_to_end(key)
        _stats.hits += 1
        _obs_count("planner.hits")
        return None
    _stats.misses += 1
    _obs_count("planner.misses")
    plan = compile_iter(it)
    if plan is None:
        _stats.unsupported += 1
        _obs_count("planner.unsupported")
        _negative[key] = None
        while len(_negative) > NEGATIVE_CACHE_MAX:
            _negative.popitem(last=False)
            _stats.negative_evictions += 1
            _obs_count("planner.negative_evictions")
    else:
        _stats.compiled += 1
        _obs_count("planner.compiled")
        _cache[key] = plan
    return plan


def warm(it) -> Plan | None:
    """Compile (or look up) *it*'s plan ahead of task execution.

    The runtime calls this once per parallel section before
    partitioning, so per-rank and re-executed tasks always hit the
    cache.
    """
    return plan_for(it)


def planner_stats() -> PlannerStats:
    """A snapshot of the cache counters."""
    return PlannerStats(
        hits=_stats.hits,
        misses=_stats.misses,
        compiled=_stats.compiled,
        unsupported=_stats.unsupported,
        negative_evictions=_stats.negative_evictions,
    )


_STAT_FIELDS = ("hits", "misses", "compiled", "unsupported",
                "negative_evictions")


def stats_snapshot() -> dict:
    """Plain-dict counter snapshot (for rank-local delta accounting on
    process-isolated transports)."""
    return {k: getattr(_stats, k) for k in _STAT_FIELDS}


def stats_delta(since: dict) -> dict:
    """Counter growth since a :func:`stats_snapshot`."""
    return {k: getattr(_stats, k) - since[k] for k in _STAT_FIELDS}


def merge_stats(delta: dict) -> None:
    """Fold a rank's counter delta into the process-global stats.

    Process-isolated transports run plan-cache consults in forked
    workers whose counters die with the worker; the driver carries the
    deltas back through ``rank_extras`` and merges them here so
    ``planner_stats()`` reports the same traffic on every backend.
    """
    for k in _STAT_FIELDS:
        setattr(_stats, k, getattr(_stats, k) + delta.get(k, 0))


def negative_cache_size() -> int:
    """Number of remembered unsupported structures (bounded by
    :data:`NEGATIVE_CACHE_MAX`)."""
    return len(_negative)


def reset_planner() -> None:
    """Clear both caches and zero the counters (test/bench isolation)."""
    _cache.clear()
    _negative.clear()
    _stats.hits = _stats.misses = _stats.compiled = 0
    _stats.unsupported = _stats.negative_evictions = 0


#: Per-run reset alias, mirroring :func:`repro.serial.reset`.
reset = reset_planner
