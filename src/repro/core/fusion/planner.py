"""Fusion-plan cache: compile each pipeline *structure* exactly once.

The vectorized engine (:mod:`repro.core.engine.plan`) compiles a fused
pipeline by walking its extractor closure tree.  That walk is pure
structure -- code ids, tuple shapes, domain kind -- and never touches
closure environments, so every slice of a partitioned pipeline, every
SPMD rank, and every re-execution after a crash shares one plan.  This
module provides the cache keyed on that structure, plus counters the
parity tests use to prove a re-executed task *hits* the cache instead of
recompiling.

Unsupported pipelines are cached too (negative caching): deciding "use
the scalar loop" costs one dict lookup on every later encounter.

Cache + counters live in a :class:`PlannerState`.  One process-global
default state preserves the historical behaviour (a one-shot run shares
one cache); a resident job server installs its *own* state with
:func:`use_state` so jobs from every tenant share the server's warmed
plans while unrelated runs (solo oracles, tests) stay isolated without
needing a global reset between jobs.  The active state is a plain module
global, not a context variable, deliberately: simulated ranks run in
worker threads, and the plans they consult must be the same plans the
installing driver sees.
"""
from __future__ import annotations

from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.core.engine.plan import Plan, compile_iter
from repro.core.iterators.iter_type import IdxFlat, IdxNest
from repro.obs.spans import count as _obs_count
from repro.serial.closures import Closure

_OPAQUE = "·"  # env entry that is data, not structure

#: Upper bound on remembered unsupported-pipeline structures.  Positive
#: entries are bounded by the program's pipeline count, but a workload
#: generating many distinct unsupported shapes would otherwise grow the
#: negative set without limit.
NEGATIVE_CACHE_MAX = 256


@dataclass
class PlannerStats:
    """Cache traffic counters (reset with :func:`reset_planner`)."""

    hits: int = 0
    misses: int = 0
    compiled: int = 0  # misses that produced a plan
    unsupported: int = 0  # misses that fell back to the scalar loop
    negative_evictions: int = 0  # unsupported entries dropped by the LRU bound


_STAT_FIELDS = ("hits", "misses", "compiled", "unsupported",
                "negative_evictions")


@dataclass
class PlannerState:
    """One plan cache plus its traffic counters.

    Owns everything :func:`plan_for` touches, so whoever holds the state
    object -- the process (default) or a resident
    :class:`~repro.service.JobServer` -- owns plan-cache lifetime.
    """

    cache: dict = field(default_factory=dict)
    #: structural key -> None, LRU-bounded negative cache
    negative: OrderedDict = field(default_factory=OrderedDict)
    stats: PlannerStats = field(default_factory=PlannerStats)

    def reset(self) -> None:
        self.cache.clear()
        self.negative.clear()
        self.stats = PlannerStats()

    def snapshot(self) -> dict:
        return {k: getattr(self.stats, k) for k in _STAT_FIELDS}


#: The process-default state (one-shot runs, tests, legacy callers).
_GLOBAL_STATE = PlannerState()
_active: PlannerState = _GLOBAL_STATE


def current_state() -> PlannerState:
    """The state every planner function currently operates on."""
    return _active


@contextmanager
def use_state(state: PlannerState):
    """Install *state* as the active plan cache for the dynamic extent.

    Reentrant (installing the already-active state is a no-op swap) and
    visible from simulated rank threads, which is what lets a job server
    serve its shared cache to every section a job runs.
    """
    global _active
    prev = _active
    _active = state
    try:
        yield state
    finally:
        _active = prev


def _env_key(entry):
    if isinstance(entry, Closure):
        return _closure_key(entry)
    if isinstance(entry, tuple):
        return ("T",) + tuple(_env_key(e) for e in entry)
    return _OPAQUE


def _closure_key(cl: Closure):
    return ("C", cl.code_id) + tuple(_env_key(e) for e in cl.env)


def structural_key(it) -> tuple | None:
    """The pipeline's structure: constructor, domain kind, closure tree.

    ``None`` for stepper iterators (never bulk-evaluated).  Environment
    *data* (arrays, scalars) is reduced to an opaque marker: two
    pipelines over different data share a key, which is exactly what
    makes the cache useful across slices, ranks, and re-executions.
    """
    if not isinstance(it, (IdxFlat, IdxNest)):
        return None
    idx = it.idx
    return (
        type(it).__name__,
        type(idx.domain).__name__,
        _closure_key(idx.extract),
        _closure_key(idx.bulk) if idx.bulk is not None else None,
    )


def plan_for(it) -> Plan | None:
    """The cached plan for *it*'s structure (compiling on first sight)."""
    key = structural_key(it)
    if key is None:
        return None
    st = _active
    try:
        plan = st.cache[key]
    except KeyError:
        pass
    else:
        st.stats.hits += 1
        _obs_count("planner.hits")
        return plan
    if key in st.negative:
        st.negative.move_to_end(key)
        st.stats.hits += 1
        _obs_count("planner.hits")
        return None
    st.stats.misses += 1
    _obs_count("planner.misses")
    plan = compile_iter(it)
    if plan is None:
        st.stats.unsupported += 1
        _obs_count("planner.unsupported")
        st.negative[key] = None
        while len(st.negative) > NEGATIVE_CACHE_MAX:
            st.negative.popitem(last=False)
            st.stats.negative_evictions += 1
            _obs_count("planner.negative_evictions")
    else:
        st.stats.compiled += 1
        _obs_count("planner.compiled")
        st.cache[key] = plan
    return plan


def warm(it) -> Plan | None:
    """Compile (or look up) *it*'s plan ahead of task execution.

    The runtime calls this once per parallel section before
    partitioning, so per-rank and re-executed tasks always hit the
    cache.
    """
    return plan_for(it)


def planner_stats() -> PlannerStats:
    """A snapshot of the active state's cache counters."""
    s = _active.stats
    return PlannerStats(
        hits=s.hits,
        misses=s.misses,
        compiled=s.compiled,
        unsupported=s.unsupported,
        negative_evictions=s.negative_evictions,
    )


def stats_snapshot() -> dict:
    """Plain-dict counter snapshot (for rank-local delta accounting on
    process-isolated transports)."""
    return _active.snapshot()


def stats_delta(since: dict) -> dict:
    """Counter growth since a :func:`stats_snapshot`."""
    return {k: getattr(_active.stats, k) - since[k] for k in _STAT_FIELDS}


def merge_stats(delta: dict) -> None:
    """Fold a rank's counter delta into the active state's stats.

    Process-isolated transports run plan-cache consults in forked
    workers whose counters die with the worker; the driver carries the
    deltas back through ``rank_extras`` and merges them here so
    ``planner_stats()`` reports the same traffic on every backend.
    """
    st = _active.stats
    for k in _STAT_FIELDS:
        setattr(st, k, getattr(st, k) + delta.get(k, 0))


def negative_cache_size() -> int:
    """Number of remembered unsupported structures (bounded by
    :data:`NEGATIVE_CACHE_MAX`)."""
    return len(_active.negative)


def reset_planner() -> None:
    """Clear the *active* state's caches and zero its counters.

    Compatibility shim: one-shot runs and tests reset the process-global
    default state exactly as before.  A resident server never calls
    this -- it owns a private :class:`PlannerState` instead.
    """
    _active.reset()


#: Per-run reset alias, mirroring :func:`repro.serial.reset`.
reset = reset_planner
