"""Fusion observation tools (the analogue of the paper's §3.2 optimizer)."""
from repro.core.fusion.planner import (
    PlannerStats,
    plan_for,
    planner_stats,
    reset_planner,
    structural_key,
    warm,
)
from repro.core.fusion.report import FusionReport, analyze, closure_depth

__all__ = [
    "FusionReport",
    "analyze",
    "closure_depth",
    "PlannerStats",
    "plan_for",
    "planner_stats",
    "reset_planner",
    "structural_key",
    "warm",
]
