"""Fusion observation tools (the analogue of the paper's §3.2 optimizer)."""
from repro.core.fusion.planner import (
    NEGATIVE_CACHE_MAX,
    PlannerState,
    PlannerStats,
    current_state,
    negative_cache_size,
    plan_for,
    planner_stats,
    reset_planner,
    structural_key,
    use_state,
    warm,
)
from repro.core.fusion.report import FusionReport, analyze, closure_depth

__all__ = [
    "FusionReport",
    "analyze",
    "closure_depth",
    "NEGATIVE_CACHE_MAX",
    "PlannerState",
    "PlannerStats",
    "current_state",
    "negative_cache_size",
    "plan_for",
    "planner_stats",
    "reset_planner",
    "structural_key",
    "use_state",
    "warm",
]
