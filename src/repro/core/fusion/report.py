"""Fusion analysis: observe the loop structure skeleton calls produced.

Triolet's compiler fuses by constructor-aware inlining; here the same
constructor dispatch happens at iterator-construction time, so the fused
loop structure is a concrete object we can inspect.  ``analyze`` reports:

* the nest shape (one entry per nesting level: ``Idx`` or ``Step``);
* whether the outer level is partitionable (random access);
* the extractor-composition depth (how many skeleton stages were fused
  into the loop body);
* the wire size of the data sources a task slice would carry.

Tests use this to assert the exact §3.2 reduction -- e.g. that
``sum(filter(f, xs))`` runs as one ``sumIdx(mapIdx(sumStep . filterStep
f . unitStep))`` pass with zero materialized temporaries.
"""
from __future__ import annotations

from dataclasses import dataclass

from repro.core.iterators.iter_type import (
    IdxFlat,
    IdxNest,
    Iter,
    StepFlat,
    StepNest,
)
from repro.serial import Closure


@dataclass(frozen=True)
class FusionReport:
    """Static facts about a fused iterator pipeline."""

    nest_shape: tuple[str, ...]  # outermost-first: "Idx" / "Step"
    constructor: str  # outermost constructor name
    partitionable: bool  # can the outer loop be block-split?
    fused_stages: int  # closures composed into the loop body
    source_bytes: int  # wire size of the data sources

    @property
    def depth(self) -> int:
        return len(self.nest_shape)

    def describe(self) -> str:
        nest = " of ".join(self.nest_shape)
        par = "partitionable" if self.partitionable else "sequential-only"
        return (
            f"{self.constructor}: {nest} nest, {par}, "
            f"{self.fused_stages} fused stages, "
            f"{self.source_bytes} source bytes"
        )


def closure_depth(c) -> int:
    """Number of closures reachable in a closure's environment tree."""
    if not isinstance(c, Closure):
        return 0
    total = 1
    stack = [c.env]
    while stack:
        item = stack.pop()
        if isinstance(item, Closure):
            total += 1
            stack.append(item.env)
        elif isinstance(item, (tuple, list)):
            stack.extend(item)
    return total


def _nest_shape(it: Iter) -> tuple[str, ...]:
    if isinstance(it, IdxFlat):
        return ("Idx",)
    if isinstance(it, StepFlat):
        return ("Step",)
    if isinstance(it, IdxNest):
        return ("Idx",) + _probe_inner_shape(it)
    if isinstance(it, StepNest):
        return ("Step",) + _probe_inner_shape(it)
    raise TypeError(f"not an iterator: {type(it).__name__}")


def _probe_inner_shape(it: Iter) -> tuple[str, ...]:
    """Inner loop structure, probed from the first inner iterator.

    Inner structure is data-independent for library-built pipelines (the
    same combinator builds every inner iterator), so probing one element
    is sound.  Empty outer loops report an unknown single level.
    """
    try:
        if isinstance(it, IdxNest):
            if it.idx.domain.size == 0:
                return ("?",)
            first = next(iter(it.idx.domain.iter_indices()))
            inner = it.idx.extract(it.idx.source.context(), first)
            return _nest_shape(inner)
        if isinstance(it, StepNest):
            for inner in it.step.drive():
                return _nest_shape(inner)
            return ("?",)
    except Exception:
        return ("?",)
    return ("?",)


def analyze(it: Iter) -> FusionReport:
    """Build a :class:`FusionReport` for a constructed pipeline."""
    shape = _nest_shape(it)
    if isinstance(it, (IdxFlat, IdxNest)):
        fused = closure_depth(it.idx.extract)
        src_bytes = it.idx.source.wire_size()
    else:
        fused = closure_depth(it.step.stepf)
        src_bytes = 0
    return FusionReport(
        nest_shape=shape,
        constructor=type(it).__name__,
        partitionable=isinstance(it, (IdxFlat, IdxNest)),
        fused_stages=fused,
        source_bytes=src_bytes,
    )
