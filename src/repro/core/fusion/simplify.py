"""Symbolic constructor-dispatch derivations (the §3.2 walkthrough).

The paper shows the optimizer reducing::

    sum (filter f (IdxFlat ys))
      = sum (IdxNest (mapIdx (StepFlat . filterStep f . unitStep) ys))
      = sumIdx (mapIdx (sum . StepFlat . filterStep f . unitStep) ys)
      = sumIdx (mapIdx (sumStep . filterStep f . unitStep) ys)

This module performs that reduction *symbolically*, by replaying the
Fig. 2 equations over constructor terms.  It exists for two reasons:
tests assert the library's runtime dispatch agrees with the published
equations term-for-term, and ``derive()`` renders the chain for
documentation.

Terms are tiny ASTs: ``("IdxFlat", payload)`` etc., with payloads that
are opaque strings (source names) or nested op descriptions.
"""
from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Term:
    """A symbolic iterator/loop expression."""

    head: str
    args: tuple = ()

    def __str__(self) -> str:
        if not self.args:
            return self.head
        inner = " ".join(
            f"({a})" if isinstance(a, Term) and a.args else str(a)
            for a in self.args
        )
        return f"{self.head} {inner}"


def T(head: str, *args) -> Term:
    return Term(head, tuple(args))


CONSTRUCTORS = ("IdxFlat", "StepFlat", "IdxNest", "StepNest")


def apply_skeleton(op: str, term: Term, fn: str = "f") -> Term:
    """One Fig. 2 equation: apply *op* to a constructor term."""
    if term.head not in CONSTRUCTORS:
        raise ValueError(f"not an iterator term: {term}")
    payload = term.args[0]
    if op == "filter":
        if term.head == "IdxFlat":
            return T(
                "IdxNest",
                T("mapIdx", T("compose", "StepFlat", f"filterStep {fn}", "unitStep"), payload),
            )
        if term.head == "StepFlat":
            return T("StepFlat", T(f"filterStep {fn}", payload))
        if term.head == "IdxNest":
            return T("IdxNest", T("mapIdx", T(f"filter {fn}"), payload))
        return T("StepNest", T("mapStep", T(f"filter {fn}"), payload))
    if op == "concatMap":
        if term.head == "IdxFlat":
            return T("IdxNest", T("mapIdx", fn, payload))
        if term.head == "StepFlat":
            return T("StepNest", T("mapStep", fn, payload))
        if term.head == "IdxNest":
            return T("IdxNest", T("mapIdx", T(f"concatMap {fn}"), payload))
        return T("StepNest", T("mapStep", T(f"concatMap {fn}"), payload))
    if op == "map":
        if term.head in ("IdxFlat", "IdxNest"):
            inner = fn if term.head == "IdxFlat" else f"map {fn}"
            return T(term.head, T("mapIdx", inner, payload))
        inner = fn if term.head == "StepFlat" else f"map {fn}"
        return T(term.head, T("mapStep", inner, payload))
    raise ValueError(f"unknown skeleton: {op!r}")


def apply_consumer(consumer: str, term: Term) -> Term:
    """A Fig. 2 consumer equation (``sum``/``collect``-style)."""
    if term.head == "IdxFlat":
        return T(f"{consumer}Idx", *term.args)
    if term.head == "StepFlat":
        return T(f"{consumer}Step", *term.args)
    if term.head == "IdxNest":
        # sum (IdxNest xss) = sumIdx (mapIdx sum xss): push the consumer
        # into the inner level, then flatten the nested map.
        return _push_into_map(consumer, "Idx", term.args[0])
    if term.head == "StepNest":
        return _push_into_map(consumer, "Step", term.args[0])
    raise ValueError(f"not an iterator term: {term}")


def _push_into_map(consumer: str, level: str, payload: Term) -> Term:
    """``sumIdx (mapIdx (sum . inner) ...)`` with the inner consumer
    simplified against the inner constructor when it is known."""
    if (
        isinstance(payload, Term)
        and payload.head == f"map{level}"
        and len(payload.args) == 2
    ):
        inner_body, source = payload.args
        reduced = _reduce_inner(consumer, inner_body)
        return T(f"{consumer}{level}", T(f"map{level}", reduced, source))
    return T(f"{consumer}{level}", T(f"map{level}", consumer, payload))


def _reduce_inner(consumer: str, body) -> Term | str:
    """Simplify ``consumer . body`` when body's constructor is visible.

    ``sum . (StepFlat . filterStep f . unitStep)`` becomes
    ``sumStep . filterStep f . unitStep`` -- the paper's final step.
    """
    if isinstance(body, Term) and body.head == "compose":
        parts = list(body.args)
        if parts and parts[0] == "StepFlat":
            return T("compose", f"{consumer}Step", *parts[1:])
        if parts and parts[0] == "IdxFlat":
            return T("compose", f"{consumer}Idx", *parts[1:])
    if isinstance(body, Term):
        return T("compose", consumer, body)
    return T("compose", consumer, str(body))


def derive(source: str, pipeline: list[tuple], consumer: str) -> list[str]:
    """Replay a pipeline symbolically; returns the derivation chain.

    ``pipeline`` is a list of ``(op, fn_name)`` pairs applied in order to
    ``IdxFlat source``; ``consumer`` is applied last.  Each returned line
    is one rewriting step, the paper's §3.2 presentation.
    """
    term = T("IdxFlat", source)
    ops = " . ".join(
        f"{op} {fn}" for op, fn in reversed(pipeline)
    )
    chain = [f"{consumer} ({ops} ({term}))" if pipeline else f"{consumer} ({term})"]
    for op, fn in pipeline:
        term = apply_skeleton(op, term, fn)
        remaining = pipeline[pipeline.index((op, fn)) + 1 :]
        if remaining:
            rest = " . ".join(f"{o} {f}" for o, f in reversed(remaining))
            chain.append(f"{consumer} ({rest} ({term}))")
        else:
            chain.append(f"{consumer} ({term})")
    final = apply_consumer(consumer, term)
    chain.append(str(final))
    return chain


def final_form(source: str, pipeline: list[tuple], consumer: str) -> str:
    """Just the fully reduced term."""
    return derive(source, pipeline, consumer)[-1]
