"""Figure 1: the feature matrix of fusible virtual-data-structure encodings.

The matrix is *derived* from capability declarations on the encodings, and
``benchmarks/test_fig1_features.py`` verifies each cell by probing the real
implementation (e.g. "Indexer supports parallel" is checked by actually
slicing an indexer and evaluating the slices independently).

Legend: ``YES`` usable and fusible; ``SLOW`` usable but much less
efficient than a handwritten loop; ``NO`` unusable or output not fusible.
"""
from __future__ import annotations

from enum import Enum


class Support(Enum):
    YES = "yes"
    NO = "no"
    SLOW = "slow"


FEATURES = ("parallel", "zip", "filter", "nested_traversal", "mutation")

#: Fig. 1, row by row.
FEATURE_MATRIX: dict[str, dict[str, Support]] = {
    "Indexer": {
        "parallel": Support.YES,
        "zip": Support.YES,
        "filter": Support.NO,
        "nested_traversal": Support.NO,
        "mutation": Support.NO,
    },
    "Stepper": {
        "parallel": Support.NO,
        "zip": Support.YES,
        "filter": Support.YES,
        "nested_traversal": Support.SLOW,
        "mutation": Support.NO,
    },
    "Fold": {
        "parallel": Support.NO,
        "zip": Support.NO,
        "filter": Support.YES,
        "nested_traversal": Support.YES,
        "mutation": Support.NO,
    },
    "Collector": {
        "parallel": Support.NO,
        "zip": Support.NO,
        "filter": Support.YES,
        "nested_traversal": Support.YES,
        "mutation": Support.YES,
    },
}

#: §3.1 "Conversions": encodings ordered by decreasing consumer control;
#: a higher-control encoding converts to any lower-control one.
CONTROL_ORDER = ("Indexer", "Stepper", "Fold", "Collector")


def can_convert(src: str, dst: str) -> bool:
    """True if encoding *src* can be converted to encoding *dst*."""
    order = {name: i for i, name in enumerate(CONTROL_ORDER)}
    if src not in order or dst not in order:
        raise KeyError(f"unknown encoding: {src!r} or {dst!r}")
    # Fold and Collector sit at the same (zero-control) level; neither
    # converts to the other's semantics (pure vs side-effecting), and the
    # library treats fold->collector as trivial wrapping.  We model the
    # paper's statement: strictly-higher control converts downward.
    return order[src] < order[dst]


def render_figure1() -> str:
    """Render the matrix in the paper's layout (for EXPERIMENTS.md)."""
    headers = ["Parallel", "Zip", "Filter", "Nested traversal", "Mutation"]
    lines = ["{:<10}".format("") + "".join(f"{h:>18}" for h in headers)]
    for enc in CONTROL_ORDER:
        row = FEATURE_MATRIX[enc]
        cells = [row[f].value for f in FEATURES]
        lines.append(f"{enc:<10}" + "".join(f"{c:>18}" for c in cells))
    return "\n".join(lines)
