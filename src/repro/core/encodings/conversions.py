"""Conversions between encodings (paper §3.1, "Conversions").

"The rows of Figure 1 are ordered by how much the user of a virtual data
structure can control its execution order...  A higher-control encoding
can be converted to a lower-control one."  Indexer -> stepper/fold/
collector and stepper -> fold/collector are total; the reverse directions
do not exist, which is why the conversion removes the potential for
parallelization.
"""
from __future__ import annotations

from repro.core import meter
from repro.core.encodings.collector import Collector, collector_from_indexer
from repro.core.encodings.fold import FoldLoop, fold_from_indexer
from repro.core.encodings.indexer import Idx
from repro.core.encodings.stepper import Step, fold_step, stepper_from_indexer
from repro.serial import closure, register_function


def idx_to_step(idx: Idx) -> Step:
    """Indexer -> stepper: sequential traversal of the domain."""
    return stepper_from_indexer(idx)


def idx_to_fold(idx: Idx) -> FoldLoop:
    """Indexer -> fold (the ``idxToColl``-style loop of §3.1)."""
    return fold_from_indexer(idx)


def idx_to_coll(idx: Idx) -> Collector:
    """Indexer -> collector; enables mutation, forfeits parallelism."""
    return collector_from_indexer(idx)


@register_function
def _fold_run_from_step(state0, stepf, worker, z):
    return fold_step(worker, z, Step(state0, stepf))


def step_to_fold(st: Step) -> FoldLoop:
    """Stepper -> fold: drive the stepper inside a fold loop."""
    return FoldLoop(closure(_fold_run_from_step, st.state0, st.stepf))


@register_function
def _coll_run_from_step(state0, stepf, worker):
    for value in Step(state0, stepf).drive():
        worker(value)


def step_to_coll(st: Step) -> Collector:
    """Stepper -> collector (``stepToColl``)."""
    return Collector(closure(_coll_run_from_step, st.state0, st.stepf))


def materialize_idx(idx: Idx) -> list:
    """Force an indexer into memory (a *non*-fused boundary).

    Fused pipelines never call this; the unfused ablation baseline calls
    it between every skeleton, and the meter records the temporary.
    """
    values = idx.eval_all()
    values = list(values) if not isinstance(values, list) else values
    meter.tally_materialization(_estimate_bytes(values))
    meter.tally_pass()
    return values


def _estimate_bytes(values: list) -> int:
    from repro.serial.sizeof import transitive_size

    if not values:
        return 0
    # Sample-based estimate: lists here are homogeneous.
    return transitive_size(values[0]) * len(values)
