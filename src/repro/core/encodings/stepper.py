"""The stepper encoding (paper §3.1, "Steppers"; Coutts et al. stream fusion).

"A stepper is a data structure containing a suspended loop state and a
function for stepping to the next loop iteration."  A step produces
``Yield`` (a value plus the next state), ``Skip`` (just a next state --
this is what makes ``filter`` fusible without nested closures), or
``Done``.

Steppers are sequential (only the *next* element is reachable) but handle
variable-length output, so they complement indexers exactly as Fig. 1
shows.  Every stepper step is tallied on the cost meter; the paper's
observation that stepper-encoded nested traversals run 2-5x slower than
loop nests is reproduced as a per-step overhead in the virtual cost model.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterator

from repro.core import meter
from repro.serial import Closure, closure, register_function
from repro.serial.serializer import serializable

# Step results are transient (never serialized): plain tagged tuples.
_YIELD = 0
_SKIP = 1
_DONE = 2

DONE = (_DONE, None, None)


def yield_(value: Any, state: Any) -> tuple:
    return (_YIELD, value, state)


def skip(state: Any) -> tuple:
    return (_SKIP, None, state)


@serializable
@dataclass(frozen=True)
class Step:
    """A stepper: suspended state plus a step function."""

    state0: Any
    stepf: Closure  # state -> (tag, value, state')

    def drive(self) -> Iterator[Any]:
        """Run the stepper to exhaustion, yielding elements."""
        state = self.state0
        stepf = self.stepf
        while True:
            meter.tally_steps()
            tag, value, state = stepf(state)
            if tag == _YIELD:
                meter.tally_visits()
                yield value
            elif tag == _DONE:
                return

    def to_list(self) -> list:
        return list(self.drive())


def _as_closure(fn: Callable | Closure) -> Closure:
    return fn if isinstance(fn, Closure) else closure(fn)


# ---------------------------------------------------------------------------
# Step-function combinators


@register_function
def _step_indexer(extract, ctx, n, state):
    i = state
    if i >= n:
        return DONE
    return yield_(extract(ctx, i), i + 1)


@register_function
def _step_list(xs, state):
    i = state
    if i >= len(xs):
        return DONE
    return yield_(xs[i], i + 1)


@register_function
def _step_unit(state):
    if state is None:
        return DONE
    value, = state
    return yield_(value, None)


@register_function
def _step_empty(_state):
    return DONE


@register_function
def _step_map(f, inner, state):
    tag, value, state2 = inner(state)
    if tag == _YIELD:
        return yield_(f(value), state2)
    return (tag, None, state2)


@register_function
def _step_filter(pred, inner, state):
    tag, value, state2 = inner(state)
    if tag == _YIELD and not pred(value):
        return skip(state2)
    return (tag, value, state2)


@register_function
def _step_concat_map(f, outer_stepf, state):
    # state = (outer_state, current_inner_stepper_or_None, inner_state)
    outer_state, inner_stepf, inner_state = state
    if inner_stepf is not None:
        tag, value, inner_state2 = inner_stepf(inner_state)
        if tag == _YIELD:
            return yield_(value, (outer_state, inner_stepf, inner_state2))
        if tag == _SKIP:
            return skip((outer_state, inner_stepf, inner_state2))
        return skip((outer_state, None, None))  # inner done; advance outer
    tag, value, outer_state2 = outer_stepf(outer_state)
    if tag == _YIELD:
        new_inner = f(value)  # f returns a Step
        return skip((outer_state2, new_inner.stepf, new_inner.state0))
    if tag == _SKIP:
        return skip((outer_state2, None, None))
    return DONE


@register_function
def _step_zip(s1, s2, state):
    # state = (st1, st2, pending1) -- pending1 holds a yielded-but-unpaired
    # element from stream 1 while stream 2 skips.
    st1, st2, pending = state
    if pending is None:
        tag, value, st1b = s1(st1)
        if tag == _DONE:
            return DONE
        if tag == _SKIP:
            return skip((st1b, st2, None))
        return skip((st1b, st2, (value,)))
    tag, value, st2b = s2(st2)
    if tag == _DONE:
        return DONE
    if tag == _SKIP:
        return skip((st1, st2b, pending))
    return yield_((pending[0], value), (st1, st2b, None))


# ---------------------------------------------------------------------------
# Constructors


def stepper_from_indexer(idx) -> Step:
    """``idxToStep``: traverse an indexer sequentially."""
    ctx = idx.source.context()
    stepf = closure(_step_indexer, idx.extract, ctx, idx.domain.size)
    return Step(0, stepf)


def stepper_from_list(xs: list) -> Step:
    return Step(0, closure(_step_list, list(xs)))


def unit_stepper(value: Any) -> Step:
    """``unitStep``: exactly one element."""
    return Step((value,), closure(_step_unit))


def empty_stepper() -> Step:
    return Step(None, closure(_step_empty))


def map_step(f: Callable | Closure, st: Step) -> Step:
    return Step(st.state0, closure(_step_map, _as_closure(f), st.stepf))


def filter_step(pred: Callable | Closure, st: Step) -> Step:
    return Step(st.state0, closure(_step_filter, _as_closure(pred), st.stepf))


def concat_map_step(f: Callable | Closure, st: Step) -> Step:
    """``concatMapStep``: *f* maps each element to a Step; flatten."""
    return Step(
        (st.state0, None, None),
        closure(_step_concat_map, _as_closure(f), st.stepf),
    )


def zip_step(s1: Step, s2: Step) -> Step:
    """``zipStep``: sequential lockstep pairing of two steppers."""
    return Step((s1.state0, s2.state0, None), closure(_step_zip, s1.stepf, s2.stepf))


def fold_step(worker: Callable, acc: Any, st: Step) -> Any:
    """Consume a stepper with a fold loop (``sumStep`` et al.)."""
    state = st.state0
    stepf = st.stepf
    while True:
        meter.tally_steps()
        tag, value, state = stepf(state)
        if tag == _YIELD:
            meter.tally_visits()
            acc = worker(acc, value)
        elif tag == _DONE:
            return acc
