"""The fold encoding (paper §3.1, "Folds").

"A data structure can be encoded as a function that folds over its
elements in some predetermined order."  Folds nest cleanly (the worker of
the outer fold runs an inner fold), so nested traversals optimize to loop
nests -- but the consumer has no control over execution order, ruling out
zip and parallel execution (Fig. 1).
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.core import meter
from repro.serial import Closure, closure, register_function
from repro.serial.serializer import serializable


@serializable
@dataclass(frozen=True)
class FoldLoop:
    """A collection as its own fold: ``run(worker, z)`` reduces it."""

    run: Closure  # (worker, z) -> result, worker: (acc, value) -> acc

    def fold(self, worker: Callable[[Any, Any], Any], z: Any) -> Any:
        return self.run(worker, z)

    def to_list(self) -> list:
        return self.fold(_append_worker, [])


@register_function
def _append_worker(acc: list, value) -> list:
    acc.append(value)
    return acc


@register_function
def _run_indexer_fold(extract, ctx, domain, worker, z):
    acc = z
    for i in domain.iter_indices():
        acc = worker(acc, extract(ctx, i))
    meter.tally_visits(domain.size)
    return acc


@register_function
def _run_list_fold(xs, worker, z):
    acc = z
    for x in xs:
        acc = worker(acc, x)
    meter.tally_visits(len(xs))
    return acc


@register_function
def _run_map_fold(f, inner_run, worker, z):
    return inner_run(closure(_mapped_worker).bind(f, worker), z)


@register_function
def _mapped_worker(f, worker, acc, value):
    return worker(acc, f(value))


@register_function
def _run_concat_fold(f, inner_run, worker, z):
    # Nested traversal: the outer worker runs the inner collection's fold.
    return inner_run(closure(_concat_worker).bind(f, worker), z)


@register_function
def _concat_worker(f, worker, acc, value):
    return f(value).fold(worker, acc)


def fold_from_indexer(idx) -> FoldLoop:
    """``idxToFold``: loop over all points in the indexer's domain."""
    ctx = idx.source.context()
    return FoldLoop(closure(_run_indexer_fold, idx.extract, ctx, idx.domain))


def fold_from_list(xs: list) -> FoldLoop:
    return FoldLoop(closure(_run_list_fold, list(xs)))


def map_fold(f: Callable | Closure, fl: FoldLoop) -> FoldLoop:
    fc = f if isinstance(f, Closure) else closure(f)
    return FoldLoop(closure(_run_map_fold, fc, fl.run))


def concat_map_fold(f: Callable | Closure, fl: FoldLoop) -> FoldLoop:
    """*f* maps each element to a FoldLoop; traversal becomes a loop nest."""
    fc = f if isinstance(f, Closure) else closure(f)
    return FoldLoop(closure(_run_concat_fold, fc, fl.run))
