"""The indexer encoding (paper §3.1, "Indexers").

"An indexer encoding consists of a size and a lookup function."  After the
§3.5 reorganization, the lookup function is split into a *data source* and
an *extractor*: ``lookup(i) = extract(source.context(), i)``.  Extractors
are serializable closures built from the registered combinators below, so
a sliced indexer ships as (domain, extractor code id, sliced source).

Random access makes indexers parallelizable and zippable, but they cannot
encode variable-output loops (filter/concatMap) or mutation -- exactly the
Fig. 1 feature row.

The optional ``bulk`` closure is the vectorized fast path: it evaluates
the whole domain into one numpy array, preserving fusion (a mapped bulk
composes functionally) while letting kernels run at numpy speed.  It
plays the role the paper's compiler plays when it simplifies a fused loop
body into tight native code.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro.core import meter
from repro.core.domains import Dim2, Domain, Seq
from repro.core.sources import (
    ArraySource,
    DataSource,
    GatherSource,
    IndexOffsetSource,
    OuterProductSource,
    RangeSource,
    TupleSource,
    WholeObjectSource,
)
from repro.serial import Closure, closure, register_function
from repro.serial.serializer import serializable


def as_closure(fn: Callable | Closure) -> Closure:
    """Coerce a plain callable to a registered, serializable closure."""
    if isinstance(fn, Closure):
        return fn
    return closure(fn)


@serializable
@dataclass(frozen=True)
class Idx:
    """An indexer: domain + extractor + data source (+ optional bulk)."""

    domain: Domain
    extract: Closure  # (source_context, index) -> value
    source: DataSource
    bulk: Closure | None = None  # (source_context, domain) -> ndarray

    def lookup(self, i: Any) -> Any:
        """Retrieve the element at (local) index *i*."""
        meter.tally_lookups()
        return self.extract(self.source.context(), i)

    @property
    def size(self) -> int:
        return self.domain.size

    # -- slicing (the §3.5 partitioning interface) -------------------------

    def slice(self, lo: int, hi: int) -> "Idx":
        """Outer positions ``[lo, hi)`` with the matching source subset."""
        return Idx(
            self.domain.outer_block(lo, hi),
            self.extract,
            self.source.slice_outer(lo, hi),
            self.bulk,
        )

    def slice_block(self, rows: tuple[int, int], cols: tuple[int, int]) -> "Idx":
        """A 2-D block (rows x cols) of a Dim2 indexer, source-sliced on
        both axes -- the sgemm block decomposition."""
        if not isinstance(self.domain, Dim2):
            raise TypeError("slice_block requires a Dim2 indexer")
        dom = self.domain.outer_block(*rows).inner_block(*cols)
        src = self.source.slice_outer(*rows).slice_inner(*cols)
        return Idx(dom, self.extract, src, self.bulk)

    # -- evaluation ----------------------------------------------------------

    def eval_all(self) -> np.ndarray | list:
        """Evaluate every element (bulk path if available)."""
        ctx = self.source.context()
        if self.bulk is not None:
            meter.tally_visits(self.domain.size)
            return self.bulk(ctx, self.domain)
        out = []
        extract = self.extract
        for i in self.domain.iter_indices():
            out.append(extract(ctx, i))
        meter.tally_visits(self.domain.size)
        return out


# ---------------------------------------------------------------------------
# Extractor combinators (the shared "program image" of extractor code)


@register_function
def _extract_array(arr, i):
    return arr[i]


@register_function
def _bulk_array(arr, domain):
    return arr[: domain.size] if isinstance(domain, Seq) else np.asarray(arr)


@register_function
def _extract_range(ctx, i):
    start, step = ctx
    return start + i * step


@register_function
def _bulk_range(ctx, domain):
    start, step = ctx
    return start + step * np.arange(domain.size)


@register_function
def _extract_index(ctx, i):
    outer, inner = ctx
    if isinstance(i, tuple):
        if len(i) == 2:
            return (i[0] + outer, i[1] + inner)
        return (i[0] + outer, i[1] + inner, *i[2:])
    return i + outer


@register_function
def _extract_whole(ctx, i):
    value, offset = ctx
    return value[offset + i]


@register_function
def _extract_map(f, g, ctx, i):
    return f(g(ctx, i))


@register_function
def _bulk_map(fb, gb, ctx, domain):
    return fb(gb(ctx, domain))


@register_function
def _extract_zip(gs, ctx, i):
    return tuple(g(c, i) for g, c in zip(gs, ctx))


@register_function
def _extract_outer(gu, gv, ctx, yx):
    y, x = yx
    return (gu(ctx[0], y), gv(ctx[1], x))


@register_function
def _extract_gather(g, ctx, i):
    pos, base_ctx = ctx
    return g(base_ctx, int(pos[i]))


# ---------------------------------------------------------------------------
# Constructors


def array_indexer(arr: np.ndarray) -> Idx:
    """Index an array along axis 0 (rows of a 2-D array are elements)."""
    arr = np.asarray(arr)
    return Idx(
        Seq(len(arr)),
        closure(_extract_array),
        ArraySource(arr),
        closure(_bulk_array),
    )


def range_indexer(n: int, start: int = 0, step: int = 1) -> Idx:
    """The integer sequence ``start, start+step, ...`` of length *n*."""
    return Idx(
        Seq(n),
        closure(_extract_range),
        RangeSource(start, step),
        closure(_bulk_range),
    )


def index_indexer(domain: Domain) -> Idx:
    """Yields each index of *domain* itself (``indices(domain(..))``).

    The source carries the slice origin, so block-partitioned chunks
    still yield global coordinates (a transpose task must read the
    original matrix positions).
    """
    return Idx(domain, closure(_extract_index), IndexOffsetSource())


def whole_list_indexer(values: list, n: int | None = None) -> Idx:
    """An unpartitionable source (Eden-style whole-object shipping)."""
    return Idx(
        Seq(len(values) if n is None else n),
        closure(_extract_whole),
        WholeObjectSource(values),
    )


def map_idx(f: Callable | Closure, idx: Idx, f_bulk: Callable | Closure | None = None) -> Idx:
    """``mapIdx``: compose *f* onto the extractor (fusion by composition)."""
    fc = as_closure(f)
    new_extract = closure(_extract_map, fc, idx.extract)
    new_bulk = None
    if f_bulk is not None and idx.bulk is not None:
        new_bulk = closure(_bulk_map, as_closure(f_bulk), idx.bulk)
    return Idx(idx.domain, new_extract, idx.source, new_bulk)


def gather_idx(base: Idx, pos: np.ndarray) -> Idx:
    """``gatherIdx``: read *base* at explicit sorted positions.

    The result is a ``Seq(len(pos))`` indexer whose element *i* is
    ``base[pos[i]]``; slicing it ships only the base span the position
    window touches (:class:`~repro.core.sources.GatherSource`).  Fusion
    is by composition, same as ``map_idx``: maps applied to *base* ride
    inside the gathered extractor.
    """
    pos = np.ascontiguousarray(pos, dtype=np.int64)
    return Idx(
        Seq(len(pos)),
        closure(_extract_gather, base.extract),
        GatherSource(pos, base.source),
    )


def zip_idx(*idxs: Idx) -> Idx:
    """``zipIdx``: lockstep pairing; domain is the intersection (§3.3)."""
    if not idxs:
        raise ValueError("zip_idx needs at least one indexer")
    dom = idxs[0].domain
    for other in idxs[1:]:
        dom = dom.intersect(other.domain)
    extract = closure(_extract_zip, tuple(i.extract for i in idxs))
    return Idx(dom, extract, TupleSource(tuple(i.source for i in idxs)))


def outer_product_idx(u: Idx, v: Idx) -> Idx:
    """A Dim2 indexer pairing every element of *u* with every one of *v*."""
    dom = Dim2(u.domain.size, v.domain.size)
    extract = closure(_extract_outer, u.extract, v.extract)
    return Idx(dom, extract, OuterProductSource(u.source, v.source))
