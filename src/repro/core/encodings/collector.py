"""The collector encoding (paper §3.1, "Collectors").

"A collector is an imperative variant of a fold.  Instead of updating an
accumulator, the worker function uses side effecting operations to update
its output value."  Triolet uses collectors in sequential code for
histogramming and for packing variable-length results into an array --
the two uses this package reproduces (histogram consumers and
``pack_into``).

Side effects make collectors incompatible with parallel execution, so a
collector only ever runs inside one sequential task.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro.core import meter
from repro.serial import Closure, closure, register_function
from repro.serial.serializer import serializable


@serializable
@dataclass(frozen=True)
class Collector:
    """A collection as a driver of an imperative worker.

    ``run(worker)`` calls ``worker(value)`` once per element, in order;
    the worker mutates whatever output it closes over.
    """

    run: Closure  # worker -> None

    def collect(self, worker: Callable[[Any], None]) -> None:
        self.run(worker)


@register_function
def _run_indexer_coll(extract, ctx, domain, worker):
    for i in domain.iter_indices():
        worker(extract(ctx, i))
    meter.tally_visits(domain.size)


@register_function
def _run_list_coll(xs, worker):
    for x in xs:
        worker(x)
    meter.tally_visits(len(xs))


@register_function
def _run_map_coll(f, inner_run, worker):
    inner_run(closure(_mapped_coll_worker).bind(f, worker))


@register_function
def _mapped_coll_worker(f, worker, value):
    worker(f(value))


def collector_from_indexer(idx) -> Collector:
    """``idxToColl`` (§3.1 'Conversions'): loop indices, feed the worker."""
    ctx = idx.source.context()
    return Collector(closure(_run_indexer_coll, idx.extract, ctx, idx.domain))


def collector_from_list(xs: list) -> Collector:
    return Collector(closure(_run_list_coll, list(xs)))


def map_coll(f: Callable | Closure, c: Collector) -> Collector:
    fc = f if isinstance(f, Closure) else closure(f)
    return Collector(closure(_run_map_coll, fc, c.run))


# ---------------------------------------------------------------------------
# The two consumers Triolet implements with collectors


def histogram_into(coll: Collector, hist: np.ndarray) -> np.ndarray:
    """Histogramming: each element is a bin index (or (bin, weight))."""

    def worker(value):
        if isinstance(value, tuple):
            b, w = value
            hist[b] += w
        else:
            hist[value] += 1

    coll.collect(worker)
    return hist


def pack_into(coll: Collector, out: list) -> list:
    """Pack a variable-length producer's results into *out* in order."""
    coll.collect(out.append)
    return out
