"""MPI-like communicator over the simulated cluster.

The API mirrors mpi4py: lowercase methods (``send``/``recv``/``bcast``/
``scatter``/``gather``/``reduce``) communicate generic Python objects
through :mod:`repro.serial`; uppercase ``Send``/``Recv`` move numpy
buffers with a single block copy and lower per-message cost, matching
mpi4py's buffer-protocol fast path.

Every operation really moves real data (results are exact) and charges the
LogGP cost model (timing is virtual).  Collective algorithms live in
:mod:`repro.cluster.collectives`.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.cluster.channel import ChannelTable, Envelope
from repro.cluster.limits import RuntimeLimits, UNLIMITED
from repro.cluster.trace import CommEvent, TraceLog
from repro.cluster.machine import MachineSpec
from repro.cluster.metrics import RankMetrics
from repro.cluster.simclock import VirtualClock
from repro.serial import deserialize, serialize
from repro.serial.arrays import array_payload_bytes

#: Tag space reserved for collectives (user tags must stay below this).
COLL_TAG_BASE = 1 << 20


@dataclass
class Request:
    """Handle for a nonblocking operation (mpi4py-style)."""

    _value: Any = None
    _ready: bool = False
    _recv: Callable[[], Any] | None = None

    def test(self) -> bool:
        """True once the operation has completed."""
        return self._ready or self._recv is None

    def wait(self) -> Any:
        """Block until complete; returns the received object (recv only)."""
        if not self._ready and self._recv is not None:
            self._value = self._recv()
            self._ready = True
        return self._value


@dataclass
class SimContext:
    """State shared by all ranks of one SPMD run."""

    machine: MachineSpec
    nranks: int
    ranks_per_node: int = 1
    limits: RuntimeLimits = UNLIMITED
    real_timeout: float = 60.0
    channels: ChannelTable = field(default_factory=ChannelTable)
    #: optional allocation cost hook: nbytes -> virtual seconds of GC work
    alloc_cost: Callable[[int], float] | None = None
    #: multiplier from sandbox payload bytes to paper-scale bytes, applied
    #: when charging link time, allocator time and buffer limits
    wire_scale: float = 1.0
    #: optional communication event log (run_spmd(..., trace=True))
    trace: TraceLog | None = None

    def node_of(self, rank: int) -> int:
        return rank // self.ranks_per_node

    def validate(self) -> None:
        capacity = self.machine.nodes * self.ranks_per_node
        if self.nranks > capacity:
            raise ValueError(
                f"{self.nranks} ranks do not fit on {self.machine.nodes} nodes "
                f"at {self.ranks_per_node} ranks/node"
            )


class Comm:
    """One rank's endpoint: point-to-point ops, collectives, cost charging."""

    def __init__(self, ctx: SimContext, rank: int):
        if not 0 <= rank < ctx.nranks:
            raise ValueError(f"rank {rank} outside communicator of size {ctx.nranks}")
        self.ctx = ctx
        self.rank = rank
        self.size = ctx.nranks
        self.clock = VirtualClock()
        self.metrics = RankMetrics(rank=rank)
        self._coll_seq = 0

    # -- topology ----------------------------------------------------------

    @property
    def node(self) -> int:
        return self.ctx.node_of(self.rank)

    def _link(self, other_rank: int):
        return self.ctx.machine.link(self.node, self.ctx.node_of(other_rank))

    # -- local cost charging -------------------------------------------------

    def compute(self, dt: float) -> None:
        """Advance the local clock by *dt* virtual seconds of computation."""
        self.clock.advance(dt)
        self.metrics.charge_compute(dt)

    def alloc(self, nbytes: int) -> None:
        """Charge a heap allocation of *nbytes* (GC/allocator cost model)."""
        gc_dt = 0.0
        if self.ctx.alloc_cost is not None:
            gc_dt = self.ctx.alloc_cost(nbytes)
            if gc_dt:
                self.clock.advance(gc_dt)
        self.metrics.charge_alloc(nbytes, gc_dt)

    # -- point to point ------------------------------------------------------

    def _post(self, payload: Any, nbytes: int, dest: int, tag: int, raw: bool) -> None:
        if not 0 <= dest < self.size:
            raise ValueError(f"destination rank {dest} out of range")
        cost_bytes = int(nbytes * self.ctx.wire_scale)
        inter_node = self.node != self.ctx.node_of(dest)
        self.ctx.limits.check_message(cost_bytes, self.rank, dest, inter_node)
        link = self._link(dest)
        busy = link.injection_time(cost_bytes)
        self.clock.advance(busy)
        self.metrics.charge_send(nbytes, busy)
        env = Envelope(
            payload=payload,
            nbytes=nbytes,
            cost_bytes=cost_bytes,
            available_at=self.clock.now + link.availability_delay(),
            raw=raw,
        )
        if self.ctx.trace is not None:
            self.ctx.trace.record(
                CommEvent("send", self.clock.now, self.rank, dest, tag, nbytes)
            )
        self.ctx.channels.post(self.rank, dest, tag, env)

    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        """Send a generic object (serialized; bytes counted for real)."""
        data = serialize(obj)
        self._post(data, len(data), dest, tag, raw=False)

    def recv(self, source: int, tag: int = 0) -> Any:
        """Blocking receive of a generic object from an explicit *source*."""
        if not 0 <= source < self.size:
            raise ValueError(f"source rank {source} out of range")
        env = self.ctx.channels.take(
            source, self.rank, tag, self.ctx.real_timeout
        )
        waited = max(0.0, env.available_at - self.clock.now)
        self.clock.merge(env.available_at)
        link = self._link(source)
        busy = link.receive_time()
        self.clock.advance(busy)
        # The freshly materialized message object is the GC-pressure
        # allocation the paper blames ("slow when allocating objects
        # comprising tens of megabytes", §4.3); the sender serializes into
        # transient buffers, so only the receive side is charged.
        self.alloc(env.cost_bytes)
        self.metrics.charge_recv(env.nbytes, busy, waited)
        if self.ctx.trace is not None:
            self.ctx.trace.record(
                CommEvent("recv", self.clock.now, self.rank, source, tag, env.nbytes)
            )
        if env.raw:
            return env.payload
        return deserialize(env.payload)

    def isend(self, obj: Any, dest: int, tag: int = 0) -> "Request":
        """Nonblocking send.

        The queue-based channel never blocks a sender, so the message
        departs immediately; injection time is still charged to the
        sender's clock (large messages occupy the NIC either way --
        what nonblocking buys in the paper's mri-q is freedom from
        collective synchronization, which point-to-point sends already
        have here).  Returns an already-complete :class:`Request`.
        """
        self.send(obj, dest, tag)
        return Request(_value=None, _ready=True)

    def irecv(self, source: int, tag: int = 0) -> "Request":
        """Nonblocking receive: a :class:`Request` whose ``wait`` blocks."""
        return Request(_recv=lambda: self.recv(source, tag))

    def Send(self, arr: np.ndarray, dest: int, tag: int = 0) -> None:
        """Buffer-protocol send: one block copy, no per-element encoding."""
        if not isinstance(arr, np.ndarray):
            raise TypeError("Send() requires a numpy array; use send() for objects")
        nbytes = array_payload_bytes(arr)
        # The copy models the injection DMA; receiver owns its buffer.
        self._post(np.ascontiguousarray(arr).copy(), nbytes, dest, tag, raw=True)

    def Recv(self, source: int, tag: int = 0) -> np.ndarray:
        """Buffer-protocol receive; returns the array."""
        out = self.recv(source, tag)  # raw envelopes skip deserialization
        if not isinstance(out, np.ndarray):
            raise TypeError("Recv() matched a non-buffer message; use recv()")
        return out

    # -- collective tags -----------------------------------------------------

    def _next_coll_tag(self) -> int:
        # SPMD programs execute collectives in the same order on every
        # rank, so a per-rank counter yields matching tags everywhere.
        tag = COLL_TAG_BASE + self._coll_seq
        self._coll_seq += 1
        return tag

    # -- collectives (implementations in collectives.py) ----------------------

    def barrier(self) -> None:
        from repro.cluster import collectives

        collectives.barrier(self)

    def bcast(self, obj: Any, root: int = 0) -> Any:
        from repro.cluster import collectives

        return collectives.bcast(self, obj, root)

    def scatter(self, chunks: list | None, root: int = 0) -> Any:
        from repro.cluster import collectives

        return collectives.scatter(self, chunks, root)

    def gather(self, obj: Any, root: int = 0) -> list | None:
        from repro.cluster import collectives

        return collectives.gather(self, obj, root)

    def reduce(self, obj: Any, op: Callable[[Any, Any], Any], root: int = 0) -> Any:
        from repro.cluster import collectives

        return collectives.reduce(self, obj, op, root)

    def allreduce(self, obj: Any, op: Callable[[Any, Any], Any]) -> Any:
        from repro.cluster import collectives

        return collectives.allreduce(self, obj, op)

    def allgather(self, obj: Any) -> list:
        from repro.cluster import collectives

        return collectives.allgather(self, obj)

    def alltoall(self, chunks: list) -> list:
        from repro.cluster import collectives

        return collectives.alltoall(self, chunks)

    def scatterv(self, arr, counts: list[int] | None, root: int = 0):
        from repro.cluster import collectives

        return collectives.scatterv(self, arr, counts, root)

    def gatherv(self, local, root: int = 0):
        from repro.cluster import collectives

        return collectives.gatherv(self, local, root)

    def reduce_scatter(self, chunks: list, op: Callable[[Any, Any], Any]):
        from repro.cluster import collectives

        return collectives.reduce_scatter(self, chunks, op)
