"""MPI-like communicator over the simulated cluster.

The API mirrors mpi4py: lowercase methods (``send``/``recv``/``bcast``/
``scatter``/``gather``/``reduce``) communicate generic Python objects
through :mod:`repro.serial`; uppercase ``Send``/``Recv`` move numpy
buffers with a single block copy and lower per-message cost, matching
mpi4py's buffer-protocol fast path.

Every operation really moves real data (results are exact) and charges the
LogGP cost model (timing is virtual).  Collective algorithms live in
:mod:`repro.cluster.collectives`.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.cluster.channel import ChannelTable, Envelope
from repro.cluster.faults import FaultPlan, RankFailure, TransientSendError
from repro.cluster.limits import BufferOverflowError, RuntimeLimits, UNLIMITED
from repro.cluster.trace import CommEvent, TraceLog
from repro.cluster.machine import MachineSpec
from repro.cluster.metrics import RankMetrics
from repro.cluster.simclock import VirtualClock
from repro.serial import deserialize, serialize
from repro.serial.arrays import array_payload_bytes, ensure_contiguous

#: Tag space reserved for collectives (user tags must stay below this).
COLL_TAG_BASE = 1 << 20


@dataclass
class Request:
    """Handle for a nonblocking operation (mpi4py-style)."""

    _value: Any = None
    _ready: bool = False
    _recv: Callable[[], Any] | None = None

    def test(self) -> bool:
        """True once the operation has completed."""
        return self._ready or self._recv is None

    def wait(self) -> Any:
        """Block until complete; returns the received object (recv only)."""
        if not self._ready and self._recv is not None:
            self._value = self._recv()
            self._ready = True
        return self._value


@dataclass
class SimContext:
    """State shared by all ranks of one SPMD run."""

    machine: MachineSpec
    nranks: int
    ranks_per_node: int = 1
    limits: RuntimeLimits = UNLIMITED
    real_timeout: float = 60.0
    channels: ChannelTable = field(default_factory=ChannelTable)
    #: optional allocation cost hook: nbytes -> virtual seconds of GC work
    alloc_cost: Callable[[int], float] | None = None
    #: multiplier from sandbox payload bytes to paper-scale bytes, applied
    #: when charging link time, allocator time and buffer limits
    wire_scale: float = 1.0
    #: optional communication event log (run_spmd(..., trace=True))
    trace: TraceLog | None = None
    #: optional deterministic fault schedule (None = zero-cost fast path)
    faults: FaultPlan | None = None
    #: optional recovery policy (duck-typed; see repro.runtime.recovery).
    #: Consulted only when a fault or limit actually fires, so a run with
    #: a policy but no faults has an unchanged virtual timeline.
    recovery: Any = None

    def node_of(self, rank: int) -> int:
        return rank // self.ranks_per_node

    def validate(self) -> None:
        capacity = self.machine.nodes * self.ranks_per_node
        if self.nranks > capacity:
            raise ValueError(
                f"{self.nranks} ranks do not fit on {self.machine.nodes} nodes "
                f"at {self.ranks_per_node} ranks/node"
            )


class Comm:
    """One rank's endpoint: point-to-point ops, collectives, cost charging."""

    def __init__(self, ctx: SimContext, rank: int):
        if not 0 <= rank < ctx.nranks:
            raise ValueError(f"rank {rank} outside communicator of size {ctx.nranks}")
        self.ctx = ctx
        self.rank = rank
        self.size = ctx.nranks
        self.clock = VirtualClock()
        self.metrics = RankMetrics(rank=rank)
        self._coll_seq = 0

    # -- topology ----------------------------------------------------------

    @property
    def node(self) -> int:
        return self.ctx.node_of(self.rank)

    def _link(self, other_rank: int):
        return self.ctx.machine.link(self.node, self.ctx.node_of(other_rank))

    # -- local cost charging -------------------------------------------------

    def compute(self, dt: float) -> None:
        """Advance the local clock by *dt* virtual seconds of computation."""
        if self.ctx.faults is not None:
            dt = self._faulted_compute_dt(dt)
        self.clock.advance(dt)
        self.metrics.charge_compute(dt)
        if self.ctx.faults is not None:
            self._check_crash()

    # -- fault hooks (no-ops unless a FaultPlan is installed) ----------------

    def _trace_fault(self, kind: str, peer: int = -1, tag: int = 0, nbytes: int = 0) -> None:
        if self.ctx.trace is not None:
            self.ctx.trace.record(
                CommEvent(kind, self.clock.now, self.rank, peer, tag, nbytes)
            )

    def _check_crash(self) -> None:
        """Raise this rank's scheduled :class:`RankFailure` if it is due."""
        try:
            self.ctx.faults.check_crash(self.rank, self.clock.now)
        except RankFailure:
            self.metrics.faults_crash += 1
            self._trace_fault("rank_crash")
            raise

    def _faulted_compute_dt(self, dt: float) -> float:
        """Apply slow-node inflation, capped by speculative re-execution.

        A recovery policy with a ``task_timeout`` models Hadoop-style
        backup tasks: when a straggled task overruns its normal duration
        by more than the timeout, a backup copy launched at the timeout
        on a healthy core finishes first, so the effective duration is
        ``dt + task_timeout``.
        """
        factor = self.ctx.faults.compute_factor(self.node)
        if factor == 1.0 or dt <= 0.0:
            return dt
        inflated = dt * factor
        rec = self.ctx.recovery
        timeout = getattr(rec, "task_timeout", None) if rec is not None else None
        if timeout is not None and inflated > dt + timeout:
            effective = dt + timeout
            self.metrics.speculations += 1
            self._trace_fault("speculation")
        else:
            effective = inflated
        self.metrics.faults_straggler += 1
        self.metrics.straggler_time += effective - dt
        return effective

    def _send_fault_gate(self, dest: int, tag: int) -> None:
        """Consume injected transient send failures, retrying if allowed.

        Each failed attempt raises internally; a recovery policy pays a
        capped exponential backoff on the virtual clock and retries, a
        missing policy propagates :class:`TransientSendError`.
        """
        faults = self.ctx.faults
        rec = self.ctx.recovery
        max_retries = getattr(rec, "max_retries", 0) if rec is not None else 0
        attempt = 0
        while True:
            n = faults.send_fault(self.rank, dest, tag, self.clock.now)
            if n is None:
                return
            self.metrics.faults_send += 1
            self._trace_fault("send_fault", dest, tag)
            if attempt >= max_retries:
                raise TransientSendError(self.rank, dest, tag, n)
            backoff = rec.backoff(attempt)
            self.clock.advance(backoff)
            self.metrics.send_retries += 1
            self.metrics.backoff_time += backoff
            self._trace_fault("send_retry", dest, tag)
            attempt += 1

    def alloc(self, nbytes: int) -> None:
        """Charge a heap allocation of *nbytes* (GC/allocator cost model)."""
        gc_dt = 0.0
        if self.ctx.alloc_cost is not None:
            gc_dt = self.ctx.alloc_cost(nbytes)
            if gc_dt:
                self.clock.advance(gc_dt)
        self.metrics.charge_alloc(nbytes, gc_dt)

    # -- point to point ------------------------------------------------------

    def _post(self, payload: Any, nbytes: int, dest: int, tag: int, raw: bool) -> None:
        if not 0 <= dest < self.size:
            raise ValueError(f"destination rank {dest} out of range")
        if self.ctx.faults is not None:
            self._check_crash()
            self._send_fault_gate(dest, tag)
        cost_bytes = int(nbytes * self.ctx.wire_scale)
        inter_node = self.node != self.ctx.node_of(dest)
        try:
            self.ctx.limits.check_message(cost_bytes, self.rank, dest, inter_node)
        except BufferOverflowError:
            # Stamp the rejection into metrics and the trace *before*
            # raising or degrading: Fig. 5's Eden failure is diagnosable
            # from the run's observability, not just the exception.
            self.metrics.messages_rejected += 1
            self._trace_fault("message_rejected", dest, tag, nbytes)
            rec = self.ctx.recovery
            if rec is not None and getattr(rec, "fragment", False):
                self._post_fragments(payload, nbytes, dest, tag, raw)
                return
            raise
        self._post_one(payload, nbytes, cost_bytes, dest, tag, raw)

    def _post_one(
        self,
        payload: Any,
        nbytes: int,
        cost_bytes: int,
        dest: int,
        tag: int,
        raw: bool,
        frag_index: int = 0,
        frag_total: int = 1,
    ) -> None:
        link = self._link(dest)
        busy = link.injection_time(cost_bytes)
        self.clock.advance(busy)
        self.metrics.charge_send(nbytes, busy)
        delay = link.availability_delay()
        if self.ctx.faults is not None:
            extra = self.ctx.faults.send_delay(self.rank, dest, tag, self.clock.now)
            if extra > 0.0:
                self.metrics.faults_delay += 1
                self._trace_fault("delay_spike", dest, tag, nbytes)
                delay += extra
        env = Envelope(
            payload=payload,
            nbytes=nbytes,
            cost_bytes=cost_bytes,
            available_at=self.clock.now + delay,
            raw=raw,
            frag_index=frag_index,
            frag_total=frag_total,
        )
        if self.ctx.trace is not None:
            self.ctx.trace.record(
                CommEvent("send", self.clock.now, self.rank, dest, tag, nbytes)
            )
        self.ctx.channels.post(self.rank, dest, tag, env)

    def _post_fragments(
        self, payload: Any, nbytes: int, dest: int, tag: int, raw: bool
    ) -> None:
        """Graceful degradation: split an oversized message into
        limit-sized fragments (the Triolet path; Eden keeps failing).

        The logical payload is serialized once and travels as consecutive
        envelopes on its channel; each fragment pays its own injection
        and receive overhead, which is exactly the degradation cost.
        """
        limit = self.ctx.limits.max_message_bytes
        ws = self.ctx.wire_scale
        frag_payload = int(limit / ws) if ws > 0 else limit
        if frag_payload < 1:
            raise BufferOverflowError(
                int(nbytes * ws), limit, self.rank, dest
            )
        data = serialize(payload) if raw else payload
        total = len(data)
        n = (total + frag_payload - 1) // frag_payload
        self.metrics.messages_fragmented += 1
        self.metrics.fragments_sent += n
        self._trace_fault("fragmented", dest, tag, total)
        for i in range(n):
            piece = bytes(data[i * frag_payload : (i + 1) * frag_payload])
            self._post_one(
                piece,
                len(piece),
                int(len(piece) * ws),
                dest,
                tag,
                raw=False,
                frag_index=i,
                frag_total=n,
            )

    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        """Send a generic object (serialized; bytes counted for real)."""
        data = serialize(obj)
        self._post(data, len(data), dest, tag, raw=False)

    def recv(self, source: int, tag: int = 0) -> Any:
        """Blocking receive of a generic object from an explicit *source*."""
        if not 0 <= source < self.size:
            raise ValueError(f"source rank {source} out of range")
        if self.ctx.faults is not None:
            self._check_crash()
        env = self.ctx.channels.take(
            source, self.rank, tag, self.ctx.real_timeout
        )
        if env.frag_total > 1:
            return self._recv_fragments(env, source, tag)
        waited = max(0.0, env.available_at - self.clock.now)
        self.clock.merge(env.available_at)
        link = self._link(source)
        busy = link.receive_time()
        self.clock.advance(busy)
        # The freshly materialized message object is the GC-pressure
        # allocation the paper blames ("slow when allocating objects
        # comprising tens of megabytes", §4.3); the sender serializes into
        # transient buffers, so only the receive side is charged.
        self.alloc(env.cost_bytes)
        self.metrics.charge_recv(env.nbytes, busy, waited)
        if self.ctx.trace is not None:
            self.ctx.trace.record(
                CommEvent("recv", self.clock.now, self.rank, source, tag, env.nbytes)
            )
        if self.ctx.faults is not None:
            self._check_crash()
        if env.raw:
            return env.payload
        return deserialize(env.payload)

    def _recv_fragments(self, first: Envelope, source: int, tag: int) -> Any:
        """Reassemble a fragmented logical message (channel order FIFO)."""
        parts = [first]
        while len(parts) < first.frag_total:
            parts.append(
                self.ctx.channels.take(
                    source, self.rank, tag, self.ctx.real_timeout
                )
            )
        link = self._link(source)
        total_nbytes = 0
        for env in parts:
            waited = max(0.0, env.available_at - self.clock.now)
            self.clock.merge(env.available_at)
            busy = link.receive_time()
            self.clock.advance(busy)
            self.alloc(env.cost_bytes)
            self.metrics.charge_recv(env.nbytes, busy, waited)
            total_nbytes += env.nbytes
        if self.ctx.trace is not None:
            self.ctx.trace.record(
                CommEvent(
                    "recv", self.clock.now, self.rank, source, tag, total_nbytes
                )
            )
        if self.ctx.faults is not None:
            self._check_crash()
        return deserialize(b"".join(p.payload for p in parts))

    def isend(self, obj: Any, dest: int, tag: int = 0) -> "Request":
        """Nonblocking send.

        The queue-based channel never blocks a sender, so the message
        departs immediately; injection time is still charged to the
        sender's clock (large messages occupy the NIC either way --
        what nonblocking buys in the paper's mri-q is freedom from
        collective synchronization, which point-to-point sends already
        have here).  Returns an already-complete :class:`Request`.
        """
        self.send(obj, dest, tag)
        return Request(_value=None, _ready=True)

    def irecv(self, source: int, tag: int = 0) -> "Request":
        """Nonblocking receive: a :class:`Request` whose ``wait`` blocks."""
        return Request(_recv=lambda: self.recv(source, tag))

    def Send(self, arr: np.ndarray, dest: int, tag: int = 0) -> None:
        """Buffer-protocol send: one block copy, no per-element encoding.

        Non-contiguous views hit the explicit contiguity gate (gpaw's
        rule): compacted and counted, never silently object-serialized.
        """
        if not isinstance(arr, np.ndarray):
            raise TypeError("Send() requires a numpy array; use send() for objects")
        nbytes = array_payload_bytes(arr)
        # The copy models the injection DMA; receiver owns its buffer.
        self._post(ensure_contiguous(arr).copy(), nbytes, dest, tag, raw=True)

    def Recv(self, source: int, tag: int = 0) -> np.ndarray:
        """Buffer-protocol receive; returns the array."""
        out = self.recv(source, tag)  # raw envelopes skip deserialization
        if not isinstance(out, np.ndarray):
            raise TypeError("Recv() matched a non-buffer message; use recv()")
        return out

    # -- collective tags -----------------------------------------------------

    def _next_coll_tag(self) -> int:
        # SPMD programs execute collectives in the same order on every
        # rank, so a per-rank counter yields matching tags everywhere.
        tag = COLL_TAG_BASE + self._coll_seq
        self._coll_seq += 1
        return tag

    # -- collectives (implementations in collectives.py) ----------------------

    def barrier(self) -> None:
        from repro.cluster import collectives

        collectives.barrier(self)

    def bcast(self, obj: Any, root: int = 0) -> Any:
        from repro.cluster import collectives

        return collectives.bcast(self, obj, root)

    def scatter(self, chunks: list | None, root: int = 0) -> Any:
        from repro.cluster import collectives

        return collectives.scatter(self, chunks, root)

    def gather(self, obj: Any, root: int = 0) -> list | None:
        from repro.cluster import collectives

        return collectives.gather(self, obj, root)

    def reduce(self, obj: Any, op: Callable[[Any, Any], Any], root: int = 0) -> Any:
        from repro.cluster import collectives

        return collectives.reduce(self, obj, op, root)

    def allreduce(self, obj: Any, op: Callable[[Any, Any], Any]) -> Any:
        from repro.cluster import collectives

        return collectives.allreduce(self, obj, op)

    def allgather(self, obj: Any) -> list:
        from repro.cluster import collectives

        return collectives.allgather(self, obj)

    def alltoall(self, chunks: list) -> list:
        from repro.cluster import collectives

        return collectives.alltoall(self, chunks)

    def scatterv(self, arr, counts: list[int] | None, root: int = 0):
        from repro.cluster import collectives

        return collectives.scatterv(self, arr, counts, root)

    def gatherv(self, local, root: int = 0):
        from repro.cluster import collectives

        return collectives.gatherv(self, local, root)

    def reduce_scatter(self, chunks: list, op: Callable[[Any, Any], Any]):
        from repro.cluster import collectives

        return collectives.reduce_scatter(self, chunks, op)
