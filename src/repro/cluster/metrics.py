"""Execution counters for the simulated cluster.

Every rank accumulates its own :class:`RankMetrics`; after a run they are
merged into a :class:`RunMetrics`.  These counters are *measurements of
the real execution* (bytes actually serialized, messages actually sent,
virtual seconds actually charged) and drive both the figures and the
ablation benchmarks.
"""
from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class RankMetrics:
    """Counters owned by a single rank (single-threaded access)."""

    rank: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    messages_sent: int = 0
    messages_received: int = 0
    compute_time: float = 0.0
    comm_time: float = 0.0
    idle_time: float = 0.0
    alloc_bytes: int = 0
    gc_time: float = 0.0

    def charge_send(self, nbytes: int, busy: float) -> None:
        self.bytes_sent += nbytes
        self.messages_sent += 1
        self.comm_time += busy

    def charge_recv(self, nbytes: int, busy: float, waited: float) -> None:
        self.bytes_received += nbytes
        self.messages_received += 1
        self.comm_time += busy
        self.idle_time += waited

    def charge_compute(self, dt: float) -> None:
        self.compute_time += dt

    def charge_alloc(self, nbytes: int, gc_dt: float = 0.0) -> None:
        self.alloc_bytes += nbytes
        self.gc_time += gc_dt


@dataclass
class RunMetrics:
    """Aggregate over all ranks of one SPMD run."""

    per_rank: list[RankMetrics] = field(default_factory=list)

    @property
    def bytes_sent(self) -> int:
        return sum(m.bytes_sent for m in self.per_rank)

    @property
    def messages_sent(self) -> int:
        return sum(m.messages_sent for m in self.per_rank)

    @property
    def compute_time(self) -> float:
        return sum(m.compute_time for m in self.per_rank)

    @property
    def comm_time(self) -> float:
        return sum(m.comm_time for m in self.per_rank)

    @property
    def gc_time(self) -> float:
        return sum(m.gc_time for m in self.per_rank)

    @property
    def alloc_bytes(self) -> int:
        return sum(m.alloc_bytes for m in self.per_rank)

    @property
    def max_compute_time(self) -> float:
        return max((m.compute_time for m in self.per_rank), default=0.0)

    def summary(self) -> dict:
        return {
            "ranks": len(self.per_rank),
            "bytes_sent": self.bytes_sent,
            "messages_sent": self.messages_sent,
            "compute_time": self.compute_time,
            "comm_time": self.comm_time,
            "gc_time": self.gc_time,
            "alloc_bytes": self.alloc_bytes,
        }
