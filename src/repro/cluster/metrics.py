"""Execution counters for the simulated cluster.

Every rank accumulates its own :class:`RankMetrics`; after a run they are
merged into a :class:`RunMetrics`.  These counters are *measurements of
the real execution* (bytes actually serialized, messages actually sent,
virtual seconds actually charged) and drive both the figures and the
ablation benchmarks.
"""
from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class RankMetrics:
    """Counters owned by a single rank (single-threaded access)."""

    rank: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    messages_sent: int = 0
    messages_received: int = 0
    compute_time: float = 0.0
    comm_time: float = 0.0
    idle_time: float = 0.0
    alloc_bytes: int = 0
    gc_time: float = 0.0
    # -- robustness counters (all stay 0 on a fault-free, unlimited run) --
    messages_rejected: int = 0  # sends refused by the runtime's byte cap
    messages_fragmented: int = 0  # oversized sends split into fragments
    fragments_sent: int = 0  # total fragments emitted
    send_retries: int = 0  # retried sends after transient faults
    backoff_time: float = 0.0  # virtual seconds spent in retry backoff
    straggler_time: float = 0.0  # extra compute charged by slow-node faults
    speculations: int = 0  # straggled tasks capped by a backup copy
    faults_delay: int = 0  # injected message delays
    faults_send: int = 0  # injected transient send failures
    faults_crash: int = 0  # injected rank crashes
    faults_straggler: int = 0  # compute intervals hit by a slow node

    def charge_send(self, nbytes: int, busy: float) -> None:
        self.bytes_sent += nbytes
        self.messages_sent += 1
        self.comm_time += busy

    def charge_recv(self, nbytes: int, busy: float, waited: float) -> None:
        self.bytes_received += nbytes
        self.messages_received += 1
        self.comm_time += busy
        self.idle_time += waited

    def charge_compute(self, dt: float) -> None:
        self.compute_time += dt

    def charge_alloc(self, nbytes: int, gc_dt: float = 0.0) -> None:
        self.alloc_bytes += nbytes
        self.gc_time += gc_dt

    @property
    def faults_injected(self) -> int:
        return (
            self.faults_delay
            + self.faults_send
            + self.faults_crash
            + self.faults_straggler
        )


@dataclass
class RunMetrics:
    """Aggregate over all ranks of one SPMD run."""

    per_rank: list[RankMetrics] = field(default_factory=list)

    @property
    def bytes_sent(self) -> int:
        return sum(m.bytes_sent for m in self.per_rank)

    @property
    def messages_sent(self) -> int:
        return sum(m.messages_sent for m in self.per_rank)

    @property
    def compute_time(self) -> float:
        return sum(m.compute_time for m in self.per_rank)

    @property
    def comm_time(self) -> float:
        return sum(m.comm_time for m in self.per_rank)

    @property
    def gc_time(self) -> float:
        return sum(m.gc_time for m in self.per_rank)

    @property
    def alloc_bytes(self) -> int:
        return sum(m.alloc_bytes for m in self.per_rank)

    @property
    def max_compute_time(self) -> float:
        return max((m.compute_time for m in self.per_rank), default=0.0)

    @property
    def messages_rejected(self) -> int:
        return sum(m.messages_rejected for m in self.per_rank)

    @property
    def messages_fragmented(self) -> int:
        return sum(m.messages_fragmented for m in self.per_rank)

    @property
    def fragments_sent(self) -> int:
        return sum(m.fragments_sent for m in self.per_rank)

    @property
    def send_retries(self) -> int:
        return sum(m.send_retries for m in self.per_rank)

    @property
    def backoff_time(self) -> float:
        return sum(m.backoff_time for m in self.per_rank)

    @property
    def straggler_time(self) -> float:
        return sum(m.straggler_time for m in self.per_rank)

    @property
    def speculations(self) -> int:
        return sum(m.speculations for m in self.per_rank)

    @property
    def faults_injected(self) -> int:
        return sum(m.faults_injected for m in self.per_rank)

    @property
    def faults_delay(self) -> int:
        return sum(m.faults_delay for m in self.per_rank)

    @property
    def faults_send(self) -> int:
        return sum(m.faults_send for m in self.per_rank)

    @property
    def faults_crash(self) -> int:
        return sum(m.faults_crash for m in self.per_rank)

    @property
    def faults_straggler(self) -> int:
        return sum(m.faults_straggler for m in self.per_rank)

    def fault_counts(self) -> dict[str, int]:
        """Injected-fault tallies by kind (all zero on a clean run)."""
        return {
            "delay": sum(m.faults_delay for m in self.per_rank),
            "send": sum(m.faults_send for m in self.per_rank),
            "crash": sum(m.faults_crash for m in self.per_rank),
            "straggler": sum(m.faults_straggler for m in self.per_rank),
        }

    def summary(self) -> dict:
        return {
            "ranks": len(self.per_rank),
            "bytes_sent": self.bytes_sent,
            "messages_sent": self.messages_sent,
            "compute_time": self.compute_time,
            "comm_time": self.comm_time,
            "gc_time": self.gc_time,
            "alloc_bytes": self.alloc_bytes,
            "messages_rejected": self.messages_rejected,
            "faults_injected": self.faults_injected,
        }
