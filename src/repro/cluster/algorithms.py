"""Distributed algorithms built from the communicator primitives.

These are the reusable building blocks a production message-passing
library accumulates on top of its collectives.  ``sample_sort`` is the
classic bandwidth-optimal distributed sort (regular sampling + alltoall
exchange); the C+MPI-style rank programs and examples use it, and it
doubles as a stress test of alltoall, Scatterv-style slicing and
ordering guarantees.
"""
from __future__ import annotations

import numpy as np

from repro.cluster.comm import Comm


def sample_sort(comm: Comm, local: np.ndarray, oversample: int = 4) -> np.ndarray:
    """Parallel sample sort: globally sorted data, partitioned by rank.

    Every rank contributes *local*; afterwards rank *i* holds the *i*-th
    contiguous slice of the global sorted order (sizes may be uneven).
    Algorithm: sort locally; pick ``oversample * size`` regular samples
    per rank; gather samples at the root; choose ``size - 1`` splitters;
    broadcast; bucket locally; alltoall the buckets; merge.
    """
    if local.ndim != 1:
        raise ValueError("sample_sort operates on 1-D arrays")
    size = comm.size
    mine = np.sort(local, kind="stable")
    if size == 1:
        return mine

    # Regular sampling of the locally sorted data.
    nsamples = min(len(mine), oversample * size)
    if nsamples > 0:
        positions = (np.arange(nsamples) * len(mine)) // nsamples
        samples = mine[positions]
    else:
        samples = mine[:0]
    gathered = comm.gather(samples, root=0)
    if comm.rank == 0:
        pool = np.sort(np.concatenate(gathered))
        if len(pool) >= size - 1:
            cut = (np.arange(1, size) * len(pool)) // size
            splitters = pool[cut]
        else:
            # Degenerate inputs: pad with +inf so trailing buckets are
            # empty and every rank still receives exactly `size` buckets.
            splitters = np.concatenate(
                [pool, np.full(size - 1 - len(pool), np.inf)]
            )
    else:
        splitters = None
    splitters = comm.bcast(splitters, root=0)

    # Bucket by splitter and exchange: bucket i -> rank i.
    bounds = np.searchsorted(mine, splitters, side="right")
    edges = np.concatenate([[0], bounds, [len(mine)]])
    buckets = [mine[edges[i] : edges[i + 1]] for i in range(size)]
    received = comm.alltoall(buckets)
    out = np.concatenate(received) if received else mine[:0]
    return np.sort(out, kind="stable")


def distributed_unique_counts(comm: Comm, local: np.ndarray) -> dict:
    """Global value counts (a tiny distributed group-by over allreduce)."""
    values, counts = np.unique(local, return_counts=True)
    mine = dict(zip(values.tolist(), counts.tolist()))

    def merge(a: dict, b: dict) -> dict:
        out = dict(a)
        for k, v in b.items():
            out[k] = out.get(k, 0) + v
        return out

    return comm.allreduce(mine, op=merge)
