"""Simulated distributed-memory cluster (substrate).

The paper evaluates on 8 nodes x 16 cores with OpenMPI.  This sandbox has
one core and no MPI, so the cluster is *simulated*: every MPI rank runs as
a real Python thread exchanging really-serialized messages over in-process
channels, and each rank carries a causal virtual clock advanced by a
LogGP-style cost model.  Numerical results are therefore real; elapsed
time is virtual and deterministic.

Timing semantics (see :mod:`repro.cluster.simclock`):

* compute work advances only the local clock;
* ``send`` charges the sender ``o + nbytes/bandwidth`` and stamps the
  message available at ``sender_finish + latency``;
* ``recv`` sets the receiver clock to ``max(own clock, availability) + o``.

Makespan is the maximum final clock over ranks.  Because availability
stamps are computed causally from the clocks, the simulation is
deterministic regardless of OS thread scheduling.
"""
from repro.cluster.machine import MachineSpec, NetworkModel
from repro.cluster.simclock import VirtualClock
from repro.cluster.comm import Comm
from repro.cluster.limits import RuntimeLimits, BufferOverflowError
from repro.cluster.faults import (
    FaultPlan,
    DelaySpike,
    SendFault,
    RankCrash,
    RankLoss,
    SlowNode,
    TransientSendError,
    RankFailure,
    RankFailureInfo,
    RankFailureGroup,
)
from repro.cluster.process import run_spmd, SpmdResult, SimAborted, SimDeadlockError
from repro.cluster.metrics import RankMetrics, RunMetrics
from repro.cluster.transport import (
    Transport,
    TransportUnavailable,
    SimTransport,
    LocalTransport,
    MPITransport,
    available_transports,
    register_transport,
    resolve_transport,
)

__all__ = [
    "MachineSpec",
    "NetworkModel",
    "VirtualClock",
    "Comm",
    "RuntimeLimits",
    "BufferOverflowError",
    "FaultPlan",
    "DelaySpike",
    "SendFault",
    "RankCrash",
    "RankLoss",
    "SlowNode",
    "TransientSendError",
    "RankFailure",
    "RankFailureInfo",
    "RankFailureGroup",
    "run_spmd",
    "SpmdResult",
    "SimAborted",
    "SimDeadlockError",
    "RankMetrics",
    "RunMetrics",
    "Transport",
    "TransportUnavailable",
    "SimTransport",
    "LocalTransport",
    "MPITransport",
    "available_transports",
    "register_transport",
    "resolve_transport",
]
