"""Collective algorithms over point-to-point messages.

Costs are *emergent*: a collective is literally a pattern of sends and
receives, so tree depth, root injection bottlenecks and payload sizes show
up in the virtual clocks without any collective-specific cost formulas.

* ``bcast``/``reduce`` use binomial trees (O(log P) depth), matching what
  OpenMPI does for the message sizes in the paper's benchmarks.
* ``scatter``/``gather`` are linear at the root: for the multi-megabyte
  payloads these apps move, the root's injection bandwidth is the real
  bottleneck either way, and the linear form models it directly.
* ``alltoall`` does P-1 pairwise exchange rounds.
"""
from __future__ import annotations

import functools
from typing import Any, Callable

from repro.cluster.comm import Comm
from repro.obs.spans import active as _obs_active


def _traced(fn: Callable) -> Callable:
    """Record each collective call as a per-rank ``collective`` span.

    Disabled path: one global read, then a direct call -- no span
    objects, no clock reads beyond what the collective itself does.
    Nested collectives (``allreduce`` = ``reduce`` + ``bcast``) nest
    their spans, which is exactly the hierarchy we want to see.
    """

    @functools.wraps(fn)
    def wrapper(comm: Comm, *args, **kwargs):
        rec = _obs_active()
        if rec is None:
            return fn(comm, *args, **kwargs)
        with rec.span(
            "collective", fn.__name__, rank=comm.rank, clock=comm.clock
        ) as sp:
            out = fn(comm, *args, **kwargs)
            sp.set(size=comm.size)
            return out

    return wrapper


def _vrank(rank: int, root: int, size: int) -> int:
    return (rank - root) % size


def _prank(vrank: int, root: int, size: int) -> int:
    return (vrank + root) % size


@_traced
def bcast(comm: Comm, obj: Any, root: int = 0) -> Any:
    """Binomial-tree broadcast; returns the object on every rank."""
    size, rank = comm.size, comm.rank
    tag = comm._next_coll_tag()
    if size == 1:
        return obj
    vr = _vrank(rank, root, size)
    # Receive from parent (non-root ranks only).
    mask = 1
    while mask < size:
        if vr & mask:
            parent = _prank(vr - mask, root, size)
            obj = comm.recv(parent, tag)
            break
        mask <<= 1
    else:
        # vr == 0 (root): pretend we "received" at the top of the tree.
        mask = 1 << (size - 1).bit_length()
    # Forward to children: every bit below the bit we received on names a
    # child (the receive loop broke at vr's lowest set bit, so vr + mask
    # has vr's bits plus one lower bit -- exactly the binomial children).
    mask >>= 1
    while mask > 0:
        if vr + mask < size:
            child = _prank(vr + mask, root, size)
            comm.send(obj, child, tag)
        mask >>= 1
    return obj


@_traced
def reduce(comm: Comm, obj: Any, op: Callable[[Any, Any], Any], root: int = 0) -> Any:
    """Binomial-tree reduction with a commutative, associative *op*.

    Returns the reduced value at *root*, ``None`` elsewhere.
    """
    size, rank = comm.size, comm.rank
    tag = comm._next_coll_tag()
    if size == 1:
        return obj
    vr = _vrank(rank, root, size)
    acc = obj
    mask = 1
    while mask < size:
        if vr & mask:
            parent = _prank(vr - mask, root, size)
            comm.send(acc, parent, tag)
            return None
        child_vr = vr + mask
        if child_vr < size:
            child = _prank(child_vr, root, size)
            acc = op(acc, comm.recv(child, tag))
        mask <<= 1
    return acc


@_traced
def scatter(comm: Comm, chunks: list | None, root: int = 0) -> Any:
    """Linear scatter: root sends chunk *i* to rank *i*."""
    size, rank = comm.size, comm.rank
    tag = comm._next_coll_tag()
    if rank == root:
        if chunks is None or len(chunks) != size:
            raise ValueError(
                f"scatter at root needs exactly {size} chunks, got "
                f"{None if chunks is None else len(chunks)}"
            )
        for dst in range(size):
            if dst != root:
                comm.send(chunks[dst], dst, tag)
        return chunks[root]
    return comm.recv(root, tag)


@_traced
def gather(comm: Comm, obj: Any, root: int = 0) -> list | None:
    """Linear gather: root receives from every rank in rank order."""
    size, rank = comm.size, comm.rank
    tag = comm._next_coll_tag()
    if rank == root:
        out: list[Any] = []
        for src in range(size):
            out.append(obj if src == root else comm.recv(src, tag))
        return out
    comm.send(obj, root, tag)
    return None


@_traced
def allreduce(comm: Comm, obj: Any, op: Callable[[Any, Any], Any]) -> Any:
    """Reduce to rank 0 then broadcast the result."""
    return bcast(comm, reduce(comm, obj, op, root=0), root=0)


@_traced
def allgather(comm: Comm, obj: Any) -> list:
    """Gather at rank 0 then broadcast the list."""
    return bcast(comm, gather(comm, obj, root=0), root=0)


@_traced
def alltoall(comm: Comm, chunks: list) -> list:
    """Pairwise-exchange all-to-all: chunk *i* goes to rank *i*."""
    size, rank = comm.size, comm.rank
    if len(chunks) != size:
        raise ValueError(f"alltoall needs exactly {size} chunks, got {len(chunks)}")
    tag = comm._next_coll_tag()
    out: list[Any] = [None] * size
    out[rank] = chunks[rank]
    for shift in range(1, size):
        dst = (rank + shift) % size
        src = (rank - shift) % size
        comm.send(chunks[dst], dst, tag)
        out[src] = comm.recv(src, tag)
    return out


@_traced
def barrier(comm: Comm) -> None:
    """Empty reduce + broadcast; synchronizes all virtual clocks."""
    allreduce(comm, None, lambda a, b: None)


@_traced
def scatterv(comm: Comm, arr, counts: list[int] | None, root: int = 0):
    """Scatter contiguous variable-length slices of an array (Scatterv).

    At *root*, ``arr`` is split along axis 0 into ``counts[i]``-row
    slices; rank *i* receives slice *i* over the buffer fast path.
    """
    import numpy as np

    size, rank = comm.size, comm.rank
    tag = comm._next_coll_tag()
    if rank == root:
        if counts is None or len(counts) != size:
            raise ValueError(f"scatterv needs exactly {size} counts")
        if sum(counts) != len(arr):
            raise ValueError(
                f"counts sum to {sum(counts)} but array has {len(arr)} rows"
            )
        offsets = [0]
        for c in counts[:-1]:
            offsets.append(offsets[-1] + c)
        for dst in range(size):
            if dst != root:
                comm.Send(
                    np.ascontiguousarray(arr[offsets[dst] : offsets[dst] + counts[dst]]),
                    dst,
                    tag,
                )
        return arr[offsets[root] : offsets[root] + counts[root]]
    return comm.Recv(root, tag)


@_traced
def gatherv(comm: Comm, local, root: int = 0):
    """Gather variable-length array slices back, concatenated in rank
    order (Gatherv); returns the assembled array at *root*."""
    import numpy as np

    size, rank = comm.size, comm.rank
    tag = comm._next_coll_tag()
    if rank == root:
        parts = []
        for src in range(size):
            parts.append(local if src == root else comm.Recv(src, tag))
        return np.concatenate(parts, axis=0)
    comm.Send(np.ascontiguousarray(local), root, tag)
    return None


@_traced
def reduce_scatter(comm: Comm, chunks: list, op: Callable[[Any, Any], Any]):
    """Reduce chunk *i* across all ranks, leaving the result at rank *i*.

    Implemented as alltoall + local reduction -- the bandwidth-optimal
    pattern large allreduces decompose into.
    """
    received = alltoall(comm, chunks)
    acc = received[0]
    for other in received[1:]:
        acc = op(acc, other)
    return acc
