"""Per-rank virtual clocks.

Each simulated rank owns a :class:`VirtualClock`.  Compute advances it;
receiving a message merges in the message's availability timestamp.  All
timestamps are in (virtual) seconds.  This is the LogGP discipline: no
global clock exists, yet the maximum final clock equals the makespan a
real machine with the modelled parameters would see, because every
inter-rank ordering constraint travels with a message.
"""
from __future__ import annotations


class VirtualClock:
    """A monotonically advancing local virtual time."""

    __slots__ = ("now",)

    def __init__(self, start: float = 0.0):
        self.now = float(start)

    def advance(self, dt: float) -> float:
        """Spend *dt* seconds of local work; returns the new time."""
        if dt < 0:
            raise ValueError(f"cannot advance clock by negative time: {dt}")
        self.now += dt
        return self.now

    def merge(self, t: float) -> float:
        """Wait until *t* if it is in the local future."""
        if t > self.now:
            self.now = t
        return self.now

    def __repr__(self) -> str:
        return f"VirtualClock(now={self.now:.6g})"
