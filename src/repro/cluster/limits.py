"""Runtime limits of the simulated message-passing layer.

Eden's runtime buffers whole messages; §4.3 reports that for sgemm "the
Eden code fails at 2 nodes because the array data is too large for Eden's
message-passing runtime to buffer".  We model that as a per-message byte
cap the Eden baseline installs on its communicator.  The Triolet and
C+MPI+OpenMP runtimes leave the cap unset.
"""
from __future__ import annotations

from dataclasses import dataclass


class BufferOverflowError(RuntimeError):
    """A single message exceeded the runtime's message buffer."""

    def __init__(self, nbytes: int, limit: int, src: int, dst: int):
        super().__init__(
            f"message of {nbytes} bytes from rank {src} to rank {dst} "
            f"exceeds the runtime's {limit}-byte message buffer"
        )
        self.nbytes = nbytes
        self.limit = limit
        self.src = src
        self.dst = dst


@dataclass(frozen=True)
class RuntimeLimits:
    """Limits enforced by a communication runtime."""

    #: maximum bytes a single message may occupy; ``None`` = unlimited.
    max_message_bytes: int | None = None
    #: enforce only on inter-node messages (PVM/MPI payload buffers sit on
    #: the network path; same-node channels are plain memory)
    inter_node_only: bool = True

    def check_message(
        self, nbytes: int, src: int, dst: int, inter_node: bool = True
    ) -> None:
        if self.max_message_bytes is None:
            return
        if self.inter_node_only and not inter_node:
            return
        if nbytes > self.max_message_bytes:
            raise BufferOverflowError(nbytes, self.max_message_bytes, src, dst)


#: Message buffer of the Eden-like runtime (GHC-Eden with PVM/MPI payload
#: buffers); large enough for chunked workloads, too small for whole
#: multi-thousand-row matrix slices.
EDEN_LIMITS = RuntimeLimits(max_message_bytes=64 * 1024 * 1024)

#: No limits (Triolet runtime, hand-written MPI).
UNLIMITED = RuntimeLimits()
