"""Point-to-point channels between simulated ranks.

A channel is keyed by ``(src, dst, tag)`` and carries :class:`Envelope`
objects: the serialized payload plus its virtual availability timestamp.
One queue per key gives MPI's non-overtaking guarantee per (source, tag)
and keeps message matching deterministic -- wildcard receives are
deliberately unsupported.
"""
from __future__ import annotations

import queue
import threading
from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True)
class Envelope:
    """One in-flight message."""

    payload: Any  # bytes for serialized sends, ndarray for buffer sends
    nbytes: int  # actual payload bytes (sandbox-sized problem)
    cost_bytes: int  # bytes charged to the cost model (paper-scaled)
    available_at: float  # virtual time the last byte reaches the receiver
    raw: bool  # True if the payload is an unserialized buffer
    # Fragmentation (graceful degradation under a message-byte cap): an
    # oversized logical message travels as frag_total > 1 consecutive
    # envelopes on its channel; the receiver reassembles them in order.
    frag_index: int = 0
    frag_total: int = 1


class ChannelTable:
    """All channels of one SPMD run, plus the run's abort flag.

    Failure semantics are deterministic: a surviving rank is never killed
    asynchronously.  After a peer fails (``fail`` sets the abort flag),
    every other rank keeps executing its own -- fully deterministic --
    instruction stream, and only aborts when it blocks on a message that
    provably can never arrive: the sender's thread has terminated
    (``mark_done``) and the channel is empty.  Whether a rank applied its
    shipping ops, advanced its virtual clock past its own scheduled
    fault, or posted its partials therefore depends only on the program
    and the fault plan, never on wall-clock thread scheduling.
    """

    def __init__(self) -> None:
        self._channels: dict[tuple[int, int, int], queue.SimpleQueue] = {}
        self._lock = threading.Lock()
        self.abort = threading.Event()
        self.abort_reason: BaseException | None = None
        self._done: set[int] = set()

    def channel(self, src: int, dst: int, tag: int) -> queue.SimpleQueue:
        key = (src, dst, tag)
        ch = self._channels.get(key)
        if ch is None:
            with self._lock:
                ch = self._channels.setdefault(key, queue.SimpleQueue())
        return ch

    def post(self, src: int, dst: int, tag: int, env: Envelope) -> None:
        # Posting never aborts: a send into a queue is always safe, and
        # cancelling senders here would make their progress (and any
        # scheduled fault they have yet to reach) depend on how quickly
        # another thread's failure was observed.
        self.channel(src, dst, tag).put(env)

    def mark_done(self, rank: int) -> None:
        """Record that *rank*'s thread has terminated (normally or not).

        Must be called after the rank's last possible ``post``: receivers
        treat done + empty channel as "this message can never arrive".
        """
        with self._lock:
            self._done.add(rank)

    def rank_done(self, rank: int) -> bool:
        with self._lock:
            return rank in self._done

    def take(
        self, src: int, dst: int, tag: int, real_timeout: float
    ) -> Envelope:
        """Blocking receive with a real-time deadline.

        Always drains an available message before considering failure:
        a sender's posts all happen before it is marked done, so the
        check order (message, then done-and-empty) is race-free.
        """
        ch = self.channel(src, dst, tag)
        waited = 0.0
        poll = 0.05
        while True:
            try:
                return ch.get_nowait()
            except queue.Empty:
                pass
            if self.rank_done(src):
                # Re-check after observing done: every post by src is
                # visible by now, so empty means "never arriving".
                try:
                    return ch.get_nowait()
                except queue.Empty:
                    if self.abort.is_set():
                        raise_abort(self)
                    raise SimDeadlockError(
                        f"rank {dst} waits for a message from rank {src} "
                        f"tag {tag}, but rank {src} already finished "
                        f"without sending it; deadlock?"
                    )
            try:
                return ch.get(timeout=poll)
            except queue.Empty:
                waited += poll
                if waited >= real_timeout:
                    raise SimDeadlockError(
                        f"rank {dst} waited {real_timeout:.0f}s (real) for a "
                        f"message from rank {src} tag {tag}; deadlock?"
                    )

    def fail(self, exc: BaseException) -> None:
        """Record a rank failure and wake all blocked receivers."""
        if not self.abort.is_set():
            self.abort_reason = exc
            self.abort.set()


class SimDeadlockError(RuntimeError):
    """A simulated rank blocked on a receive that can never complete."""


class SimAborted(RuntimeError):
    """Another rank of this run failed; this rank was cancelled."""


def raise_abort(table: ChannelTable) -> None:
    reason = table.abort_reason
    raise SimAborted(f"run aborted: {reason!r}") from reason
