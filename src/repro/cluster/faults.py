"""Deterministic fault injection for the simulated cluster.

The paper's evaluation turns on failure behaviour as much as on speed:
Eden's sgemm fails outright when a matrix slice exceeds its message
buffer (§4.3), stragglers flatten Eden's mri-q curve (§4.2), and Triolet
degrades gracefully by re-partitioning data.  This module supplies the
*faults*; :mod:`repro.runtime.recovery` supplies the tolerance.

A :class:`FaultPlan` is a seeded, deterministic schedule of injected
faults keyed on **virtual time** and **(src, dst, tag)** -- never on wall
time or thread scheduling -- so a plan perturbs a run identically every
time it is replayed:

* :class:`DelaySpike` -- matching messages arrive late (in-flight delay);
* :class:`SendFault` -- matching sends raise :class:`TransientSendError`
  the first ``times`` attempts (a retry-capable runtime recovers, a
  naive one dies);
* :class:`RankCrash` -- a rank raises :class:`RankFailure` the first time
  its virtual clock passes ``at`` (fires once per plan); the machine
  heals afterwards (the rank is back for later sections);
* :class:`RankLoss` -- like :class:`RankCrash` but **permanent**: the
  failure carries ``permanent=True`` and the runtime must complete the
  job degraded on the surviving ranks (elastic shrink) -- the machine
  does not heal;
* :class:`SlowNode` -- every compute interval on one node is multiplied
  (the §4.2 straggler, as a persistent slow node).

Determinism: every piece of mutable plan state (crash fired, per-spec
occurrence counters) is touched only by the thread of the rank the spec
names, so the injected schedule is a pure function of the plan and the
program.  Injection is zero-cost when no plan is installed: every hook
starts with an ``if plan is None`` branch and the fault-free virtual
timeline is bit-identical to a run without the subsystem.
"""
from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "DelaySpike",
    "SendFault",
    "RankCrash",
    "RankLoss",
    "SlowNode",
    "FaultPlan",
    "TransientSendError",
    "RankFailure",
    "RankFailureInfo",
    "RankFailureGroup",
]


class TransientSendError(RuntimeError):
    """An injected, retryable send failure (lost message / NIC hiccup)."""

    def __init__(self, src: int, dst: int, tag: int, attempt: int):
        super().__init__(
            f"transient send failure from rank {src} to rank {dst} "
            f"tag {tag} (attempt {attempt})"
        )
        self.src = src
        self.dst = dst
        self.tag = tag
        self.attempt = attempt


class RankFailure(RuntimeError):
    """An injected rank crash at a scheduled virtual time.

    ``permanent`` distinguishes a :class:`RankLoss` (the machine does not
    heal; the job must shrink onto the survivors) from a transient
    :class:`RankCrash` (the rank is available again next section).
    """

    def __init__(self, rank: int, at: float, now: float,
                 permanent: bool = False):
        word = "was lost" if permanent else "crashed"
        super().__init__(
            f"rank {rank} {word} at virtual t={now:.6g}s (scheduled at "
            f"t>={at:.6g}s)"
        )
        self.rank = rank
        self.at = at
        self.vtime = now
        self.permanent = permanent


@dataclass(frozen=True)
class RankFailureInfo:
    """One rank's failure, with virtual-time context (see ``run_spmd``)."""

    rank: int
    vtime: float  # the rank's virtual clock when it failed
    error: BaseException

    def describe(self) -> str:
        return f"rank {self.rank} failed at t={self.vtime:.6g}s: {self.error!r}"


class RankFailureGroup(RuntimeError):
    """Every failing rank of one SPMD run, with virtual times.

    ``run_spmd`` raises the lowest failing rank's original exception (so
    callers keep matching on the application error type) *chained from*
    this group, which carries the complete picture -- concurrent failures
    from other ranks are no longer silently discarded.
    """

    def __init__(self, failures: list[RankFailureInfo]):
        self.failures = failures
        lines = "; ".join(f.describe() for f in failures)
        super().__init__(f"{len(failures)} rank(s) failed: {lines}")


# -- fault specifications ---------------------------------------------------


@dataclass(frozen=True)
class DelaySpike:
    """The first ``count`` sends matching (src, dst, tag) arrive late.

    ``dst``/``tag`` of ``None`` match any destination/tag.  The delay is
    in-flight (added to the availability stamp): the sender's clock is
    unaffected, the receiver idles longer.
    """

    src: int
    delay: float  # virtual seconds added to the message's arrival
    dst: int | None = None
    tag: int | None = None
    count: int = 1
    after: float = 0.0  # only sends at sender time >= after are delayed


@dataclass(frozen=True)
class SendFault:
    """The first ``times`` sends matching (src, dst, tag) fail.

    Each failed attempt raises :class:`TransientSendError`; a runtime
    with a retry policy backs off and tries again (consuming the fault
    budget), a runtime without one aborts the run.
    """

    src: int
    dst: int | None = None
    tag: int | None = None
    times: int = 1
    after: float = 0.0


@dataclass(frozen=True)
class RankCrash:
    """Rank ``rank`` dies the first time its clock reaches ``at``.

    ``section`` (optional) gates the crash to one distributed section in
    program order, exactly as for :class:`RankLoss` -- useful to land a
    transient crash inside a specific section (e.g. mid-migration).
    """

    rank: int
    at: float
    section: int | None = None


@dataclass(frozen=True)
class RankLoss:
    """Rank ``rank`` is lost *permanently* the first time its clock
    reaches ``at``.

    The resulting :class:`RankFailure` carries ``permanent=True``: the
    runtime may not count on the rank coming back, so recovery means
    elastic shrink -- survivors absorb the lost rank's partitions and
    every later section runs on the reduced machine.

    ``section`` (optional) gates the loss to one distributed section, in
    program order: every section's virtual clocks restart at zero, so an
    ungated small ``at`` always fires in the *first* section -- before
    any shard is resident.  Gating lets a plan model a machine that dies
    mid-job, which is exactly when lineage replay pays off.
    """

    rank: int
    at: float
    section: int | None = None


@dataclass(frozen=True)
class SlowNode:
    """Node ``node`` computes ``factor``x slower (persistent straggler)."""

    node: int
    factor: float = 4.0


class FaultPlan:
    """A deterministic schedule of injected faults for one run.

    Mutable occurrence state lives here (how many times each spec has
    fired, whether each crash has fired); :meth:`reset` rewinds it so the
    same plan replays identically.  A plan is *consumed* across the
    sections of one program: a crash fires exactly once even if the
    runtime re-executes the failed section.
    """

    def __init__(self, faults: tuple | list = (), seed: int = 0):
        self.faults = tuple(faults)
        self.seed = seed
        self._delay_used: dict[int, int] = {}
        self._send_used: dict[int, int] = {}
        self._crash_fired: set[int] = set()
        self._section = 0

    def begin_section(self, section: int) -> None:
        """Announce the distributed section about to run (program order).

        Only section-gated faults read this; the driver calls it once per
        section, *not* per re-execution attempt, so a gated fault can
        still fire during its own section's recovery attempts.
        """
        self._section = section

    # -- construction -------------------------------------------------------

    @classmethod
    def chaos(
        cls,
        nranks: int,
        seed: int,
        crash_at: float = 1e-4,
        straggle_factor: float = 3.0,
        send_failures: int = 2,
    ) -> "FaultPlan":
        """The chaos-suite plan: one rank crash, one transient send
        failure burst, one slow node -- all drawn deterministically from
        *seed*.  The crash never targets rank 0 when there is a choice,
        so the plan exercises re-execution rather than root loss."""
        rng = np.random.default_rng(seed)
        crash_rank = int(rng.integers(1, nranks)) if nranks > 1 else 0
        flaky_src = int(rng.integers(0, nranks))
        slow = int(rng.integers(0, nranks))
        return cls(
            faults=(
                RankCrash(rank=crash_rank, at=crash_at * (1.0 + rng.random())),
                SendFault(src=flaky_src, times=send_failures),
                SlowNode(node=slow, factor=straggle_factor),
            ),
            seed=seed,
        )

    def reset(self) -> None:
        """Rewind all occurrence state (replay the plan from scratch)."""
        self._delay_used.clear()
        self._send_used.clear()
        self._crash_fired.clear()
        self._section = 0

    # -- hooks (called from repro.cluster.comm; None-plan is the fast path) --

    def send_fault(self, src: int, dst: int, tag: int, now: float) -> int | None:
        """Attempt number (1-based) if this send fails, else ``None``.

        Only the *src* rank's thread reaches a spec naming it, so the
        counters are race-free and the schedule deterministic.
        """
        for i, f in enumerate(self.faults):
            if not isinstance(f, SendFault) or f.src != src:
                continue
            if f.dst is not None and f.dst != dst:
                continue
            if f.tag is not None and f.tag != tag:
                continue
            if now < f.after:
                continue
            used = self._send_used.get(i, 0)
            if used >= f.times:
                continue
            self._send_used[i] = used + 1
            return used + 1
        return None

    def send_delay(self, src: int, dst: int, tag: int, now: float) -> float:
        """Extra in-flight delay for this send (0.0 when none matches)."""
        extra = 0.0
        for i, f in enumerate(self.faults):
            if not isinstance(f, DelaySpike) or f.src != src:
                continue
            if f.dst is not None and f.dst != dst:
                continue
            if f.tag is not None and f.tag != tag:
                continue
            if now < f.after:
                continue
            used = self._delay_used.get(i, 0)
            if used >= f.count:
                continue
            self._delay_used[i] = used + 1
            extra += f.delay
        return extra

    def compute_factor(self, node: int) -> float:
        """Straggler multiplier for compute time on *node* (1.0 = healthy)."""
        factor = 1.0
        for f in self.faults:
            if isinstance(f, SlowNode) and f.node == node:
                factor *= f.factor
        return factor

    def check_crash(self, rank: int, now: float) -> None:
        """Raise :class:`RankFailure` if *rank*'s scheduled crash is due."""
        for i, f in enumerate(self.faults):
            if (
                isinstance(f, (RankCrash, RankLoss))
                and f.rank == rank
                and now >= f.at
                and i not in self._crash_fired
                and (getattr(f, "section", None) is None
                     or f.section == self._section)
            ):
                self._crash_fired.add(i)
                raise RankFailure(rank, f.at, now,
                                  permanent=isinstance(f, RankLoss))

    # -- introspection ------------------------------------------------------

    def crashes(self) -> list[RankCrash]:
        return [f for f in self.faults if isinstance(f, RankCrash)]

    def losses(self) -> list[RankLoss]:
        return [f for f in self.faults if isinstance(f, RankLoss)]

    def __repr__(self) -> str:
        return f"FaultPlan(seed={self.seed}, faults={list(self.faults)!r})"
