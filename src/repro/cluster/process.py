"""SPMD launcher: run a rank function on every simulated rank.

Each rank executes in a real OS thread (they spend nearly all their time
blocked on channel receives, so one physical core is plenty).  If any rank
raises, the run's abort flag wakes every blocked receiver and the original
exception is re-raised in the caller.

Virtual timing is deterministic: availability stamps are computed from the
causal clocks, never from wall time, so the reported makespan is a pure
function of the program, the data, and the machine model.
"""
from __future__ import annotations

import contextvars
import threading
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.cluster.channel import SimAborted, SimDeadlockError
from repro.cluster.comm import Comm, SimContext
from repro.cluster.faults import FaultPlan, RankFailureGroup, RankFailureInfo
from repro.cluster.limits import RuntimeLimits, UNLIMITED
from repro.cluster.machine import MachineSpec
from repro.cluster.metrics import RunMetrics
from repro.cluster.trace import CommEvent, TraceLog

__all__ = ["run_spmd", "SpmdResult", "SimAborted", "SimDeadlockError"]


@dataclass
class SpmdResult:
    """Outcome of one SPMD run."""

    results: list[Any]  # per-rank return values
    makespan: float  # max final virtual clock over ranks
    metrics: RunMetrics
    final_clocks: list[float]
    trace: "TraceLog | None" = None  # when run_spmd(..., trace=True)
    #: fault/recovery accounting, present when a FaultPlan or recovery
    #: policy was installed (see repro.runtime.recovery.RecoveryReport)
    recovery: Any = None

    @property
    def root_result(self) -> Any:
        return self.results[0]


def run_spmd(
    machine: MachineSpec,
    rank_fn: Callable[..., Any],
    nranks: int,
    args: Sequence[Any] = (),
    ranks_per_node: int = 1,
    limits: RuntimeLimits = UNLIMITED,
    alloc_cost: Callable[[int], float] | None = None,
    wire_scale: float = 1.0,
    real_timeout: float = 60.0,
    trace: bool = False,
    faults: FaultPlan | None = None,
    recovery: Any = None,
) -> SpmdResult:
    """Run ``rank_fn(comm, *args)`` on *nranks* simulated ranks.

    ``ranks_per_node`` controls rank->node packing (1 for one-process-per-
    node runtimes like Triolet's, ``cores_per_node`` for Eden's flat
    process model).  Returns per-rank results, the virtual makespan and
    merged metrics.
    """
    if nranks < 1:
        raise ValueError("need at least one rank")
    from repro.cluster.trace import TraceLog

    ctx = SimContext(
        machine=machine,
        nranks=nranks,
        ranks_per_node=ranks_per_node,
        limits=limits,
        real_timeout=real_timeout,
        alloc_cost=alloc_cost,
        wire_scale=wire_scale,
        trace=TraceLog() if trace else None,
        faults=faults,
        recovery=recovery,
    )
    ctx.validate()

    comms = [Comm(ctx, r) for r in range(nranks)]
    results: list[Any] = [None] * nranks
    errors: list[tuple[int, BaseException]] = []
    errors_lock = threading.Lock()
    # Rank threads inherit the caller's context (installed executor, cost
    # context, ...): a fresh thread starts with an empty context, which
    # would silently disable nested parallel sections inside rank code.
    caller_context = contextvars.copy_context()

    def worker(rank: int) -> None:
        try:
            results[rank] = caller_context.copy().run(rank_fn, comms[rank], *args)
        except SimAborted:
            pass  # secondary failure; the primary error is recorded
        except BaseException as exc:  # noqa: BLE001 -- propagated to caller
            with errors_lock:
                errors.append((rank, exc))
            ctx.channels.fail(exc)

    if nranks == 1:
        worker(0)
    else:
        threads = [
            threading.Thread(target=worker, args=(r,), name=f"sim-rank-{r}")
            for r in range(nranks)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

    metrics = RunMetrics(per_rank=[c.metrics for c in comms])
    if errors:
        # Re-raise the lowest failing rank's original exception (callers
        # keep matching on the application error type), chained from a
        # RankFailureGroup that carries *every* failing rank with its
        # virtual time -- concurrent failures are no longer discarded.
        errors.sort(key=lambda e: e[0])
        infos = [
            RankFailureInfo(rank=r, vtime=comms[r].clock.now, error=e)
            for r, e in errors
        ]
        if ctx.trace is not None:
            for info in infos:
                ctx.trace.record(
                    CommEvent("rank_failed", info.vtime, info.rank, -1, 0, 0)
                )
        group = RankFailureGroup(infos)
        rank, exc = errors[0]
        try:
            exc.rank_failures = infos
            exc.trace_log = ctx.trace  # crashed attempts stay observable
            if faults is not None or recovery is not None:
                exc.recovery_report = _build_report(metrics)
        except (AttributeError, TypeError):
            pass  # exceptions with __slots__ cannot carry annotations
        if hasattr(exc, "add_note"):
            exc.add_note(f"[run_spmd] {group}")
        raise exc from group

    clocks = [c.clock.now for c in comms]
    return SpmdResult(
        results=results,
        makespan=max(clocks),
        metrics=metrics,
        final_clocks=clocks,
        trace=ctx.trace,
        recovery=(
            _build_report(metrics)
            if faults is not None or recovery is not None
            else None
        ),
    )


def _build_report(metrics: RunMetrics):
    """Fault/recovery accounting for one run (lazy import: the report
    type lives in the runtime layer, which depends on this module)."""
    from repro.runtime.recovery import RecoveryReport

    return RecoveryReport.from_run(metrics)
