"""SPMD launcher: run a rank function on every rank of a transport.

``run_spmd`` builds the run context, hands execution to the machine's
:class:`~repro.cluster.transport.Transport` backend, and assembles the
common outcome: per-rank results, merged metrics, the virtual makespan,
and structured failure propagation.

On the default ``sim`` transport each rank executes in a real OS thread
(they spend nearly all their time blocked on channel receives, so one
physical core is plenty) and virtual timing is deterministic:
availability stamps are computed from the causal clocks, never from wall
time, so the reported makespan is a pure function of the program, the
data, and the machine model.  The ``local`` transport runs the same rank
function in forked worker processes -- same virtual timeline (the cost
model is causal, not scheduled), real wall-clock parallelism.  If any
rank raises, the run's abort flag wakes every blocked receiver and the
original exception is re-raised in the caller.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.cluster.channel import SimAborted, SimDeadlockError
from repro.cluster.comm import SimContext
from repro.cluster.faults import FaultPlan, RankFailureGroup, RankFailureInfo
from repro.cluster.limits import RuntimeLimits, UNLIMITED
from repro.cluster.machine import MachineSpec
from repro.cluster.metrics import RunMetrics
from repro.cluster.trace import CommEvent, TraceLog
from repro.cluster.transport import (
    Transport,
    TransportUnavailable,
    resolve_transport,
)

__all__ = ["run_spmd", "SpmdResult", "SimAborted", "SimDeadlockError"]


@dataclass
class SpmdResult:
    """Outcome of one SPMD run."""

    results: list[Any]  # per-rank return values
    makespan: float  # max final virtual clock over ranks
    metrics: RunMetrics
    final_clocks: list[float]
    trace: "TraceLog | None" = None  # when run_spmd(..., trace=True)
    #: fault/recovery accounting, present when a FaultPlan or recovery
    #: policy was installed (see repro.runtime.recovery.RecoveryReport)
    recovery: Any = None
    #: per-rank extras dicts published via transport.rank_extras() --
    #: how process-isolated backends return rank-local driver state
    #: (cost meters, plan-cache deltas) for section-boundary merging
    extras: list[dict] | None = None
    #: name of the transport that executed the run
    transport: str = "sim"
    #: real elapsed seconds of the run (meaningful parallelism only on
    #: transports with ``wall_clock=True``)
    wall_seconds: float = 0.0

    @property
    def root_result(self) -> Any:
        return self.results[0]


def run_spmd(
    machine: MachineSpec,
    rank_fn: Callable[..., Any],
    nranks: int,
    args: Sequence[Any] = (),
    ranks_per_node: int = 1,
    limits: RuntimeLimits = UNLIMITED,
    alloc_cost: Callable[[int], float] | None = None,
    wire_scale: float = 1.0,
    real_timeout: float = 60.0,
    trace: bool = False,
    faults: FaultPlan | None = None,
    recovery: Any = None,
    transport: "Transport | str | None" = None,
) -> SpmdResult:
    """Run ``rank_fn(comm, *args)`` on *nranks* ranks.

    ``ranks_per_node`` controls rank->node packing (1 for one-process-per-
    node runtimes like Triolet's, ``cores_per_node`` for Eden's flat
    process model).  ``transport`` overrides the machine's backend
    (default: ``machine.transport``, which defaults to the deterministic
    in-process simulator).  Returns per-rank results, the virtual
    makespan and merged metrics.
    """
    if nranks < 1:
        raise ValueError("need at least one rank")
    tr = resolve_transport(transport if transport is not None else machine.transport)
    if faults is not None and not tr.supports_faults:
        raise TransportUnavailable(
            f"deterministic fault injection is sim-only for now; the "
            f"{tr.name!r} transport cannot replay a FaultPlan"
        )

    ctx = SimContext(
        machine=machine,
        nranks=nranks,
        ranks_per_node=ranks_per_node,
        limits=limits,
        real_timeout=real_timeout,
        alloc_cost=alloc_cost,
        wire_scale=wire_scale,
        trace=TraceLog() if trace else None,
        faults=faults,
        recovery=recovery,
    )
    ctx.validate()

    out = tr.execute(ctx, rank_fn, args)

    metrics = RunMetrics(per_rank=out.metrics)
    if out.errors:
        # Re-raise the lowest failing rank's original exception (callers
        # keep matching on the application error type), chained from a
        # RankFailureGroup that carries *every* failing rank with its
        # virtual time -- concurrent failures are no longer discarded.
        errors = sorted(out.errors, key=lambda e: e[0])
        infos = [
            RankFailureInfo(rank=r, vtime=out.clocks[r], error=e)
            for r, e in errors
        ]
        if ctx.trace is not None:
            for info in infos:
                ctx.trace.record(
                    CommEvent("rank_failed", info.vtime, info.rank, -1, 0, 0)
                )
        group = RankFailureGroup(infos)
        rank, exc = errors[0]
        try:
            exc.rank_failures = infos
            exc.trace_log = ctx.trace  # crashed attempts stay observable
            exc.rank_extras = out.extras  # partial rank-local state
            if faults is not None or recovery is not None:
                exc.recovery_report = _build_report(metrics)
        except (AttributeError, TypeError):
            pass  # exceptions with __slots__ cannot carry annotations
        if hasattr(exc, "add_note"):
            exc.add_note(f"[run_spmd] {group}")
        raise exc from group

    return SpmdResult(
        results=out.results,
        makespan=max(out.clocks),
        metrics=metrics,
        final_clocks=out.clocks,
        trace=ctx.trace,
        recovery=(
            _build_report(metrics)
            if faults is not None or recovery is not None
            else None
        ),
        extras=out.extras,
        transport=tr.name,
        wall_seconds=out.wall_seconds,
    )


def _build_report(metrics: RunMetrics):
    """Fault/recovery accounting for one run (lazy import: the report
    type lives in the runtime layer, which depends on this module)."""
    from repro.runtime.recovery import RecoveryReport

    return RecoveryReport.from_run(metrics)
