"""Communication event tracing for the simulated cluster.

When enabled (``run_spmd(..., trace=True)``), every send and receive is
recorded with its virtual timestamp, endpoints, tag and byte count.
Traces make the virtual timeline inspectable -- the timeline renderer
shows per-rank lanes, and tests assert causality invariants (a receive
never completes before its matching send departs).
"""
from __future__ import annotations

import threading
from dataclasses import dataclass, field


#: Event kinds beyond plain "send"/"recv": fault injection and recovery
#: stamps (``peer`` is -1 when there is no other endpoint).
FAULT_EVENT_KINDS = (
    "message_rejected",  # send refused by the runtime's message-byte cap
    "fragmented",  # oversized send split into limit-sized fragments
    "send_fault",  # injected transient send failure
    "send_retry",  # a retried send after backoff
    "delay_spike",  # injected in-flight message delay
    "rank_crash",  # injected rank crash (RankFailure raised)
    "rank_failed",  # a rank left the run with an exception
    "speculation",  # straggled task capped by a backup copy
)


@dataclass(frozen=True)
class CommEvent:
    """One traced communication or fault/recovery event."""

    kind: str  # "send" | "recv" | one of FAULT_EVENT_KINDS
    time: float  # virtual time at completion of the operation
    rank: int  # the rank performing the operation
    peer: int  # the other endpoint (-1 when not applicable)
    tag: int
    nbytes: int

    def as_dict(self) -> dict:
        """Plain-dict form (what the observability layer absorbs)."""
        return {
            "kind": self.kind,
            "time": self.time,
            "rank": self.rank,
            "peer": self.peer,
            "tag": self.tag,
            "nbytes": self.nbytes,
        }

    def is_fault(self) -> bool:
        """An endpoint-less fault/recovery stamp (per-rank fault lane)."""
        return self.kind in FAULT_EVENT_KINDS and self.peer < 0

    def describe(self) -> str:
        if self.kind == "send":
            arrow = "->"
        elif self.kind == "recv":
            arrow = "<-"
        else:
            peer = f" (peer {self.peer})" if self.peer >= 0 else ""
            return (
                f"t={self.time * 1e3:10.4f}ms  rank {self.rank} "
                f"[{self.kind}]{peer}  tag={self.tag}  {self.nbytes}B"
            )
        return (
            f"t={self.time * 1e3:10.4f}ms  rank {self.rank} {arrow} "
            f"rank {self.peer}  tag={self.tag}  {self.nbytes}B"
        )


@dataclass
class TraceLog:
    """Thread-safe append-only event log shared by all ranks of a run."""

    events: list[CommEvent] = field(default_factory=list)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def record(self, event: CommEvent) -> None:
        with self._lock:
            self.events.append(event)

    def sorted_events(self) -> list[CommEvent]:
        return sorted(self.events, key=lambda e: (e.time, e.rank, e.kind))

    def sends(self) -> list[CommEvent]:
        return [e for e in self.events if e.kind == "send"]

    def recvs(self) -> list[CommEvent]:
        return [e for e in self.events if e.kind == "recv"]

    def for_rank(self, rank: int) -> list[CommEvent]:
        return sorted(
            (e for e in self.events if e.rank == rank), key=lambda e: e.time
        )

    def of_kind(self, kind: str) -> list[CommEvent]:
        """All events of one kind (e.g. ``"message_rejected"``)."""
        return sorted(
            (e for e in self.events if e.kind == kind), key=lambda e: e.time
        )

    def fault_events(self) -> list[CommEvent]:
        """Every injected-fault / recovery event, time-ordered."""
        return sorted(
            (e for e in self.events if e.kind in FAULT_EVENT_KINDS),
            key=lambda e: e.time,
        )


def render_timeline(log: TraceLog, max_events: int = 200) -> str:
    """A human-readable, time-ordered view of a run's communication."""
    events = log.sorted_events()
    lines = [f"{len(events)} communication events"]
    for e in events[:max_events]:
        lines.append("  " + e.describe())
    if len(events) > max_events:
        lines.append(f"  ... {len(events) - max_events} more")
    return "\n".join(lines)


def check_causality(log: TraceLog) -> list[str]:
    """Verify every receive completes no earlier than its send departed.

    Matches sends to receives per (src, dst, tag) channel in FIFO order
    (the channel discipline).  Returns a list of violation descriptions;
    an empty list means the virtual timeline is causally consistent.
    """
    violations: list[str] = []
    channels: dict[tuple[int, int, int], list[CommEvent]] = {}
    for e in sorted(log.sends(), key=lambda e: e.time):
        channels.setdefault((e.rank, e.peer, e.tag), []).append(e)
    matched: dict[tuple[int, int, int], int] = {}
    for r in sorted(log.recvs(), key=lambda e: e.time):
        key = (r.peer, r.rank, r.tag)
        idx = matched.get(key, 0)
        sends = channels.get(key, [])
        if idx >= len(sends):
            violations.append(f"recv with no matching send: {r.describe()}")
            continue
        s = sends[idx]
        matched[key] = idx + 1
        if r.time < s.time:
            violations.append(
                f"recv at {r.time} precedes its send at {s.time}: "
                f"{r.describe()}"
            )
    return violations
