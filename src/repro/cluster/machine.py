"""Machine description: topology plus communication/compute constants.

The default constants describe the paper's testbed: 8 Amazon EC2 cluster
compute nodes, two 8-core Xeon E5-2670 each (16 cores/node, hyperthreading
off), 10 GbE interconnect, ranks within a node communicating over shared
memory.  Constants are order-of-magnitude calibrations, documented in
EXPERIMENTS.md; the *shape* of every figure comes from measured byte
volumes and partition sizes, not from these numbers alone.
"""
from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class NetworkModel:
    """LogGP-style link parameters.

    latency
        one-way wire latency L (seconds).
    bandwidth
        sustained point-to-point bandwidth (bytes/second).  The sender is
        occupied for ``nbytes / bandwidth`` while injecting, which is what
        makes a star topology's root a serial bottleneck.
    overhead
        per-message CPU overhead o (seconds) paid by sender and receiver.
    """

    latency: float = 50e-6
    bandwidth: float = 1.0e9
    overhead: float = 2e-6

    def injection_time(self, nbytes: int) -> float:
        """Sender busy time for a message of *nbytes*."""
        return self.overhead + nbytes / self.bandwidth

    def availability_delay(self) -> float:
        """Extra delay before the last byte reaches the receiver."""
        return self.latency

    def receive_time(self) -> float:
        """Receiver busy time once the message is available."""
        return self.overhead


@dataclass(frozen=True)
class MachineSpec:
    """A cluster: ``nodes`` x ``cores_per_node`` cores.

    ``net`` is the inter-node interconnect; ``shm`` the intra-node
    shared-memory "link" used when two ranks share a node.
    """

    nodes: int = 8
    cores_per_node: int = 16
    net: NetworkModel = field(default_factory=NetworkModel)
    shm: NetworkModel = field(
        default_factory=lambda: NetworkModel(
            latency=0.5e-6, bandwidth=8.0e9, overhead=0.3e-6
        )
    )
    #: seconds to fork/join one intra-node worker task (thread-pool cost)
    thread_spawn_overhead: float = 2e-6
    #: seconds for one work-stealing steal attempt
    steal_overhead: float = 1e-6
    #: transport backend name the SPMD launcher resolves at run time:
    #: ``"sim"`` (deterministic in-process simulator, the default),
    #: ``"local"`` (real multiprocess ranks over shared memory/queues) or
    #: ``"mpi"`` (mpi4py buffer sends, when installed).  See
    #: :mod:`repro.cluster.transport`.
    transport: str = "sim"

    def __post_init__(self):
        if self.nodes < 1 or self.cores_per_node < 1:
            raise ValueError("machine must have at least 1 node and 1 core")

    @property
    def total_cores(self) -> int:
        return self.nodes * self.cores_per_node

    def node_of(self, rank: int, ranks_per_node: int = 1) -> int:
        """Node index hosting *rank* when ranks are packed contiguously."""
        if rank < 0:
            raise ValueError(f"negative rank: {rank}")
        return rank // ranks_per_node

    def link(self, src_node: int, dst_node: int) -> NetworkModel:
        """The link model between two nodes (shared memory if equal)."""
        return self.shm if src_node == dst_node else self.net

    def scaled(self, nodes: int | None = None, cores_per_node: int | None = None) -> "MachineSpec":
        """A copy with a different shape but identical link constants."""
        return MachineSpec(
            nodes=self.nodes if nodes is None else nodes,
            cores_per_node=(
                self.cores_per_node if cores_per_node is None else cores_per_node
            ),
            net=self.net,
            shm=self.shm,
            thread_spawn_overhead=self.thread_spawn_overhead,
            steal_overhead=self.steal_overhead,
            transport=self.transport,
        )

    def with_transport(self, transport: str) -> "MachineSpec":
        """A copy running on a different transport backend."""
        from dataclasses import replace

        return replace(self, transport=transport)


#: The paper's evaluation machine.
PAPER_MACHINE = MachineSpec(nodes=8, cores_per_node=16)
