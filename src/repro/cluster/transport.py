"""Pluggable transports: one Triolet runtime, several substrates.

The runtime, collectives, data plane and observability layer talk to the
cluster only through :class:`~repro.cluster.comm.Comm`, and ``Comm`` talks
to the wire only through a channel table (``post``/``take``/``fail``) plus
the SPMD launcher.  This module factors that seam into a :class:`Transport`
protocol with three backends:

``sim``
    The original deterministic in-process simulator: one OS thread per
    rank, queue-based channels, virtual LogGP timing.  Stays the default;
    every existing test and figure is bit-identical.

``local``
    Real ``multiprocessing`` worker processes, one per rank (fork start
    method).  Messages travel over per-rank OS queues; contiguous numpy
    buffer sends above a threshold travel as
    ``multiprocessing.shared_memory`` segments (one block copy in, one
    out -- the buffer-based contiguity-checked discipline of gpaw's MPI
    layer).  Because ranks really execute in parallel, wall-clock time
    scales with cores while the *virtual* timeline -- computed causally
    from the same cost model -- stays bit-identical to ``sim``.

``mpi``
    Optional mpi4py buffer sends between the ranks of an ``mpiexec``
    launch (master-mediated, meld-style: the whole SPMD program runs on
    every world rank and ``run_spmd`` assigns roles).  Import-guarded:
    :func:`resolve_transport` raises :class:`TransportUnavailable` when
    mpi4py is missing, and the test matrix skips it cleanly.

Process-isolated backends have no shared heap: worker-side mutations of
driver state (cost meters, plan-cache counters, rank stores) die with the
worker.  Rank code publishes such state through :func:`rank_extras`; the
transports carry it back on :class:`RunOutcome.extras` and the driver
merges it at section boundaries (see ``repro.runtime.driver``).

Fault injection (:class:`~repro.cluster.faults.FaultPlan`) is sim-only
for now: real processes cannot replay a deterministic virtual-time crash
schedule mid-flight.  ``run_spmd`` refuses the combination explicitly.
"""
from __future__ import annotations

import contextvars
import dataclasses
import queue as _queue
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np

from repro.cluster.channel import Envelope, SimAborted, SimDeadlockError
from repro.cluster.comm import Comm, SimContext
from repro.cluster.metrics import RankMetrics
from repro.serial.arrays import ensure_contiguous

__all__ = [
    "Transport",
    "TransportUnavailable",
    "RunOutcome",
    "SimTransport",
    "LocalTransport",
    "MPITransport",
    "register_transport",
    "resolve_transport",
    "available_transports",
    "rank_extras",
]


class TransportUnavailable(RuntimeError):
    """The requested backend cannot run here (missing dependency,
    unsupported platform, or an unsupported feature combination)."""


#: Per-rank scratch published by rank code (the driver) and carried back
#: to the launching process by every transport.  ``None`` outside a rank.
_rank_extras: contextvars.ContextVar[dict | None] = contextvars.ContextVar(
    "repro_rank_extras", default=None
)


def rank_extras() -> dict | None:
    """The executing rank's extras dict (merged by the driver at the
    section boundary), or ``None`` when not inside an SPMD rank."""
    return _rank_extras.get()


@dataclass
class RunOutcome:
    """What a transport hands back to ``run_spmd``: per-rank results,
    final virtual clocks, metrics, extras, and any rank errors."""

    results: list[Any]
    clocks: list[float]
    metrics: list[RankMetrics]
    errors: list[tuple[int, BaseException]] = field(default_factory=list)
    extras: list[dict] = field(default_factory=list)
    wall_seconds: float = 0.0


class Transport:
    """One way of running an SPMD rank function against real channels.

    Subclasses define the spawn/join lifecycle (threads, forked
    processes, MPI world ranks) and the message substrate.  Capability
    flags tell the runtime what it may assume:

    ``shared_heap``
        Ranks share the caller's address space: worker-side mutations of
        runtime state (meters, rank stores) are visible to the driver.
    ``wall_clock``
        Wall-clock section times are meaningful (ranks really execute
        concurrently); the driver reports them into obs spans.
    ``supports_faults``
        Deterministic :class:`FaultPlan` injection is honoured.
    """

    name: str = "?"
    shared_heap: bool = True
    wall_clock: bool = False
    supports_faults: bool = False

    def available(self, nranks: int = 1) -> None:
        """Raise :class:`TransportUnavailable` if this backend cannot
        run *nranks* ranks here; otherwise return normally."""

    def execute(
        self, ctx: SimContext, rank_fn: Callable[..., Any], args: Sequence[Any]
    ) -> RunOutcome:
        raise NotImplementedError


# ---------------------------------------------------------------------------
# sim: the deterministic in-process simulator (threads + virtual clocks)


class SimTransport(Transport):
    """The original backend: one thread per rank, queue channels,
    virtual timing.  Deterministic and the default everywhere."""

    name = "sim"
    shared_heap = True
    wall_clock = False
    supports_faults = True

    def execute(
        self, ctx: SimContext, rank_fn: Callable[..., Any], args: Sequence[Any]
    ) -> RunOutcome:
        nranks = ctx.nranks
        comms = [Comm(ctx, r) for r in range(nranks)]
        results: list[Any] = [None] * nranks
        extras: list[dict] = [{} for _ in range(nranks)]
        errors: list[tuple[int, BaseException]] = []
        errors_lock = threading.Lock()
        # Rank threads inherit the caller's context (installed executor,
        # cost context, ...): a fresh thread starts with an empty context,
        # which would silently disable nested parallel sections inside
        # rank code.
        caller_context = contextvars.copy_context()

        def worker(rank: int) -> None:
            def call():
                token = _rank_extras.set(extras[rank])
                try:
                    return rank_fn(comms[rank], *args)
                finally:
                    _rank_extras.reset(token)

            try:
                results[rank] = caller_context.copy().run(call)
            except SimAborted:
                pass  # secondary failure; the primary error is recorded
            except BaseException as exc:  # noqa: BLE001 -- propagated to caller
                with errors_lock:
                    errors.append((rank, exc))
                ctx.channels.fail(exc)
            finally:
                # After the last possible post: receivers blocked on this
                # rank now abort deterministically (see ChannelTable).
                ctx.channels.mark_done(rank)

        t0 = time.perf_counter()
        if nranks == 1:
            worker(0)
        else:
            threads = [
                threading.Thread(target=worker, args=(r,), name=f"sim-rank-{r}")
                for r in range(nranks)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        return RunOutcome(
            results=results,
            clocks=[c.clock.now for c in comms],
            metrics=[c.metrics for c in comms],
            errors=errors,
            extras=extras,
            wall_seconds=time.perf_counter() - t0,
        )


# ---------------------------------------------------------------------------
# local: real multiprocess ranks over OS queues + shared-memory segments


#: Contiguous buffer payloads at or above this size travel as
#: ``multiprocessing.shared_memory`` segments instead of being pickled
#: through the queue pipe (two block copies either way, but the segment
#: bypasses the pickle framing and the pipe's small buffer).
SHM_MIN_BYTES = 1 << 15


@dataclass(frozen=True)
class _ShmRef:
    """Wire descriptor of a shared-memory array payload."""

    name: str
    dtype: str
    shape: tuple


def _shm_write(arr: np.ndarray) -> _ShmRef:
    """Copy *arr* into a fresh shared segment; returns its descriptor.

    The receiver owns the segment from here: it unlinks after copying
    out.  The creator unregisters from its resource tracker so a clean
    receiver-side unlink is not double-reported at exit.
    """
    from multiprocessing import resource_tracker, shared_memory

    a = ensure_contiguous(arr)
    seg = shared_memory.SharedMemory(create=True, size=max(1, a.nbytes))
    np.ndarray(a.shape, a.dtype, buffer=seg.buf)[...] = a
    ref = _ShmRef(seg.name, a.dtype.str, a.shape)
    seg.close()
    try:  # receiver unlinks; keep the creator's tracker out of it
        resource_tracker.unregister(seg._name, "shared_memory")
    except Exception:
        pass
    return ref


def _shm_read(ref: _ShmRef) -> np.ndarray:
    """Materialize (and release) a shared-memory payload."""
    from multiprocessing import shared_memory

    seg = shared_memory.SharedMemory(name=ref.name)
    try:
        out = np.ndarray(ref.shape, np.dtype(ref.dtype), buffer=seg.buf).copy()
    finally:
        seg.close()
        _shm_unlink(ref)
    return out


def _shm_unlink(ref: _ShmRef) -> None:
    from multiprocessing import shared_memory

    try:
        seg = shared_memory.SharedMemory(name=ref.name)
        seg.close()
        seg.unlink()
    except FileNotFoundError:
        pass


def _encode_envelope(env: Envelope, shm_min: int) -> Envelope:
    """Swap a large contiguous buffer payload for a shared-memory ref."""
    p = env.payload
    if env.raw and isinstance(p, np.ndarray) and p.nbytes >= shm_min:
        return dataclasses.replace(env, payload=_shm_write(p))
    return env


def _decode_envelope(env: Envelope) -> Envelope:
    if isinstance(env.payload, _ShmRef):
        return dataclasses.replace(env, payload=_shm_read(env.payload))
    return env


class LocalChannelTable:
    """One process-rank's endpoint: per-rank inbox queues, (src, tag)
    matching with MPI's per-source non-overtaking guarantee, and the
    run's shared abort flag.  Same ``post``/``take``/``fail`` surface as
    the simulator's :class:`~repro.cluster.channel.ChannelTable`."""

    def __init__(self, rank: int, inboxes: list, abort, shm_min: int) -> None:
        self.rank = rank
        self._inboxes = inboxes
        self.abort = abort
        self.abort_reason: BaseException | None = None
        self._shm_min = shm_min
        # (src, tag) -> deque of envelopes that arrived before they were
        # asked for.  Per-sender queue order is preserved end to end, so
        # matching stays deterministic exactly like the sim channels.
        self._pending: dict[tuple[int, int], deque] = {}

    def post(self, src: int, dst: int, tag: int, env: Envelope) -> None:
        if self.abort.is_set():
            raise SimAborted("run aborted: a peer rank failed")
        self._inboxes[dst].put((src, tag, _encode_envelope(env, self._shm_min)))

    def take(self, src: int, dst: int, tag: int, real_timeout: float) -> Envelope:
        key = (src, tag)
        waited = 0.0
        poll = 0.05
        while True:
            q = self._pending.get(key)
            if q:
                return _decode_envelope(q.popleft())
            if self.abort.is_set():
                raise SimAborted("run aborted: a peer rank failed")
            try:
                s, t, env = self._inboxes[self.rank].get(timeout=poll)
            except _queue.Empty:
                waited += poll
                if waited >= real_timeout:
                    raise SimDeadlockError(
                        f"rank {dst} waited {real_timeout:.0f}s (real) for a "
                        f"message from rank {src} tag {tag}; deadlock?"
                    )
                continue
            if (s, t) == key:
                return _decode_envelope(env)
            self._pending.setdefault((s, t), deque()).append(env)

    def fail(self, exc: BaseException) -> None:
        self.abort_reason = exc
        self.abort.set()


def _picklable_error(exc: BaseException) -> BaseException:
    """An exception safe to send through a queue (some carry live state)."""
    import pickle

    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return RuntimeError(f"{type(exc).__name__}: {exc}")


class LocalTransport(Transport):
    """Real multiprocess execution: one forked worker process per rank.

    Spawn/join lifecycle is per ``run_spmd`` call (one parallel section):
    fork inherits the driver's full state -- iterators, handle registry,
    resident rank stores, plan cache -- so no program state needs to be
    shipped to start a section; only messages move.  Everything a worker
    mutates is carried back explicitly (results, metrics, clocks, trace
    events, :func:`rank_extras`) because the heap is not shared.
    """

    name = "local"
    shared_heap = False
    wall_clock = True
    supports_faults = False

    def __init__(self, shm_min_bytes: int = SHM_MIN_BYTES):
        self.shm_min_bytes = shm_min_bytes

    def available(self, nranks: int = 1) -> None:
        import multiprocessing as mp

        if "fork" not in mp.get_all_start_methods():
            raise TransportUnavailable(
                "LocalTransport needs the fork start method (POSIX only)"
            )

    def execute(
        self, ctx: SimContext, rank_fn: Callable[..., Any], args: Sequence[Any]
    ) -> RunOutcome:
        self.available(ctx.nranks)
        import multiprocessing as mp

        mpc = mp.get_context("fork")
        nranks = ctx.nranks
        inboxes = [mpc.Queue() for _ in range(nranks)]
        outbox = mpc.Queue()
        abort = mpc.Event()
        shm_min = self.shm_min_bytes

        def child(rank: int) -> None:
            table = LocalChannelTable(rank, inboxes, abort, shm_min)
            cctx = dataclasses.replace(ctx, channels=table)
            comm = Comm(cctx, rank)
            extras: dict = {}
            token = _rank_extras.set(extras)
            status, payload = "ok", None
            try:
                payload = rank_fn(comm, *args)
            except SimAborted:
                status = "aborted"
            except BaseException as exc:  # noqa: BLE001 -- shipped to parent
                status = "error"
                payload = _picklable_error(exc)
                table.fail(exc)
            finally:
                _rank_extras.reset(token)
            events = list(cctx.trace.events) if cctx.trace is not None else None
            outbox.put(
                (rank, status, payload, comm.clock.now, comm.metrics, extras,
                 events)
            )
            outbox.close()
            outbox.join_thread()

        t0 = time.perf_counter()
        procs = [
            mpc.Process(target=child, args=(r,), name=f"local-rank-{r}")
            for r in range(nranks)
        ]
        for p in procs:
            p.start()

        outcomes: dict[int, tuple] = {}
        deadline_slack = ctx.real_timeout + 30.0
        try:
            for _ in range(nranks):
                try:
                    out = outbox.get(timeout=deadline_slack)
                except _queue.Empty:
                    abort.set()
                    raise SimDeadlockError(
                        f"local transport: {nranks - len(outcomes)} rank "
                        f"process(es) did not report within "
                        f"{deadline_slack:.0f}s"
                    )
                outcomes[out[0]] = out
        finally:
            # Unread messages would block the writers' queue feeders at
            # exit; drain them (and release any shared segments they
            # reference) before joining.
            for q in inboxes:
                while True:
                    try:
                        _s, _t, env = q.get_nowait()
                    except _queue.Empty:
                        break
                    if isinstance(env.payload, _ShmRef):
                        _shm_unlink(env.payload)
            for p in procs:
                p.join(timeout=10.0)
                if p.is_alive():
                    p.terminate()
                    p.join()
        wall = time.perf_counter() - t0

        results: list[Any] = [None] * nranks
        clocks: list[float] = [0.0] * nranks
        metrics: list[RankMetrics] = [RankMetrics(rank=r) for r in range(nranks)]
        extras: list[dict] = [{} for _ in range(nranks)]
        errors: list[tuple[int, BaseException]] = []
        for r in range(nranks):
            rank, status, payload, clock_now, rm, ext, events = outcomes[r]
            clocks[r] = clock_now
            metrics[r] = rm
            extras[r] = ext
            if status == "ok":
                results[r] = payload
            elif status == "error":
                errors.append((r, payload))
            if events and ctx.trace is not None:
                ctx.trace.events.extend(events)
        return RunOutcome(
            results=results,
            clocks=clocks,
            metrics=metrics,
            errors=errors,
            extras=extras,
            wall_seconds=wall,
        )


# ---------------------------------------------------------------------------
# mpi: optional mpi4py backend (buffer sends between mpiexec world ranks)


class MPIChannelTable:
    """(src, tag)-matched channels over mpi4py.

    All traffic uses two reserved MPI tags: a pickled header/body tag and
    a raw buffer tag.  A contiguous numpy payload travels as a pickled
    header immediately followed by a buffer-protocol ``Send`` from the
    same source (gpaw's contiguity rule: the buffer fast path is only for
    contiguous data; anything else is compacted first).  MPI guarantees
    per-(src, dst) non-overtaking, so the header/buffer pairing and the
    per-source FIFO matching are deterministic.
    """

    _TAG_OBJ = 31001
    _TAG_BUF = 31002

    def __init__(self, mpi_comm, rank: int) -> None:
        from mpi4py import MPI

        self._MPI = MPI
        self._comm = mpi_comm
        self.rank = rank
        self.abort_reason: BaseException | None = None
        self._pending: dict[tuple[int, int], deque] = {}

    def post(self, src: int, dst: int, tag: int, env: Envelope) -> None:
        p = env.payload
        if env.raw and isinstance(p, np.ndarray):
            a = ensure_contiguous(p)
            head = dataclasses.replace(
                env, payload=("__buf__", a.dtype.str, a.shape)
            )
            self._comm.send((src, tag, head), dest=dst, tag=self._TAG_OBJ)
            self._comm.Send(a, dest=dst, tag=self._TAG_BUF)
        else:
            self._comm.send((src, tag, env), dest=dst, tag=self._TAG_OBJ)

    def _recv_one(self) -> tuple[int, int, Envelope]:
        src, tag, env = self._comm.recv(
            source=self._MPI.ANY_SOURCE, tag=self._TAG_OBJ
        )
        p = env.payload
        if isinstance(p, tuple) and len(p) == 3 and p[0] == "__buf__":
            _, dts, shape = p
            buf = np.empty(shape, dtype=np.dtype(dts))
            self._comm.Recv(buf, source=src, tag=self._TAG_BUF)
            env = dataclasses.replace(env, payload=buf)
        return src, tag, env

    def take(self, src: int, dst: int, tag: int, real_timeout: float) -> Envelope:
        key = (src, tag)
        while True:
            q = self._pending.get(key)
            if q:
                return q.popleft()
            s, t, env = self._recv_one()
            if (s, t) == key:
                return env
            self._pending.setdefault((s, t), deque()).append(env)

    def fail(self, exc: BaseException) -> None:
        self.abort_reason = exc
        self._comm.Abort(1)


class MPITransport(Transport):
    """mpi4py backend: ranks of an ``mpiexec`` world execute the SPMD
    program collectively (meld's master-mediated pattern: every world
    rank runs the same driver; ``run_spmd`` assigns communicator roles
    and allgathers the outcome so the duplicated drivers stay in
    lockstep).  Import-guarded: unavailable installs skip cleanly.
    """

    name = "mpi"
    shared_heap = False
    wall_clock = True
    supports_faults = False

    def available(self, nranks: int = 1) -> None:
        try:
            from mpi4py import MPI
        except ImportError as exc:
            raise TransportUnavailable("mpi4py is not installed") from exc
        if MPI.COMM_WORLD.Get_size() < max(1, nranks):
            raise TransportUnavailable(
                f"MPI world size {MPI.COMM_WORLD.Get_size()} < {nranks} ranks"
            )

    def execute(
        self, ctx: SimContext, rank_fn: Callable[..., Any], args: Sequence[Any]
    ) -> RunOutcome:
        self.available(ctx.nranks)
        from mpi4py import MPI

        world = MPI.COMM_WORLD
        nranks = ctx.nranks
        color = 0 if world.Get_rank() < nranks else MPI.UNDEFINED
        sub = world.Split(color, world.Get_rank())
        t0 = time.perf_counter()
        local: tuple | None = None
        if sub != MPI.COMM_NULL:
            rank = sub.Get_rank()
            table = MPIChannelTable(sub, rank)
            cctx = dataclasses.replace(ctx, channels=table)
            comm = Comm(cctx, rank)
            extras: dict = {}
            token = _rank_extras.set(extras)
            status, payload = "ok", None
            try:
                payload = rank_fn(comm, *args)
            except BaseException as exc:  # noqa: BLE001 -- gathered below
                status = "error"
                payload = _picklable_error(exc)
            finally:
                _rank_extras.reset(token)
            local = (rank, status, payload, comm.clock.now, comm.metrics,
                     extras)
            sub.Free()
        # Every world rank -- participant or not -- sees the same outcome,
        # so the duplicated SPMD drivers continue deterministically.
        gathered = [o for o in world.allgather(local) if o is not None]
        gathered.sort(key=lambda o: o[0])
        out = RunOutcome(
            results=[o[2] if o[1] == "ok" else None for o in gathered],
            clocks=[o[3] for o in gathered],
            metrics=[o[4] for o in gathered],
            errors=[(o[0], o[2]) for o in gathered if o[1] == "error"],
            extras=[o[5] for o in gathered],
            wall_seconds=time.perf_counter() - t0,
        )
        return out


# ---------------------------------------------------------------------------
# registry / factory


_REGISTRY: dict[str, Callable[[], Transport]] = {
    "sim": SimTransport,
    "local": LocalTransport,
    "mpi": MPITransport,
}


def register_transport(name: str, factory: Callable[[], Transport]) -> None:
    """Register a custom backend under *name* (machine construction
    resolves transports by name)."""
    _REGISTRY[name] = factory


def resolve_transport(spec: "str | Transport | None") -> Transport:
    """Resolve a transport instance from a name, an instance, or None
    (None means the default ``sim``)."""
    if spec is None:
        return SimTransport()
    if isinstance(spec, Transport):
        return spec
    try:
        factory = _REGISTRY[spec]
    except KeyError:
        raise ValueError(
            f"unknown transport {spec!r} (registered: {sorted(_REGISTRY)})"
        ) from None
    return factory()


def available_transports(nranks: int = 2) -> list[str]:
    """Names of the registered backends that can run here, in registry
    order.  The conformance matrix parametrizes over this."""
    names = []
    for name in _REGISTRY:
        try:
            resolve_transport(name).available(nranks)
        except TransportUnavailable:
            continue
        names.append(name)
    return names
