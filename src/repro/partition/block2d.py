"""2-D block decompositions (paper §2, sgemm).

"This feature enables a parallel 2D block decomposition of dense matrix
multiplication to be written in two lines of code."  The runtime uses
these helpers to carve a ``Dim2`` iterator into a near-square process
grid; each block's data cost is the rows of ``u`` covering its vertical
extent plus the rows of ``v`` covering its horizontal extent, so squarer
grids ship less data.
"""
from __future__ import annotations

import math

from repro.partition.block import block_bounds


def grid_shape(nparts: int, h: int, w: int) -> tuple[int, int]:
    """Choose a ``(py, px)`` grid with ``py*px == nparts``.

    Prefers the factorization whose aspect ratio best matches ``h:w``
    (minimizing replicated input rows), falling back toward squares.
    """
    if nparts < 1:
        raise ValueError(f"need at least one part, got {nparts}")
    best = (nparts, 1)
    best_cost = math.inf
    for py in range(1, nparts + 1):
        if nparts % py:
            continue
        px = nparts // py
        # Data shipped ~ px * h (u rows replicated across the px block
        # columns) + py * w (v rows replicated down the py block rows).
        cost = px * max(h, 1) + py * max(w, 1)
        if cost < best_cost:
            best, best_cost = (py, px), cost
    return best


def block2d_bounds(
    h: int, w: int, py: int, px: int
) -> list[tuple[tuple[int, int], tuple[int, int]]]:
    """The ``py*px`` blocks of an ``h x w`` domain, row-major order.

    Each entry is ``((ylo, yhi), (xlo, xhi))``.
    """
    rows = block_bounds(h, py)
    cols = block_bounds(w, px)
    return [(r, c) for r in rows for c in cols]
