"""Work and data decompositions.

Triolet "treats data distribution strategies separately from work
distribution strategies".  This package provides the work-side block
math; the data side is the ``slice`` interface of
:mod:`repro.core.sources`, driven in lockstep by the runtime.
"""
from repro.partition.block import (
    block_bounds,
    chunk_bounds,
    missing_intervals,
    weighted_bounds,
)
from repro.partition.block2d import grid_shape, block2d_bounds
from repro.partition.halo import (
    flatten_intervals,
    halo_bytes_bound,
    halo_intervals,
    halo_rows,
    section_halos,
)

__all__ = [
    "block_bounds",
    "chunk_bounds",
    "weighted_bounds",
    "missing_intervals",
    "grid_shape",
    "block2d_bounds",
    "halo_intervals",
    "section_halos",
    "flatten_intervals",
    "halo_rows",
    "halo_bytes_bound",
]
