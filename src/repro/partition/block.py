"""Balanced contiguous 1-D block partitions."""
from __future__ import annotations


def block_bounds(n: int, nparts: int) -> list[tuple[int, int]]:
    """Split ``range(n)`` into *nparts* contiguous blocks of size within 1.

    Blocks may be empty when ``nparts > n``; bounds are monotone and cover
    ``[0, n)`` exactly.
    """
    if n < 0:
        raise ValueError(f"cannot partition negative extent {n}")
    if nparts < 1:
        raise ValueError(f"need at least one part, got {nparts}")
    return [(n * k // nparts, n * (k + 1) // nparts) for k in range(nparts)]


def chunk_bounds(n: int, chunk: int) -> list[tuple[int, int]]:
    """Split ``range(n)`` into blocks of at most *chunk* elements."""
    if chunk < 1:
        raise ValueError(f"chunk size must be positive, got {chunk}")
    return [(lo, min(lo + chunk, n)) for lo in range(0, n, chunk)] or [(0, 0)]


def weighted_bounds(n: int, weights: list[float]) -> list[tuple[int, int]]:
    """Split ``range(n)`` into ``len(weights)`` contiguous blocks whose
    sizes are proportional to *weights*.

    Used by cost-feedback repartitioning: a rank observed to be twice as
    fast gets (about) twice the rows.  Bounds are monotone, cover
    ``[0, n)`` exactly, and zero-weight (or heavily outweighed) parts
    degenerate to valid empty blocks -- the same contract as
    :func:`block_bounds`.  Non-finite or non-positive total weight falls
    back to the uniform split.
    """
    if n < 0:
        raise ValueError(f"cannot partition negative extent {n}")
    nparts = len(weights)
    if nparts < 1:
        raise ValueError("need at least one weight")
    total = float(sum(max(0.0, w) for w in weights))
    if not (total > 0.0) or total != total or total == float("inf"):
        return block_bounds(n, nparts)
    bounds: list[tuple[int, int]] = []
    acc = 0.0
    lo = 0
    for k, w in enumerate(weights):
        acc += max(0.0, w)
        hi = n if k == nparts - 1 else min(n, max(lo, round(n * acc / total)))
        bounds.append((lo, hi))
        lo = hi
    return bounds


def missing_intervals(
    lo: int, hi: int, have: tuple[int, int] | None
) -> list[tuple[int, int]]:
    """The parts of ``[lo, hi)`` not covered by the interval *have*.

    Returns zero, one, or two non-empty intervals; the data plane ships
    exactly these pieces when a requested slice partially overlaps a
    rank's resident shard.
    """
    if hi <= lo:
        return []
    if have is None:
        return [(lo, hi)]
    alo, ahi = have
    if ahi <= alo or ahi <= lo or hi <= alo:
        return [(lo, hi)]
    out = []
    if lo < alo:
        out.append((lo, alo))
    if ahi < hi:
        out.append((ahi, hi))
    return out
