"""Balanced contiguous 1-D block partitions."""
from __future__ import annotations


def block_bounds(n: int, nparts: int) -> list[tuple[int, int]]:
    """Split ``range(n)`` into *nparts* contiguous blocks of size within 1.

    Blocks may be empty when ``nparts > n``; bounds are monotone and cover
    ``[0, n)`` exactly.
    """
    if n < 0:
        raise ValueError(f"cannot partition negative extent {n}")
    if nparts < 1:
        raise ValueError(f"need at least one part, got {nparts}")
    return [(n * k // nparts, n * (k + 1) // nparts) for k in range(nparts)]


def chunk_bounds(n: int, chunk: int) -> list[tuple[int, int]]:
    """Split ``range(n)`` into blocks of at most *chunk* elements."""
    if chunk < 1:
        raise ValueError(f"chunk size must be positive, got {chunk}")
    return [(lo, min(lo + chunk, n)) for lo in range(0, n, chunk)] or [(0, 0)]
