"""Halo (ghost-cell) interval arithmetic for stencil sections.

A radius-``r`` stencil over a block ``[lo, hi)`` of a length-``n`` array
reads ``r`` rows beyond each edge of the block.  The rows outside the
block are its *halo*: up to two clamped intervals that the data plane
places as ghost cache entries next to the rank's resident shard.  All of
the math here is pure interval arithmetic -- no handles, no stores -- so
the hypothesis property suite can hammer it directly, and the invariant
checker can recompute byte bounds independently of the planner.
"""
from __future__ import annotations


def halo_intervals(
    lo: int, hi: int, radius: int, extent: int
) -> list[tuple[int, int]]:
    """The ghost intervals a radius-``radius`` stencil over block
    ``[lo, hi)`` of ``[0, extent)`` reads outside the block.

    Returns zero, one, or two non-empty intervals, clamped to the array
    bounds.  An empty block (``hi <= lo``) touches nothing and gets no
    halo; ``radius >= block width`` simply clamps like any other case.
    """
    if radius < 0:
        raise ValueError(f"radius must be non-negative, got {radius}")
    if hi <= lo or radius == 0:
        return []
    out = []
    left = (max(0, lo - radius), lo)
    if left[0] < left[1]:
        out.append(left)
    right = (hi, min(extent, hi + radius))
    if right[0] < right[1]:
        out.append(right)
    return out


def section_halos(
    bounds: list[tuple[int, int]], radius: int, extent: int
) -> list[list[tuple[int, int]]]:
    """Per-rank ghost intervals for one stencil section's partition."""
    return [halo_intervals(lo, hi, radius, extent) for lo, hi in bounds]


def flatten_intervals(
    intervals: list[tuple[int, int]]
) -> list[tuple[int, int]]:
    """Sort and merge overlapping/adjacent intervals (drop empties).

    The property suite's flattening oracle: the ghost set of a composed
    view pipeline must equal the ghost set computed on its flattened
    slice set, and flattening is exactly this normalization.
    """
    live = sorted((lo, hi) for lo, hi in intervals if hi > lo)
    out: list[tuple[int, int]] = []
    for lo, hi in live:
        if out and lo <= out[-1][1]:
            out[-1] = (out[-1][0], max(out[-1][1], hi))
        else:
            out.append((lo, hi))
    return out


def halo_rows(
    intervals: list[tuple[int, int]], radius: int, extent: int
) -> list[tuple[int, int]]:
    """Ghost rows of a *set* of intervals: rows within ``radius`` of the
    flattened set but not inside it.  ``halo_intervals`` is the
    single-interval special case."""
    flat = flatten_intervals(intervals)
    grown = flatten_intervals(
        [(max(0, lo - radius), min(extent, hi + radius)) for lo, hi in flat]
    )
    out: list[tuple[int, int]] = []
    for glo, ghi in grown:
        cur = glo
        for lo, hi in flat:
            if hi <= cur or lo >= ghi:
                continue
            if lo > cur:
                out.append((cur, lo))
            cur = max(cur, hi)
        if cur < ghi:
            out.append((cur, ghi))
    return flatten_intervals(out)


def halo_bytes_bound(radius: int, nranks: int, row_nbytes: int) -> int:
    """Hard ceiling on one stencil section's halo traffic.

    Each of the ``nranks`` destination ranks has at most two ghost
    intervals of at most ``radius`` rows each, so a section can never
    ship more than ``2 * radius * nranks * row_nbytes`` halo bytes.  The
    invariant checker enforces this against the planner's own stats.
    """
    return 2 * radius * nranks * row_nbytes
