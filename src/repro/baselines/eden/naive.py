"""The naive list-based Eden style of the paper's introduction (§1).

"A naive attempt at parallelization might replace floatHist and the
traversal of atoms by a distributed implementation written in Eden ...

    floatHistD (\\x -> [f r x | r <- gridPts x]) atoms

This code demonstrates the attractive simplicity of algorithmic
skeletons, but its per-thread performance is an order of magnitude lower
than sequential C chiefly due to the overhead of list manipulation."

``float_hist_d`` is that program: everything flows through boxed lists
(Python lists standing in for Haskell cons cells), one cell at a time.
The meter tallies a *step* per list-cell operation, so the
list-manipulation overhead is measured, not asserted; the calibrated
per-step cost (``naive_list_costs``) turns it into the §1 order-of-
magnitude penalty.
"""
from __future__ import annotations

from typing import Callable, Sequence

from repro.baselines.eden.runtime import EdenRuntime
from repro.core import meter
from repro.runtime.costs import CostContext

#: §1: "an order of magnitude lower than sequential C chiefly due to the
#: overhead of list manipulation" -- total per-element cost of the boxed
#: list pipeline relative to a C array loop.
NAIVE_LIST_FACTOR = 11.0


def naive_list_costs(base: CostContext) -> CostContext:
    """Costs for boxed-list code: each list-cell step costs extra.

    The naive pipeline performs ~2 list-cell operations per element
    (build the comprehension cell, consume it in floatHist), so the
    per-step overhead is chosen to make the measured per-element total
    ``NAIVE_LIST_FACTOR`` times the array-loop cost.
    """
    return CostContext(
        unit_time=base.unit_time,
        step_overhead=base.unit_time * (NAIVE_LIST_FACTOR - 1.0) / 2.0,
        compute_scale=base.compute_scale,
        wire_scale=base.wire_scale,
    )


def float_hist(nbins: int, pairs: list) -> list:
    """Sequential floatHist over a list of (bin, weight) cons cells."""
    hist = [0.0] * nbins
    for bin_idx, weight in pairs:
        meter.tally_steps()  # walking the cons cell
        meter.tally_visits()
        hist[bin_idx] += weight
    return hist


def _task(item, payload):
    gridpts_fn, nbins = payload
    atoms_chunk = item
    # The §1 comprehension: [f a r | a <- atoms, r <- gridPts a],
    # built as an actual intermediate list (no fusion in naive Eden).
    pairs = []
    for a in atoms_chunk:
        for cell in gridpts_fn(a):
            meter.tally_steps()  # allocating the result cons cell
            pairs.append(cell)
    return float_hist(nbins, pairs)


def _add_hists(a: list, b: list) -> list:
    return [x + y for x, y in zip(a, b)]


def float_hist_d(
    rt: EdenRuntime,
    gridpts_fn: Callable,
    atoms: Sequence,
    nbins: int,
    ntasks: int | None = None,
) -> list:
    """The §1 ``floatHistD``: partition the atom list across tasks,
    histogram within each task, add the histograms."""
    atoms = list(atoms)
    ntasks = ntasks if ntasks is not None else min(len(atoms), rt.nprocs)
    from repro.partition import block_bounds

    items = [
        atoms[lo:hi] for lo, hi in block_bounds(len(atoms), ntasks) if hi > lo
    ]
    return rt.map_reduce(
        items, _task, _add_hists, payload=(gridpts_fn, nbins), label="floatHistD"
    )
