"""An Eden-like distributed functional skeleton framework (paper §4.1).

Eden is a distributed extension of GHC Haskell: processes do not share
memory, closures ship with *all* data they reference, arrays are boxed
unless manually chunked, and the message-passing runtime buffers whole
messages.  This baseline reproduces those mechanisms on the simulated
cluster so the paper's Eden curves can be regenerated:

* flat process-per-core model (every core is equally remote);
* the §4.1 two-level distribution workaround (main -> node leader ->
  node-local workers) to avoid the main-process star bottleneck;
* whole-payload replication to every process (no slicing, no sharing);
* chunked-list arrays (:mod:`repro.baselines.eden.chunked`);
* GHC-style GC cost model and a bounded inter-node message buffer;
* a seeded straggler model ("tasks occasionally run significantly slower
  than normal").
"""
from repro.baselines.eden.runtime import EdenRuntime, StragglerModel
from repro.baselines.eden.chunked import chunk_array, unchunk, chunked_nbytes

__all__ = [
    "EdenRuntime",
    "StragglerModel",
    "chunk_array",
    "unchunk",
    "chunked_nbytes",
]
