"""Chunked arrays: the §4.2 Eden idiom.

"In Eden, we build arrays in chunked form, as lists of 1k-element
vectors, so that the runtime can distribute subarrays to processors while
still benefiting from efficient array traversal."

A chunked array is a plain Python list of contiguous numpy vectors.  The
list spine is boxed (it costs per-cell overhead on the wire and in GC),
but the payload stays unboxed -- the compromise the paper's Eden code
makes.
"""
from __future__ import annotations

import numpy as np

from repro.serial.sizeof import BOXED_CELL_BYTES

DEFAULT_CHUNK = 1024


def chunk_array(arr: np.ndarray, chunk: int = DEFAULT_CHUNK) -> list[np.ndarray]:
    """Split *arr* along axis 0 into vectors of at most *chunk* elements."""
    if chunk < 1:
        raise ValueError(f"chunk must be positive, got {chunk}")
    n = len(arr)
    return [arr[lo : min(lo + chunk, n)] for lo in range(0, n, chunk)] or [arr[:0]]


def unchunk(chunks: list[np.ndarray]) -> np.ndarray:
    """Reassemble a chunked array."""
    if not chunks:
        raise ValueError("cannot unchunk an empty list")
    return np.concatenate(chunks, axis=0)


def chunked_nbytes(chunks: list[np.ndarray]) -> int:
    """Wire bytes of a chunked array: payload plus boxed list spine."""
    return sum(c.size * c.dtype.itemsize for c in chunks) + BOXED_CELL_BYTES * len(
        chunks
    )
