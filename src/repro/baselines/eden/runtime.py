"""The Eden-like runtime: flat processes, whole-data shipping, stragglers.

Work distribution follows the paper's §4.1 workaround: "The main process
distributes work to one process in each node, which further distributes
work to other processes in the same node.  This avoids the communication
bottleneck with the main process in Eden's skeleton library, where the
main process directly communicates with all other processes."

Key differences from the Triolet runtime, all of which show up in the
virtual clocks:

* one process per **core** (``ranks_per_node = cores_per_node``): no
  shared memory, so common payloads are serialized once per *process*
  rather than once per node;
* work items ship with their data embodied (no source slicing): the app
  code must chunk manually, and anything it forgets to chunk replicates;
* the inter-node message buffer is bounded (``EDEN_LIMITS``), failing
  exactly the way sgemm fails at >=2 nodes in §4.3;
* a seeded straggler model occasionally multiplies a task's duration
  (§4.2: "tasks occasionally run significantly slower than normal.  With
  more nodes, it is more likely that a task will be delayed").
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

import numpy as np

from repro.cluster.comm import Comm
from repro.cluster.faults import FaultPlan
from repro.cluster.limits import EDEN_LIMITS, RuntimeLimits
from repro.cluster.machine import MachineSpec
from repro.cluster.metrics import RunMetrics
from repro.cluster.process import run_spmd
from repro.cluster.simclock import VirtualClock
from repro.core import meter
from repro.partition import block_bounds
from repro.runtime.costs import CostContext
from repro.runtime.gc_model import GHC_GC, AllocatorModel

def _result_nbytes(result: Any) -> int:
    if isinstance(result, np.ndarray):
        return result.size * result.dtype.itemsize
    if isinstance(result, tuple):
        return sum(_result_nbytes(r) for r in result)
    from repro.serial.sizeof import transitive_size

    return transitive_size(result)


_WORK_TAG = 301
_FWD_TAG = 302
_RESULT_TAG = 303
_UP_TAG = 304


@dataclass(frozen=True)
class StragglerModel:
    """Occasional task delays, seeded and deterministic per run."""

    probability: float = 0.0
    min_factor: float = 2.0
    max_factor: float = 6.0
    seed: int = 0

    def factor(self, rng: np.random.Generator) -> float:
        if self.probability <= 0.0:
            return 1.0
        if rng.random() < self.probability:
            return float(rng.uniform(self.min_factor, self.max_factor))
        return 1.0


@dataclass
class EdenRunRecord:
    label: str
    makespan: float
    metrics: RunMetrics | None
    bytes_shipped: int = 0


class EdenRuntime:
    """Eden-style skeleton execution on the simulated cluster."""

    def __init__(
        self,
        machine: MachineSpec,
        costs: CostContext | None = None,
        alloc: AllocatorModel = GHC_GC,
        limits: RuntimeLimits = EDEN_LIMITS,
        straggler: StragglerModel | None = None,
        faults: FaultPlan | None = None,
    ):
        self.machine = machine
        self.costs = costs if costs is not None else CostContext()
        self.alloc = alloc
        self.limits = limits
        self.straggler = straggler if straggler is not None else StragglerModel()
        # Eden installs no recovery policy: injected faults and rejected
        # messages are fatal, exactly the Fig. 5 posture.
        self.faults = faults
        self.clock = VirtualClock()
        self.runs: list[EdenRunRecord] = []

    @property
    def elapsed(self) -> float:
        return self.clock.now

    @property
    def nprocs(self) -> int:
        return self.machine.nodes * self.machine.cores_per_node

    # -- sequential main-process work (e.g. sgemm's transpose, §4.3) ------

    def run_sequential(self, fn: Callable[[], Any], label: str = "seq") -> Any:
        with meter.metered() as m:
            out = fn()
        dt = self.costs.task_seconds(m)
        self.clock.advance(dt)
        self.runs.append(EdenRunRecord(label=label, makespan=dt, metrics=None))
        return out

    # -- the map/reduce farm skeleton -----------------------------------------

    def map_reduce(
        self,
        items: Sequence[Any],
        workfn: Callable[[Any, Any], Any],
        combine: Callable[[Any, Any], Any],
        payload: Any = None,
        label: str = "map_reduce",
    ) -> Any:
        """Two-level farm: distribute *items*, reduce results with *combine*.

        Every process receives its block of items **and a full copy of
        payload** -- whole-data semantics.  Returns the combined result at
        the main process (items must be non-empty).
        """
        outs = self._farm(items, workfn, payload, combine=combine, label=label)
        return outs

    def map_collect(
        self,
        items: Sequence[Any],
        workfn: Callable[[Any, Any], Any],
        payload: Any = None,
        label: str = "map_collect",
    ) -> list:
        """Two-level farm preserving per-item results in item order."""
        return self._farm(items, workfn, payload, combine=None, label=label)

    # -- implementation ---------------------------------------------------------

    def _farm(
        self,
        items: Sequence[Any],
        workfn: Callable,
        payload: Any,
        combine: Callable | None,
        label: str,
    ) -> Any:
        if not items:
            raise ValueError("Eden farm needs at least one work item")
        items = list(items)
        cores = self.machine.cores_per_node
        nprocs = min(self.nprocs, len(items))
        nodes_used = (nprocs + cores - 1) // cores
        proc_blocks = block_bounds(len(items), nprocs)
        costs = self.costs
        straggler = self.straggler
        run_seed = self.straggler.seed + len(self.runs)

        def is_leader(rank: int) -> bool:
            return rank % cores == 0

        def leader_of(rank: int) -> int:
            return (rank // cores) * cores

        def rank_fn(comm: Comm):
            rank = comm.rank
            # ---- downward distribution (main -> leaders -> workers) ----
            if rank == 0:
                for node in range(nodes_used):
                    lo_rank = node * cores
                    hi_rank = min(lo_rank + cores, nprocs)
                    bundle = [
                        (r, items[proc_blocks[r][0] : proc_blocks[r][1]], payload)
                        for r in range(lo_rank, hi_rank)
                    ]
                    if node == 0:
                        my_bundle = bundle
                    else:
                        comm.send(bundle, lo_rank, _WORK_TAG)
                bundle = my_bundle
            elif is_leader(rank):
                bundle = comm.recv(0, _WORK_TAG)
            else:
                bundle = None
            if is_leader(rank):
                my_items, my_payload = None, None
                for r, its, pl in bundle:
                    if r == rank:
                        my_items, my_payload = its, pl
                    else:
                        comm.send((its, pl), r, _FWD_TAG)
            else:
                my_items, my_payload = comm.recv(leader_of(rank), _FWD_TAG)

            # ---- local work, with straggler noise -----------------------
            rng = np.random.default_rng((run_seed * 1009 + rank) & 0x7FFFFFFF)
            results = []
            for item in my_items:
                with meter.metered() as m:
                    results.append(workfn(item, my_payload))
                dt = costs.task_seconds(m) * straggler.factor(rng)
                comm.compute(dt)
                # GHC heap allocation of the task's result (paper-scaled).
                comm.alloc(
                    int(_result_nbytes(results[-1]) * costs.wire_scale)
                )

            # ---- upward collection (workers -> leader -> main) ----------
            if combine is not None:
                acc = results[0] if results else None
                for r in results[1:]:
                    acc = combine(acc, r)
                if not is_leader(rank):
                    comm.send(acc, leader_of(rank), _RESULT_TAG)
                    return None
                for r in range(rank + 1, min(rank + cores, nprocs)):
                    sub = comm.recv(r, _RESULT_TAG)
                    if sub is not None:
                        acc = sub if acc is None else combine(acc, sub)
                if rank != 0:
                    comm.send(acc, 0, _UP_TAG)
                    return None
                for node in range(1, nodes_used):
                    sub = comm.recv(node * cores, _UP_TAG)
                    if sub is not None:
                        acc = sub if acc is None else combine(acc, sub)
                return acc
            # collect variant: preserve order
            if not is_leader(rank):
                comm.send(results, leader_of(rank), _RESULT_TAG)
                return None
            node_results = list(results)
            for r in range(rank + 1, min(rank + cores, nprocs)):
                node_results.extend(comm.recv(r, _RESULT_TAG))
            if rank != 0:
                comm.send(node_results, 0, _UP_TAG)
                return None
            all_results = list(node_results)
            for node in range(1, nodes_used):
                all_results.extend(comm.recv(node * cores, _UP_TAG))
            return all_results

        res = run_spmd(
            self.machine,
            rank_fn,
            nranks=nprocs,
            ranks_per_node=cores,
            limits=self.limits,
            alloc_cost=self.alloc,
            wire_scale=self.costs.wire_scale,
            faults=self.faults,
        )
        self.clock.advance(res.makespan)
        self.runs.append(
            EdenRunRecord(
                label=label,
                makespan=res.makespan,
                metrics=res.metrics,
                bytes_shipped=res.metrics.bytes_sent,
            )
        )
        return res.root_result
