"""Launcher for C+MPI+OpenMP-style rank programs."""
from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.cluster.machine import MachineSpec
from repro.cluster.metrics import RunMetrics
from repro.cluster.process import run_spmd
from repro.runtime.costs import CostContext
from repro.runtime.gc_model import LIBC_MALLOC


@dataclass
class CmpiResult:
    """Outcome of one C+MPI+OpenMP run."""

    value: Any
    makespan: float
    metrics: RunMetrics
    bytes_shipped: int


def run_cmpi(
    machine: MachineSpec,
    rank_fn: Callable[..., Any],
    costs: CostContext,
    args: Sequence[Any] = (),
    nodes: int | None = None,
) -> CmpiResult:
    """Run ``rank_fn(comm, costs, *args)`` with one MPI rank per node.

    C code allocates with libc malloc (near-free in the model, per the
    paper's GC comparison) and has no message-size limits.
    """
    nranks = machine.nodes if nodes is None else nodes
    res = run_spmd(
        machine,
        rank_fn,
        nranks=nranks,
        args=(costs, *args),
        ranks_per_node=1,
        alloc_cost=LIBC_MALLOC,
        wire_scale=costs.wire_scale,
    )
    return CmpiResult(
        value=res.root_result,
        makespan=res.makespan,
        metrics=res.metrics,
        bytes_shipped=res.metrics.bytes_sent,
    )
