"""C+MPI+OpenMP-like reference implementations.

"As a highly efficient implementation layer, the C+MPI+OpenMP serves as a
useful reference point against which to evaluate the scalability and
parallel overhead of the high-level languages."  (paper §4)

Rank programs are written directly against the simulated communicator
(one MPI rank per node), move arrays over the buffer-protocol fast path,
partition data with explicit index arithmetic -- the verbosity the paper
remarks on -- and model OpenMP as a static ``parallel for`` within the
node (:mod:`repro.baselines.cmpi.openmp`).
"""
from repro.baselines.cmpi.runtime import CmpiResult, run_cmpi
from repro.baselines.cmpi.openmp import omp_parallel_for

__all__ = ["CmpiResult", "run_cmpi", "omp_parallel_for"]
