"""The OpenMP model: static ``parallel for`` within one node.

Each task closure really executes (under a cost meter); the node's
virtual elapsed time is the static-schedule makespan over the measured
task durations plus a fork/join barrier.  Static scheduling does not
rebalance, which is why the hand-written code needs the per-thread
privatization and load-padding the paper mentions for tpacf.
"""
from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.cluster.comm import Comm
from repro.core import meter
from repro.runtime.costs import CostContext
from repro.runtime.worksteal import static_for_makespan

#: fork/join overhead of one ``#pragma omp parallel for`` region
OMP_BARRIER_SECONDS = 3e-6


def omp_parallel_for(
    comm: Comm,
    costs: CostContext,
    tasks: Sequence[Callable[[], Any]],
    schedule: str = "static",
) -> list[Any]:
    """Run *tasks* under an OpenMP-style parallel for on this rank's node.

    Returns the task results in order and charges the node's virtual
    clock with the modelled makespan.  ``schedule`` may be ``"static"``
    (contiguous blocks, no rebalancing) or ``"dynamic"`` (guided — modelled
    as greedy list scheduling).
    """
    cores = comm.ctx.machine.cores_per_node
    results: list[Any] = []
    durations: list[float] = []
    for task in tasks:
        with meter.metered() as m:
            results.append(task())
        durations.append(costs.task_seconds(m))
    if schedule == "static":
        makespan = static_for_makespan(durations, cores, OMP_BARRIER_SECONDS)
    elif schedule == "dynamic":
        from repro.runtime.worksteal import work_stealing_makespan

        makespan = work_stealing_makespan(
            durations, cores, steal_overhead=1e-6, spawn_overhead=OMP_BARRIER_SECONDS
        )
    else:
        raise ValueError(f"unknown OpenMP schedule: {schedule!r}")
    comm.compute(makespan)
    return results
