"""The "sequential C" reference point.

Every figure in §4 normalizes performance as *speedup over sequential C*.
Numerically, sequential C is each app's straight numpy kernel
(``apps/<app>/ref.py``); temporally, it is the app's total element-visit
count times the calibrated per-visit time of C code for that kernel
(:mod:`repro.bench.calibrate` documents the constants against Fig. 3).
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.core import meter
from repro.runtime.costs import CostContext


@dataclass(frozen=True)
class SeqCResult:
    """One sequential-C run: the real value and its modelled time."""

    value: Any
    visits: int
    seconds: float


def run_seqc(kernel: Callable[[], Any], costs: CostContext) -> SeqCResult:
    """Execute *kernel* (a numpy reference), metering its element visits.

    Kernels tally their inner-loop work on the ambient meter (vectorized
    code calls :func:`repro.core.meter.tally_visits` with array sizes), so
    the modelled time reflects the work actually done.
    """
    with meter.metered() as m:
        value = kernel()
    return SeqCResult(
        value=value,
        visits=m.visits,
        seconds=costs.task_seconds(m),
    )
