"""Reference implementations the paper compares against.

* :mod:`repro.baselines.seqc` -- "sequential C": straight numpy kernels
  plus the work accounting that anchors every speedup figure.
* :mod:`repro.baselines.eden` -- an Eden-like distributed functional
  skeleton framework: flat process-per-core model, no shared memory,
  whole-data closure shipping, chunked-list arrays, GHC-style GC, a
  bounded message buffer, and occasional straggler tasks (§4.1).
* :mod:`repro.baselines.cmpi` -- C+MPI+OpenMP-like rank programs with
  explicit partitioning and static intra-node scheduling; the
  low-overhead reference point (§4).
"""
