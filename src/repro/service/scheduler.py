"""Deficit fair-share scheduling across tenants.

The server runs one job at a time on the shared simulated cluster (the
cluster *is* the resource; jobs time-share its virtual timeline).  The
scheduler's only decision is *whose* pending job runs next, and it is
classic deficit fair sharing: pick the tenant with the smallest
weighted consumed virtual time, breaking ties by tenant name so the
order is a pure function of the ledgers -- reproducible across runs,
seeds, and submission interleavings.  Within a tenant, jobs run in
submission order (FIFO).

Admission control is separate from fairness: a tenant may hold at most
``max_pending`` undispatched jobs, so one tenant cannot grow the
server's queue without bound while others wait.
"""
from __future__ import annotations

from collections import deque

from repro.service.job import JobRecord
from repro.service.tenant import Tenant


class AdmissionError(RuntimeError):
    """Submission refused by admission control (queue bound exceeded)."""


class FairShareScheduler:
    """Per-tenant FIFO queues drained in deficit fair-share order."""

    def __init__(self, max_pending: int | None = None):
        #: per-tenant cap on queued (undispatched) jobs; None: unbounded
        self.max_pending = max_pending
        self._queues: dict[str, deque[JobRecord]] = {}

    def pending(self, tenant: str | None = None) -> int:
        if tenant is not None:
            return len(self._queues.get(tenant, ()))
        return sum(len(q) for q in self._queues.values())

    def admit(self, record: JobRecord) -> None:
        """Enqueue a job, enforcing the per-tenant queue bound."""
        q = self._queues.setdefault(record.tenant, deque())
        if self.max_pending is not None and len(q) >= self.max_pending:
            raise AdmissionError(
                f"tenant {record.tenant!r} already has {len(q)} pending "
                f"jobs (max_pending={self.max_pending})"
            )
        q.append(record)

    def withdraw(self, record: JobRecord) -> bool:
        """Remove a still-queued job (cancellation). False if not queued."""
        q = self._queues.get(record.tenant)
        if q is None:
            return False
        try:
            q.remove(record)
        except ValueError:
            return False
        return True

    def pick(self, tenants: dict[str, Tenant]) -> JobRecord | None:
        """The next job to run, or ``None`` when every queue is empty.

        Deterministic: among tenants with pending work, the one with
        the least ``consumed / weight`` wins; ties break on name.  The
        picked job is removed from its queue.
        """
        best: Tenant | None = None
        for name, q in sorted(self._queues.items()):
            if not q:
                continue
            t = tenants[name]
            if best is None or (
                (t.normalized_consumed, t.name)
                < (best.normalized_consumed, best.name)
            ):
                best = t
        if best is None:
            return None
        return self._queues[best.name].popleft()
