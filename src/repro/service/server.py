"""The resident :class:`JobServer`: one cluster, many jobs, many tenants.

A one-shot :class:`~repro.runtime.driver.TrioletRuntime` pays its
startup costs every run: the fusion planner re-compiles every structure,
the data plane re-ships every input, the transport is re-resolved.  A
resident server hoists all three into *server lifetime*:

* **cluster** -- the machine spec and its resolved transport backend are
  owned by the server; every job's runtime attaches to the same backend;
* **plans** -- one :class:`~repro.core.fusion.planner.PlannerState` is
  installed around every job, so a structure compiled by any tenant's
  job is a cache hit for every later job that builds the same structure;
* **placements** -- one :class:`~repro.data.plane.DataPlane` holds the
  placement map, so a dataset distributed once (by
  :meth:`JobServer.register_dataset` or by any job's ``distribute``) is
  resident for every later section that iterates it: zero input bytes
  shipped.

What is *not* shared is per-job accounting: each job gets a fresh
runtime, so its cost meters, section ledger, virtual clock and
:class:`~repro.runtime.recovery.RecoveryReport` are isolated, and the
server charges exactly that job's usage to its tenant.  Permanent rank
losses, however, outlive the job that absorbed them -- the machine
shrank -- so the server carries ``lost_ranks`` from each finished job
into the next runtime it constructs.

Scheduling is cooperative and deterministic: ``submit`` only enqueues;
jobs run during ``step()`` / ``drain()`` / ``JobHandle.result()`` in
deficit fair-share order over the server's *virtual* timeline (each
job's virtual duration is charged to its tenant; the tenant with the
least weighted usage runs next).  No wall-clock ordering ever leaks in.
"""
from __future__ import annotations

from typing import Any, Callable

from repro import serial
from repro.cluster.machine import MachineSpec
from repro.cluster.transport import resolve_transport
from repro.core.fusion import planner
from repro.data.plane import DataPlane
from repro.obs import obs_span
from repro.runtime.costs import CostContext, use_costs
from repro.runtime.driver import TrioletRuntime
from repro.runtime.recovery import DEFAULT_RECOVERY, JobFailure
from repro.core.iterators.executor import use_executor
from repro.service.job import (
    JobContext,
    JobHandle,
    JobRecord,
    JobStatus,
)
from repro.service.scheduler import FairShareScheduler
from repro.service.tenant import Tenant, TenantQuota


class JobServer:
    """A long-lived multi-tenant job service over one simulated cluster."""

    def __init__(
        self,
        machine: MachineSpec,
        costs: CostContext | None = None,
        *,
        max_pending: int | None = None,
        recovery=DEFAULT_RECOVERY,
        plane: DataPlane | None = None,
    ):
        self.machine = machine
        self.costs = costs if costs is not None else CostContext()
        #: resolved once for the server's lifetime; every job attaches
        self.transport = resolve_transport(machine.transport)
        #: shared placement map + slice caches + lineage
        self.plane = plane if plane is not None else DataPlane()
        #: shared fusion-plan cache (server-scoped, not process-global)
        self.planner_state = planner.PlannerState()
        #: shared serialization counters (server-scoped)
        self.serial_stats = serial.new_copy_stats()
        self.recovery = recovery
        #: server virtual time: the sum of every finished job's virtual
        #: duration, in submission-independent fair-share order
        self.now = 0.0
        #: permanent rank losses absorbed so far; seeds every runtime
        self.lost_ranks = 0
        self.tenants: dict[str, Tenant] = {}
        self.scheduler = FairShareScheduler(max_pending=max_pending)
        self.datasets: dict[str, Any] = {}
        self.records: list[JobRecord] = []
        self._seq = 0
        self._closed = False

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Cancel everything still queued and refuse new submissions."""
        for rec in self.records:
            if rec.status is JobStatus.PENDING:
                self._cancel(rec)
        self._closed = True

    def __enter__(self) -> "JobServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def live_ranks(self) -> int:
        return self.machine.nodes - self.lost_ranks

    # -- tenancy -----------------------------------------------------------

    def add_tenant(self, name: str, weight: float = 1.0,
                   quota: TenantQuota | None = None) -> Tenant:
        if name in self.tenants:
            raise ValueError(f"tenant {name!r} already exists")
        t = Tenant(name=name, weight=weight,
                   quota=quota if quota is not None else TenantQuota())
        self.tenants[name] = t
        return t

    def tenant_report(self) -> dict:
        """Per-tenant usage rollup (the obs metrics view of tenancy)."""
        return {name: t.report() for name, t in sorted(self.tenants.items())}

    # -- shared datasets ---------------------------------------------------

    def register_dataset(self, name: str, array, layout: str = "block"):
        """Place *array* on the shared data plane under *name*.

        The first section of the first job iterating it ships each rank
        its shard; every later job -- any tenant -- finds the shards
        resident and ships zero input bytes.  Registering the same
        array (or an equal-content copy) again dedupes to the existing
        handle.
        """
        handle = self.plane.register(array, layout)
        self.datasets[name] = handle
        return handle

    def dataset(self, name: str):
        try:
            return self.datasets[name]
        except KeyError:
            raise KeyError(
                f"no dataset {name!r} registered on this server"
            ) from None

    # -- submission --------------------------------------------------------

    def submit(
        self,
        fn: Callable[[JobContext], Any],
        *,
        tenant: str | None = None,
        name: str | None = None,
        costs: CostContext | None = None,
        faults=None,
        recovery=None,
        budget=None,
    ) -> JobHandle:
        """Enqueue a job; returns immediately with an async handle.

        ``fn`` runs later (fair-share order) against a fresh runtime
        attached to the server's shared state.  ``faults`` / ``budget``
        scope a deterministic fault schedule / failure budget to this
        job alone.  Raises :class:`~repro.service.AdmissionError` when
        the tenant's queue bound is hit.
        """
        if self._closed:
            raise RuntimeError("server is closed")
        if tenant is None:
            tenant = "default"
            if tenant not in self.tenants:
                self.add_tenant(tenant)
        elif tenant not in self.tenants:
            raise KeyError(f"unknown tenant {tenant!r}; add_tenant first")
        rec = JobRecord(
            seq=self._seq,
            name=name if name is not None else f"job-{self._seq}",
            tenant=tenant,
            fn=fn,
            costs=costs,
            faults=faults,
            recovery=recovery if recovery is not None else self.recovery,
            budget=budget,
            submit_vtime=self.now,
        )
        self._seq += 1
        self.scheduler.admit(rec)  # may raise AdmissionError
        self.records.append(rec)
        return JobHandle(self, rec)

    # -- the cooperative scheduler loop ------------------------------------

    def step(self) -> bool:
        """Run the next job in fair-share order. False when queue empty."""
        rec = self.scheduler.pick(self.tenants)
        if rec is None:
            return False
        self._dispatch(rec)
        return True

    def drain(self) -> None:
        """Run every queued job to completion."""
        while self.step():
            pass

    def _run_until(self, rec: JobRecord) -> None:
        while not rec.status.finished():
            if not self.step():  # pragma: no cover - defensive
                raise RuntimeError(f"job {rec.name!r} is not queued")

    def _cancel(self, rec: JobRecord) -> bool:
        if rec.status is not JobStatus.PENDING:
            return False
        if not self.scheduler.withdraw(rec):
            return False
        rec.status = JobStatus.CANCELLED
        rec.finish_vtime = self.now
        return True

    # -- dispatch ----------------------------------------------------------

    def _dispatch(self, rec: JobRecord) -> None:
        tenant = self.tenants[rec.tenant]
        rec.start_vtime = self.now
        try:
            tenant.check_dispatch()  # quota gate: BudgetExhausted
        except JobFailure as exc:
            rec.status = JobStatus.FAILED
            rec.error = exc
            rec.finish_vtime = self.now
            rec.metrics = {"refused": True}
            return
        rec.status = JobStatus.RUNNING

        plane_before = dict(self.plane.totals)
        plane_before["dedup_hits"] = self.plane.dedup_hits
        planner_before = self.planner_state.snapshot()
        cache_before = self.plane.cache_stats()

        rt = TrioletRuntime(
            self.machine,
            costs=rec.costs if rec.costs is not None else self.costs,
            faults=rec.faults,
            recovery=rec.recovery,
            plane=self.plane,
            budget=rec.budget,
            transport=self.transport,
            planner_state=self.planner_state,
            lost_ranks=self.lost_ranks,
            label=rec.name,
        )
        ctx = JobContext(rt=rt, server=self, tenant=rec.tenant)
        failed = False
        with obs_span("job", rec.name, clock=rt.clock,
                      tenant=rec.tenant, seq=rec.seq) as osp:
            try:
                with serial.use_copy_stats(self.serial_stats), \
                        use_executor(rt), use_costs(rt.costs):
                    rec.value = rec.fn(ctx)
            except Exception as exc:
                # Futures semantics: cluster faults (JobFailure) and
                # programming errors alike are captured here and
                # re-raised from ``result()``; the server's ledgers and
                # timeline stay consistent either way.
                failed = True
                rec.error = exc
            osp.set(status="failed" if failed else "done",
                    virtual_seconds=rt.elapsed)

        # The machine shrank for everyone: later jobs see the survivors.
        self.lost_ranks = rt.lost_ranks

        visits = rt.meter_total.visits
        shipped = rt.total_bytes_shipped()
        elapsed = rt.elapsed
        plane_delta = {
            k: self.plane.totals[k] - plane_before[k]
            for k in plane_before
            if k != "dedup_hits"
        }
        plane_delta["dedup_hits"] = (
            self.plane.dedup_hits - plane_before["dedup_hits"]
        )
        cache_after = self.plane.cache_stats()
        rec.metrics = {
            "visits": visits,
            "shipped_bytes": shipped,
            "virtual_seconds": elapsed,
            "sections": len(rt.sections),
            "plane": plane_delta,
            "planner": {
                k: v - planner_before[k]
                for k, v in self.planner_state.snapshot().items()
            },
            "slice_cache_hits": (
                cache_after["hits"] - cache_before["hits"]
            ),
            "lost_ranks": rt.lost_ranks,
            "recovery": rt.recovery_report,
        }
        tenant.charge(
            visits=visits,
            shipped_bytes=shipped,
            compute_seconds=elapsed,
            failed=failed,
        )
        self.now += elapsed
        rec.finish_vtime = self.now
        rec.status = JobStatus.FAILED if failed else JobStatus.DONE

    # -- reporting ---------------------------------------------------------

    def report(self) -> dict:
        """Server-level rollup: shared-state effectiveness + tenancy."""
        done = [r for r in self.records if r.status is JobStatus.DONE]
        snap = self.planner_state.snapshot()
        return {
            "virtual_seconds": self.now,
            "jobs": {
                "submitted": len(self.records),
                "done": len(done),
                "failed": sum(
                    1 for r in self.records
                    if r.status is JobStatus.FAILED
                ),
                "cancelled": sum(
                    1 for r in self.records
                    if r.status is JobStatus.CANCELLED
                ),
                "pending": self.scheduler.pending(),
            },
            "live_ranks": self.live_ranks,
            "lost_ranks": self.lost_ranks,
            "planner": snap,
            "plane": self.plane.stats_dict(),
            "serial": dict(self.serial_stats),
            "tenants": self.tenant_report(),
        }
