"""Multi-tenant resident job service (the Triolet runtime as a server).

The paper's runtime is job-scoped: every run builds a cluster, compiles
its fusion plans, and ships its inputs from scratch.  This package
hoists all of that into *server lifetime*.  A :class:`JobServer` owns
the simulated cluster (any transport backend), one fusion-plan cache,
and one data-plane placement map; jobs *attach* to it -- submitted
asynchronously, scheduled deficit-fair across tenants, metered and
quota-checked per tenant -- and every job benefits from whatever plans
and placements earlier jobs (any tenant's) already paid for.

>>> from repro.service import JobServer
>>> srv = JobServer(machine)
>>> srv.add_tenant("ops", weight=2.0)
>>> h = srv.submit(job_fn, tenant="ops")
>>> h.result()        # runs the queue in fair-share order

See ``docs/service.md`` for the full model.
"""
from repro.service.job import (
    JobCancelled,
    JobContext,
    JobHandle,
    JobRecord,
    JobStatus,
)
from repro.service.scheduler import AdmissionError, FairShareScheduler
from repro.service.server import JobServer
from repro.service.tenant import Tenant, TenantQuota
from repro.service.workloads import (
    cutcp_job,
    mriq_job,
    register_mriq_dataset,
    run_solo,
    sgemm_job,
    tpacf_job,
)

__all__ = [
    "AdmissionError",
    "FairShareScheduler",
    "JobCancelled",
    "JobContext",
    "JobHandle",
    "JobRecord",
    "JobServer",
    "JobStatus",
    "Tenant",
    "TenantQuota",
    "cutcp_job",
    "mriq_job",
    "register_mriq_dataset",
    "run_solo",
    "sgemm_job",
    "tpacf_job",
]
