"""The paper's four applications packaged as service jobs.

Each factory closes over a prepared problem and returns a job body --
``fn(ctx) -> value`` -- that mirrors the corresponding standalone runner
in :mod:`repro.apps` phase for phase, but runs against the attached
runtime instead of constructing its own.  The job bodies ``distribute``
their inputs exactly like the standalone runners do; on a resident
server the data plane's registration dedupe maps a re-distributed array
(same object, or equal content -- e.g. sgemm's per-job rebuilt ``BT``)
onto the handle an earlier job already placed, so repeat jobs ship zero
input bytes.

:func:`run_solo` is the bit-identity oracle: the same job body on a
fresh one-shot runtime with nothing shared.  The service's whole
contract is that sharing plans and placements changes *when* work
happens, never *what* is computed -- ``server`` and ``solo`` values
must match bit for bit.
"""
from __future__ import annotations

import numpy as np

from repro import serial
from repro.apps.cutcp.triolet import _contrib
from repro.apps.mriq.triolet import _pixel_q
from repro.apps.sgemm.triolet import _dot_elem, _transpose_elem
from repro.apps.tpacf.triolet import (
    _self_pairs_row,
    correlation,
    cross_sets_correlation,
    self_sets_correlation,
)
from repro.cluster.machine import MachineSpec
from repro.core.fusion import planner
from repro.core.iterators.executor import use_executor
from repro.data.plane import DataPlane
from repro.runtime.costs import CostContext, use_costs
from repro.runtime.driver import TrioletRuntime
from repro.serial import closure
from repro.service.job import JobContext
import repro.triolet as tri


def mriq_job(p, dataset: str | None = None):
    """mri-q: parallel pixel map, k-space arrays replicated via closure."""

    def job(ctx: JobContext):
        rt = ctx.rt
        if dataset is not None:
            x = ctx.dataset(f"{dataset}.x")
            y = ctx.dataset(f"{dataset}.y")
            z = ctx.dataset(f"{dataset}.z")
        else:
            x, y, z = (rt.distribute(p.x), rt.distribute(p.y),
                       rt.distribute(p.z))
        kx = rt.distribute(p.kx, layout="replicated")
        ky = rt.distribute(p.ky, layout="replicated")
        kz = rt.distribute(p.kz, layout="replicated")
        mag = rt.distribute(p.mag, layout="replicated")
        pixel_fn = closure(_pixel_q, kx, ky, kz, mag)
        return np.asarray(
            tri.build(tri.map(pixel_fn, tri.par(tri.zip(x, y, z))))
        )

    return job


def register_mriq_dataset(server, name: str, p) -> None:
    """Pre-place mri-q's sharded pixel coordinates under *name*."""
    server.register_dataset(f"{name}.x", p.x)
    server.register_dataset(f"{name}.y", p.y)
    server.register_dataset(f"{name}.z", p.z)


def sgemm_job(p):
    """sgemm: localpar transpose, then the 2-D-blocked outer product.

    ``BT`` is rebuilt by every job; content-hash dedupe makes the
    rebuilt array resolve to the first job's resident handle.
    """

    def job(ctx: JobContext):
        rt = ctx.rt
        BT = tri.build(
            tri.map(
                closure(_transpose_elem, p.B),
                tri.localpar(tri.arrayRange((p.m, p.k))),
            )
        )
        A = rt.distribute(p.A)
        BTh = rt.distribute(BT)
        zipped_AB = tri.outerproduct(tri.rows(A), tri.rows(BTh))
        return np.asarray(
            tri.build(
                tri.map(closure(_dot_elem, p.alpha), tri.par(zipped_AB))
            )
        )

    return job


def tpacf_job(p):
    """tpacf: DD, DR, RR phases sharing one placement of obs/rands."""

    def job(ctx: JobContext):
        rt = ctx.rt
        obs = rt.distribute(p.obs, layout="replicated")
        rands = rt.distribute(p.rands)
        indexed_obs = tri.zip(
            tri.indices(tri.domain(obs)), tri.iterate(obs)
        )
        dd = correlation(
            p.nbins,
            tri.map(
                closure(_self_pairs_row, p.nbins, obs),
                tri.par(indexed_obs),
            ),
        )
        dr = cross_sets_correlation(p.nbins, obs, rands)
        rr = self_sets_correlation(p.nbins, rands)
        return {"dd": dd, "dr": dr, "rr": rr}

    return job


def cutcp_job(p):
    """cutcp: histogram over the nested atom -> grid-point traversal."""

    def job(ctx: JobContext):
        rt = ctx.rt
        atoms = rt.distribute(p.atoms)
        contrib = closure(_contrib, list(p.grid_dim), p.spacing, p.cutoff)
        return tri.histogram(
            p.grid_size, tri.map(contrib, tri.par(atoms))
        ).reshape(p.grid_dim)

    return job


def run_solo(
    fn,
    machine: MachineSpec,
    costs: CostContext | None = None,
    faults=None,
    recovery=None,
    budget=None,
):
    """The oracle: *fn* on a one-shot runtime sharing nothing.

    Fresh data plane, fresh plan cache, fresh serialization counters --
    the exact environment a standalone :mod:`repro.apps` runner gets.
    Returns ``(value, runtime)``.
    """
    kwargs = {}
    if recovery is not None:
        kwargs["recovery"] = recovery
    rt = TrioletRuntime(
        machine,
        costs=costs if costs is not None else CostContext(),
        faults=faults,
        plane=DataPlane(),
        planner_state=planner.PlannerState(),
        budget=budget,
        **kwargs,
    )
    ctx = JobContext(rt=rt)
    with serial.use_copy_stats(serial.new_copy_stats()), \
            use_executor(rt), use_costs(rt.costs):
        value = fn(ctx)
    return value, rt
