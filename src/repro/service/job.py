"""Jobs: the unit of work a resident :class:`~repro.service.JobServer`
schedules.

A job is a callable over a :class:`JobContext` -- a freshly constructed
:class:`~repro.runtime.driver.TrioletRuntime` attached to the server's
shared cluster, data plane, and plan cache.  The *handle* returned by
``submit`` is the asynchronous surface: ``status()`` / ``result()`` /
``cancel()``.  Execution is cooperative and deterministic: submitted
jobs run when the server steps its scheduler (``drain()``, or lazily
from ``result()``), in an order that is a pure function of tenant
weights and accumulated virtual usage -- never of wall-clock races.
"""
from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable


class JobStatus(enum.Enum):
    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    def finished(self) -> bool:
        return self in (JobStatus.DONE, JobStatus.FAILED,
                        JobStatus.CANCELLED)


class JobCancelled(RuntimeError):
    """``result()`` on a job that was cancelled while queued."""


@dataclass
class JobContext:
    """What a job's body receives: the attached runtime plus server
    services.  ``rt`` is private to the job (its meters, sections and
    recovery report are isolated); everything reachable *through* it --
    placement, plans, cluster -- is shared server state."""

    rt: Any
    server: Any = None
    tenant: str | None = None

    def dataset(self, name: str):
        """A dataset registered on the server via ``register_dataset``."""
        if self.server is None:
            raise RuntimeError("no server attached to this job context")
        return self.server.dataset(name)


@dataclass
class JobRecord:
    """One submitted job's ledger entry (owned by the server)."""

    seq: int
    name: str
    tenant: str
    fn: Callable[[JobContext], Any]
    costs: Any = None
    faults: Any = None
    recovery: Any = None
    budget: Any = None
    status: JobStatus = JobStatus.PENDING
    #: server virtual time at submission / dispatch / completion
    submit_vtime: float = 0.0
    start_vtime: float | None = None
    finish_vtime: float | None = None
    value: Any = None
    error: BaseException | None = None
    #: per-job isolated accounting: visits, virtual seconds, shipped
    #: bytes, plan-cache and data-plane deltas, recovery report
    metrics: dict = field(default_factory=dict)

    @property
    def latency(self) -> float | None:
        """Virtual seconds from submission to completion (queue + run)."""
        if self.finish_vtime is None:
            return None
        return self.finish_vtime - self.submit_vtime


class JobHandle:
    """Asynchronous submission handle: the caller's view of one job."""

    def __init__(self, server, record: JobRecord):
        self._server = server
        self._record = record

    @property
    def name(self) -> str:
        return self._record.name

    @property
    def tenant(self) -> str:
        return self._record.tenant

    def status(self) -> JobStatus:
        return self._record.status

    def done(self) -> bool:
        return self._record.status.finished()

    def result(self) -> Any:
        """The job's value, running the server's queue as needed.

        Jobs ahead of this one in fair-share order run first -- calling
        ``result()`` never jumps the queue.  Raises the job's failure
        (:class:`~repro.runtime.recovery.JobFailure` subclasses pass
        through untranslated) or :class:`JobCancelled`.
        """
        rec = self._record
        self._server._run_until(rec)
        if rec.status is JobStatus.DONE:
            return rec.value
        if rec.status is JobStatus.CANCELLED:
            raise JobCancelled(f"job {rec.name!r} was cancelled")
        assert rec.error is not None
        raise rec.error

    def cancel(self) -> bool:
        """Withdraw a still-queued job.  Returns False once it ran."""
        return self._server._cancel(self._record)

    @property
    def latency(self) -> float | None:
        return self._record.latency

    @property
    def metrics(self) -> dict:
        return dict(self._record.metrics)

    def __repr__(self) -> str:
        r = self._record
        return (f"JobHandle({r.name!r}, tenant={r.tenant!r}, "
                f"status={r.status.value})")
