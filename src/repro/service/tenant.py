"""Tenants: who a resident server's capacity is divided among.

A tenant carries a *weight* (its fair share of the server's virtual
timeline) and an optional :class:`TenantQuota` (hard ceilings on what it
may consume).  Usage is metered in the same units the rest of the
system already accounts in -- CostMeter visits, data-plane shipped
bytes, virtual compute seconds -- so quota enforcement needs no second
bookkeeping system.
"""
from __future__ import annotations

from dataclasses import dataclass, field

from repro.runtime.recovery import BudgetExhausted


@dataclass(frozen=True)
class TenantQuota:
    """Hard per-tenant ceilings; ``None`` means unlimited.

    Quotas are checked *before* dispatch (would-exceed on job count)
    and *after* each job (accumulated usage), mirroring how
    :class:`~repro.runtime.recovery.FailureBudget` bounds a single job.
    A tenant over any ceiling has further dispatches refused with
    :class:`~repro.runtime.recovery.BudgetExhausted`.
    """

    max_visits: float | None = None
    max_shipped_bytes: int | None = None
    max_compute_seconds: float | None = None
    max_jobs: int | None = None


@dataclass
class Tenant:
    """One tenant's ledger on a :class:`~repro.service.JobServer`."""

    name: str
    weight: float = 1.0
    quota: TenantQuota = field(default_factory=TenantQuota)
    #: accumulated usage across every job this tenant ran
    visits: float = 0.0
    shipped_bytes: int = 0
    compute_seconds: float = 0.0
    jobs_run: int = 0
    jobs_failed: int = 0
    #: virtual seconds of server timeline consumed -- the quantity the
    #: deficit scheduler equalizes (scaled by ``weight``)
    consumed: float = 0.0

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError(f"tenant weight must be positive: {self.weight}")

    @property
    def normalized_consumed(self) -> float:
        """Weighted virtual usage: the scheduler's fairness coordinate."""
        return self.consumed / self.weight

    def charge(self, *, visits: float = 0.0, shipped_bytes: int = 0,
               compute_seconds: float = 0.0, failed: bool = False) -> None:
        """Fold one finished job's isolated metering into the ledger."""
        self.visits += visits
        self.shipped_bytes += shipped_bytes
        self.compute_seconds += compute_seconds
        self.consumed += compute_seconds
        self.jobs_run += 1
        if failed:
            self.jobs_failed += 1

    def exhausted(self) -> str | None:
        """The first quota dimension this tenant is over, or ``None``."""
        q = self.quota
        if q.max_jobs is not None and self.jobs_run >= q.max_jobs:
            return "jobs"
        if q.max_visits is not None and self.visits >= q.max_visits:
            return "visits"
        if (q.max_shipped_bytes is not None
                and self.shipped_bytes >= q.max_shipped_bytes):
            return "shipped_bytes"
        if (q.max_compute_seconds is not None
                and self.compute_seconds >= q.max_compute_seconds):
            return "compute_seconds"
        return None

    def check_dispatch(self) -> None:
        """Refuse to run another job for an exhausted tenant."""
        dim = self.exhausted()
        if dim is not None:
            raise BudgetExhausted(
                f"tenant {self.name!r} exhausted its {dim} quota "
                f"(visits={self.visits:.0f}, "
                f"shipped_bytes={self.shipped_bytes}, "
                f"compute_seconds={self.compute_seconds:.6f}, "
                f"jobs={self.jobs_run})"
            )

    def report(self) -> dict:
        return {
            "name": self.name,
            "weight": self.weight,
            "visits": self.visits,
            "shipped_bytes": self.shipped_bytes,
            "compute_seconds": self.compute_seconds,
            "jobs_run": self.jobs_run,
            "jobs_failed": self.jobs_failed,
            "consumed": self.consumed,
            "exhausted": self.exhausted(),
        }
