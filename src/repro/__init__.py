"""Reproduction of "Triolet: A Programming System that Unifies Algorithmic
Skeleton Interfaces for High-Performance Cluster Computing" (PPoPP 2014).

Layout:

* :mod:`repro.triolet` -- the user-facing skeleton API (start here).
* :mod:`repro.core` -- hybrid iterators, encodings, domains, sources.
* :mod:`repro.runtime` -- the two-level parallel runtime (executor).
* :mod:`repro.cluster` -- the simulated distributed machine.
* :mod:`repro.serial` -- serialization (closures, ADTs, arrays, globals).
* :mod:`repro.partition` -- block work/data decompositions.
* :mod:`repro.baselines` -- sequential-C, Eden-like and C+MPI+OpenMP-like
  reference implementations.
* :mod:`repro.apps` -- the four Parboil benchmarks (mri-q, sgemm, tpacf,
  cutcp) in all frameworks.
* :mod:`repro.bench` -- the harness regenerating every figure in §4.

See DESIGN.md for the system inventory and EXPERIMENTS.md for
paper-vs-measured results.
"""

__version__ = "1.0.0"
