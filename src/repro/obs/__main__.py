"""CLI: ``python -m repro.obs`` -- trace, summarize, diff, regress.

Examples::

    python -m repro.obs trace --app sgemm --nodes 2 \\
        --chrome trace.json --jsonl run.jsonl
    python -m repro.obs summarize run.jsonl
    python -m repro.obs diff base.jsonl new.jsonl       # exit 1 on regression
    python -m repro.obs regress BENCH_apps.json         # exit 1 on violation
"""
from __future__ import annotations

import argparse
import json
import sys

from repro.obs.export import (
    chrome_trace,
    load_jsonl,
    render_tree,
    span_tree,
    validate_chrome,
    write_chrome,
    write_jsonl,
)
from repro.obs.report import (
    DEFAULT_THRESHOLD,
    check_bench,
    diff_runs,
    load_bench,
    render_diff,
    render_summary,
    summarize,
)


def _cmd_trace(args) -> int:
    from repro.obs.runapp import capture_app

    rec, run = capture_app(args.app, args.nodes)
    payload = chrome_trace(rec)
    bad = validate_chrome(payload)
    if bad:
        print("chrome trace failed schema validation:", file=sys.stderr)
        for b in bad:
            print(f"  {b}", file=sys.stderr)
        return 1
    if args.chrome:
        write_chrome(rec, args.chrome)
        print(f"wrote {args.chrome} ({len(payload['traceEvents'])} events)")
    if args.jsonl:
        write_jsonl(rec, args.jsonl)
        print(f"wrote {args.jsonl}")
    if args.tree:
        print(render_tree(span_tree(rec.spans)))
    print(f"{args.app} on {args.nodes} node(s): elapsed {run.elapsed:.6f} "
          f"virtual s, {len(rec.spans)} spans, {len(rec.events)} comm events")
    return 0


def _cmd_summarize(args) -> int:
    summary = summarize(load_jsonl(args.run))
    if args.json:
        print(json.dumps(summary, indent=2))
    else:
        print(render_summary(summary))
    return 0


def _cmd_diff(args) -> int:
    diff = diff_runs(load_jsonl(args.base), load_jsonl(args.other),
                     threshold=args.threshold)
    if args.json:
        print(json.dumps(diff, indent=2))
    else:
        print(render_diff(diff))
    return 1 if diff["regressions"] else 0


def _cmd_regress(args) -> int:
    problems = check_bench(load_bench(args.bench),
                           max_overhead=args.max_overhead)
    if problems:
        print("bench regression gate FAILED:")
        for p in problems:
            print(f"  {p}")
        return 1
    print("bench regression gate passed")
    return 0


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Observability: trace a run, summarize, diff, gate.",
    )
    sub = ap.add_subparsers(dest="cmd", required=True)

    p = sub.add_parser("trace", help="run an app under capture and export")
    p.add_argument("--app", default="sgemm",
                   choices=("mriq", "sgemm", "tpacf", "cutcp"))
    p.add_argument("--nodes", type=int, default=2)
    p.add_argument("--chrome", default="trace.json",
                   help="Chrome trace-event output path ('' to skip)")
    p.add_argument("--jsonl", default="",
                   help="flat JSONL output path ('' to skip)")
    p.add_argument("--tree", action="store_true",
                   help="print the structural span tree")
    p.set_defaults(fn=_cmd_trace)

    p = sub.add_parser("summarize", help="summarize a JSONL export")
    p.add_argument("run")
    p.add_argument("--json", action="store_true")
    p.set_defaults(fn=_cmd_summarize)

    p = sub.add_parser("diff", help="diff two JSONL exports (exit 1 on "
                                    "perf regression)")
    p.add_argument("base")
    p.add_argument("other")
    p.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD)
    p.add_argument("--json", action="store_true")
    p.set_defaults(fn=_cmd_diff)

    p = sub.add_parser("regress", help="gate a BENCH_apps.json payload")
    p.add_argument("bench", nargs="?", default="BENCH_apps.json")
    p.add_argument("--max-overhead", type=float, default=0.05)
    p.set_defaults(fn=_cmd_regress)

    args = ap.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
