"""Run one benchmark app under an observability capture.

Shared by the ``python -m repro.obs trace`` CLI, the overhead bench
cell, and the golden-trace tests.  Imports of the heavyweight app
harness are deferred so importing :mod:`repro.obs` (which the
instrumented runtime modules do) never drags the apps in.
"""
from __future__ import annotations


def capture_app(app: str = "sgemm", nodes: int = 2, *,
                vectorize: bool = True, params: dict | None = None):
    """Run *app*'s Triolet runner under a capture.

    Returns ``(recorder, app_run)``.  Problem parameters default to the
    harness sandbox sizes; *params* overrides individual ones.
    """
    from repro.bench.calibrate import costs_for
    from repro.bench.harness import APPS
    from repro.cluster.machine import PAPER_MACHINE
    from repro.core.engine import use_vectorization
    from repro.obs.spans import capture

    spec = APPS[app]
    p = dict(spec.sandbox_params)
    if params:
        p.update(params)
    problem = spec.make_problem(**p)
    machine = PAPER_MACHINE.scaled(nodes=nodes)
    costs = costs_for(app, "triolet", problem)
    with capture() as rec:
        with use_vectorization(vectorize):
            run = spec.runners["triolet"](problem, machine, costs)
    return rec, run


def plain_app(app: str = "sgemm", nodes: int = 2, *,
              vectorize: bool = True, params: dict | None = None):
    """The same run with observability off (overhead baselines)."""
    from repro.bench.calibrate import costs_for
    from repro.bench.harness import APPS
    from repro.cluster.machine import PAPER_MACHINE
    from repro.core.engine import use_vectorization

    spec = APPS[app]
    p = dict(spec.sandbox_params)
    if params:
        p.update(params)
    problem = spec.make_problem(**p)
    machine = PAPER_MACHINE.scaled(nodes=nodes)
    costs = costs_for(app, "triolet", problem)
    with use_vectorization(vectorize):
        return spec.runners["triolet"](problem, machine, costs)
