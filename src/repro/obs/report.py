"""Run summaries, run-to-run diffs, and bench regression gates.

These operate on the flat JSONL export (:func:`repro.obs.export.
load_jsonl`), so two runs captured weeks apart on different machines can
be compared offline: the virtual timeline makes the key quantities
(makespans, bytes shipped, planner hits) deterministic.
"""
from __future__ import annotations

import json
from numbers import Number

#: Counters whose growth between two runs counts as a perf regression
#: (all "lower is better" on the virtual timeline).
REGRESSION_COUNTERS = (
    "time.makespan",
    "cluster.bytes_sent",
    "cluster.messages_sent",
    "cluster.comm_time",
    "plane.input_bytes",
    "plane.cache_misses",
    "plane.migrated_bytes",
    "planner.misses",
    "recovery.reshipped_bytes",
)

#: Default tolerated relative growth before a counter is flagged.
DEFAULT_THRESHOLD = 0.05


def summarize(data: dict) -> dict:
    """Condense a loaded JSONL export into a one-screen summary."""
    counters = data.get("counters", {})
    spans = data.get("spans", [])
    events = data.get("events", [])
    kinds: dict[str, int] = {}
    kind_time: dict[str, float] = {}
    ranks: set[int] = set()
    for s in spans:
        kinds[s["kind"]] = kinds.get(s["kind"], 0) + 1
        t1 = s["t1"] if s["t1"] is not None else s["t0"]
        kind_time[s["kind"]] = kind_time.get(s["kind"], 0.0) + (t1 - s["t0"])
        if s["rank"] >= 0:
            ranks.add(s["rank"])
    return {
        "spans": len(spans),
        "events": len(events),
        "ranks": sorted(ranks),
        "span_kinds": dict(sorted(kinds.items())),
        "span_time_by_kind": {k: kind_time[k] for k in sorted(kind_time)},
        "sections": [
            {"label": sec.get("label"), "kind": sec.get("kind"),
             "makespan": sec.get("makespan"),
             "bytes_shipped": sec.get("bytes_shipped")}
            for sec in data.get("sections", [])
        ],
        "counters": dict(sorted(counters.items())),
    }


def render_summary(summary: dict) -> str:
    lines = [
        f"spans: {summary['spans']}   events: {summary['events']}   "
        f"ranks: {summary['ranks']}",
        "",
        f"{'span kind':<12}{'count':>7}{'virtual s':>12}",
    ]
    for kind, n in summary["span_kinds"].items():
        t = summary["span_time_by_kind"].get(kind, 0.0)
        lines.append(f"{kind:<12}{n:>7}{t:>12.6f}")
    if summary["sections"]:
        lines += ["", f"{'section':<28}{'kind':<10}{'makespan':>12}"
                      f"{'bytes':>12}"]
        for sec in summary["sections"]:
            lines.append(
                f"{str(sec['label'])[:27]:<28}{str(sec['kind']):<10}"
                f"{sec['makespan']:>12.6f}{sec['bytes_shipped']:>12}"
            )
    lines += ["", "counters:"]
    for name, value in summary["counters"].items():
        lines.append(f"  {name} = {value}")
    return "\n".join(lines)


def diff_runs(base: dict, other: dict,
              threshold: float = DEFAULT_THRESHOLD) -> dict:
    """Compare two loaded JSONL exports counter by counter.

    Returns ``{"regressions", "improvements", "changes"}`` where
    *regressions* are :data:`REGRESSION_COUNTERS` that grew by more than
    *threshold* (relative; any growth from zero counts), and *changes*
    lists every counter whose value differs.
    """
    bc = {k: v for k, v in base.get("counters", {}).items()
          if isinstance(v, Number)}
    oc = {k: v for k, v in other.get("counters", {}).items()
          if isinstance(v, Number)}
    changes = []
    for name in sorted(set(bc) | set(oc)):
        b, o = bc.get(name, 0), oc.get(name, 0)
        if b != o:
            changes.append({"counter": name, "base": b, "other": o})
    regressions, improvements = [], []
    for name in REGRESSION_COUNTERS:
        b, o = bc.get(name, 0), oc.get(name, 0)
        if o > b and (b == 0 or (o - b) / b > threshold):
            regressions.append({
                "counter": name, "base": b, "other": o,
                "growth": None if b == 0 else (o - b) / b,
            })
        elif o < b:
            improvements.append({"counter": name, "base": b, "other": o})
    return {"regressions": regressions, "improvements": improvements,
            "changes": changes}


def render_diff(diff: dict) -> str:
    lines = []
    if diff["regressions"]:
        lines.append("REGRESSIONS:")
        for r in diff["regressions"]:
            growth = ("new" if r["growth"] is None
                      else f"+{r['growth'] * 100:.1f}%")
            lines.append(f"  {r['counter']}: {r['base']} -> {r['other']} "
                         f"({growth})")
    else:
        lines.append("no regressions")
    if diff["improvements"]:
        lines.append("improvements:")
        for r in diff["improvements"]:
            lines.append(f"  {r['counter']}: {r['base']} -> {r['other']}")
    other_changes = [c for c in diff["changes"]
                     if c["counter"] not in REGRESSION_COUNTERS]
    if other_changes:
        lines.append("other changed counters:")
        for c in other_changes:
            lines.append(f"  {c['counter']}: {c['base']} -> {c['other']}")
    return "\n".join(lines)


def check_bench(payload: dict, max_overhead: float = 0.05) -> list[str]:
    """Gate a ``BENCH_apps.json`` payload: parity cells must hold and the
    observability overhead cell must stay under *max_overhead*."""
    problems: list[str] = []
    for r in payload.get("results", []):
        where = f"{r.get('app')}@{r.get('nodes')}"
        for cell in ("value_bit_identical", "meter_equal",
                     "virtual_seconds_equal", "bytes_shipped_equal"):
            if cell in r and not r[cell]:
                problems.append(f"{where}: {cell} is false")
    obs = payload.get("obs_overhead")
    if obs is None:
        problems.append("payload has no obs_overhead cell")
    else:
        overhead = obs.get("overhead")
        if not isinstance(overhead, Number):
            problems.append("obs_overhead.overhead is not a number")
        elif overhead >= max_overhead:
            problems.append(
                f"obs overhead {overhead * 100:.2f}% >= "
                f"{max_overhead * 100:.0f}% budget"
            )
    return problems


def load_bench(path: str) -> dict:
    with open(path) as fh:
        return json.load(fh)
