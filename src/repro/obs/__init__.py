"""repro.obs -- the unified observability layer.

One spine over the runtime's five counter families and its virtual
timeline: hierarchical span tracing (:mod:`repro.obs.spans`), the
:class:`~repro.obs.registry.MetricsRegistry` with conservation checks
(:mod:`repro.obs.registry`), Chrome trace-event / JSONL exporters
(:mod:`repro.obs.export`), and run summaries / diffs / bench gates
(:mod:`repro.obs.report`).  ``python -m repro.obs`` is the CLI.

This ``__init__`` must stay lightweight: the instrumented runtime
modules (driver, planner, data plane, collectives) import
``repro.obs.spans``, which executes this package initializer -- pulling
the app harness in here would create an import cycle.
"""
from repro.obs.export import (
    chrome_trace,
    check_event_causality,
    load_jsonl,
    span_tree,
    to_jsonl,
    validate_chrome,
    write_chrome,
    write_jsonl,
)
from repro.obs.registry import MetricsRegistry, conservation_violations
from repro.obs.report import check_bench, diff_runs, summarize
from repro.obs.spans import (
    DRIVER_LANE,
    NULL_SPAN,
    SPAN_KINDS,
    Recorder,
    Span,
    active,
    capture,
    count,
    force_disable,
    obs_span,
)

__all__ = [
    "DRIVER_LANE",
    "MetricsRegistry",
    "NULL_SPAN",
    "Recorder",
    "SPAN_KINDS",
    "Span",
    "active",
    "capture",
    "check_bench",
    "check_event_causality",
    "chrome_trace",
    "conservation_violations",
    "count",
    "diff_runs",
    "force_disable",
    "load_jsonl",
    "obs_span",
    "span_tree",
    "summarize",
    "to_jsonl",
    "validate_chrome",
    "write_chrome",
    "write_jsonl",
]
