"""Hierarchical span tracing over the *virtual* timeline.

A :class:`Recorder` captures a run's structure as a tree of spans --
``phase`` (application stages), ``section`` (driver parallel sections),
``plan`` (fusion-plan consults), ``ship`` (data-plane shipping ops, one
per destination rank), ``kernel`` (per-rank task-loop execution) and
``collective`` (per-rank collective participation) -- each stamped with
virtual start/end times, the rank lane it belongs to, and free-form
attribute counters.  Communication events from
:class:`repro.cluster.trace.TraceLog` are absorbed alongside, so the
exporters can join spans and messages into one per-rank timeline.

The tracer is **zero-cost and structurally absent when disabled**:

* instrumentation sites call :func:`active` (one global read) and do
  nothing when it returns ``None``;
* :func:`obs_span` returns the shared :data:`NULL_SPAN` singleton when
  no recorder is installed, so *no span objects are allocated* --
  :attr:`Span.allocated` is the class-wide proof counter the
  disabled-overhead test asserts on;
* spans only *read* virtual clocks, never advance them, and never touch
  cost meters, so enabling observability cannot change a single value,
  meter tally, or wire byte.

Enable with::

    with obs.capture() as cap:
        ... run the program ...
    cap.to_chrome()  # via repro.obs.export
"""
from __future__ import annotations

import contextvars
import threading
from contextlib import contextmanager

from repro.obs.registry import MetricsRegistry

#: The span taxonomy (see docs/observability.md).  ``checkpoint`` spans
#: are instants marking durable-store writes and restores.
#: ``halo`` spans are instants marking ghost-cell (stencil halo)
#: exchanges, one per destination rank -- kept apart from ``ship`` so
#: interior placement bytes and halo bytes stay separately auditable.
SPAN_KINDS = ("phase", "section", "plan", "ship", "halo", "kernel",
              "collective", "checkpoint")

#: Lane number for main-rank/driver spans (exported as tid 0).
DRIVER_LANE = -1

_parent: contextvars.ContextVar[int | None] = contextvars.ContextVar(
    "repro_obs_parent", default=None
)

#: Driver-timeline base for spans on *section-local* clocks.  Each
#: simulated rank runs a fresh :class:`VirtualClock` starting at zero
#: per section; spans (and absorbed events) on those clocks are rebased
#: onto the driver timeline by adding the enclosing default-clock
#: span's start time, so exported lanes line up across sections.
_base: contextvars.ContextVar[float] = contextvars.ContextVar(
    "repro_obs_base", default=0.0
)

#: The installed recorder; ``None`` means observability is off and every
#: instrumentation site takes its early-out path.
_ACTIVE: "Recorder | None" = None


class NullSpan:
    """Shared no-op span handed out while observability is disabled."""

    __slots__ = ()

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs) -> "NullSpan":
        return self


NULL_SPAN = NullSpan()


class Span:
    """One recorded span: a named interval on a rank's virtual lane."""

    __slots__ = (
        "sid", "parent", "kind", "name", "rank", "t0", "t1", "attrs",
        "_rec", "_clock", "_token", "_offset", "_is_base", "_base_token",
    )

    #: Class-wide allocation counter (incremented under the recorder
    #: lock).  The disabled-overhead test asserts this does not move
    #: during an observability-off run.
    allocated = 0

    def __init__(self, rec: "Recorder", kind: str, name: str, rank: int,
                 clock, attrs: dict | None, is_base: bool):
        self.sid = -1  # assigned by the recorder at __enter__
        self.parent: int | None = None
        self.kind = kind
        self.name = name
        self.rank = rank
        self.t0 = 0.0
        self.t1: float | None = None
        self.attrs: dict = attrs if attrs is not None else {}
        self._rec = rec
        self._clock = clock
        self._token = None
        self._offset = 0.0
        self._is_base = is_base
        self._base_token = None

    def __enter__(self) -> "Span":
        if not self._is_base:
            self._offset = _base.get()
        now = self._clock.now if self._clock is not None else 0.0
        self.t0 = now + self._offset
        self.parent = _parent.get()
        self._rec._register(self)
        self._token = _parent.set(self.sid)
        if self._is_base:
            self._base_token = _base.set(self.t0)
        return self

    def __exit__(self, *exc) -> bool:
        now = self._clock.now if self._clock is not None else None
        self.t1 = now + self._offset if now is not None else self.t0
        if self._base_token is not None:
            _base.reset(self._base_token)
            self._base_token = None
        if self._token is not None:
            _parent.reset(self._token)
            self._token = None
        return False

    def set(self, **attrs) -> "Span":
        """Attach (or update) attribute counters on this span."""
        self.attrs.update(attrs)
        return self

    @property
    def duration(self) -> float:
        return (self.t1 if self.t1 is not None else self.t0) - self.t0

    def as_dict(self) -> dict:
        return {
            "sid": self.sid,
            "parent": self.parent,
            "kind": self.kind,
            "name": self.name,
            "rank": self.rank,
            "t0": self.t0,
            "t1": self.t1 if self.t1 is not None else self.t0,
            "attrs": dict(self.attrs),
        }


class Recorder:
    """One run's span tree, absorbed comm events and metrics registry.

    Thread-safe: rank threads of a simulated SPMD run record spans
    concurrently.  Parent links come from a context variable, which rank
    threads inherit from the driver (they run in copies of the caller's
    context), so per-rank spans nest under the driver's section span.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self.spans: list[Span] = []
        self.events: list[dict] = []
        self.registry = MetricsRegistry()
        self._clock = None  # default clock (the runtime's virtual clock)
        self._next_sid = 0
        self.planner_baseline = None
        self.copy_baseline: dict | None = None

    # -- recording ---------------------------------------------------------

    def use_clock(self, clock) -> None:
        """Set the default clock for spans opened without an explicit one
        (the driver installs its runtime's virtual clock here)."""
        self._clock = clock

    def _register(self, span: Span) -> None:
        with self._lock:
            span.sid = self._next_sid
            self._next_sid += 1
            self.spans.append(span)
            Span.allocated += 1

    def span(self, kind: str, name: str, *, rank: int = DRIVER_LANE,
             clock=None, attrs: dict | None = None) -> Span:
        """A new span context manager on *rank*'s lane.

        Spans on the default (driver) clock anchor the rebasing context
        for descendants on section-local rank clocks; spans on explicit
        other clocks are shifted by the nearest such ancestor's start.
        """
        is_base = clock is None or clock is self._clock
        return Span(self, kind, name, rank,
                    clock if clock is not None else self._clock, attrs,
                    is_base)

    def instant(self, kind: str, name: str, *, rank: int = DRIVER_LANE,
                attrs: dict | None = None) -> Span:
        """Record a zero-duration span at the current default-clock time
        (shipping ops are planned instantaneously at section start)."""
        sp = self.span(kind, name, rank=rank, attrs=attrs)
        sp.__enter__()
        sp.__exit__()
        return sp

    def absorb_events(self, events, parent: Span | None) -> None:
        """Fold a :class:`~repro.cluster.trace.TraceLog`'s CommEvents in,
        linked to the enclosing section span and rebased from the
        section-local rank timeline onto the driver timeline."""
        psid = parent.sid if parent is not None else None
        base = parent.t0 if parent is not None else 0.0
        with self._lock:
            for e in events:
                d = e.as_dict() if hasattr(e, "as_dict") else dict(e)
                d["section"] = psid
                d["time"] += base
                self.events.append(d)

    def count(self, name: str, value=1) -> None:
        """Thread-safe registry counter increment."""
        with self._lock:
            self.registry.inc(name, value)

    # -- section adaptation ------------------------------------------------

    def on_section(self, record) -> None:
        """Adapt one driver :class:`SectionRecord` into the registry:
        named counters plus a per-section snapshot."""
        reg = self.registry
        with self._lock:
            reg.inc("sections.count")
            reg.inc(f"sections.kind.{record.kind}")
            reg.inc("time.makespan", record.makespan)
            reg.inc("time.gc", record.gc_time)
            reg.inc("cluster.bytes_sent", record.bytes_shipped)
            reg.inc("cluster.messages_sent", record.messages)
            if record.metrics is not None:
                m = record.metrics
                reg.inc("cluster.bytes_received",
                        sum(r.bytes_received for r in m.per_rank))
                reg.inc("cluster.messages_received",
                        sum(r.messages_received for r in m.per_rank))
                reg.inc("cluster.compute_time", m.compute_time)
                reg.inc("cluster.comm_time", m.comm_time)
                reg.inc("cluster.alloc_bytes", m.alloc_bytes)
            if record.recovery is not None:
                r = record.recovery
                reg.inc("recovery.reshipped_bytes", r.reshipped_bytes)
                reg.inc("recovery.reexecuted_chunks", r.reexecuted_chunks)
                reg.inc("recovery.retries", r.retries)
                reg.inc("recovery.attempts", r.attempts)
                reg.inc("recovery.added_time", r.added_time)
                reg.inc("recovery.faults", sum(r.faults.values()))
                reg.inc("recovery.rank_losses", r.rank_losses)
                reg.inc("recovery.lineage_replays", r.lineage_replays)
                reg.inc("recovery.replayed_bytes", r.replayed_bytes)
                reg.inc("recovery.shrink_migrations", r.shrink_migrations)
                reg.inc("recovery.shrink_migrated_bytes",
                        r.shrink_migrated_bytes)
                reg.inc("recovery.checkpoints", r.checkpoints)
                reg.inc("recovery.checkpoint_bytes", r.checkpoint_bytes)
                reg.inc("recovery.restores", r.restores)
                reg.inc("recovery.restored_bytes", r.restored_bytes)
                reg.inc("recovery.checkpoint_time", r.checkpoint_time)
            reg.snapshot_section(
                record.label,
                {
                    "kind": record.kind,
                    "hint": record.hint,
                    "partition": record.partition,
                    "nodes": record.nodes,
                    "makespan": record.makespan,
                    "bytes_shipped": record.bytes_shipped,
                    "messages": record.messages,
                    "vectorized": record.vectorized,
                    "data_plane": dict(record.data_plane)
                    if record.data_plane else None,
                },
            )

    # -- lifecycle ---------------------------------------------------------

    def finish(self) -> None:
        """Fold end-of-capture deltas of pull-only counter families
        (serialization copy stats) into the registry."""
        try:
            from repro.serial import copy_stats
        except ImportError:  # pragma: no cover - serial always present
            return
        if self.copy_baseline is not None:
            now = copy_stats()
            for k, v in now.items():
                delta = v - self.copy_baseline.get(k, 0)
                if delta:
                    self.registry.inc(f"serial.{k}", delta)

    # -- convenience views -------------------------------------------------

    def spans_of_kind(self, kind: str) -> list[Span]:
        return [s for s in self.spans if s.kind == kind]

    def detail_snapshot(self) -> dict:
        """Small summary apps attach through their ``detail`` dicts."""
        return {
            "phases": [s.name for s in self.spans if s.kind == "phase"],
            "spans": len(self.spans),
            "events": len(self.events),
            "sections": int(self.registry.get("sections.count")),
        }


def active() -> Recorder | None:
    """The installed recorder, or ``None`` when observability is off."""
    return _ACTIVE


def obs_span(kind: str, name: str, *, rank: int = DRIVER_LANE, clock=None,
             **attrs):
    """A span on the active recorder, or :data:`NULL_SPAN` when off.

    The disabled path allocates nothing: one global read, one identity
    return.
    """
    rec = _ACTIVE
    if rec is None:
        return NULL_SPAN
    return rec.span(kind, name, rank=rank, clock=clock,
                    attrs=attrs if attrs else None)


def count(name: str, value=1) -> None:
    """Increment a registry counter iff a recorder is active."""
    rec = _ACTIVE
    if rec is not None:
        rec.count(name, value)


@contextmanager
def capture():
    """Install a fresh :class:`Recorder` for the dynamic extent.

    Snapshots the fusion-planner and serialization counters on entry so
    registry adapters report *deltas for this capture*, and folds the
    pull-only families in on exit.
    """
    global _ACTIVE
    if _ACTIVE is not None:
        raise RuntimeError("an obs capture is already active")
    rec = Recorder()
    from repro.core.fusion.planner import planner_stats
    from repro.serial import copy_stats

    rec.planner_baseline = planner_stats()
    rec.copy_baseline = copy_stats()
    _ACTIVE = rec
    try:
        yield rec
    finally:
        _ACTIVE = None
        rec.finish()


def force_disable() -> None:
    """Drop any installed recorder (test-suite hygiene only)."""
    global _ACTIVE
    _ACTIVE = None
