"""Exporters: Chrome trace-event JSON and flat JSONL.

The Chrome export loads directly in ``chrome://tracing`` / Perfetto:
one process ("triolet") with a driver lane (tid 0) and one lane per
rank (tid = rank + 1), built by joining recorded spans with the cluster
trace's CommEvents.  Endpoint-less fault events (``peer == -1`` --
rank crashes, rank failures, speculation stamps) land in a separate
"faults" process with one lane per rank, so injected-fault forensics
never hide under dense message traffic.

The JSONL export is the flat machine-readable form the ``python -m
repro.obs`` CLI consumes: one JSON object per line (``meta``,
``counter``, ``section``, ``span``, ``event``).
"""
from __future__ import annotations

import json
from typing import Any

from repro.cluster.trace import FAULT_EVENT_KINDS

#: Chrome trace pid for the run's span/message lanes.
RUN_PID = 1
#: Chrome trace pid for the per-rank fault lanes.
FAULT_PID = 2

_US = 1e6  # virtual seconds -> trace-event microseconds


def _lane(rank: int) -> int:
    """Driver lane (-1) -> tid 0; rank r -> tid r + 1."""
    return rank + 1


# -- Chrome trace-event JSON -------------------------------------------------


def chrome_trace(rec) -> dict:
    """The capture as a Chrome trace-event payload (dict; json-dump it)."""
    spans = [s.as_dict() if hasattr(s, "as_dict") else dict(s)
             for s in rec.spans]
    events = [dict(e) for e in rec.events]
    out: list[dict] = []

    ranks = {s["rank"] for s in spans} | {e["rank"] for e in events}
    out.append(_meta(RUN_PID, 0, "process_name", {"name": "triolet"}))
    out.append(_meta(RUN_PID, 0, "thread_name", {"name": "driver"}))
    for r in sorted(r for r in ranks if r >= 0):
        out.append(_meta(RUN_PID, _lane(r), "thread_name",
                         {"name": f"rank {r}"}))
    fault_ranks = sorted({e["rank"] for e in events
                          if e["kind"] in FAULT_EVENT_KINDS
                          and e["peer"] < 0})
    if fault_ranks:
        out.append(_meta(FAULT_PID, 0, "process_name", {"name": "faults"}))
        for r in fault_ranks:
            out.append(_meta(FAULT_PID, r, "thread_name",
                             {"name": f"rank {r} faults"}))

    for s in spans:
        t1 = s["t1"] if s["t1"] is not None else s["t0"]
        out.append({
            "ph": "X",
            "name": f"{s['kind']}:{s['name']}",
            "cat": s["kind"],
            "ts": s["t0"] * _US,
            "dur": max(0.0, (t1 - s["t0"]) * _US),
            "pid": RUN_PID,
            "tid": _lane(s["rank"]),
            "args": _jsonable(s["attrs"]),
        })
    for e in events:
        is_fault = e["kind"] in FAULT_EVENT_KINDS and e["peer"] < 0
        out.append({
            "ph": "i",
            "s": "t",
            "name": e["kind"],
            "cat": "fault" if is_fault else "comm",
            "ts": e["time"] * _US,
            "pid": FAULT_PID if is_fault else RUN_PID,
            "tid": e["rank"] if is_fault else _lane(e["rank"]),
            "args": {"peer": e["peer"], "tag": e["tag"],
                     "nbytes": e["nbytes"], "section": e.get("section")},
        })
    out.sort(key=lambda ev: (ev["ph"] != "M", ev.get("ts", 0.0)))
    return {"traceEvents": out, "displayTimeUnit": "ms"}


def _meta(pid: int, tid: int, name: str, args: dict) -> dict:
    return {"ph": "M", "name": name, "pid": pid, "tid": tid, "ts": 0.0,
            "args": args}


def _jsonable(obj: Any):
    try:
        json.dumps(obj)
        return obj
    except TypeError:
        return {k: _jsonable_value(v) for k, v in obj.items()} \
            if isinstance(obj, dict) else str(obj)


def _jsonable_value(v: Any):
    try:
        json.dumps(v)
        return v
    except TypeError:
        return str(v)


def validate_chrome(payload: dict) -> list[str]:
    """Schema-check a Chrome trace payload; [] means well-formed."""
    bad: list[str] = []
    if not isinstance(payload, dict) or "traceEvents" not in payload:
        return ["payload is not a dict with a traceEvents list"]
    evs = payload["traceEvents"]
    if not isinstance(evs, list):
        return ["traceEvents is not a list"]
    for i, ev in enumerate(evs):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            bad.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in ("M", "X", "i", "C"):
            bad.append(f"{where}: bad ph {ph!r}")
            continue
        if not isinstance(ev.get("name"), str) or not ev["name"]:
            bad.append(f"{where}: missing name")
        for key in ("pid", "tid"):
            if not isinstance(ev.get(key), int):
                bad.append(f"{where}: {key} is not an int")
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            bad.append(f"{where}: bad ts {ts!r}")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                bad.append(f"{where}: X event with bad dur {dur!r}")
        if ph == "i" and ev.get("s") not in ("t", "p", "g"):
            bad.append(f"{where}: instant event with bad scope "
                       f"{ev.get('s')!r}")
    return bad


# -- flat JSONL --------------------------------------------------------------


def to_jsonl(rec) -> str:
    """The capture as line-delimited JSON (meta, counters, sections,
    spans, events -- in that order)."""
    lines = [json.dumps({
        "type": "meta", "version": 1,
        "spans": len(rec.spans), "events": len(rec.events),
    })]
    for name, value in sorted(rec.registry.counters.items()):
        lines.append(json.dumps(
            {"type": "counter", "name": name, "value": value}))
    for sec in rec.registry.sections:
        lines.append(json.dumps({"type": "section", **_jsonable(sec)}))
    for s in rec.spans:
        d = s.as_dict() if hasattr(s, "as_dict") else dict(s)
        d["attrs"] = _jsonable(d["attrs"])
        lines.append(json.dumps({"type": "span", **d}))
    for e in rec.events:
        lines.append(json.dumps({"type": "event", **_jsonable(e)}))
    return "\n".join(lines) + "\n"


def write_jsonl(rec, path: str) -> None:
    with open(path, "w") as fh:
        fh.write(to_jsonl(rec))


def write_chrome(rec, path: str) -> None:
    with open(path, "w") as fh:
        json.dump(chrome_trace(rec), fh)


def load_jsonl(path: str) -> dict:
    """Parse a JSONL export back into ``{"meta", "counters", "sections",
    "spans", "events"}``."""
    data = {"meta": {}, "counters": {}, "sections": [], "spans": [],
            "events": []}
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            obj = json.loads(line)
            t = obj.pop("type", None)
            if t == "meta":
                data["meta"] = obj
            elif t == "counter":
                data["counters"][obj["name"]] = obj["value"]
            elif t == "section":
                data["sections"].append(obj)
            elif t == "span":
                data["spans"].append(obj)
            elif t == "event":
                data["events"].append(obj)
    return data


# -- structural span tree ----------------------------------------------------


def span_tree(spans) -> tuple:
    """The capture's structural shape: nested ``(kind, name, rank,
    children)`` tuples, timestamps erased.

    Children are ordered by ``(rank, t0, kind, name)`` -- a
    deterministic total order for the deterministic virtual timeline,
    independent of the racy order in which rank threads appended their
    spans.  This is what the golden-trace test compares.
    """
    ds = [s.as_dict() if hasattr(s, "as_dict") else dict(s) for s in spans]
    children: dict[int | None, list[dict]] = {}
    for d in ds:
        children.setdefault(d["parent"], []).append(d)

    def order(items: list[dict]) -> list[dict]:
        return sorted(items, key=lambda d: (d["rank"], d["t0"], d["kind"],
                                            d["name"]))

    def build(d: dict) -> tuple:
        kids = tuple(build(c) for c in order(children.get(d["sid"], [])))
        return (d["kind"], d["name"], d["rank"], kids)

    return tuple(build(d) for d in order(children.get(None, [])))


def render_tree(tree, indent: int = 0) -> str:
    """Pretty-print a :func:`span_tree` (debugging and golden diffs)."""
    lines = []
    for kind, name, rank, kids in tree:
        lane = "driver" if rank < 0 else f"rank {rank}"
        lines.append("  " * indent + f"{kind}:{name} [{lane}]")
        if kids:
            lines.append(render_tree(kids, indent + 1))
    return "\n".join(lines)


# -- span-layer causality ----------------------------------------------------


def check_event_causality(events) -> list[str]:
    """Every recv event must join a send that already departed.

    The span-layer mirror of :func:`repro.cluster.trace.check_causality`:
    matches sends to recvs per (src, dst, tag) channel in FIFO order
    over the absorbed event stream.  Returns violation descriptions.
    """
    violations: list[str] = []
    sends: dict[tuple[int, int, int], list[dict]] = {}
    for e in sorted((e for e in events if e["kind"] == "send"),
                    key=lambda e: e["time"]):
        sends.setdefault((e["rank"], e["peer"], e["tag"]), []).append(e)
    matched: dict[tuple[int, int, int], int] = {}
    for r in sorted((e for e in events if e["kind"] == "recv"),
                    key=lambda e: e["time"]):
        key = (r["peer"], r["rank"], r["tag"])
        idx = matched.get(key, 0)
        chain = sends.get(key, [])
        if idx >= len(chain):
            violations.append(
                f"recv with no departed send: rank {r['rank']} <- "
                f"rank {r['peer']} tag={r['tag']} at {r['time']}"
            )
            continue
        s = chain[idx]
        matched[key] = idx + 1
        if r["time"] < s["time"]:
            violations.append(
                f"recv at {r['time']} precedes its send at {s['time']} "
                f"(rank {r['peer']} -> rank {r['rank']}, tag {r['tag']})"
            )
    return violations
