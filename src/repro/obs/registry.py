"""The metrics registry: every counter family under one namespace.

The runtime grew five instrumented subsystems, each with its own ad-hoc
API: :class:`~repro.core.meter.CostMeter`, the fusion planner's
:class:`~repro.core.fusion.planner.PlannerStats`, the serialization
``copy_stats()``, the cluster's :class:`~repro.cluster.metrics.RunMetrics`,
the data plane's totals, and :class:`~repro.runtime.recovery.
RecoveryReport`.  The registry adapts them all into flat named counters
(``cluster.bytes_sent``, ``plane.input_bytes``, ``planner.hits``,
``recovery.reshipped_bytes``, ...) with per-section snapshots.

Counters are filled through two mechanisms:

* **live hooks** -- the planner and data plane increment their registry
  counters at the moment the legacy counter moves, giving a genuinely
  independent accumulation stream;
* **section adaptation** -- the driver folds each
  :class:`~repro.runtime.driver.SectionRecord` in at the section
  boundary.

Because the streams are independent, :func:`conservation_violations`
is a real check, not a tautology: registry totals must equal the legacy
sources they adapt, bit for bit (ints) or float-exactly (same addition
order).
"""
from __future__ import annotations

from numbers import Number


class MetricsRegistry:
    """Flat named counters/gauges plus per-section snapshots."""

    def __init__(self):
        self.counters: dict[str, float] = {}
        self.sections: list[dict] = []

    def inc(self, name: str, value=1) -> None:
        self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name: str, value) -> None:
        self.counters[name] = value

    def get(self, name: str, default=0):
        return self.counters.get(name, default)

    def empty(self) -> bool:
        return not self.counters and not self.sections

    def snapshot_section(self, label: str, values: dict) -> None:
        self.sections.append({"label": label, "index": len(self.sections),
                              **values})

    def names(self) -> list[str]:
        return sorted(self.counters)

    def as_dict(self) -> dict:
        return {
            "counters": dict(sorted(self.counters.items())),
            "sections": [dict(s) for s in self.sections],
        }


#: Data-plane stat keys mirrored 1:1 between ``plane.totals`` and the
#: registry's ``plane.*`` live counters.
PLANE_KEYS = (
    "requests", "input_bytes", "placements", "placed_bytes",
    "resident_hits", "cache_hits", "cache_misses", "cache_evictions",
    "migrated_bytes", "migrations", "lineage_replays", "replayed_bytes",
    "halo_requests", "halo_hits", "halo_refreshes", "halo_bytes",
)

#: Planner stat fields mirrored between ``PlannerStats`` and
#: ``planner.*``.
PLANNER_KEYS = ("hits", "misses", "compiled", "unsupported",
                "negative_evictions")


def _check(violations: list[str], name: str, registry_value, legacy_value,
           source: str) -> None:
    if registry_value != legacy_value:
        violations.append(
            f"{name}: registry={registry_value!r} != {source}="
            f"{legacy_value!r}"
        )


def conservation_violations(rec, runtime) -> list[str]:
    """Check every adapted counter family against its legacy source.

    *rec* is the capture's :class:`~repro.obs.spans.Recorder`, *runtime*
    the single :class:`~repro.runtime.driver.TrioletRuntime` that ran
    inside the capture.  Returns violation descriptions (empty list ==
    conservation holds):

    * ``cluster.*`` totals vs the runtime's section ledger;
    * ``plane.*`` live counters vs ``DataPlane.totals``;
    * the sum of ``ship`` spans' ``input_bytes`` vs the plane's
      ``input_bytes`` total, and the recovery-tagged subset vs
      ``RecoveryReport.reshipped_bytes``;
    * ``planner.*`` live counters vs the global ``PlannerStats`` delta
      since the capture began;
    * ``meter.*`` gauges (when folded) vs ``runtime.meter_total``.
    """
    from repro.core.fusion.planner import planner_stats

    v: list[str] = []
    reg = rec.registry

    _check(v, "sections.count", reg.get("sections.count"),
           len(runtime.sections), "len(runtime.sections)")
    _check(v, "cluster.bytes_sent", reg.get("cluster.bytes_sent"),
           runtime.total_bytes_shipped(), "runtime.total_bytes_shipped()")
    _check(v, "cluster.messages_sent", reg.get("cluster.messages_sent"),
           sum(s.messages for s in runtime.sections), "section ledger")
    _check(v, "time.makespan", reg.get("time.makespan"),
           sum(s.makespan for s in runtime.sections), "section ledger")

    # Data plane: live counters vs the plane's own totals.
    totals = runtime.plane.totals
    for k in PLANE_KEYS:
        _check(v, f"plane.{k}", reg.get(f"plane.{k}"), totals.get(k, 0),
               "plane.totals")

    # Ship spans vs plane bytes, and their recovery-tagged subset vs the
    # recovery report (the crash drill's reshipped bytes must be visible
    # as recovery-tagged spans).
    ship = rec.spans_of_kind("ship")
    _check(v, "ship-span input_bytes",
           sum(s.attrs.get("input_bytes", 0) for s in ship),
           totals.get("input_bytes", 0), "plane.totals")
    _check(v, "recovery-tagged ship-span bytes",
           sum(s.attrs.get("input_bytes", 0) for s in ship
               if s.attrs.get("recovery")),
           runtime.recovery_report.reshipped_bytes,
           "recovery_report.reshipped_bytes")
    _check(v, "recovery.reshipped_bytes", reg.get("recovery.reshipped_bytes"),
           runtime.recovery_report.reshipped_bytes,
           "recovery_report.reshipped_bytes")

    # Halo spans vs plane halo bytes: ghost-cell traffic is tracked on
    # its own span kind, and must reconcile exactly like interior bytes.
    halo = rec.spans_of_kind("halo")
    _check(v, "halo-span halo_bytes",
           sum(s.attrs.get("halo_bytes", 0) for s in halo),
           totals.get("halo_bytes", 0), "plane.totals")

    # Planner: live counters vs the global stats delta since capture.
    stats = planner_stats()
    base = rec.planner_baseline
    for k in PLANNER_KEYS:
        legacy = getattr(stats, k) - (getattr(base, k) if base else 0)
        _check(v, f"planner.{k}", reg.get(f"planner.{k}"), legacy,
               "PlannerStats")
    return v


def fold_meter(registry: MetricsRegistry, m, prefix: str = "meter") -> None:
    """Adapt a :class:`~repro.core.meter.CostMeter` into gauges."""
    registry.gauge(f"{prefix}.visits", m.visits)
    registry.gauge(f"{prefix}.steps", m.steps)
    registry.gauge(f"{prefix}.lookups", m.lookups)
    registry.gauge(f"{prefix}.materializations", m.materializations)
    registry.gauge(f"{prefix}.materialized_bytes", m.materialized_bytes)
    registry.gauge(f"{prefix}.passes", m.passes)


def numeric_counters(counters: dict) -> dict:
    """The numeric subset of a counter mapping (diff-able values)."""
    return {k: v for k, v in counters.items() if isinstance(v, Number)}
