"""The Triolet programming interface.

"From an application developer's perspective, Triolet presents an
extensible set of data-parallel higher-order functions that help
manipulate aggregate data structures.  A Triolet parallel loop resembles
sequential Python code that uses list comprehensions and higher-order
functions to manipulate lists."  (paper §2)

Typical use::

    import numpy as np
    import repro.triolet as tri
    from repro.runtime import triolet_runtime
    from repro.cluster.machine import PAPER_MACHINE

    def dot(xs, ys):
        return tri.sum(x * y for ... )          # or, explicitly:
        # tri.sum(tri.map(lambda p: p[0]*p[1], tri.par(tri.zip(xs, ys))))

    with triolet_runtime(PAPER_MACHINE) as rt:
        result = dot(np.arange(1e6), np.ones(1_000_000))
        print(rt.last_run.makespan)

Python cannot intercept its own comprehension syntax, so where the paper
writes ``sum(f(x) for x in par(xs))`` this library writes
``tri.sum(tri.map(f, tri.par(xs)))`` -- the same desugaring the paper
describes ("The call of map arises from desugaring the list
comprehension").

Names mirror the paper's: some shadow Python builtins (``map``, ``zip``,
``filter``, ``sum``, ``range``); import the module qualified.
"""
from __future__ import annotations

from repro.core.domains.multi import (
    array_range as arrayRange,
)
from repro.core.domains.multi import (
    cols,
    domain,
    indices,
    outerproduct,
    rows,
)
from repro.core.hints import localpar, par, seq
from repro.core.iterators import (
    IdxFlat,
    IdxNest,
    IndexedIter,
    Iter,
    ParHint,
    StepFlat,
    StepNest,
    all_match,
    as_indexed,
    indexed,
    indexed_pairs,
    intersect,
    lookup,
    map_values,
    union_merge,
    any_match,
    append,
    argmax,
    argmin,
    build,
    collect_list,
    concat_map,
    count,
    drop,
    find_first,
    group_reduce,
    histogram,
    iterate,
    mean_variance,
    prefix_sum,
    scan,
    take,
)
from repro.core.iterators import enumerate_iter as enumerate  # noqa: A001
from repro.core.iterators import tfilter as filter  # noqa: A001
from repro.core.iterators import tmap as map  # noqa: A001
from repro.core.iterators import tmax as max  # noqa: A001
from repro.core.iterators import tmin as min  # noqa: A001
from repro.core.iterators import treduce as reduce
from repro.core.iterators import tsum as sum  # noqa: A001
from repro.core.iterators import tzip as zip  # noqa: A001
from repro.core.fusion import analyze
from repro.data.views import (
    segmented_view,
    slice_view,
    transpose_view,
    zip_view,
)
from repro.cluster.faults import (
    DelaySpike,
    FaultPlan,
    RankCrash,
    SendFault,
    SlowNode,
)
from repro.runtime.recovery import (
    DEFAULT_RECOVERY,
    RecoveryPolicy,
    RecoveryReport,
)

__all__ = [
    # hints
    "par",
    "localpar",
    "seq",
    # construction
    "iterate",
    "rows",
    "cols",
    "outerproduct",
    "arrayRange",
    "indices",
    "domain",
    # transforms
    "map",
    "zip",
    "filter",
    "concat_map",
    # indexed streams
    "indexed",
    "indexed_pairs",
    "as_indexed",
    "intersect",
    "union_merge",
    "lookup",
    "map_values",
    "IndexedIter",
    # distributed views
    "slice_view",
    "zip_view",
    "transpose_view",
    "segmented_view",
    # consumers
    "sum",
    "min",
    "max",
    "reduce",
    "count",
    "histogram",
    "collect_list",
    "build",
    "scan",
    "prefix_sum",
    "enumerate",
    "take",
    "drop",
    "append",
    "find_first",
    "any_match",
    "all_match",
    "group_reduce",
    "mean_variance",
    "argmin",
    "argmax",
    # fault tolerance
    "FaultPlan",
    "DelaySpike",
    "SendFault",
    "RankCrash",
    "SlowNode",
    "RecoveryPolicy",
    "RecoveryReport",
    "DEFAULT_RECOVERY",
    # types & tools
    "Iter",
    "IdxFlat",
    "StepFlat",
    "IdxNest",
    "StepNest",
    "ParHint",
    "analyze",
]
