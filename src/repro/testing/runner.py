"""The differential runner: one generated program, every execution path.

For each ``(seed, case)`` program the runner executes:

* the plain-Python oracle (:func:`repro.testing.gen.ref_value`);
* the fused scalar interpreter (vectorization forced off);
* the vectorized bulk engine (vectorization forced on);
* the distributed runtime on a sampled 1..8-node machine, four ways:
  scalar tasks, vectorized tasks, vectorized over ``rt.distribute``
  handles (two sections, to check residency), and under a sampled
  :class:`~repro.cluster.faults.FaultPlan`.

Checks: the oracle match is semantic (value equality); everything else
is *bitwise* -- generated values are integral float64, so no partition
or fusion choice is allowed to flip a single bit.  CostMeter triples
(visits/steps/lookups) must agree between scalar, vectorized and every
fault-free distributed run; byte/message counts must agree between the
scalar and vectorized distributed runs; handle-backed second sections
must ship zero input bytes unless the rebalancer migrated boundaries.
The invariant checker observes every distributed section throughout.

:func:`crash_drill` is the deterministic guarantee that at least one run
per suite exercises crash re-execution (random fault sampling alone
could miss it when the crash rank exceeds the chunk count).
"""
from __future__ import annotations

import random
from dataclasses import dataclass, field

import numpy as np

from repro.cluster.faults import (
    DelaySpike,
    FaultPlan,
    RankCrash,
    RankLoss,
    SendFault,
    SlowNode,
)
from repro.cluster.machine import MachineSpec
from repro.core import meter
from repro.core.engine.execute import use_vectorization
from repro.core.fusion.planner import reset_planner
from repro.data.handle import drop_handles
from repro.data.plane import DataPlane
from repro.runtime import triolet_runtime
from repro.serial import reset as reset_copy_stats
from repro.testing import kernels as K
from repro.testing.gen import build_iter, generate_program, ref_value, run_consumer
from repro.testing.invariants import InvariantViolation, check_plane, checking

import repro.triolet as tri


@dataclass
class CaseResult:
    seed: int
    case: int
    desc: str
    failures: list = field(default_factory=list)
    crash_exercised: bool = False
    sections: int = 0

    @property
    def ok(self) -> bool:
        return not self.failures

    def repro_line(self) -> str:
        return (
            f"PYTHONPATH=src python -m repro.testing "
            f"--seed {self.seed} --cases {self.case + 1} --only {self.case}"
        )


@dataclass
class SuiteResult:
    seed: int
    results: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.results)

    @property
    def failures(self) -> list:
        return [r for r in self.results if not r.ok]

    @property
    def crash_exercised(self) -> bool:
        return any(r.crash_exercised for r in self.results)

    def summary(self) -> str:
        n = len(self.results)
        nf = len(self.failures)
        ncrash = sum(1 for r in self.results if r.crash_exercised)
        nsec = sum(r.sections for r in self.results)
        status = "OK" if self.ok else "FAIL"
        return (
            f"{status}: {n - nf}/{n} cases passed (seed {self.seed}), "
            f"{nsec} distributed sections invariant-checked, "
            f"{ncrash} cases exercised crash re-execution"
        )


# -- equality ----------------------------------------------------------------


def bits_equal(a, b) -> bool:
    """Strict bit-level equality between two triolet-path results."""
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return (
            isinstance(a, np.ndarray)
            and isinstance(b, np.ndarray)
            and a.shape == b.shape
            and a.dtype == b.dtype
            and a.tobytes() == b.tobytes()
        )
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        return len(a) == len(b) and all(
            bits_equal(x, y) for x, y in zip(a, b)
        )
    if isinstance(a, (float, np.floating)) and isinstance(b, (float, np.floating)):
        return np.float64(a).tobytes() == np.float64(b).tobytes()
    return type(a) is type(b) and a == b


def semantic_equal(a, b) -> bool:
    """Value equality against the oracle (dtype/container agnostic)."""
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        a2, b2 = np.asarray(a), np.asarray(b)
        if a2.size == 0 and b2.size == 0:
            return True
        return a2.shape == b2.shape and bool(np.array_equal(a2, b2))
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        return len(a) == len(b) and all(
            semantic_equal(x, y) for x, y in zip(a, b)
        )
    try:
        return bool(a == b)
    except Exception:
        return False


def _meter_triple(m: meter.CostMeter) -> tuple:
    return (m.visits, m.steps, m.lookups)


# -- fault sampling ----------------------------------------------------------


def sample_fault_plan(rng: random.Random, nodes: int) -> FaultPlan:
    """One or two faults drawn over all five fault kinds."""
    faults = []
    for _ in range(rng.choice([1, 1, 2])):
        kind = rng.randrange(5)
        if kind == 0 and nodes > 1:
            faults.append(RankCrash(rank=rng.randrange(1, nodes), at=1e-7))
        elif kind == 1:
            faults.append(
                SendFault(
                    src=rng.randrange(nodes),
                    times=rng.choice([1, 2]),
                )
            )
        elif kind == 2:
            faults.append(DelaySpike(src=rng.randrange(nodes), delay=1e-5))
        elif kind == 3:
            faults.append(SlowNode(node=rng.randrange(nodes), factor=3.0))
        elif nodes > 2:
            # Permanent loss: the job must finish degraded via elastic
            # shrink, still bit-identical to the oracle.
            faults.append(RankLoss(rank=rng.randrange(1, nodes), at=1e-7))
        else:
            faults.append(SlowNode(node=rng.randrange(nodes), factor=3.0))
    return FaultPlan(faults=tuple(faults))


def _caching_distribute(rt):
    """One handle per distinct source array per runtime."""
    handles: dict[int, object] = {}

    def dist(arr):
        key = id(arr)
        if key not in handles:
            handles[key] = rt.distribute(arr)
        return handles[key]

    return dist


# -- the per-case differential run ------------------------------------------


def run_case(seed: int, case: int) -> CaseResult:
    prog = generate_program(seed, case)
    out = CaseResult(seed=seed, case=case, desc=prog.describe())
    fails = out.failures

    reset_planner()
    reset_copy_stats()

    ref = ref_value(prog)

    with use_vectorization(False), meter.metered() as m_scalar:
        v_scalar = run_consumer(prog, build_iter(prog))
    with use_vectorization(True), meter.metered() as m_vector:
        v_vector = run_consumer(prog, build_iter(prog))

    if not semantic_equal(ref, v_scalar):
        fails.append(f"oracle mismatch: ref={ref!r} scalar={v_scalar!r}")
    if not bits_equal(v_scalar, v_vector):
        fails.append(
            f"scalar/vectorized not bit-identical: {v_scalar!r} vs {v_vector!r}"
        )
    if _meter_triple(m_scalar) != _meter_triple(m_vector):
        fails.append(
            f"meter drift scalar {_meter_triple(m_scalar)} vs "
            f"vectorized {_meter_triple(m_vector)}"
        )

    prng = random.Random(seed * 7_654_321 + case + 1)
    nodes = prng.choice([1, 2, 3, 4, 5, 6, 8])
    cores = prng.choice([1, 2, 4])
    machine = MachineSpec(nodes=nodes, cores_per_node=cores)

    try:
        with checking() as ck:
            _distributed_paths(prog, machine, prng, v_scalar, m_scalar, fails)
            out.crash_exercised = ck.crash_sections > 0
            out.sections = ck.sections
    except InvariantViolation as exc:
        fails.append(f"invariant violation: {exc}")
    return out


def _distributed_paths(prog, machine, prng, v_scalar, m_scalar, fails):
    nodes = machine.nodes

    # 1. distributed, scalar tasks
    with use_vectorization(False), triolet_runtime(machine) as rt_s:
        d_scalar = run_consumer(prog, build_iter(prog, hint="par"))
    if not bits_equal(v_scalar, d_scalar):
        fails.append(
            f"distributed-scalar differs on {nodes} nodes: "
            f"{d_scalar!r} vs {v_scalar!r}"
        )
    if _meter_triple(rt_s.meter_total) != _meter_triple(m_scalar):
        fails.append(
            f"distributed-scalar meter {_meter_triple(rt_s.meter_total)} "
            f"!= scalar meter {_meter_triple(m_scalar)}"
        )

    # 2. distributed, vectorized tasks
    with use_vectorization(True), triolet_runtime(machine) as rt_v:
        d_vector = run_consumer(prog, build_iter(prog, hint="par"))
    if not bits_equal(d_scalar, d_vector):
        fails.append(
            f"distributed vec/scalar not bit-identical on {nodes} nodes"
        )
    if _meter_triple(rt_v.meter_total) != _meter_triple(m_scalar):
        fails.append(
            f"distributed-vectorized meter "
            f"{_meter_triple(rt_v.meter_total)} != scalar meter "
            f"{_meter_triple(m_scalar)}"
        )
    # The wire does not care how tasks execute: byte/message counts of
    # the scalar and vectorized distributed runs must agree.
    ps, pv = rt_s.sections[-1], rt_v.sections[-1]
    if (ps.bytes_shipped, ps.messages) != (pv.bytes_shipped, pv.messages):
        fails.append(
            f"wire drift: scalar run shipped {ps.bytes_shipped}b/"
            f"{ps.messages}msg, vectorized {pv.bytes_shipped}b/"
            f"{pv.messages}msg"
        )

    # 3. distributed over data-plane handles, two sections (residency).
    # Distribute each source array once and reuse the handle across both
    # sections -- a fresh handle per section would defeat residency.
    with use_vectorization(True), triolet_runtime(machine, plane=DataPlane()) as rt_h:
        dist = _caching_distribute(rt_h)
        d_h1 = run_consumer(prog, build_iter(prog, dist, hint="par"))
        d_h2 = run_consumer(prog, build_iter(prog, dist, hint="par"))
    if not bits_equal(d_scalar, d_h1):
        fails.append(f"handle-backed run differs on {nodes} nodes")
    if not bits_equal(d_h1, d_h2):
        fails.append("handle-backed run is not repeatable (section 2)")
    plane_secs = [s for s in rt_h.sections if s.data_plane is not None]
    if len(plane_secs) >= 2:
        second = plane_secs[1]
        if (
            "rebal" not in second.partition
            and second.data_plane["input_bytes"] != 0
        ):
            fails.append(
                "second compatible handle section shipped "
                f"{second.data_plane['input_bytes']} input bytes (want 0)"
            )
    check_plane(rt_h.plane)

    # 4. under a sampled fault plan (values only; retries re-tally meters)
    plan = sample_fault_plan(prng, nodes)
    use_handles = prng.random() < 0.5
    with use_vectorization(True), triolet_runtime(
        machine, faults=plan, plane=DataPlane()
    ) as rt_f:
        d_fault = run_consumer(
            prog,
            build_iter(
                prog, rt_f.distribute if use_handles else None, hint="par"
            ),
        )
    if not bits_equal(d_scalar, d_fault):
        fails.append(
            f"faulted run differs on {nodes} nodes under {plan!r}"
        )


# -- the guaranteed crash case ----------------------------------------------


def crash_drill(seed: int) -> CaseResult:
    """Deterministic crash-recovery case: a handle-backed sum on 4 nodes
    with rank 1 crashing mid-section, invariant checker active."""
    out = CaseResult(
        seed=seed,
        case=-1,
        desc=f"crash drill (seed {seed}): sum(square(par(handle[512]))) "
        f"on 4x2 with RankCrash(rank=1)",
    )
    xs = np.arange(512, dtype=np.float64) % 10
    machine = MachineSpec(nodes=4, cores_per_node=2)
    expect = tri.sum(tri.map(K.k_square, tri.seq(xs)))

    plan = FaultPlan(faults=(RankCrash(rank=1, at=1e-6),))
    try:
        with checking() as ck:
            with triolet_runtime(machine, faults=plan, plane=DataPlane()) as rt:
                h = rt.distribute(xs)
                first = tri.sum(tri.map(K.k_square, tri.par(h)))
                second = tri.sum(tri.map(K.k_square, tri.par(h)))
            out.sections = ck.sections
            out.crash_exercised = ck.crash_sections > 0
    except InvariantViolation as exc:
        out.failures.append(f"invariant violation: {exc}")
        return out
    if not bits_equal(expect, first) or not bits_equal(expect, second):
        out.failures.append(
            f"crash drill value drift: {first!r}/{second!r} vs {expect!r}"
        )
    rep = rt.recovery_report
    if rep.reexecuted_chunks <= 0:
        out.failures.append("crash drill did not re-execute any chunk")
    if rep.reshipped_bytes <= 0:
        out.failures.append("crash drill attributed no reshipped bytes")
    if not out.crash_exercised:
        out.failures.append("invariant checker saw no crash section")
    return out


def loss_drill(seed: int) -> CaseResult:
    """Deterministic permanent-loss case: two handle-backed sections on
    4x2 where rank 1 is *lost* during the second -- the shrunken job
    must complete via lineage replay, bit-identical to the oracle."""
    out = CaseResult(
        seed=seed,
        case=-2,
        desc=f"loss drill (seed {seed}): sum(square(par(handle[512]))) x2 "
        f"on 4x2 with RankLoss(rank=1, section=1)",
    )
    xs = np.arange(512, dtype=np.float64) % 10
    machine = MachineSpec(nodes=4, cores_per_node=2)
    expect = tri.sum(tri.map(K.k_square, tri.seq(xs)))

    plan = FaultPlan(faults=(RankLoss(rank=1, at=1e-6, section=1),))
    try:
        with checking() as ck:
            with triolet_runtime(machine, faults=plan, plane=DataPlane()) as rt:
                h = rt.distribute(xs)
                first = tri.sum(tri.map(K.k_square, tri.par(h)))
                second = tri.sum(tri.map(K.k_square, tri.par(h)))
            out.sections = ck.sections
            out.crash_exercised = ck.crash_sections > 0
            check_plane(rt.plane)
    except InvariantViolation as exc:
        out.failures.append(f"invariant violation: {exc}")
        return out
    if not bits_equal(expect, first) or not bits_equal(expect, second):
        out.failures.append(
            f"loss drill value drift: {first!r}/{second!r} vs {expect!r}"
        )
    rep = rt.recovery_report
    if rep.rank_losses != 1:
        out.failures.append(
            f"loss drill absorbed {rep.rank_losses} losses (want 1)"
        )
    if rep.lineage_replays <= 0 or rep.replayed_bytes <= 0:
        out.failures.append("loss drill replayed nothing through lineage")
    if rep.replayed_bytes >= rt.plane.totals["input_bytes"]:
        out.failures.append(
            "lineage replay re-shipped everything "
            f"({rep.replayed_bytes} of {rt.plane.totals['input_bytes']} "
            "input bytes) -- shrink kept no survivor shard"
        )
    if rt.plane.shrinks != 1:
        out.failures.append(f"plane shrank {rt.plane.shrinks} times (want 1)")
    return out


def checkpoint_drill(seed: int) -> CaseResult:
    """Deterministic restart case: checkpointing on, *no* in-run
    recovery; a gated loss kills the job in its second section and the
    restarted run must restore section one from the durable store and
    finish bit-identical to the oracle."""
    from repro.runtime import CheckpointConfig, CheckpointStore, run_restartable

    out = CaseResult(
        seed=seed,
        case=-3,
        desc=f"checkpoint drill (seed {seed}): restart-from-checkpoint "
        f"on 4x2 with RankLoss(rank=1, section=1), recovery=None",
    )
    xs = np.arange(512, dtype=np.float64) % 10
    machine = MachineSpec(nodes=4, cores_per_node=2)
    expect_pair = (
        tri.sum(tri.map(K.k_square, tri.seq(xs))),
        tri.sum(tri.map(K.k_double, tri.seq(xs))),
    )

    store = CheckpointStore()
    plan = FaultPlan(faults=(RankLoss(rank=1, at=1e-6, section=1),))

    def make_runtime():
        return triolet_runtime(
            machine,
            faults=plan,
            recovery=None,
            plane=DataPlane(),
            checkpoint=CheckpointConfig(store=store, job=f"drill-{seed}"),
        )

    def job(rt):
        h = rt.distribute(xs)
        return (
            tri.sum(tri.map(K.k_square, tri.par(h))),
            tri.sum(tri.map(K.k_double, tri.par(h))),
        )

    try:
        value, rt, restarts = run_restartable(make_runtime, job)
    except Exception as exc:  # noqa: BLE001 - a dead drill is a failure
        out.failures.append(f"checkpoint drill did not complete: {exc!r}")
        return out
    out.sections = len(rt.sections)
    if not bits_equal(expect_pair[0], value[0]) or not bits_equal(
        expect_pair[1], value[1]
    ):
        out.failures.append(
            f"checkpoint drill value drift: {value!r} vs {expect_pair!r}"
        )
    if restarts != 1:
        out.failures.append(f"checkpoint drill restarted {restarts}x (want 1)")
    rep = rt.recovery_report
    if rep.restores != 1 or rep.restored_bytes <= 0:
        out.failures.append(
            f"restarted run restored {rep.restores} section(s) "
            f"({rep.restored_bytes} bytes) -- want exactly the durable one"
        )
    if store.puts < 2:
        out.failures.append(
            f"store holds {store.puts} checkpoint(s) (want both sections)"
        )
    return out


def stencil_drill(seed: int) -> CaseResult:
    """Deterministic halo-exchange case: an 8-sweep radius-1 Jacobi on
    4x2 losing rank 1 mid-run -- the shrunken job must stay bit-identical
    to the sequential oracle, with zero interior bytes on clean sweeps
    and ghost state that survives the invariant checker."""
    out = CaseResult(
        seed=seed,
        case=-4,
        desc=f"stencil drill (seed {seed}): jacobi[256] x8 on 4x2 "
        f"with RankLoss(rank=1, section=3)",
    )
    rng = np.random.default_rng(seed)
    init = rng.integers(0, 10, size=256).astype(np.float64)
    machine = MachineSpec(nodes=4, cores_per_node=2)

    def kern(xpad):
        return 0.5 * (xpad[:-2] + xpad[2:])

    expect = init.copy()
    for _ in range(8):
        nxt = expect.copy()
        nxt[1:-1] = kern(expect)
        expect = nxt

    plan = FaultPlan(faults=(RankLoss(rank=1, at=1e-6, section=3),))
    try:
        with checking() as ck:
            with triolet_runtime(machine, faults=plan, plane=DataPlane()) as rt:
                h = rt.distribute(init.copy())
                rt.stencil(h, radius=1, kernel=kern, iterations=8)
                got = h.array.copy()
            out.sections = ck.sections
            out.crash_exercised = ck.crash_sections > 0
            check_plane(rt.plane)
    except InvariantViolation as exc:
        out.failures.append(f"invariant violation: {exc}")
        return out
    if got.tobytes() != expect.tobytes():
        out.failures.append("stencil drill not bit-identical after loss")
    rep = rt.recovery_report
    if rep.rank_losses != 1:
        out.failures.append(
            f"stencil drill absorbed {rep.rank_losses} losses (want 1)"
        )
    if rep.lineage_replays <= 0:
        out.failures.append("stencil drill replayed nothing through lineage")
    clean = [
        s
        for s in rt.sections
        if s.kind == "stencil" and s.recovery is None
    ]
    if any(s.data_plane["input_bytes"] != 0 for s in clean[1:]):
        out.failures.append(
            "clean stencil sweep after the first re-shipped interior rows"
        )
    if all(s.data_plane["halo_refreshes"] == 0 for s in rt.sections
           if s.kind == "stencil"):
        out.failures.append("stencil drill never refreshed a ghost")
    return out


# -- suites ------------------------------------------------------------------


def run_suite(
    seed: int,
    cases: int,
    only: int | None = None,
    fail_fast: bool = False,
    progress=None,
) -> SuiteResult:
    suite = SuiteResult(seed=seed)
    case_ids = [only] if only is not None else list(range(cases))
    for case in case_ids:
        r = run_case(seed, case)
        suite.results.append(r)
        if progress is not None:
            progress(r)
        if fail_fast and not r.ok:
            return suite
    if only is None:
        # Guarantee the acceptance properties: every suite exercises
        # transient crash re-execution, permanent-loss lineage recovery,
        # restart-from-checkpoint, and mid-run loss under the stencil's
        # halo exchange, with the checker active.
        for drill_fn in (crash_drill, loss_drill, checkpoint_drill,
                         stencil_drill):
            drill = drill_fn(seed)
            suite.results.append(drill)
            if progress is not None:
                progress(drill)
    drop_handles()
    return suite
