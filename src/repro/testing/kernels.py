"""The fuzzer's kernel zoo: registered scalar functions + bulk forms.

Every kernel is registered for serialization (so it survives the wire to
simulated ranks) and carries an ELEMENTWISE or SEGMENTED bulk form (so
the vectorized engine genuinely vectorizes the generated pipelines
instead of falling back to the scalar loop).

All kernels preserve integrality: inputs are small integers stored as
float64, and every output stays an exact integer far below 2**53.  That
is what makes "bit-identical across every partitioning" a theorem rather
than a tolerance -- float addition of exact integers is associative.

Scalar and bulk forms are written against the same arithmetic
expressions; any divergence between them is exactly the class of bug the
differential runner exists to catch.
"""
from __future__ import annotations

import numpy as np

from repro.core.engine.bulk_forms import SEGMENTED, register_bulk
from repro.serial import register_function
from repro.serial.closures import closure

# -- num -> num maps ---------------------------------------------------------


@register_function
def k_square(x):
    return x * x


register_bulk(k_square, lambda b: b * b)


@register_function
def k_add3(x):
    return x + 3.0


register_bulk(k_add3, lambda b: b + 3.0)


@register_function
def k_double(x):
    return x * 2.0


register_bulk(k_double, lambda b: b * 2.0)


@register_function
def k_neg(x):
    return -x


register_bulk(k_neg, lambda b: -b)


@register_function
def k_addc(c, x):
    return x + c


register_bulk(k_addc, lambda c, b: b + c)


@register_function
def k_scalec(c, x):
    return x * c


register_bulk(k_scalec, lambda c, b: b * c)


# -- pair -> num maps (zip / outerproduct elements) --------------------------


@register_function
def k_pair_sum(p):
    return p[0] + p[1]


register_bulk(k_pair_sum, lambda t: t[0] + t[1])


@register_function
def k_pair_prod(p):
    return p[0] * p[1]


register_bulk(k_pair_prod, lambda t: t[0] * t[1])


@register_function
def k_pair_diff(p):
    return p[0] - p[1]


register_bulk(k_pair_diff, lambda t: t[0] - t[1])


# -- row -> num maps (rows() elements) ---------------------------------------


@register_function
def k_row_sum(r):
    return np.sum(r)


register_bulk(k_row_sum, lambda b: np.sum(b, axis=1))


@register_function
def k_row_ssq(r):
    return np.sum(r * r)


register_bulk(k_row_ssq, lambda b: np.sum(b * b, axis=1))


# -- predicates --------------------------------------------------------------


@register_function
def p_even(x):
    return x % 2.0 == 0.0


register_bulk(p_even, lambda b: b % 2.0 == 0.0)


@register_function
def p_div3(x):
    return x % 3.0 == 0.0


register_bulk(p_div3, lambda b: b % 3.0 == 0.0)


@register_function
def p_lt(c, x):
    return x < c


register_bulk(p_lt, lambda c, b: b < c)


@register_function
def p_ge(c, x):
    return x >= c


register_bulk(p_ge, lambda c, b: b >= c)


@register_function
def p_pair_lt(p):
    return p[0] < p[1]


register_bulk(p_pair_lt, lambda t: t[0] < t[1])


@register_function
def p_pair_ne(p):
    return p[0] != p[1]


register_bulk(p_pair_ne, lambda t: t[0] != t[1])


# -- expanders (concatMap bodies): num -> float64 segment --------------------


@register_function
def e_iota(x):
    # x -> [0, 1, ..., (int(x) % 4) - 1]
    return np.arange(int(x) % 4, dtype=np.float64)


def _e_iota_bulk(b):
    b = np.asarray(b)
    ks = b.astype(np.int64) % 4
    total = int(ks.sum())
    if total == 0:
        return np.empty(0, dtype=np.float64), ks
    starts = np.repeat(np.cumsum(ks) - ks, ks)
    return np.arange(total, dtype=np.float64) - starts, ks


register_bulk(e_iota, _e_iota_bulk, SEGMENTED)


@register_function
def e_pairup(x):
    return np.array([x, x + 1.0])


def _e_pairup_bulk(b):
    b = np.asarray(b, dtype=np.float64)
    values = np.column_stack((b, b + 1.0)).reshape(-1)
    return values, np.full(len(b), 2, dtype=np.int64)


register_bulk(e_pairup, _e_pairup_bulk, SEGMENTED)


@register_function
def e_evens(x):
    if int(x) % 2 == 0:
        return np.array([x], dtype=np.float64)
    return np.empty(0, dtype=np.float64)


def _e_evens_bulk(b):
    b = np.asarray(b, dtype=np.float64)
    mask = b.astype(np.int64) % 2 == 0
    return b[mask], mask.astype(np.int64)


register_bulk(e_evens, _e_evens_bulk, SEGMENTED)


# -- consumer helpers --------------------------------------------------------


@register_function
def k_binmod(nbins, x):
    # histogram bin index: truncate toward zero, then a nonnegative mod
    return int(x) % nbins


register_bulk(k_binmod, lambda nbins, b: b.astype(np.int64) % nbins)


@register_function
def k_fold(acc, x):
    return acc + 2.0 * x


@register_function
def k_fold_bulk(values):
    return np.sum(2.0 * np.asarray(values))


@register_function
def k_merge(a, b):
    return a + b


# -- draw helpers: (callable-or-closure, python reference, label) ------------


def draw_num_map(rng):
    pick = rng.randrange(6)
    if pick == 0:
        return k_square, (lambda x: x * x), "square"
    if pick == 1:
        return k_add3, (lambda x: x + 3.0), "add3"
    if pick == 2:
        return k_double, (lambda x: x * 2.0), "double"
    if pick == 3:
        return k_neg, (lambda x: -x), "neg"
    if pick == 4:
        c = float(rng.randrange(1, 7))
        return closure(k_addc, c), (lambda x, c=c: x + c), f"addc[{c:g}]"
    c = float(rng.randrange(2, 5))
    return closure(k_scalec, c), (lambda x, c=c: x * c), f"scalec[{c:g}]"


def draw_pair_map(rng):
    pick = rng.randrange(3)
    if pick == 0:
        return k_pair_sum, (lambda p: p[0] + p[1]), "pair_sum"
    if pick == 1:
        return k_pair_prod, (lambda p: p[0] * p[1]), "pair_prod"
    return k_pair_diff, (lambda p: p[0] - p[1]), "pair_diff"


def draw_row_map(rng):
    if rng.randrange(2) == 0:
        return k_row_sum, (lambda r: np.sum(r)), "row_sum"
    return k_row_ssq, (lambda r: np.sum(r * r)), "row_ssq"


def draw_num_pred(rng):
    pick = rng.randrange(4)
    if pick == 0:
        return p_even, (lambda x: x % 2.0 == 0.0), "even"
    if pick == 1:
        return p_div3, (lambda x: x % 3.0 == 0.0), "div3"
    if pick == 2:
        c = float(rng.randrange(1, 9))
        return closure(p_lt, c), (lambda x, c=c: x < c), f"lt[{c:g}]"
    c = float(rng.randrange(1, 9))
    return closure(p_ge, c), (lambda x, c=c: x >= c), f"ge[{c:g}]"


def draw_pair_pred(rng):
    if rng.randrange(2) == 0:
        return p_pair_lt, (lambda p: p[0] < p[1]), "pair_lt"
    return p_pair_ne, (lambda p: p[0] != p[1]), "pair_ne"


def draw_expander(rng):
    pick = rng.randrange(3)
    if pick == 0:
        return e_iota, (lambda x: np.arange(int(x) % 4, dtype=np.float64)), "iota"
    if pick == 1:
        return (
            e_pairup,
            (lambda x: np.array([x, x + 1.0])),
            "pairup",
        )
    return (
        e_evens,
        (
            lambda x: np.array([x], dtype=np.float64)
            if int(x) % 2 == 0
            else np.empty(0, dtype=np.float64)
        ),
        "evens",
    )


def bin_kernel(nbins: int):
    """The histogram bin map: num -> int in [0, nbins)."""
    return (
        closure(k_binmod, nbins),
        (lambda x, n=nbins: int(x) % n),
        f"binmod[{nbins}]",
    )
