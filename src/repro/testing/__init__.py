"""Differential pipeline fuzzer + runtime invariant checker.

This package is the generative correctness harness for the four
execution paths the codebase now carries:

1. a plain-Python sequential reference (the oracle);
2. the fused scalar interpreter (vectorization off);
3. the vectorized bulk engine (vectorization on);
4. the distributed Triolet runtime -- 1..8 ranks, with and without
   ``rt.distribute`` data-plane handles, and under sampled FaultPlans.

:mod:`repro.testing.gen` composes random ``Iter`` programs from the four
constructors plus map/zip/filter/concatMap/fold/outerproduct over random
1-D/2-D domains (empty and single-element domains included);
:mod:`repro.testing.runner` executes every generated program down all
four paths and asserts bit-identical values plus reconciled
CostMeter/bytes-shipped/cache counters; :mod:`repro.testing.invariants`
hooks the driver's section-boundary observer and validates conservation
laws while any runtime -- fuzzed or hand-written-test -- executes.

Generated values are small integers stored as float64, so every
reduction order is exact and cross-partition bit-identity is an honest
claim rather than a tolerance.

Replay a failure deterministically::

    python -m repro.testing --seed N --cases K --only CASE
"""
from repro.testing.gen import Program, build_iter, generate_program, ref_value
from repro.testing.invariants import (
    InvariantChecker,
    InvariantViolation,
    check_plane,
    checking,
)
from repro.testing.runner import CaseResult, crash_drill, run_case, run_suite

__all__ = [
    "Program",
    "generate_program",
    "build_iter",
    "ref_value",
    "InvariantChecker",
    "InvariantViolation",
    "checking",
    "check_plane",
    "CaseResult",
    "run_case",
    "run_suite",
    "crash_drill",
]
