"""Runtime invariant checker hooked at driver section boundaries.

An :class:`InvariantChecker` registers as a section observer
(:func:`repro.runtime.driver.observing_sections`) and validates
conservation laws after every distributed section, while the runtime is
live:

* **Tiling** -- partition bounds tile the outer domain exactly: 1-D
  blocks are contiguous, non-overlapping and cover ``[0, extent)``; 2-D
  grids are the row-major cross product of row/column interval sets that
  each tile their axis.
* **Plane conservation** -- every chunk requirement is served by exactly
  one outcome, so ``requests == resident_hits + placements + migrations
  + cache_hits + cache_misses`` per section, and the slice cache's
  global hit/miss counters advance by exactly the section's planned
  hits/misses.
* **Reshipped monotonicity** -- ``recovery_report.reshipped_bytes``
  never decreases, and only grows in a section that actually re-executed
  chunks after a crash.
* **Placement liveness** -- after a crash re-partition, the placement
  map never references a rank outside the surviving set, and every
  resident hull stays inside its handle's bounds.
* **Halo conservation** -- ghost traffic has its own law: per section
  ``halo_requests == halo_hits + halo_refreshes``; stencil sections
  additionally bound ``halo_bytes`` by the interval-arithmetic ceiling
  ``2 * radius * ranks * row_nbytes``
  (:func:`~repro.partition.halo.halo_bytes_bound`), and every live ghost
  placement must cover an interval inside its handle's bounds with its
  bytes actually present in the rank's store.

Any violation raises :class:`InvariantViolation` (an ``AssertionError``
subclass, so it fails pytest naturally).  Usage from any test::

    from repro.testing.invariants import checking

    with checking() as ck, triolet_runtime(machine) as rt:
        ...
    assert ck.sections > 0
"""
from __future__ import annotations

from contextlib import contextmanager

import numpy as np

from repro.core.iterators.indexed import IndexedIter
from repro.partition import halo_bytes_bound
from repro.runtime import driver


class InvariantViolation(AssertionError):
    """A runtime conservation law failed at a section boundary."""


def _fail(msg: str, payload: dict) -> None:
    record = payload.get("record")
    where = f" [partition={record.partition!r}]" if record is not None else ""
    raise InvariantViolation(msg + where)


class InvariantChecker:
    """Stateful observer validating every distributed section it sees."""

    def __init__(self):
        self.sections = 0
        self.crash_sections = 0
        self._cache_seen: dict[int, dict] = {}
        self._reshipped_seen: dict[int, int] = {}

    # Observers are plain callables to the driver.
    def __call__(self, payload: dict) -> None:
        self.check_section(payload)

    def check_section(self, payload: dict) -> None:
        self.sections += 1
        if payload["attempts"] > 1:
            self.crash_sections += 1
        self._check_tiling(payload)
        self._check_indexed(payload)
        self._check_plane(payload)
        self._check_reshipped(payload)
        self._check_placement(payload)
        self._check_halo(payload)

    # -- tiling -------------------------------------------------------------

    def _check_tiling(self, payload: dict) -> None:
        bounds = payload["bounds"]
        it = payload["iterator"]
        if payload["partition"].startswith("2d"):
            dom = it.domain
            row_ivals = sorted({r for r, _c in bounds})
            col_ivals = sorted({c for _r, c in bounds})
            self._tile_axis(row_ivals, dom.h, "row", payload)
            self._tile_axis(col_ivals, dom.w, "col", payload)
            expect = [(r, c) for r in row_ivals for c in col_ivals]
            if list(bounds) != expect:
                _fail(
                    "2d partition is not the row-major cross product of "
                    "its row/col intervals",
                    payload,
                )
        else:
            self._tile_axis(list(bounds), it.domain.outer_extent, "outer", payload)
        if len(bounds) != payload["nchunks"]:
            _fail(
                f"{len(bounds)} partition bounds for {payload['nchunks']} chunks",
                payload,
            )

    def _tile_axis(self, ivals, extent: int, axis: str, payload: dict) -> None:
        prev = 0
        for lo, hi in ivals:
            if lo != prev or hi < lo:
                _fail(
                    f"{axis} intervals do not tile [0, {extent}): "
                    f"got {ivals}",
                    payload,
                )
            prev = hi
        if prev != extent:
            _fail(
                f"{axis} intervals cover [0, {prev}) but the domain "
                f"extent is {extent}",
                payload,
            )

    # -- indexed-stream assembly --------------------------------------------

    def _check_indexed(self, payload: dict) -> None:
        """Indexed partitions conserve ``(index, value)`` pairs.

        When the sectioned iterator is an :class:`IndexedIter`, re-slice
        it at the section's own partition bounds: every rank slice must
        hold exactly ``hi - lo`` pairs, and the concatenation of the
        slices' key sets must reproduce the unsliced key set -- strictly
        increasing, no pair lost, duplicated, or reordered.  (This is the
        law a non-monotone gather position array breaks.)
        """
        it = payload["iterator"]
        if not isinstance(it, IndexedIter):
            return
        if payload["partition"].startswith("2d"):
            return
        full = it.key_array()
        if len(full) > 1 and not bool(np.all(full[1:] > full[:-1])):
            _fail(
                "indexed stream's key set is not strictly increasing",
                payload,
            )
        pieces = []
        for lo, hi in payload["bounds"]:
            ks = type(it)(it.idx.slice(lo, hi)).key_array()
            if len(ks) != hi - lo:
                _fail(
                    f"indexed rank slice [{lo}, {hi}) assembles {len(ks)} "
                    f"(index, value) pairs, not {hi - lo}",
                    payload,
                )
            pieces.append(ks)
        assembled = (
            np.concatenate(pieces) if pieces else np.empty(0, dtype=np.int64)
        )
        if not np.array_equal(assembled, full):
            _fail(
                "indexed partition assembly does not conserve pairs: rank "
                f"slices assemble {assembled.tolist()} but the stream's "
                f"key set is {full.tolist()}",
                payload,
            )

    # -- data-plane conservation --------------------------------------------

    def _check_plane(self, payload: dict) -> None:
        ship = payload["ship"]
        record = payload["record"]
        plane = payload["runtime"].plane
        if ship is None:
            if record.data_plane is not None:
                _fail("section has plane stats but planned no shipment", payload)
            return
        s = record.data_plane
        for key, val in s.items():
            if val < 0:
                _fail(f"negative data-plane counter {key}={val}", payload)
        served = (
            s["resident_hits"]
            + s["placements"]
            + s["migrations"]
            + s["cache_hits"]
            + s["cache_misses"]
        )
        if s["requests"] != served:
            _fail(
                f"plane conservation broken: {s['requests']} chunk "
                f"requests but {served} served "
                f"(resident {s['resident_hits']} + placements "
                f"{s['placements']} + migrations {s['migrations']} + "
                f"cache {s['cache_hits']}h/{s['cache_misses']}m)",
                payload,
            )
        if s["placed_bytes"] > s["input_bytes"]:
            _fail(
                f"placed_bytes {s['placed_bytes']} exceeds input_bytes "
                f"{s['input_bytes']}",
                payload,
            )
        cs = plane.cache_stats()
        prev = self._cache_seen.get(id(plane))
        if prev is not None and payload["attempts"] == 1:
            # Exactly this section's planning advanced the cache counters
            # (re-attempt sections plan twice, so only the clean case is
            # exact).
            for key, skey in (("hits", "cache_hits"), ("misses", "cache_misses")):
                delta = cs[key] - prev[key]
                if delta != s[skey]:
                    _fail(
                        f"slice-cache {key} advanced by {delta} but the "
                        f"section planned {s[skey]}",
                        payload,
                    )
        self._cache_seen[id(plane)] = cs

    # -- halo conservation ----------------------------------------------------

    def _check_halo(self, payload: dict) -> None:
        record = payload["record"]
        s = record.data_plane
        if s is not None:
            served = s.get("halo_hits", 0) + s.get("halo_refreshes", 0)
            if s.get("halo_requests", 0) != served:
                _fail(
                    f"halo conservation broken: {s.get('halo_requests', 0)} "
                    f"ghost requests but {served} served "
                    f"({s.get('halo_hits', 0)} hits + "
                    f"{s.get('halo_refreshes', 0)} refreshes)",
                    payload,
                )
        halo = payload.get("halo")
        if halo is None:
            return
        # Stencil sections: the section's ghost traffic can never exceed
        # the interval-arithmetic ceiling (two clamped radius-row ghosts
        # per destination rank).
        bound = halo_bytes_bound(
            halo["radius"], payload["nchunks"], halo["row_nbytes"]
        )
        if s is not None and s.get("halo_bytes", 0) > bound:
            _fail(
                f"halo bytes {s['halo_bytes']} exceed the "
                f"2*radius*ranks*rowbytes ceiling {bound} "
                f"(radius {halo['radius']}, {payload['nchunks']} ranks)",
                payload,
            )
        # Ghost placement liveness: every ghost entry the planner tracks
        # must sit inside its handle's bounds, on a live rank, with its
        # bytes actually present in that rank's store (the section's ops
        # have been applied by the time observers run).
        plane = payload["runtime"].plane
        live = payload.get("survivors", payload["nchunks"])
        for rank, keys in plane.ghost_map().items():
            if rank < 1 or (payload["attempts"] > 1 and rank >= live):
                _fail(
                    f"ghost placements on rank {rank} outside the live "
                    f"set [1, {live})",
                    payload,
                )
            stored = plane.worker_store(rank).cached_keys()
            for key in keys:
                kaid, lo, hi = key
                handle = plane.handles.get(kaid)
                if handle is not None and not (0 <= lo <= hi <= len(handle)):
                    _fail(
                        f"ghost interval [{lo}, {hi}) escapes handle "
                        f"bounds [0, {len(handle)})",
                        payload,
                    )
                if key not in stored:
                    _fail(
                        f"ghost placement {key} on rank {rank} has no "
                        f"backing bytes in the rank store",
                        payload,
                    )

    # -- recovery accounting ------------------------------------------------

    def _check_reshipped(self, payload: dict) -> None:
        rt = payload["runtime"]
        cur = rt.recovery_report.reshipped_bytes
        last = self._reshipped_seen.get(id(rt), 0)
        if cur < last:
            _fail(
                f"reshipped_bytes decreased: {last} -> {cur}",
                payload,
            )
        if cur > last:
            rec = payload["record"].recovery
            if payload["attempts"] <= 1 or rec is None or rec.reexecuted_chunks <= 0:
                _fail(
                    "reshipped_bytes grew without a crash re-execution "
                    f"({last} -> {cur})",
                    payload,
                )
        self._reshipped_seen[id(rt)] = cur

    # -- placement liveness -------------------------------------------------

    def _check_placement(self, payload: dict) -> None:
        rt = payload["runtime"]
        plane = rt.plane
        placement = plane.placement_map()
        # After an elastic shrink, survivors keep shards planned by
        # *earlier* sections, so the live set is the surviving rank
        # count, not this section's (possibly extent-limited) chunk
        # count.  Transient crashes invalidate everything, so for them
        # the two bounds agree.
        live = payload.get("survivors", payload["nchunks"])
        for (rank, aid), (lo, hi) in placement.items():
            if rank < 1:
                _fail(f"placement references rank {rank} (< 1)", payload)
            if payload["attempts"] > 1 and rank >= live:
                _fail(
                    f"placement references rank {rank} but only ranks "
                    f"[0, {live}) survived the crash",
                    payload,
                )
            handle = plane.handles.get(aid)
            if handle is not None and not (0 <= lo <= hi <= len(handle)):
                _fail(
                    f"resident hull [{lo}, {hi}) escapes handle bounds "
                    f"[0, {len(handle)})",
                    payload,
                )


def check_plane(plane) -> None:
    """Standalone structural audit of a :class:`DataPlane` (callable from
    any test, no observer needed)."""
    for (rank, aid), (lo, hi) in plane.placement_map().items():
        if rank < 1:
            raise InvariantViolation(f"placement references rank {rank}")
        handle = plane.handles.get(aid)
        if handle is not None and not (0 <= lo <= hi <= len(handle)):
            raise InvariantViolation(
                f"hull [{lo}, {hi}) escapes handle [0, {len(handle)})"
            )
    cs = plane.cache_stats()
    for key, val in cs.items():
        if val < 0:
            raise InvariantViolation(f"negative cache stat {key}={val}")
    totals = plane.totals
    served = (
        totals["resident_hits"]
        + totals["placements"]
        + totals["migrations"]
        + totals["cache_hits"]
        + totals["cache_misses"]
    )
    if totals["requests"] != served:
        raise InvariantViolation(
            f"plane totals conservation broken: requests "
            f"{totals['requests']} != served {served}"
        )
    halo_served = totals.get("halo_hits", 0) + totals.get("halo_refreshes", 0)
    if totals.get("halo_requests", 0) != halo_served:
        raise InvariantViolation(
            f"halo totals conservation broken: halo_requests "
            f"{totals.get('halo_requests', 0)} != served {halo_served}"
        )
    for rank, keys in plane.ghost_map().items():
        stored = plane.worker_store(rank).cached_keys()
        for key in keys:
            kaid, lo, hi = key
            handle = plane.handles.get(kaid)
            if handle is not None and not (0 <= lo <= hi <= len(handle)):
                raise InvariantViolation(
                    f"ghost interval [{lo}, {hi}) escapes handle "
                    f"[0, {len(handle)})"
                )
            if key not in stored:
                raise InvariantViolation(
                    f"ghost placement {key} on rank {rank} has no backing "
                    f"bytes in the rank store"
                )


@contextmanager
def checking():
    """Install a fresh :class:`InvariantChecker` for the dynamic extent."""
    ck = InvariantChecker()
    with driver.observing_sections(ck):
        yield ck
