"""Seed-driven pipeline generator + plain-Python oracle.

A :class:`Program` is a small AST over the library's own algebra:
sources (1-D arrays, 2-D row iteration, ``outerproduct``, and the four
distributed views -- ``slice_view``/``zip_view``/``transpose_view``/
``segmented_view``, forced on ``case % 19 in (3, 4, 5, 6)`` with NumPy
slicing as their oracle) composed with
``map``/``zip``/``filter``/``concatMap`` and finished by one consumer
(``sum``/``min``/``max``/``count``/``fold``/``histogram``/``collect``/
``build``).  Generation tracks the same constructor transitions the
library performs (Fig. 2 of the paper): map preserves the constructor,
filter/concatMap push indexable inputs to ``IdxNest``, and zipping any
variable-length operand forces the stepper constructors -- so the fuzzer
provably reaches all four of ``IdxFlat``/``IdxNest``/``StepFlat``/
``StepNest``.

Element values are integers 0..9 stored as float64 and every kernel is
integrality-preserving, so all reduction orders are exact and the
differential runner can demand *bit* identity across partitionings.

Everything is derived from ``(seed, case)``: the same pair always yields
the same program, including its data arrays -- that is the replay
contract behind ``python -m repro.testing --seed N --only CASE``.
"""
from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.domains.multi import outerproduct, rows
from repro.core.hints import localpar, par
from repro.core.iterators.reductions import (
    build,
    collect_list,
    count,
    histogram,
    tmax,
    tmin,
    treduce,
    tsum,
)
from repro.core.iterators.indexed import (
    indexed,
    indexed_pairs,
    intersect,
    lookup,
    map_values,
    union_merge,
)
from repro.core.iterators.transforms import concat_map, iterate, tfilter, tmap, tzip
from repro.data.views import (
    segmented_view,
    slice_view,
    transpose_view,
    zip_view,
)
from repro.testing import kernels as K

# Constructor-shape labels (tracked, then asserted by tests/coverage).
IDXFLAT, IDXNEST, STEPFLAT, STEPNEST = (
    "IdxFlat",
    "IdxNest",
    "StepFlat",
    "StepNest",
)

_LENS = [0, 1, 2, 3, 5, 8, 13, 21, 34, 48]
_DIMS = [0, 1, 2, 3, 5, 8]


@dataclass(eq=False)
class Node:
    """One AST node; ``elem``/``shape``/``dom`` mirror the library's
    constructor algebra for the iterator this node builds."""

    op: str  # array | rows | outer | zip | map | filter | concat
    #        # | vslice | vzip | vtranspose | vseg (distributed views)
    arrays: tuple = ()
    params: tuple = ()  # view parameters (slice bounds, segment offsets)
    fn: Any = None  # registered fn / closure (map, filter, concat)
    ref: Any = None  # plain-python form of fn
    label: str = ""
    children: tuple = ()
    elem: str = "num"  # num | pair | row
    shape: str = IDXFLAT
    dom: tuple = ("seq", 0)  # ("seq", n) | ("dim2", h, w)


@dataclass(eq=False)
class Program:
    seed: int
    case: int
    root: Node
    consumer: str
    cargs: tuple = ()
    pipeline: list = field(default_factory=list)  # labels, source->consumer

    def describe(self) -> str:
        chain = " |> ".join(self.pipeline + [self.consumer_label()])
        return f"case {self.case} (seed {self.seed}): {chain} [{self.root.shape}]"

    def consumer_label(self) -> str:
        if self.cargs:
            return f"{self.consumer}{list(self.cargs)}"
        return self.consumer


def _values(data, n: int) -> np.ndarray:
    return data.integers(0, 10, size=n).astype(np.float64)


def _draw_len(rng: random.Random, case: int) -> int:
    # Force the edge domains on fixed residues so every sweep of >=13
    # cases provably exercises empty and single-element sources.
    if case % 13 == 5:
        return 0
    if case % 13 == 6:
        return 1
    return rng.choice(_LENS)


def _view_source(rng: random.Random, data, case: int) -> Node:
    """A forced distributed-view source (case residues 3/4/5/6 mod 19).

    Views are lazy row windows over a base array: under ``--handles``
    paths the planner must ship only the touched intervals, and the
    oracle is plain NumPy slicing either way.  Composition is exercised
    too -- half the slice cases stack a second ``slice_view`` on top.
    """
    kind = case % 19
    if kind == 3:
        n = max(_draw_len(rng, case), 2)
        arr = _values(data, n)
        lo = rng.randrange(0, n + 1)
        hi = rng.randrange(lo, n + 1)
        params = [(lo, hi)]
        label = f"vslice[{lo}:{hi}]"
        if rng.random() < 0.5:
            m = hi - lo
            lo2 = rng.randrange(0, m + 1)
            hi2 = rng.randrange(lo2, m + 1)
            params.append((lo2, hi2))
            label = f"vslice[{lo2}:{hi2}]o{label}"
        return Node(
            op="vslice",
            arrays=(arr,),
            params=tuple(params),
            label=f"{label}of[{n}]",
            elem="num",
            shape=IDXFLAT,
            dom=("seq", params[-1][1] - params[-1][0]),
        )
    if kind == 4:
        na, nb = _draw_len(rng, case), rng.choice(_LENS)
        a, b = _values(data, na), _values(data, nb)
        return Node(
            op="vzip",
            arrays=(a, b),
            label=f"vzip[{na},{nb}]",
            elem="pair",
            shape=IDXFLAT,
            dom=("seq", min(na, nb)),
        )
    if kind == 5:
        h, w = _draw_len(rng, case) % 9, rng.choice([1, 2, 3, 5, 8])
        A = _values(data, h * w).reshape(h, w)
        return Node(
            op="vtranspose",
            arrays=(A,),
            label=f"vtranspose[{h}x{w}]",
            elem="row",
            shape=IDXFLAT,
            dom=("seq", w),
        )
    # kind == 6: variable-length segments.  Segments are ragged, so a
    # row->num map is forced on top (build/collect over ragged rows is
    # not a library shape).
    n = _draw_len(rng, case)
    arr = _values(data, n)
    cuts = sorted(rng.randrange(0, n + 1) for _ in range(rng.randrange(4)))
    offsets = tuple([0] + cuts + [n])
    seg = Node(
        op="vseg",
        arrays=(arr,),
        params=(offsets,),
        label=f"vseg[{len(offsets) - 1}of{n}]",
        elem="row",
        shape=IDXFLAT,
        dom=("seq", len(offsets) - 1),
    )
    fn, ref, label = K.draw_row_map(rng)
    return Node(
        op="map",
        fn=fn,
        ref=ref,
        label=f"{seg.label}|map:{label}",
        children=(seg,),
        elem="num",
        shape=IDXFLAT,
        dom=seg.dom,
    )


def _source(rng: random.Random, data, case: int) -> Node:
    if case % 19 in (3, 4, 5, 6):
        # Forced view coverage (the stepper residues case % 17 in (7, 8)
        # take precedence upstream, which still leaves every view kind
        # multiple residues per 100-case sweep).
        return _view_source(rng, data, case)
    roll = rng.random()
    if roll < 0.55:
        n = _draw_len(rng, case)
        return Node(
            op="array",
            arrays=(_values(data, n),),
            label=f"array[{n}]",
            elem="num",
            shape=IDXFLAT,
            dom=("seq", n),
        )
    if roll < 0.72:
        h, w = _draw_len(rng, case) % 9, rng.choice([1, 2, 3, 5, 8])
        A = _values(data, h * w).reshape(h, w)
        return Node(
            op="rows",
            arrays=(A,),
            label=f"rows[{h}x{w}]",
            elem="row",
            shape=IDXFLAT,
            dom=("seq", h),
        )
    h, w = _draw_len(rng, case) % 9, rng.choice(_DIMS)
    u, v = _values(data, h), _values(data, w)
    return Node(
        op="outer",
        arrays=(u, v),
        label=f"outer[{h}x{w}]",
        elem="pair",
        shape=IDXFLAT,
        dom=("dim2", h, w),
    )


def _filter_shape(shape: str) -> str:
    return {
        IDXFLAT: IDXNEST,
        IDXNEST: IDXNEST,
        STEPFLAT: STEPFLAT,
        STEPNEST: STEPNEST,
    }[shape]


def _concat_shape(shape: str) -> str:
    return {
        IDXFLAT: IDXNEST,
        IDXNEST: IDXNEST,
        STEPFLAT: STEPNEST,
        STEPNEST: STEPNEST,
    }[shape]


def _zip_operand(rng: random.Random, data, case: int, nested: bool) -> Node:
    """A second num pipeline to zip against; ``nested`` forces a
    variable-length operand (so the zip becomes a stepper)."""
    n = _draw_len(rng, case)
    node = Node(
        op="array",
        arrays=(_values(data, n),),
        label=f"array[{n}]",
        elem="num",
        shape=IDXFLAT,
        dom=("seq", n),
    )
    if nested:
        fn, ref, label = K.draw_num_pred(rng)
        node = Node(
            op="filter",
            fn=fn,
            ref=ref,
            label=f"filter:{label}",
            children=(node,),
            elem="num",
            shape=IDXNEST,
            dom=node.dom,
        )
    elif rng.random() < 0.5:
        fn, ref, label = K.draw_num_map(rng)
        node = Node(
            op="map",
            fn=fn,
            ref=ref,
            label=f"map:{label}",
            children=(node,),
            elem="num",
            shape=IDXFLAT,
            dom=node.dom,
        )
    return node


def _forced_stepper(rng: random.Random, data, case: int, nest: bool):
    """A pipeline guaranteed to land on ``StepFlat`` (or ``StepNest``).

    Random composition reaches the stepper constructors only through a
    low-probability chain (zip with a variable-length operand, then --
    for ``StepNest`` -- a pair map followed by a concatMap), so coverage
    of all four constructors is forced on fixed case residues instead of
    hoped for.
    """
    n = _draw_len(rng, case)
    node = Node(
        op="array",
        arrays=(_values(data, n),),
        label=f"array[{n}]",
        elem="num",
        shape=IDXFLAT,
        dom=("seq", n),
    )
    labels = [node.label]
    other = _zip_operand(rng, data, case, nested=True)
    labels.append(f"({other.label})")
    node = Node(
        op="zip",
        children=(node, other),
        label="zip",
        elem="pair",
        shape=STEPFLAT,
        dom=("seq", -1),
    )
    labels.append(node.label)
    if nest:
        fn, ref, label = K.draw_pair_map(rng)
        node = Node(
            op="map",
            fn=fn,
            ref=ref,
            label=f"map:{label}",
            children=(node,),
            elem="num",
            shape=STEPFLAT,
            dom=node.dom,
        )
        labels.append(node.label)
        fn, ref, label = K.draw_expander(rng)
        node = Node(
            op="concat",
            fn=fn,
            ref=ref,
            label=f"concat:{label}",
            children=(node,),
            elem="num",
            shape=STEPNEST,
            dom=node.dom,
        )
        labels.append(node.label)
    return node, labels


# -- indexed streams (case residues 9/10/11/12 mod 23) -----------------------


def _key_set(
    rng: random.Random, lo: int = 0, hi: int = 36, maxlen: int = 9
) -> np.ndarray:
    n = rng.randrange(0, maxlen)
    return np.array(sorted(rng.sample(range(lo, hi), n)), dtype=np.int64)


def _merge_key_sets(rng: random.Random, case: int):
    """Operand index sets forced through the merge edge cases on
    ``case % 7``: empty streams, disjoint sets, identical sets (residue
    4 additionally duplicates source keys -- see ``_ipairs_node``)."""
    scen = case % 7
    if scen == 0:
        return np.empty(0, dtype=np.int64), _key_set(rng), "a-empty"
    if scen == 1:
        return _key_set(rng), np.empty(0, dtype=np.int64), "b-empty"
    if scen == 2:
        ka = _key_set(rng, 0, 18, 7) * 2
        kb = _key_set(rng, 0, 18, 7) * 2 + 1
        return ka, kb, "disjoint"
    if scen == 3:
        ka = _key_set(rng)
        return ka, ka.copy(), "identical"
    return _key_set(rng), _key_set(rng), "overlap"


def _ipairs_node(rng: random.Random, data, keys: np.ndarray, dup: bool) -> Node:
    """An ``indexed_pairs`` source; ``dup`` repeats keys in place so the
    constructor's last-occurrence-wins canonicalization is exercised
    against the oracle's dict semantics."""
    if dup and len(keys):
        reps = np.array([rng.choice([1, 1, 2, 3]) for _ in keys])
        keys = np.repeat(keys, reps)
    vals = _values(data, len(keys))
    label = f"ipairs[{len(keys)}{'+dup' if dup else ''}]"
    return Node(
        op="ipairs",
        arrays=(keys, vals),
        label=label,
        elem="pair",
        shape=IDXFLAT,
        dom=("seq", len(np.unique(keys))),
    )


def _indexed_program(rng: random.Random, data, case: int):
    """A merge-combinator pipeline (``case % 23 in (9, 10, 11, 12)``).

    9 -> ``intersect`` with a drawn combine kernel; 10 -> ``union_merge``
    (default ``+`` half the time); 11 -> ``lookup`` probed with the
    second key set; 12 -> intersect-under-concatMap (the merged stream
    feeding a segmented expander nest).  Elements are ``(key, value)``
    pairs, so the existing pair kernels and consumers apply unchanged.
    """
    kind = case % 23
    dup = case % 7 == 4
    ka, kb, scen = _merge_key_sets(rng, case)
    a = _ipairs_node(rng, data, ka, dup)
    b = _ipairs_node(rng, data, kb, dup)
    if kind != 11 and scen == "overlap" and not dup and rng.random() < 0.3:
        n = _draw_len(rng, case)
        b = Node(
            op="idense",
            arrays=(_values(data, n),),
            label=f"idense[{n}]",
            elem="pair",
            shape=IDXFLAT,
            dom=("seq", n),
        )
    labels = [f"{a.label}&{b.label}({scen})"]

    if kind == 11:
        # b's (possibly duplicated) keys become the probe set, so the
        # probe-side ``np.unique`` canonicalization is exercised too.
        probes = b.arrays[0]
        node = Node(
            op="lookup",
            children=(a,),
            params=(probes,),
            label=f"lookup[{len(probes)}]",
            elem="pair",
            shape=IDXFLAT,
        )
    elif kind == 10:
        if rng.random() < 0.5:
            fn, ref, lbl = K.draw_pair_map(rng)
        else:
            fn, ref, lbl = None, (lambda p: p[0] + p[1]), "add"
        node = Node(
            op="union",
            fn=fn,
            ref=ref,
            children=(a, b),
            label=f"union:{lbl}",
            elem="pair",
            shape=IDXFLAT,
        )
    else:  # 9 and 12 both start from an intersection
        fn, ref, lbl = K.draw_pair_map(rng)
        node = Node(
            op="intersect",
            fn=fn,
            ref=ref,
            children=(a, b),
            label=f"intersect:{lbl}",
            elem="pair",
            shape=IDXFLAT,
        )
    node.dom = ("seq", len(_elements(node)))
    labels.append(node.label)

    if kind == 12:
        fn, ref, lbl = K.draw_pair_map(rng)
        node = Node(
            op="map",
            fn=fn,
            ref=ref,
            label=f"map:{lbl}",
            children=(node,),
            elem="num",
            shape=IDXFLAT,
            dom=node.dom,
        )
        labels.append(node.label)
        fn, ref, lbl = K.draw_expander(rng)
        node = Node(
            op="concat",
            fn=fn,
            ref=ref,
            label=f"concat:{lbl}",
            children=(node,),
            elem="num",
            shape=IDXNEST,
            dom=node.dom,
        )
        labels.append(node.label)
        return node, labels

    if rng.random() < 0.4:
        fn, ref, lbl = K.draw_num_map(rng)
        node = Node(
            op="mapv",
            fn=fn,
            ref=ref,
            label=f"mapv:{lbl}",
            children=(node,),
            elem="pair",
            shape=IDXFLAT,
            dom=node.dom,
        )
        labels.append(node.label)
    if rng.random() < 0.6:
        fn, ref, lbl = K.draw_pair_map(rng)
        node = Node(
            op="map",
            fn=fn,
            ref=ref,
            label=f"map:{lbl}",
            children=(node,),
            elem="num",
            shape=IDXFLAT,
            dom=node.dom,
        )
        labels.append(node.label)
    return node, labels


def generate_program(seed: int, case: int) -> Program:
    rng = random.Random(seed * 1_000_003 + case)
    data = np.random.default_rng([seed, case])

    if case % 23 in (9, 10, 11, 12) and case % 17 not in (7, 8):
        # Forced indexed-stream coverage (steppers keep precedence; the
        # view residues lose a few cases but keep several per sweep).
        node, labels = _indexed_program(rng, data, case)
        consumer, cargs = _draw_consumer(rng, node)
        if consumer == "hist":
            fn, ref, label = K.bin_kernel(cargs[0])
            node = Node(
                op="map",
                fn=fn,
                ref=ref,
                label=f"map:{label}",
                children=(node,),
                elem="num",
                shape=node.shape,
                dom=node.dom,
            )
            labels.append(node.label)
        return Program(
            seed=seed,
            case=case,
            root=node,
            consumer=consumer,
            cargs=cargs,
            pipeline=labels,
        )

    if case % 17 in (7, 8):
        node, labels = _forced_stepper(rng, data, case, nest=case % 17 == 7)
        consumer, cargs = _draw_consumer(rng, node)
        if consumer == "hist":
            fn, ref, label = K.bin_kernel(cargs[0])
            node = Node(
                op="map",
                fn=fn,
                ref=ref,
                label=f"map:{label}",
                children=(node,),
                elem="num",
                shape=node.shape,
                dom=node.dom,
            )
            labels.append(node.label)
        return Program(
            seed=seed,
            case=case,
            root=node,
            consumer=consumer,
            cargs=cargs,
            pipeline=labels,
        )

    node = _source(rng, data, case)
    labels = [node.label]
    zipped = False

    for _ in range(rng.randrange(4)):
        if node.elem == "row":
            fn, ref, label = K.draw_row_map(rng)
            node = Node(
                op="map",
                fn=fn,
                ref=ref,
                label=f"map:{label}",
                children=(node,),
                elem="num",
                shape=node.shape,
                dom=node.dom,
            )
        elif node.elem == "pair":
            if rng.random() < 0.6:
                fn, ref, label = K.draw_pair_map(rng)
                node = Node(
                    op="map",
                    fn=fn,
                    ref=ref,
                    label=f"map:{label}",
                    children=(node,),
                    elem="num",
                    shape=node.shape,
                    dom=node.dom,
                )
            else:
                fn, ref, label = K.draw_pair_pred(rng)
                node = Node(
                    op="filter",
                    fn=fn,
                    ref=ref,
                    label=f"filter:{label}",
                    children=(node,),
                    elem="pair",
                    shape=_filter_shape(node.shape),
                    dom=node.dom,
                )
        else:  # num
            roll = rng.random()
            if (
                roll < 0.12
                and not zipped
                and node.dom[0] == "seq"
            ):
                nested = rng.random() < 0.35
                other = _zip_operand(rng, data, case, nested)
                labels.append(f"({other.label})")
                if node.shape == IDXFLAT and other.shape == IDXFLAT:
                    shape = IDXFLAT
                    dom = ("seq", min(node.dom[1], other.dom[1]))
                else:
                    shape = STEPFLAT
                    dom = ("seq", -1)  # extent unknown to the partitioner
                node = Node(
                    op="zip",
                    children=(node, other),
                    label="zip",
                    elem="pair",
                    shape=shape,
                    dom=dom,
                )
                zipped = True
            elif roll < 0.45:
                fn, ref, label = K.draw_num_map(rng)
                node = Node(
                    op="map",
                    fn=fn,
                    ref=ref,
                    label=f"map:{label}",
                    children=(node,),
                    elem="num",
                    shape=node.shape,
                    dom=node.dom,
                )
            elif roll < 0.72:
                fn, ref, label = K.draw_num_pred(rng)
                node = Node(
                    op="filter",
                    fn=fn,
                    ref=ref,
                    label=f"filter:{label}",
                    children=(node,),
                    elem="num",
                    shape=_filter_shape(node.shape),
                    dom=node.dom,
                )
            else:
                fn, ref, label = K.draw_expander(rng)
                node = Node(
                    op="concat",
                    fn=fn,
                    ref=ref,
                    label=f"concat:{label}",
                    children=(node,),
                    elem="num",
                    shape=_concat_shape(node.shape),
                    dom=node.dom,
                )
        labels.append(node.label)

    # Pick a consumer legal for the final element type.
    consumer, cargs = _draw_consumer(rng, node)
    if consumer == "hist":
        fn, ref, label = K.bin_kernel(cargs[0])
        node = Node(
            op="map",
            fn=fn,
            ref=ref,
            label=f"map:{label}",
            children=(node,),
            elem="num",
            shape=node.shape,
            dom=node.dom,
        )
        labels.append(node.label)

    return Program(
        seed=seed,
        case=case,
        root=node,
        consumer=consumer,
        cargs=cargs,
        pipeline=labels,
    )


def _draw_consumer(rng: random.Random, node: Node) -> tuple[str, tuple]:
    if node.elem == "num":
        c = rng.choice(
            ["sum", "sum", "min", "max", "count", "fold", "hist", "collect", "build"]
        )
        if c == "hist":
            return "hist", (rng.randrange(3, 9),)
        return c, ()
    if node.elem == "pair":
        return rng.choice(["count", "collect", "build"]), ()
    # rows: reduce over array elements is ambiguous; stick to shape-safe
    # consumers (generation appends a row->num map most of the time).
    return rng.choice(["count", "build"]), ()


# -- building the real iterator ---------------------------------------------


def build_iter(program: Program, distribute=None, hint: str | None = None):
    """Construct the library iterator for *program*.

    ``distribute`` is ``rt.distribute`` (or None): source ndarrays become
    resident DistArray handles, exercising the data plane.  ``hint`` is
    None, ``"par"`` or ``"localpar"``.
    """
    it = _build_node(program.root, distribute)
    if hint == "par":
        it = par(it)
    elif hint == "localpar":
        it = localpar(it)
    return it


def _build_node(node: Node, dist):
    if node.op == "array":
        src = dist(node.arrays[0]) if dist is not None else node.arrays[0]
        return iterate(src)
    if node.op == "rows":
        src = dist(node.arrays[0]) if dist is not None else node.arrays[0]
        return rows(src)
    if node.op == "outer":
        u, v = node.arrays
        if dist is not None:
            u, v = dist(u), dist(v)
        return outerproduct(u, v)
    if node.op == "vslice":
        src = dist(node.arrays[0]) if dist is not None else node.arrays[0]
        for lo, hi in node.params:
            src = slice_view(src, lo, hi)
        return iterate(src)
    if node.op == "vzip":
        a, b = node.arrays
        if dist is not None:
            a, b = dist(a), dist(b)
        return iterate(zip_view(a, b))
    if node.op == "vtranspose":
        src = dist(node.arrays[0]) if dist is not None else node.arrays[0]
        return iterate(transpose_view(src))
    if node.op == "vseg":
        src = dist(node.arrays[0]) if dist is not None else node.arrays[0]
        return iterate(segmented_view(src, node.params[0]))
    if node.op == "zip":
        return tzip(
            _build_node(node.children[0], dist),
            _build_node(node.children[1], dist),
        )
    if node.op == "ipairs":
        # Keys stay driver-side (merges materialize them eagerly anyway);
        # only the value array rides the data plane.
        keys, vals = node.arrays
        src = dist(vals) if dist is not None else vals
        return indexed_pairs(keys, src)
    if node.op == "idense":
        src = dist(node.arrays[0]) if dist is not None else node.arrays[0]
        return indexed(src)
    if node.op == "intersect":
        return intersect(
            _build_node(node.children[0], dist),
            _build_node(node.children[1], dist),
            combine=node.fn,
        )
    if node.op == "union":
        return union_merge(
            _build_node(node.children[0], dist),
            _build_node(node.children[1], dist),
            combine=node.fn,
        )
    child = _build_node(node.children[0], dist)
    if node.op == "lookup":
        return lookup(child, node.params[0])
    if node.op == "mapv":
        return map_values(node.fn, child)
    if node.op == "map":
        return tmap(node.fn, child)
    if node.op == "filter":
        return tfilter(node.fn, child)
    if node.op == "concat":
        return concat_map(node.fn, child)
    raise ValueError(f"unknown node op: {node.op!r}")


def run_consumer(program: Program, it) -> Any:
    c = program.consumer
    if c == "sum":
        return tsum(it)
    if c == "min":
        return tmin(it)
    if c == "max":
        return tmax(it)
    if c == "count":
        return count(it)
    if c == "fold":
        return treduce(K.k_fold, 0.0, it, bulk=K.k_fold_bulk, combine=K.k_merge)
    if c == "hist":
        return histogram(program.cargs[0], it)
    if c == "collect":
        return collect_list(it)
    if c == "build":
        return build(it)
    raise ValueError(f"unknown consumer: {c!r}")


# -- the oracle --------------------------------------------------------------


def _elements(node: Node) -> list:
    if node.op == "array":
        return [float(v) for v in node.arrays[0]]
    if node.op == "rows":
        A = node.arrays[0]
        return [A[i] for i in range(A.shape[0])]
    if node.op == "outer":
        u, v = node.arrays
        return [(float(a), float(b)) for a in u for b in v]
    if node.op == "vslice":
        arr = node.arrays[0]
        for lo, hi in node.params:
            arr = arr[lo:hi]
        return [float(v) for v in arr]
    if node.op == "vzip":
        a, b = node.arrays
        return [(float(x), float(y)) for x, y in zip(a, b)]
    if node.op == "vtranspose":
        A = node.arrays[0]
        return [A[:, j] for j in range(A.shape[1])]
    if node.op == "vseg":
        arr, offs = node.arrays[0], node.params[0]
        return [arr[offs[i]:offs[i + 1]] for i in range(len(offs) - 1)]
    if node.op == "zip":
        return list(
            zip(_elements(node.children[0]), _elements(node.children[1]))
        )
    if node.op == "ipairs":
        keys, vals = node.arrays
        d = {}
        for k, v in zip(keys, vals):  # last-occurrence wins
            d[int(k)] = float(v)
        return [(k, d[k]) for k in sorted(d)]
    if node.op == "idense":
        return [(i, float(v)) for i, v in enumerate(node.arrays[0])]
    if node.op == "intersect":
        da = dict(_elements(node.children[0]))
        db = dict(_elements(node.children[1]))
        return [
            (k, node.ref((da[k], db[k]))) for k in sorted(da.keys() & db.keys())
        ]
    if node.op == "union":
        da = dict(_elements(node.children[0]))
        db = dict(_elements(node.children[1]))
        out = []
        for k in sorted(da.keys() | db.keys()):
            if k in da and k in db:
                out.append((k, node.ref((da[k], db[k]))))
            else:
                out.append((k, da[k] if k in da else db[k]))
        return out
    if node.op == "lookup":
        d = dict(_elements(node.children[0]))
        probes = sorted({int(k) for k in node.params[0]})
        return [(k, d[k]) for k in probes if k in d]
    xs = _elements(node.children[0])
    if node.op == "mapv":
        return [(k, node.ref(v)) for k, v in xs]
    if node.op == "map":
        return [node.ref(x) for x in xs]
    if node.op == "filter":
        return [x for x in xs if node.ref(x)]
    if node.op == "concat":
        return [float(y) for x in xs for y in node.ref(x)]
    raise ValueError(f"unknown node op: {node.op!r}")


def ref_value(program: Program) -> Any:
    """Plain-Python evaluation -- the semantic oracle for every path."""
    xs = _elements(program.root)
    c = program.consumer
    if c == "sum":
        acc = 0.0
        for x in xs:
            acc = acc + x
        return acc
    if c == "min":
        acc = np.inf
        for x in xs:
            acc = min(acc, x)
        return acc
    if c == "max":
        acc = -np.inf
        for x in xs:
            acc = max(acc, x)
        return acc
    if c == "count":
        return len(xs)
    if c == "fold":
        acc = 0.0
        for x in xs:
            acc = acc + 2.0 * x
        return acc
    if c == "hist":
        hist = np.zeros(program.cargs[0], dtype=np.float64)
        for x in xs:
            hist[x] += 1
        return hist
    if c == "collect":
        return xs
    if c == "build":
        arr = np.asarray(xs)
        root = program.root
        if (
            root.shape == IDXFLAT
            and root.dom[0] == "dim2"
            and arr.ndim >= 1
            and arr.shape[0] == root.dom[1] * root.dom[2]
        ):
            return arr.reshape(root.dom[1], root.dom[2], *arr.shape[1:])
        return arr
    raise ValueError(f"unknown consumer: {c!r}")
