"""CLI for the differential pipeline fuzzer.

Usage::

    PYTHONPATH=src python -m repro.testing --seed 0 --cases 100
    PYTHONPATH=src python -m repro.testing --seed 0 --cases 18 --only 17

Exit code 0 when every case (and the deterministic crash drill) passes,
1 otherwise.  On failure each failing case prints its pipeline, the
specific checks that failed, and a copy-pasteable replay line; pass
``--out FILE`` to also write the replay lines to a file (CI uploads it
as the failure artifact).
"""
from __future__ import annotations

import argparse
import sys

from repro.testing.runner import run_suite


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.testing",
        description="Differential pipeline fuzzer: generated Iter programs "
        "run through scalar, vectorized, and distributed(+handles, +faults) "
        "paths with bit-identity and invariant checks.",
    )
    parser.add_argument("--seed", type=int, default=0, help="base seed")
    parser.add_argument(
        "--cases", type=int, default=50, help="number of generated cases"
    )
    parser.add_argument(
        "--only",
        type=int,
        default=None,
        help="run a single case index (failure replay)",
    )
    parser.add_argument(
        "--fail-fast", action="store_true", help="stop at the first failure"
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-case progress"
    )
    parser.add_argument(
        "--out",
        default=None,
        help="write failing-case replay lines to this file",
    )
    args = parser.parse_args(argv)

    def progress(r):
        if args.quiet:
            return
        mark = "ok  " if r.ok else "FAIL"
        crash = " [crash-reexec]" if r.crash_exercised else ""
        print(f"  {mark} {r.desc}{crash}", flush=True)

    suite = run_suite(
        args.seed,
        args.cases,
        only=args.only,
        fail_fast=args.fail_fast,
        progress=progress,
    )

    print(suite.summary())
    repro_lines = []
    for r in suite.failures:
        print(f"\nFAIL {r.desc}")
        for f in r.failures:
            print(f"  - {f}")
        line = r.repro_line()
        repro_lines.append(f"{line}  # {r.desc}")
        print(f"  replay: {line}")
    if args.only is None and not suite.crash_exercised:
        print("ERROR: no case exercised crash re-execution")
        return 1
    if args.out and repro_lines:
        with open(args.out, "w") as fh:
            fh.write("\n".join(repro_lines) + "\n")
        print(f"replay lines written to {args.out}")
    return 0 if suite.ok else 1


if __name__ == "__main__":
    sys.exit(main())
