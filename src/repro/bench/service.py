"""Benchmark of the resident job service: what sharing buys a stream.

A mixed mriq/sgemm/tpacf/cutcp job stream from two tenants runs against
one resident :class:`~repro.service.JobServer` at 1/2/4 ranks.  The
interesting numbers are the *cross-job* ones, which a one-shot runtime
cannot have at all:

* ``plan_hits`` -- fusion-plan cache hits landed by repeat jobs (their
  ``compiled`` is 0: every structure was compiled by the first wave);
* ``zero_ship_rate`` -- fraction of repeat jobs that shipped zero input
  bytes (their datasets were already resident, registration dedupe
  mapped re-distributed arrays onto the resident handles);
* throughput (wall jobs/sec) and p50/p99 job latency (virtual seconds,
  submission to completion, so queueing under fair-share is included).

Correctness is checked the same way as everywhere else in the bench
suite: each app's served value must be bit-identical to a solo run on a
fresh one-shot runtime sharing nothing.

``python -m repro.bench --service`` runs this and writes
``BENCH_service.json``.
"""
from __future__ import annotations

import json
import platform
import time
from typing import Any

import numpy as np

from repro.bench.calibrate import costs_for
from repro.bench.harness import APPS, make_problem
from repro.cluster.machine import PAPER_MACHINE
from repro.service import (
    JobServer,
    cutcp_job,
    mriq_job,
    run_solo,
    sgemm_job,
    tpacf_job,
)

#: the mixed stream's apps, in submission order within each wave
STREAM_APPS = ("mriq", "sgemm", "tpacf", "cutcp")
RANK_COUNTS = (1, 2, 4)
CORES_PER_NODE = 2
#: waves per app: wave 0 is cold, waves 1+ are the repeat jobs
WAVES = 3
TENANTS = (("alpha", 1.0), ("beta", 2.0))


def _bit_identical(a: Any, b: Any) -> bool:
    if isinstance(a, dict):
        return set(a) == set(b) and all(_bit_identical(a[k], b[k]) for k in a)
    return np.asarray(a).tobytes() == np.asarray(b).tobytes()


def _job_factories(problems: dict):
    return {
        "mriq": lambda: mriq_job(problems["mriq"]),
        "sgemm": lambda: sgemm_job(problems["sgemm"]),
        "tpacf": lambda: tpacf_job(problems["tpacf"]),
        "cutcp": lambda: cutcp_job(problems["cutcp"]),
    }


def bench_ranks(nodes: int, problems: dict, app_costs: dict) -> dict:
    """One rank-count cell: the full mixed stream on a fresh server."""
    machine = PAPER_MACHINE.scaled(nodes=nodes,
                                   cores_per_node=CORES_PER_NODE)
    factories = _job_factories(problems)
    srv = JobServer(machine)
    for name, weight in TENANTS:
        srv.add_tenant(name, weight=weight)

    handles = []
    for wave in range(WAVES):
        for i, app in enumerate(STREAM_APPS):
            tenant = TENANTS[(wave + i) % len(TENANTS)][0]
            h = srv.submit(
                factories[app](),
                tenant=tenant,
                name=f"{app}-w{wave}",
                costs=app_costs[app],
            )
            handles.append((app, wave, h))

    t0 = time.perf_counter()
    srv.drain()
    wall = time.perf_counter() - t0

    # correctness: the served value of each app == a solo run's value
    identical = True
    for app in STREAM_APPS:
        first = next(h for a, _, h in handles if a == app)
        solo, _ = run_solo(factories[app](), machine, costs=app_costs[app])
        identical = identical and _bit_identical(first.result(), solo)

    latencies = np.array([h.latency for _, _, h in handles])
    repeats = [h for _, wave, h in handles if wave > 0]
    zero_ship = sum(
        1 for h in repeats if h.metrics["plane"]["input_bytes"] == 0
    )
    plan_hits = sum(h.metrics["planner"]["hits"] for h in repeats)
    recompiles = sum(h.metrics["planner"]["compiled"] for h in repeats)
    cache_hits = sum(h.metrics["slice_cache_hits"] for h in repeats)
    dedup_hits = sum(h.metrics["plane"]["dedup_hits"] for h in repeats)
    resident_hits = sum(
        h.metrics["plane"]["resident_hits"] for h in repeats
    )
    return {
        "ranks": nodes,
        "cores_per_node": CORES_PER_NODE,
        "jobs": len(handles),
        "wall_seconds": wall,
        "jobs_per_second": len(handles) / wall if wall > 0 else float("inf"),
        "latency_p50_virtual": float(np.percentile(latencies, 50)),
        "latency_p99_virtual": float(np.percentile(latencies, 99)),
        "virtual_seconds_total": srv.now,
        "repeat_jobs": len(repeats),
        "plan_hits": plan_hits,
        "plan_recompiles": recompiles,
        "slice_cache_hits": cache_hits,
        "dedup_hits": dedup_hits,
        "resident_hits": resident_hits,
        "zero_ship_jobs": zero_ship,
        "zero_ship_rate": zero_ship / len(repeats) if repeats else 0.0,
        "bit_identical_to_solo": identical,
        "tenants": srv.tenant_report(),
    }


def run_service_bench(rank_counts: tuple[int, ...] = RANK_COUNTS) -> dict:
    problems = {app: make_problem(app) for app in STREAM_APPS}
    app_costs = {
        app: costs_for(app, "triolet", problems[app])
        for app in STREAM_APPS
    }
    cells = [bench_ranks(n, problems, app_costs) for n in rank_counts]
    return {
        "bench": "service",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "stream": {
            "apps": list(STREAM_APPS),
            "waves": WAVES,
            "tenants": [{"name": n, "weight": w} for n, w in TENANTS],
            "params": {app: APPS[app].sandbox_params
                       for app in STREAM_APPS},
        },
        "cells": cells,
        "ok": all(
            c["bit_identical_to_solo"]
            and c["plan_hits"] > 0
            and c["plan_recompiles"] == 0
            and c["zero_ship_rate"] == 1.0
            for c in cells
        ),
    }


def render(payload: dict) -> str:
    lines = [
        "service bench -- mixed "
        + "/".join(payload["stream"]["apps"])
        + f" stream, {payload['stream']['waves']} waves, "
        + f"{len(payload['stream']['tenants'])} tenants"
    ]
    lines.append(
        f"{'ranks':>6} {'jobs/s':>8} {'p50(v)':>10} {'p99(v)':>10} "
        f"{'plan hits':>10} {'zero-ship':>10} {'identical':>10}"
    )
    for c in payload["cells"]:
        lines.append(
            f"{c['ranks']:>6} {c['jobs_per_second']:>8.2f} "
            f"{c['latency_p50_virtual']:>10.4f} "
            f"{c['latency_p99_virtual']:>10.4f} "
            f"{c['plan_hits']:>10} "
            f"{c['zero_ship_rate']:>10.0%} "
            f"{str(c['bit_identical_to_solo']):>10}"
        )
    lines.append(f"ok={payload['ok']}")
    return "\n".join(lines)


def write_json(payload: dict, path: str) -> None:
    with open(path, "w") as f:
        json.dump(payload, f, indent=2, default=str)
        f.write("\n")
