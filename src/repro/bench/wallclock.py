"""Wall-clock benchmark of the bulk execution engine.

Unlike the rest of :mod:`repro.bench` -- which reports *virtual* seconds
from the calibrated cost model -- this module measures real wall-clock
time of the Triolet runner with the vectorized engine on vs. off, and
verifies on the way that vectorization is unobservable except in wall
time: bit-identical values, identical cost-meter counters, identical
virtual makespans and byte counts.

The problem sizes here are larger than the figure-regeneration sandbox
sizes and deliberately shaped so the scalar path's per-element Python
dispatch dominates (short inner vectors, many outer elements, wide
histograms).  The simulated machine uses one core per node: wall-clock
benchmarking wants the work-stealing model's task splitting to keep bulk
chunks large, whereas the virtual figures keep the paper's 16 cores.

``python -m repro.bench --json`` runs this and writes ``BENCH_apps.json``.
"""
from __future__ import annotations

import json
import platform
import time
from dataclasses import asdict
from typing import Any

import numpy as np

from repro.bench.calibrate import costs_for
from repro.bench.harness import APPS
from repro.cluster.machine import PAPER_MACHINE
from repro.core.engine import use_vectorization
from repro.core.fusion import planner_stats, reset_planner
from repro.serial import copy_stats, reset_copy_stats

#: engine-bench instances: many outer elements, short inner vectors.
BENCH_PARAMS: dict[str, dict] = {
    "mriq": dict(npix=32768, nk=64, seed=11),
    "sgemm": dict(n=160, seed=11),
    "tpacf": dict(m=128, nr=96, nbins=2048, seed=11),
    "cutcp": dict(na=20000, grid=(48, 48, 48), cutoff=2.0, seed=11),
}

BENCH_NODES = (1, 2)
CORES_PER_NODE = 1


def _bit_identical(a: Any, b: Any) -> bool:
    """Bitwise equality of run values (arrays or dicts of arrays)."""
    if isinstance(a, dict):
        return set(a) == set(b) and all(_bit_identical(a[k], b[k]) for k in a)
    return np.asarray(a).tobytes() == np.asarray(b).tobytes()


def _timed_run(app: str, problem, nodes: int, vectorize: bool):
    """One timed run with fresh per-run counters, so every cell's plan
    cache, serialization copies, and data-plane stats are deltas for
    *this* run rather than accumulations over the whole bench sweep."""
    spec = APPS[app]
    machine = PAPER_MACHINE.scaled(nodes=nodes, cores_per_node=CORES_PER_NODE)
    costs = costs_for(app, "triolet", problem)
    reset_planner()
    reset_copy_stats()
    with use_vectorization(vectorize):
        t0 = time.perf_counter()
        run = spec.runners["triolet"](problem, machine, costs)
        wall = time.perf_counter() - t0
    return wall, run, copy_stats()


def bench_app(app: str, nodes: int) -> dict:
    """One (app, node count) cell: vectorized vs. scalar, with parity."""
    problem = APPS[app].make_problem(**BENCH_PARAMS[app])
    wall_vec, run_vec, copies_vec = _timed_run(app, problem, nodes,
                                               vectorize=True)
    stats = planner_stats()
    wall_scalar, run_scalar, copies_scalar = _timed_run(app, problem, nodes,
                                                        vectorize=False)
    meter_vec = run_vec.detail["meter"]
    meter_scalar = run_scalar.detail["meter"]
    plane_vec = run_vec.detail.get("data_plane")
    plane_scalar = run_scalar.detail.get("data_plane")
    return {
        "app": app,
        "nodes": nodes,
        "params": {k: list(v) if isinstance(v, tuple) else v
                   for k, v in BENCH_PARAMS[app].items()},
        "wall_seconds_vectorized": wall_vec,
        "wall_seconds_scalar": wall_scalar,
        "speedup": wall_scalar / wall_vec,
        "virtual_seconds": run_vec.elapsed,
        "virtual_seconds_equal": run_vec.elapsed == run_scalar.elapsed,
        "bytes_shipped": run_vec.bytes_shipped,
        "bytes_shipped_equal": run_vec.bytes_shipped == run_scalar.bytes_shipped,
        "value_bit_identical": _bit_identical(run_vec.value, run_scalar.value),
        "meter": asdict(meter_vec),
        "meter_equal": meter_vec == meter_scalar,
        "plan_cache": asdict(stats),
        "serial_copies": copies_vec,
        "serial_copies_equal": copies_vec == copies_scalar,
        "data_plane": plane_vec,
        "data_plane_equal": plane_vec == plane_scalar,
    }


def measure_obs_overhead(app: str = "sgemm", nodes: int = 2,
                         repeats: int = 5) -> dict:
    """Wall-clock cost of observability: capture on vs. off, best-of-N.

    The ``python -m repro.obs regress`` gate (and the obs test tier)
    asserts ``overhead`` stays under 5%: the span tracer must be
    genuinely zero-cost when disabled and near-free when enabled.
    """
    from repro.obs.runapp import capture_app, plain_app

    params = BENCH_PARAMS[app]

    def best(fn) -> float:
        walls = []
        for _ in range(repeats):
            reset_planner()
            reset_copy_stats()
            t0 = time.perf_counter()
            fn(app, nodes, params=params)
            walls.append(time.perf_counter() - t0)
        return min(walls)

    wall_off = best(lambda *a, **kw: plain_app(*a, **kw))
    wall_on = best(lambda *a, **kw: capture_app(*a, **kw))
    return {
        "app": app,
        "nodes": nodes,
        "repeats": repeats,
        "wall_seconds_off": wall_off,
        "wall_seconds_on": wall_on,
        "overhead": max(0.0, wall_on / wall_off - 1.0),
    }


def run_bench(
    apps: tuple[str, ...] = ("mriq", "sgemm", "tpacf", "cutcp"),
    node_counts: tuple[int, ...] = BENCH_NODES,
) -> dict:
    """The full wall-clock dataset (the ``BENCH_apps.json`` payload)."""
    results = [bench_app(app, nodes) for app in apps for nodes in node_counts]
    return {
        "benchmark": "bulk-execution-engine wall clock",
        "cores_per_node": CORES_PER_NODE,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "results": results,
        "obs_overhead": measure_obs_overhead(),
    }


def write_json(payload: dict, path: str) -> None:
    with open(path, "w") as f:
        json.dump(payload, f, indent=2)
        f.write("\n")


def render(payload: dict) -> str:
    lines = [
        "Bulk engine wall clock (vectorized vs. scalar Triolet runner)",
        f"{'app':<8}{'nodes':>6}{'vec s':>10}{'scalar s':>10}"
        f"{'speedup':>9}  parity",
    ]
    for r in payload["results"]:
        parity = (
            "ok"
            if r["value_bit_identical"]
            and r["meter_equal"]
            and r["virtual_seconds_equal"]
            and r["bytes_shipped_equal"]
            and r["data_plane_equal"]
            else "MISMATCH"
        )
        lines.append(
            f"{r['app']:<8}{r['nodes']:>6}"
            f"{r['wall_seconds_vectorized']:>10.3f}"
            f"{r['wall_seconds_scalar']:>10.3f}"
            f"{r['speedup']:>8.1f}x  {parity}"
        )
    obs = payload.get("obs_overhead")
    if obs is not None:
        lines.append(
            f"observability overhead ({obs['app']}@{obs['nodes']}): "
            f"{obs['overhead'] * 100:.2f}% "
            f"({obs['wall_seconds_off']:.3f}s off, "
            f"{obs['wall_seconds_on']:.3f}s on)"
        )
    return "\n".join(lines)
