"""The recovery bench cell: completion and makespan overhead under an
escalating permanent-loss schedule (the durable-recovery counterpart of
the paper's failure narrative in §4.2-4.3).

Every app runs on 4 nodes under 0, 1 and 2 permanent rank losses
(:class:`~repro.cluster.faults.RankLoss`), three ways:

* ``lineage`` -- the default elastic-shrink path: survivors keep their
  resident shards and only the lost rank's slice chain is replayed;
* ``invalidate`` -- the legacy path (``lineage_recovery=False``): a loss
  drops all placement and every shard re-materializes from the master
  copy.  Comparing ``reshipped_bytes`` against ``lineage`` is the cell's
  point: selective replay must ship strictly fewer bytes;
* ``eden`` -- the baseline.  Eden has no recovery subsystem at all (no
  retry, no re-execution, no shrink), so any permanent loss aborts the
  job; only the fault-free row completes.

A separate checkpoint cell exercises driver-level restart: each app runs
with checkpointing on and *no* in-run recovery policy, dies on a gated
mid-job loss, and :func:`~repro.runtime.checkpoint.run_restartable`
re-runs it -- sections already durable restore instead of executing.

``identical`` is bitwise equality with the fault-free run.  cutcp's
histogram merge is order-sensitive at the last ulp under *any*
re-partition (the pre-existing transient-crash path deviates by the same
amount), so the cell reports ``correct`` (allclose vs. the sequential
reference) separately.
"""
from __future__ import annotations

import json
from dataclasses import asdict, dataclass

import numpy as np

from repro.bench.calibrate import costs_for
from repro.bench.harness import APPS, make_problem
from repro.cluster.faults import FaultPlan, RankFailure, RankLoss
from repro.cluster.machine import PAPER_MACHINE
from repro.runtime import (
    CheckpointConfig,
    CheckpointStore,
    FailureBudget,
    JobFailure,
    RecoveryPolicy,
)

__all__ = [
    "RecoveryCell",
    "run_recovery_bench",
    "render",
    "write_json",
    "write_recovered_trace",
]

#: the escalating fault schedule: permanent losses injected per run.
ESCALATION = (0, 1, 2)
NODES = 4
CORES_PER_NODE = 16

BENCH_APPS = ("mriq", "sgemm", "tpacf", "cutcp")


@dataclass
class RecoveryCell:
    """One (app, loss count, recovery mode) cell of the bench."""

    app: str
    losses: int
    mode: str  # "lineage" | "invalidate" | "eden"
    completed: bool
    correct: bool = False
    identical: bool = False  # bitwise vs. the fault-free run
    elapsed: float = float("inf")
    overhead: float = 0.0  # makespan overhead vs. fault-free (fraction)
    rank_losses: int = 0
    reshipped_bytes: int = 0
    lineage_replays: int = 0
    replayed_bytes: int = 0
    shrink_migrations: int = 0
    failed: str | None = None


@dataclass
class CheckpointCell:
    """One app's restart-from-checkpoint outcome."""

    app: str
    completed: bool
    identical: bool = False
    restarts: int = 0
    checkpoints: int = 0
    checkpoint_bytes: int = 0
    restores: int = 0
    restored_bytes: int = 0
    failed: str | None = None


def _bit_identical(a, b) -> bool:
    if a is None or b is None:
        return False
    if isinstance(a, dict):
        return set(a) == set(b) and all(
            np.asarray(a[k]).tobytes() == np.asarray(b[k]).tobytes() for k in b
        )
    return np.asarray(a).tobytes() == np.asarray(b).tobytes()


def _loss_plan(nlosses: int, at: float) -> FaultPlan:
    """The escalating schedule: losses staggered in virtual time so each
    fires against the already-shrunken machine (rank ids renumber)."""
    return FaultPlan(
        faults=tuple(
            RankLoss(rank=1 + i, at=at * (1.0 + 0.25 * i))
            for i in range(nlosses)
        )
    )


def _run_triolet_cell(app: str, spec, p, costs, machine, clean,
                      nlosses: int, at: float, mode: str) -> RecoveryCell:
    recovery = (
        RecoveryPolicy()
        if mode == "lineage"
        else RecoveryPolicy(lineage_recovery=False)
    )
    budget = FailureBudget(max_rank_losses=machine.nodes - 1)
    try:
        run = spec.runners["triolet"](
            p, machine, costs,
            faults=_loss_plan(nlosses, at) if nlosses else None,
            recovery=recovery,
            budget=budget,
        )
    except Exception as exc:  # noqa: BLE001 - a failed cell is a result
        return RecoveryCell(app=app, losses=nlosses, mode=mode,
                            completed=False, failed=repr(exc))
    rep = run.detail.get("recovery")
    cell = RecoveryCell(
        app=app,
        losses=nlosses,
        mode=mode,
        completed=run.ok,
        correct=spec.same_value(run.value, clean["reference"]),
        identical=_bit_identical(run.value, clean["value"]),
        elapsed=run.elapsed,
        overhead=run.elapsed / clean["elapsed"] - 1.0,
        failed=run.failed,
    )
    if rep is not None:
        cell.rank_losses = rep.rank_losses
        cell.reshipped_bytes = rep.reshipped_bytes
        cell.lineage_replays = rep.lineage_replays
        cell.replayed_bytes = rep.replayed_bytes
        cell.shrink_migrations = rep.shrink_migrations
    return cell


def _run_eden_cell(app: str, spec, p, costs, machine, clean,
                   nlosses: int) -> RecoveryCell:
    if nlosses > 0:
        # Eden has no failure recovery of any kind: a permanently lost
        # rank takes its processes' partial results with it and the job
        # aborts.  There is nothing to run.
        return RecoveryCell(
            app=app, losses=nlosses, mode="eden", completed=False,
            failed="no recovery path: a lost rank aborts the job",
        )
    run = spec.runners["eden"](p, machine, costs)
    return RecoveryCell(
        app=app, losses=0, mode="eden",
        completed=run.ok,
        correct=run.ok and spec.same_value(run.value, clean["reference"]),
        identical=False,
        elapsed=run.elapsed,
        overhead=0.0,
        failed=run.failed,
    )


def _checkpoint_cell(app: str, spec, p, costs, machine, clean) -> CheckpointCell:
    """Driver-level restart: kill the job mid-run with *no* in-run
    recovery, then re-run against the same durable store.

    The app runners manage their own runtime context, so the restart
    loop lives at the app level here (the runtime-level equivalent is
    :func:`repro.runtime.checkpoint.run_restartable`).
    """
    store = CheckpointStore()
    # Gate the loss to the last distributed section so earlier sections
    # are already durable when the job dies (multi-section apps restore
    # them on restart; single-section apps simply re-run).
    nsections = clean["sections"]
    plan = FaultPlan(
        faults=(RankLoss(rank=1, at=1e-6, section=max(0, nsections - 1)),)
    )
    restarts = 0
    last_exc: Exception | None = None
    run = None
    for attempt in range(3):
        try:
            run = spec.runners["triolet"](
                p, machine, costs,
                faults=plan,
                recovery=None,
                checkpoint=CheckpointConfig(store=store, job=f"bench-{app}"),
            )
            break
        except (JobFailure, RankFailure) as exc:
            last_exc = exc
            restarts += 1
    if run is None:
        return CheckpointCell(app=app, completed=False, restarts=restarts,
                              failed=repr(last_exc))
    rep = run.detail.get("recovery")
    return CheckpointCell(
        app=app,
        completed=run.ok,
        identical=_bit_identical(run.value, clean["value"]),
        restarts=restarts,
        checkpoints=store.puts,
        checkpoint_bytes=store.bytes_written,
        restores=rep.restores if rep is not None else 0,
        restored_bytes=rep.restored_bytes if rep is not None else 0,
        failed=run.failed,
    )


def _count_sections(run) -> int:
    dp = run.detail.get("data_plane") or {}
    return int(dp.get("sections", 0)) or 1


def run_recovery_bench(apps: tuple[str, ...] = BENCH_APPS,
                       nodes: int = NODES) -> dict:
    """The full recovery dataset (the ``BENCH_recovery.json`` payload)."""
    machine = PAPER_MACHINE.scaled(nodes=nodes,
                                   cores_per_node=CORES_PER_NODE)
    cells: list[RecoveryCell] = []
    checkpoint_cells: list[CheckpointCell] = []
    for app in apps:
        spec = APPS[app]
        p = make_problem(app)
        costs = costs_for(app, "triolet", p)
        base = spec.runners["triolet"](p, machine, costs)
        clean = {
            "value": base.value,
            "elapsed": base.elapsed,
            "reference": spec.solve_ref(p),
            "sections": _count_sections(base),
        }
        # Mid-compute of the first section: late enough that survivors
        # hold their shards, early enough to fire on every app.
        at = 0.3 * base.elapsed
        for nlosses in ESCALATION:
            cells.append(_run_triolet_cell(app, spec, p, costs, machine,
                                           clean, nlosses, at, "lineage"))
            if nlosses:
                cells.append(_run_triolet_cell(app, spec, p, costs, machine,
                                               clean, nlosses, at,
                                               "invalidate"))
            cells.append(_run_eden_cell(app, spec, p, costs, machine,
                                        clean, nlosses))
        checkpoint_cells.append(
            _checkpoint_cell(app, spec, p, costs, machine, clean)
        )
    return {
        "benchmark": "durable recovery under escalating permanent losses",
        "nodes": nodes,
        "cores_per_node": CORES_PER_NODE,
        "escalation": list(ESCALATION),
        "cells": [asdict(c) for c in cells],
        "checkpoint": [asdict(c) for c in checkpoint_cells],
    }


def write_json(payload: dict, path: str) -> None:
    with open(path, "w") as f:
        json.dump(payload, f, indent=2)
        f.write("\n")


def render(payload: dict) -> str:
    lines = [
        f"Durable recovery on {payload['nodes']} nodes "
        f"(escalating permanent losses {payload['escalation']})",
        f"{'app':<7}{'losses':>7}{'mode':>12}{'done':>6}{'ident':>7}"
        f"{'overhead':>10}{'reshipped':>11}{'replayed':>10}",
    ]
    for c in payload["cells"]:
        done = "yes" if c["completed"] else "FAIL"
        ident = "bit" if c["identical"] else ("~ok" if c["correct"] else "-")
        over = f"{c['overhead']:+.0%}" if c["completed"] else "-"
        lines.append(
            f"{c['app']:<7}{c['losses']:>7}{c['mode']:>12}{done:>6}"
            f"{ident:>7}{over:>10}{c['reshipped_bytes']:>11,}"
            f"{c['replayed_bytes']:>10,}"
        )
    lines.append("")
    lines.append("Restart-from-checkpoint (no in-run recovery):")
    lines.append(
        f"{'app':<7}{'done':>6}{'ident':>7}{'restarts':>9}{'ckpts':>7}"
        f"{'restores':>9}{'restored B':>11}"
    )
    for c in payload["checkpoint"]:
        done = "yes" if c["completed"] else "FAIL"
        ident = "bit" if c["identical"] else "-"
        lines.append(
            f"{c['app']:<7}{done:>6}{ident:>7}{c['restarts']:>9}"
            f"{c['checkpoints']:>7}{c['restores']:>9}"
            f"{c['restored_bytes']:>11,}"
        )
    # The cell's headline claim, verified inline so a regression is loud.
    savings = _savings_apps(payload)
    lines.append("")
    lines.append(
        f"lineage replay ships strictly fewer bytes than invalidation for "
        f"{len(savings)}/{len(set(c['app'] for c in payload['cells']))} "
        f"apps: {', '.join(sorted(savings)) or 'none'}"
    )
    return "\n".join(lines)


def _savings_apps(payload: dict) -> set:
    """Apps where lineage recovery re-ships strictly fewer bytes than
    full invalidation for every nonzero loss count."""
    by_key = {
        (c["app"], c["losses"], c["mode"]): c for c in payload["cells"]
    }
    out = set()
    for app in {c["app"] for c in payload["cells"]}:
        pairs = [
            (by_key.get((app, n, "lineage")), by_key.get((app, n, "invalidate")))
            for n in payload["escalation"]
            if n
        ]
        if pairs and all(
            lin is not None and inv is not None
            and lin["completed"] and inv["completed"]
            and lin["reshipped_bytes"] < inv["reshipped_bytes"]
            for lin, inv in pairs
        ):
            out.add(app)
    return out


def write_recovered_trace(path: str, app: str = "tpacf",
                          nodes: int = NODES) -> dict:
    """Chrome trace of one recovered run (the CI artifact): *app* on
    *nodes* nodes surviving one permanent rank loss via elastic shrink."""
    from repro.obs.export import write_chrome
    from repro.obs.spans import capture

    spec = APPS[app]
    p = make_problem(app)
    costs = costs_for(app, "triolet", p)
    machine = PAPER_MACHINE.scaled(nodes=nodes, cores_per_node=CORES_PER_NODE)
    base = spec.runners["triolet"](p, machine, costs)
    plan = _loss_plan(1, at=0.3 * base.elapsed)
    with capture() as rec:
        run = spec.runners["triolet"](p, machine, costs, faults=plan)
    write_chrome(rec, path)
    rep = run.detail["recovery"]
    return {
        "app": app,
        "completed": run.ok,
        "rank_losses": rep.rank_losses,
        "lineage_replays": rep.lineage_replays,
        "trace": path,
    }
