"""The sparse bench cell: indexed-stream spMV and the fused tpacf.

One JSON payload (``BENCH_sparse.json``), two experiments, each at
1/2/4 ranks and each run twice -- once with the vectorizing engine on
and once forced to the scalar fallback -- so the cell reports real
wall-clock speedups of the compiled bulk pipelines over per-element
closure evaluation:

* **spmv** -- ``A @ x`` (dense operand, weighted-histogram stream) and
  ``A @ x_sparse`` (``tri.intersect`` against the sparse operand's
  index set).  The problem's dyadic values make float addition exact,
  so the cell asserts *bit*-identity of every path -- scalar,
  vectorized, distributed, and a rank-crash faulted run -- against the
  sequential reference.
* **tpacf** -- the paper app whose DR/RR phases were rewritten as
  segmented indexed streams; the cell pins the planner contract
  (``unsupported == 0``) and dd/dr/rr bit-identity between the scalar
  and vectorized runs.
"""
from __future__ import annotations

import json
import time

import numpy as np

from repro.apps import spmv, tpacf
from repro.cluster.faults import FaultPlan, RankCrash
from repro.cluster.machine import PAPER_MACHINE
from repro.core.engine import execute as _engine
from repro.core.fusion import planner_stats, reset_planner
from repro.runtime.costs import CostContext

__all__ = ["run_sparse_bench", "render", "write_json"]

RANK_COUNTS = (1, 2, 4)
CORES_PER_NODE = 2

SPMV_NROWS = 2048
SPMV_ROW_NNZ = 24
TPACF_M = 32
TPACF_NR = 4
TPACF_NBINS = 12


def _timed(fn, vectorize: bool):
    """Run *fn* under the given engine mode; returns (run, wall, stats)."""
    reset_planner()
    with _engine.use_vectorization(vectorize):
        t0 = time.perf_counter()
        run = fn()
        wall = time.perf_counter() - t0
    return run, wall, planner_stats()


def _spmv_cell(p, y_ref, ys_ref, ranks: int) -> dict:
    machine = PAPER_MACHINE.scaled(nodes=ranks, cores_per_node=CORES_PER_NODE)

    def go(**kw):
        return spmv.run_triolet(p, machine, CostContext(), **kw)

    vec, vec_wall, stats = _timed(go, True)
    sca, sca_wall, _ = _timed(go, False)
    ident = {
        "vectorized": bool(
            np.array_equal(vec.value["y"], y_ref)
            and np.array_equal(vec.value["ys"], ys_ref)
        ),
        "scalar": bool(
            np.array_equal(sca.value["y"], y_ref)
            and np.array_equal(sca.value["ys"], ys_ref)
        ),
    }
    if ranks > 1:  # a lone rank's crash has no survivor to recover on
        faulted, _, _ = _timed(
            lambda: go(faults=FaultPlan(faults=(RankCrash(rank=1, at=1e-6),))),
            True,
        )
        ident["faulted"] = bool(
            np.array_equal(faulted.value["y"], y_ref)
            and np.array_equal(faulted.value["ys"], ys_ref)
        )
    return {
        "ranks": ranks,
        "nrows": p.nrows,
        "nnz": p.nnz,
        "bit_identical": ident,
        "vectorized_wall_s": vec_wall,
        "scalar_wall_s": sca_wall,
        "speedup": sca_wall / vec_wall if vec_wall else float("inf"),
        "bytes_shipped": vec.bytes_shipped,
        "bytes_shipped_scalar": sca.bytes_shipped,
        "unsupported": stats.unsupported,
        "compiled": stats.compiled,
    }


def _tpacf_cell(p, ranks: int) -> dict:
    machine = PAPER_MACHINE.scaled(nodes=ranks, cores_per_node=CORES_PER_NODE)

    def go():
        return tpacf.run_triolet(p, machine, CostContext())

    vec, vec_wall, stats = _timed(go, True)
    sca, sca_wall, _ = _timed(go, False)
    same = all(
        np.array_equal(vec.value[k], sca.value[k]) for k in ("dd", "dr", "rr")
    )
    return {
        "ranks": ranks,
        "bit_identical": bool(same),
        "vectorized_wall_s": vec_wall,
        "scalar_wall_s": sca_wall,
        "speedup": sca_wall / vec_wall if vec_wall else float("inf"),
        "bytes_shipped": vec.bytes_shipped,
        "unsupported": stats.unsupported,
        "compiled": stats.compiled,
    }


def run_sparse_bench(rank_counts: tuple[int, ...] = RANK_COUNTS) -> dict:
    """The full sparse dataset (the ``BENCH_sparse.json`` payload)."""
    ps = spmv.make_problem(
        nrows=SPMV_NROWS, ncols=SPMV_NROWS, row_nnz=SPMV_ROW_NNZ, seed=1
    )
    y_ref, ys_ref = spmv.solve_ref(ps), spmv.solve_ref_sparse(ps)
    pt = tpacf.make_problem(
        m=TPACF_M, nr=TPACF_NR, nbins=TPACF_NBINS, seed=3
    )
    return {
        "benchmark": "indexed/sparse stream fusion",
        "rank_counts": list(rank_counts),
        "spmv": [_spmv_cell(ps, y_ref, ys_ref, r) for r in rank_counts],
        "tpacf": [_tpacf_cell(pt, r) for r in rank_counts],
    }


def write_json(payload: dict, path: str) -> None:
    with open(path, "w") as f:
        json.dump(payload, f, indent=2)
        f.write("\n")


def _row(c: dict, ident: str) -> str:
    return (
        f"{c['ranks']:>6}{ident:>7}{c['vectorized_wall_s']:>10.3f}"
        f"{c['scalar_wall_s']:>10.3f}{c['speedup']:>9.1f}x"
        f"{c['bytes_shipped']:>12,}{c['unsupported']:>7}"
    )


def render(payload: dict) -> str:
    header = (
        f"{'ranks':>6}{'ident':>7}{'vec s':>10}{'scalar s':>10}"
        f"{'speedup':>10}{'bytes':>12}{'unsup':>7}"
    )
    lines = ["spMV over indexed streams (dense + sparse operand)", header]
    for c in payload["spmv"]:
        ident = "bit" if all(c["bit_identical"].values()) else "NO"
        lines.append(_row(c, ident))
    lines.append("")
    lines.append("tpacf with segmented indexed DR/RR")
    lines.append(header)
    for c in payload["tpacf"]:
        lines.append(_row(c, "bit" if c["bit_identical"] else "NO"))
    return "\n".join(lines)
