"""Command-line figure regeneration: ``python -m repro.bench``.

Options::

    python -m repro.bench                  # everything (Fig. 3,4,5,7,8)
    python -m repro.bench fig3             # sequential-time table
    python -m repro.bench mriq sgemm       # specific scalability figures
    python -m repro.bench --nodes 1,2,4,8  # node counts (default 1..8)
    python -m repro.bench --json           # wall-clock engine benchmark
                                           # -> BENCH_apps.json
    python -m repro.bench --transport local  # transport scaling cell
                                           # -> BENCH_transport.json
    python -m repro.bench --service        # resident job-service bench
                                           # -> BENCH_service.json
    python -m repro.bench --views          # views/stencil halo bench
                                           # -> BENCH_views.json
    python -m repro.bench --sparse         # indexed/sparse stream bench
                                           # -> BENCH_sparse.json
"""
from __future__ import annotations

import argparse
import sys

from repro.bench import figure3_rows, render_series, scaling_series
from repro.bench.figures import plot_series

FIGURES = {"mriq": "Fig. 4", "sgemm": "Fig. 5", "tpacf": "Fig. 7", "cutcp": "Fig. 8"}


def print_fig3() -> None:
    print("Fig. 3 -- sequential execution time (virtual seconds)")
    print(f"{'app':<8}{'C':>10}{'Eden':>10}{'Triolet':>10}")
    for r in figure3_rows():
        print(f"{r['app']:<8}{r['c']:>10.1f}{r['eden']:>10.1f}{r['triolet']:>10.1f}")
    print()


def print_scaling(app: str, node_counts: tuple[int, ...], plot: bool = False) -> None:
    series = scaling_series(app, node_counts=node_counts)
    print(f"{FIGURES[app]} -- {render_series(app, series)}")
    if plot:
        print()
        print(plot_series(app, series))
    bad = [
        (fw, pt.nodes)
        for fw, pts in series.items()
        for pt in pts
        if not pt.correct and not pt.failed
    ]
    if bad:
        print(f"  !! numerically incorrect cells: {bad}")
    print()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's evaluation figures.",
    )
    parser.add_argument(
        "targets",
        nargs="*",
        choices=["fig3", "mriq", "sgemm", "tpacf", "cutcp", []],
        help="figures to regenerate (default: all)",
    )
    parser.add_argument(
        "--nodes",
        default="1,2,3,4,5,6,7,8",
        help="comma-separated node counts (16 cores each)",
    )
    parser.add_argument(
        "--plot",
        action="store_true",
        help="also render ASCII speedup charts",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="run the wall-clock engine benchmark and write a JSON report",
    )
    parser.add_argument(
        "--transport",
        default=None,
        metavar="NAME[,NAME...]",
        help="run the transport scaling bench on the named backends "
        "(sim is always the baseline; unavailable backends are "
        "skipped) and write BENCH_transport.json",
    )
    parser.add_argument(
        "--ranks",
        default="1,2,4",
        help="with --transport / --service / --views / --sparse: "
        "comma-separated rank counts",
    )
    parser.add_argument(
        "--service",
        action="store_true",
        help="run the resident job-service bench (mixed multi-tenant "
        "app stream) and write BENCH_service.json",
    )
    parser.add_argument(
        "--views",
        action="store_true",
        help="run the views/stencil bench (halo bytes vs. full re-ship, "
        "slab-view slice-cache reuse) and write BENCH_views.json",
    )
    parser.add_argument(
        "--sparse",
        action="store_true",
        help="run the indexed/sparse-stream bench (spMV + fused tpacf, "
        "vectorized vs scalar fallback) and write BENCH_sparse.json",
    )
    parser.add_argument(
        "--recovery",
        action="store_true",
        help="run the durable-recovery bench (escalating permanent "
        "losses) and write BENCH_recovery.json",
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="with --recovery: also write a Chrome trace of one "
        "recovered run to PATH",
    )
    parser.add_argument(
        "--out",
        default=None,
        help="output path for the --json / --recovery report",
    )
    args = parser.parse_args(argv)
    if args.transport:
        from repro.bench.transport import (
            render,
            run_transport_bench,
            write_json,
        )

        try:
            rank_counts = tuple(int(n) for n in args.ranks.split(","))
        except ValueError:
            parser.error(f"bad --ranks value: {args.ranks!r}")
        names = tuple(t.strip() for t in args.transport.split(",") if t.strip())
        out = args.out or "BENCH_transport.json"
        payload = run_transport_bench(names, rank_counts=rank_counts)
        write_json(payload, out)
        print(render(payload))
        print(f"wrote {out}")
        return 0
    if args.service:
        from repro.bench.service import (
            render,
            run_service_bench,
            write_json,
        )

        try:
            rank_counts = tuple(int(n) for n in args.ranks.split(","))
        except ValueError:
            parser.error(f"bad --ranks value: {args.ranks!r}")
        out = args.out or "BENCH_service.json"
        payload = run_service_bench(rank_counts)
        write_json(payload, out)
        print(render(payload))
        print(f"wrote {out}")
        return 0
    if args.views:
        from repro.bench.views import render, run_views_bench, write_json

        try:
            rank_counts = tuple(int(n) for n in args.ranks.split(","))
        except ValueError:
            parser.error(f"bad --ranks value: {args.ranks!r}")
        out = args.out or "BENCH_views.json"
        payload = run_views_bench(rank_counts)
        write_json(payload, out)
        print(render(payload))
        print(f"wrote {out}")
        return 0
    if args.sparse:
        from repro.bench.sparse import render, run_sparse_bench, write_json

        try:
            rank_counts = tuple(int(n) for n in args.ranks.split(","))
        except ValueError:
            parser.error(f"bad --ranks value: {args.ranks!r}")
        out = args.out or "BENCH_sparse.json"
        payload = run_sparse_bench(rank_counts)
        write_json(payload, out)
        print(render(payload))
        print(f"wrote {out}")
        return 0
    if args.recovery:
        from repro.bench.recovery import (
            render,
            run_recovery_bench,
            write_json,
            write_recovered_trace,
        )

        out = args.out or "BENCH_recovery.json"
        payload = run_recovery_bench()
        write_json(payload, out)
        print(render(payload))
        print(f"wrote {out}")
        if args.trace:
            info = write_recovered_trace(args.trace)
            print(
                f"wrote {args.trace} (recovered {info['app']} run, "
                f"{info['rank_losses']} loss, "
                f"{info['lineage_replays']} lineage replays)"
            )
        return 0
    if args.json:
        from repro.bench.wallclock import render, run_bench, write_json

        payload = run_bench()
        write_json(payload, args.out or "BENCH_apps.json")
        print(render(payload))
        print(f"wrote {args.out or 'BENCH_apps.json'}")
        return 0
    try:
        node_counts = tuple(int(n) for n in args.nodes.split(","))
    except ValueError:
        parser.error(f"bad --nodes value: {args.nodes!r}")
    if any(n < 1 for n in node_counts):
        parser.error("node counts must be positive")

    targets = args.targets or ["fig3", "mriq", "sgemm", "tpacf", "cutcp"]
    for target in targets:
        if target == "fig3":
            print_fig3()
        else:
            print_scaling(target, node_counts, plot=args.plot)
    return 0


if __name__ == "__main__":
    sys.exit(main())
