"""Transport scaling benchmark: real backends vs. the simulator.

For each app and rank count this runs the unmodified Triolet runner on
the ``sim`` baseline and on each requested real transport, and checks
the paper-level invariant that makes the transports interchangeable:
values are bit-identical and the *virtual* timeline (makespan, cost
meters) is equal across backends, because availability stamps are
computed causally from the cost model, never from wall time.  What the
real transports add is a meaningful *wall* clock: rank processes really
execute concurrently, so wall time scales with the host's cores.

Honesty note: the recorded ``cpu_count`` matters.  On a single-core
host forked ranks serialize and wall speedup hovers around 1x (plus
fork overhead); the scaling claim is only testable with >= ``ranks``
cores.  The payload records both the wall numbers and the core count so
readers (and CI) can judge them.

``python -m repro.bench --transport local`` runs this and writes
``BENCH_transport.json``.
"""
from __future__ import annotations

import json
import os
import platform
import time
from dataclasses import asdict

from repro.bench import reset_run_state
from repro.bench.calibrate import costs_for
from repro.bench.harness import APPS
from repro.bench.wallclock import BENCH_PARAMS, _bit_identical
from repro.cluster.machine import PAPER_MACHINE
from repro.cluster.transport import available_transports

#: app x rank-count grid of the transport cell.
TRANSPORT_APPS = ("mriq", "sgemm", "tpacf", "cutcp")
TRANSPORT_RANKS = (1, 2, 4)


def usable_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _run_cell(app: str, problem, transport: str, ranks: int):
    """One timed (app, transport, ranks) run from a clean-slate state."""
    spec = APPS[app]
    machine = (
        PAPER_MACHINE.scaled(nodes=ranks, cores_per_node=1)
        .with_transport(transport)
    )
    costs = costs_for(app, "triolet", problem)
    reset_run_state()
    t0 = time.perf_counter()
    run = spec.runners["triolet"](problem, machine, costs)
    wall = time.perf_counter() - t0
    if not run.ok:
        raise RuntimeError(f"{app} on {transport!r} x{ranks} failed: {run.failed}")
    return wall, run


def bench_transport_app(app: str, transport: str,
                        rank_counts: tuple[int, ...] = TRANSPORT_RANKS) -> dict:
    """One app's scaling row: sim baseline and *transport* at each rank
    count, with cross-backend parity checks at every shape."""
    problem = APPS[app].make_problem(**BENCH_PARAMS[app])
    points = []
    base_wall: dict[str, float] = {}
    for ranks in rank_counts:
        wall_sim, run_sim = _run_cell(app, problem, "sim", ranks)
        wall_tr, run_tr = _run_cell(app, problem, transport, ranks)
        base_wall.setdefault("sim", wall_sim)
        base_wall.setdefault(transport, wall_tr)
        points.append({
            "ranks": ranks,
            "wall_seconds_sim": wall_sim,
            "wall_seconds": wall_tr,
            "wall_speedup_vs_1rank": base_wall[transport] / wall_tr,
            "virtual_seconds": run_tr.elapsed,
            "virtual_seconds_equal": run_tr.elapsed == run_sim.elapsed,
            "value_bit_identical": _bit_identical(run_tr.value, run_sim.value),
            "meter_equal": run_tr.detail["meter"] == run_sim.detail["meter"],
            "meter": asdict(run_tr.detail["meter"]),
            "bytes_shipped": run_tr.bytes_shipped,
            "bytes_shipped_equal":
                run_tr.bytes_shipped == run_sim.bytes_shipped,
        })
    return {
        "app": app,
        "transport": transport,
        "params": {k: list(v) if isinstance(v, tuple) else v
                   for k, v in BENCH_PARAMS[app].items()},
        "points": points,
    }


def run_transport_bench(
    transports: tuple[str, ...] = ("local",),
    apps: tuple[str, ...] = TRANSPORT_APPS,
    rank_counts: tuple[int, ...] = TRANSPORT_RANKS,
) -> dict:
    """The full transport dataset (the ``BENCH_transport.json`` payload).

    Unavailable backends (e.g. ``mpi`` without mpi4py) are reported as
    skipped rather than failing the bench.
    """
    avail = set(available_transports(nranks=max(rank_counts)))
    results = []
    skipped = []
    for tr in transports:
        if tr == "sim" or tr not in avail:
            if tr != "sim":
                skipped.append(tr)
            continue
        for app in apps:
            results.append(bench_transport_app(app, tr, rank_counts))
    return {
        "benchmark": "transport backends wall clock",
        "cpu_count": os.cpu_count(),
        "usable_cpus": usable_cpus(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "rank_counts": list(rank_counts),
        "transports": list(transports),
        "skipped": skipped,
        "results": results,
    }


def write_json(payload: dict, path: str) -> None:
    with open(path, "w") as f:
        json.dump(payload, f, indent=2)
        f.write("\n")


def render(payload: dict) -> str:
    lines = [
        f"Transport scaling (usable CPUs: {payload['usable_cpus']})",
        f"{'app':<8}{'backend':>8}{'ranks':>6}{'sim s':>9}{'real s':>9}"
        f"{'vs 1rk':>8}  parity",
    ]
    for row in payload["results"]:
        for p in row["points"]:
            parity = (
                "ok"
                if p["value_bit_identical"]
                and p["virtual_seconds_equal"]
                and p["meter_equal"]
                and p["bytes_shipped_equal"]
                else "MISMATCH"
            )
            lines.append(
                f"{row['app']:<8}{row['transport']:>8}{p['ranks']:>6}"
                f"{p['wall_seconds_sim']:>9.3f}{p['wall_seconds']:>9.3f}"
                f"{p['wall_speedup_vs_1rank']:>7.2f}x  {parity}"
            )
    for tr in payload.get("skipped", ()):
        lines.append(f"  (skipped unavailable transport: {tr})")
    if payload["usable_cpus"] < max(payload["rank_counts"]):
        lines.append(
            "  note: fewer usable CPUs than ranks -- forked ranks "
            "serialize, wall speedup is not expected here"
        )
    return "\n".join(lines)
