"""Calibrated model constants, documented against the paper.

What is measured vs. modelled (DESIGN.md §5): element-visit counts,
message bytes, partition shapes and schedules are *measured* from real
execution; this module holds the few *calibrated constants* that convert
them into seconds on the paper's testbed.

``SEQ_SECONDS`` approximates Fig. 3 ("Sequential execution time of
benchmarks", a bar chart; the paper prints no exact numbers, so values
are read off the bars and kept inside the stated 20-200 s dataset-
selection window).  The per-framework ratios encode the paper's explicit
statements:

* mri-q: "Eden's backend misses a floating-point optimization on sinf and
  cosf calls, resulting in about 50% longer run time on a single thread";
  Triolet "nearly on par" with C.
* sgemm: all three run the same BLAS-like kernel; small constant gaps.
* tpacf: "Eden has somewhat worse sequential performance".
* cutcp: Eden's nested traversals were rewritten to imperative loops but
  remain well above C (Fig. 3 shows the largest Eden bar); Triolet pays
  modest overhead for the nested-iterator loop structure.

``STEPPER_SLOWDOWN`` reproduces §3.1's "using steppers was roughly a
factor of two to five slower than imperative loop nests" for the
stepper-only ablation.
"""
from __future__ import annotations

from repro.runtime.costs import CostContext

#: Fig. 3 sequential seconds (approximate bar heights), per app/framework.
SEQ_SECONDS: dict[str, dict[str, float]] = {
    "mriq": {"c": 140.0, "triolet": 148.0, "eden": 210.0},
    "sgemm": {"c": 82.0, "triolet": 88.0, "eden": 104.0},
    "tpacf": {"c": 152.0, "triolet": 168.0, "eden": 216.0},
    "cutcp": {"c": 98.0, "triolet": 118.0, "eden": 232.0},
}

FRAMEWORKS = ("c", "triolet", "eden", "cmpi")

#: §3.1: stepper-encoded nested traversals vs. imperative loop nests.
STEPPER_SLOWDOWN = (2.0, 5.0)


def unit_time(app: str, framework: str, nominal_visits: float) -> float:
    """Virtual seconds per element visit for *framework* running *app*.

    The C+MPI+OpenMP code shares sequential C's kernels, so ``cmpi`` uses
    the ``c`` column.
    """
    col = "c" if framework in ("c", "cmpi") else framework
    try:
        seconds = SEQ_SECONDS[app][col]
    except KeyError as e:
        raise KeyError(f"no calibration for app={app!r} framework={framework!r}") from e
    return seconds / nominal_visits


def costs_for(app: str, framework: str, problem) -> CostContext:
    """The :class:`CostContext` for one (app, framework) pair.

    *problem* supplies ``nominal_visits`` (paper-scale work),
    ``compute_scale`` and ``wire_scale`` (sandbox -> paper mapping).
    """
    return CostContext(
        unit_time=unit_time(app, framework, problem.nominal_visits),
        compute_scale=problem.compute_scale,
        wire_scale=problem.wire_scale,
    )
