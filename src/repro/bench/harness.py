"""The evaluation harness: regenerate every figure of §4.

The harness runs each app under each framework at node counts 1..8 (16
cores per node, the paper's x-axis), verifies the numerical result
against the sequential reference, and reports speedup over sequential C
-- the paper's normalization.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro.apps.common import AppRun
from repro.baselines.seqc import run_seqc
from repro.bench.calibrate import costs_for
from repro.cluster.machine import PAPER_MACHINE

from repro.apps import cutcp, mriq, sgemm, tpacf


@dataclass(frozen=True)
class AppSpec:
    """Everything the harness needs to evaluate one benchmark."""

    name: str
    make_problem: Callable[..., Any]
    solve_ref: Callable[[Any], Any]
    runners: dict  # framework -> run(problem, machine, costs) -> AppRun
    same_value: Callable[[Any, Any], bool]
    sandbox_params: dict


def _same_array(a, b) -> bool:
    return a is not None and np.allclose(a, b, rtol=1e-8, atol=1e-8)


def _same_hists(a, b) -> bool:
    return a is not None and all(np.allclose(a[k], b[k]) for k in b)


APPS: dict[str, AppSpec] = {
    "mriq": AppSpec(
        name="mriq",
        make_problem=mriq.make_problem,
        solve_ref=mriq.solve_ref,
        runners={
            "triolet": mriq.run_triolet,
            "eden": mriq.run_eden,
            "cmpi": mriq.run_cmpi_app,
        },
        same_value=_same_array,
        sandbox_params=dict(npix=2048, nk=192, seed=7),
    ),
    "sgemm": AppSpec(
        name="sgemm",
        make_problem=sgemm.make_problem,
        solve_ref=sgemm.solve_ref,
        runners={
            "triolet": sgemm.run_triolet,
            "eden": sgemm.run_eden,
            "cmpi": sgemm.run_cmpi_app,
        },
        same_value=_same_array,
        sandbox_params=dict(n=64, seed=7),
    ),
    "tpacf": AppSpec(
        name="tpacf",
        make_problem=tpacf.make_problem,
        solve_ref=tpacf.solve_ref,
        runners={
            "triolet": tpacf.run_triolet,
            "eden": tpacf.run_eden,
            "cmpi": tpacf.run_cmpi_app,
        },
        same_value=_same_hists,
        sandbox_params=dict(m=64, nr=32, seed=7),
    ),
    "cutcp": AppSpec(
        name="cutcp",
        make_problem=cutcp.make_problem,
        solve_ref=cutcp.solve_ref,
        runners={
            "triolet": cutcp.run_triolet,
            "eden": cutcp.run_eden,
            "cmpi": cutcp.run_cmpi_app,
        },
        same_value=_same_array,
        sandbox_params=dict(na=300, grid=(24, 24, 24), cutoff=4.0, seed=7),
    ),
}

#: the paper's node counts: 1..8 nodes of 16 cores = 16..128 cores.
NODE_COUNTS = (1, 2, 3, 4, 5, 6, 7, 8)


@dataclass
class SpeedupPoint:
    """One point of a Fig. 4/5/7/8 curve."""

    app: str
    framework: str
    nodes: int
    cores: int
    speedup: float  # over sequential C; 0.0 when the run failed
    elapsed: float
    correct: bool
    failed: str | None = None


def make_problem(app: str):
    spec = APPS[app]
    return spec.make_problem(**spec.sandbox_params)


def sequential_seconds(app: str, problem=None, framework: str = "c") -> tuple[float, Any]:
    """Fig. 3: one framework's sequential virtual time, plus the value.

    The sequential *numerics* are the shared kernels; the framework only
    changes the calibrated per-visit constant.
    """
    spec = APPS[app]
    p = problem if problem is not None else make_problem(app)
    costs = costs_for(app, framework, p)
    res = run_seqc(lambda: spec.solve_ref(p), costs)
    return res.seconds, res.value


def run_point(
    app: str,
    framework: str,
    nodes: int,
    problem=None,
    reference=None,
    cores_per_node: int = 16,
) -> SpeedupPoint:
    """Run one (app, framework, machine size) cell."""
    spec = APPS[app]
    p = problem if problem is not None else make_problem(app)
    machine = PAPER_MACHINE.scaled(nodes=nodes, cores_per_node=cores_per_node)
    costs = costs_for(app, framework, p)
    seq_s, seq_value = (
        reference
        if reference is not None
        else sequential_seconds(app, p)
    )
    run: AppRun = spec.runners[framework](p, machine, costs)
    if not run.ok:
        return SpeedupPoint(
            app=app,
            framework=framework,
            nodes=nodes,
            cores=nodes * cores_per_node,
            speedup=0.0,
            elapsed=float("inf"),
            correct=False,
            failed=run.failed,
        )
    return SpeedupPoint(
        app=app,
        framework=framework,
        nodes=nodes,
        cores=nodes * cores_per_node,
        speedup=seq_s / run.elapsed,
        elapsed=run.elapsed,
        correct=spec.same_value(run.value, seq_value),
    )


def scaling_series(
    app: str,
    frameworks: tuple[str, ...] = ("cmpi", "triolet", "eden"),
    node_counts: tuple[int, ...] = NODE_COUNTS,
) -> dict[str, list[SpeedupPoint]]:
    """A full Fig. 4/5/7/8 dataset for one app."""
    p = make_problem(app)
    reference = sequential_seconds(app, p)
    return {
        fw: [
            run_point(app, fw, nodes, problem=p, reference=reference)
            for nodes in node_counts
        ]
        for fw in frameworks
    }


def figure3_rows(apps: tuple[str, ...] = ("tpacf", "mriq", "sgemm", "cutcp")):
    """Fig. 3: sequential seconds per app for CPU (C), Eden, Triolet."""
    rows = []
    for app in apps:
        p = make_problem(app)
        rows.append(
            {
                "app": app,
                "c": sequential_seconds(app, p, "c")[0],
                "eden": sequential_seconds(app, p, "eden")[0],
                "triolet": sequential_seconds(app, p, "triolet")[0],
            }
        )
    return rows


def render_series(app: str, series: dict[str, list[SpeedupPoint]]) -> str:
    """Text rendering of one scalability figure (paper layout: speedup
    over sequential C vs. cores, plus the linear-speedup reference)."""
    fws = list(series)
    lines = [f"{app}: speedup over sequential C (x)  [paper Figs. 4/5/7/8]"]
    header = f"{'cores':>6} {'linear':>8}" + "".join(f"{fw:>10}" for fw in fws)
    lines.append(header)
    npoints = len(next(iter(series.values())))
    for i in range(npoints):
        cores = series[fws[0]][i].cores
        row = f"{cores:>6} {float(cores):>8.1f}"
        for fw in fws:
            pt = series[fw][i]
            row += f"{'FAIL':>10}" if pt.failed else f"{pt.speedup:>10.1f}"
        lines.append(row)
    return "\n".join(lines)
