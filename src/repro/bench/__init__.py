"""Benchmark harness regenerating the paper's evaluation (§4).

* :mod:`repro.bench.calibrate` -- the calibrated constants (documented
  against Fig. 3 and the testbed) converting measured loop statistics to
  virtual seconds per framework and app.
* :mod:`repro.bench.harness` -- runs (app x framework x node count),
  checks numerical correctness against the sequential reference, and
  produces the speedup series of Figs. 4/5/7/8 and the sequential-time
  table of Fig. 3.
"""
from repro.bench.harness import (
    APPS,
    AppSpec,
    SpeedupPoint,
    figure3_rows,
    make_problem,
    run_point,
    scaling_series,
    sequential_seconds,
    render_series,
)

__all__ = [
    "APPS",
    "AppSpec",
    "SpeedupPoint",
    "figure3_rows",
    "make_problem",
    "run_point",
    "scaling_series",
    "sequential_seconds",
    "render_series",
]
