"""Benchmark harness regenerating the paper's evaluation (§4).

* :mod:`repro.bench.calibrate` -- the calibrated constants (documented
  against Fig. 3 and the testbed) converting measured loop statistics to
  virtual seconds per framework and app.
* :mod:`repro.bench.harness` -- runs (app x framework x node count),
  checks numerical correctness against the sequential reference, and
  produces the speedup series of Figs. 4/5/7/8 and the sequential-time
  table of Fig. 3.
"""
from repro.bench.harness import (
    APPS,
    AppSpec,
    SpeedupPoint,
    figure3_rows,
    make_problem,
    run_point,
    scaling_series,
    sequential_seconds,
    render_series,
)


def reset_run_state() -> None:
    """Reset every piece of process-global engine state a bench cell can
    observe: the fusion-plan caches, the serialization copy counters, the
    distributed-array handle registry, and any stale observability
    recorder.  Called before each cell so every measurement reports
    deltas for *that* run -- in particular each transport cell of
    ``python -m repro.bench --transport`` starts from the same state its
    sim baseline did.
    """
    from repro.core.fusion.planner import reset_planner
    from repro.data.handle import drop_handles
    from repro.obs.spans import force_disable
    from repro.serial import reset_copy_stats

    reset_planner()
    reset_copy_stats()
    drop_handles()
    force_disable()


__all__ = [
    "reset_run_state",
    "APPS",
    "AppSpec",
    "SpeedupPoint",
    "figure3_rows",
    "make_problem",
    "run_point",
    "scaling_series",
    "sequential_seconds",
    "render_series",
]
