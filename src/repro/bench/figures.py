"""ASCII renderings of the paper's scalability figures.

The paper's Figs. 4/5/7/8 are speedup-vs-cores line charts with a linear
reference.  ``plot_series`` renders the same chart in text so the CLI
(and EXPERIMENTS.md) can show the *shape* -- crossings, saturation,
failures -- not just the numbers.
"""
from __future__ import annotations

from repro.bench.harness import SpeedupPoint

#: plot glyphs per framework, in legend order
GLYPHS = {"cmpi": "C", "triolet": "T", "eden": "E"}
LINEAR_GLYPH = "."


def plot_series(
    app: str,
    series: dict[str, list[SpeedupPoint]],
    height: int = 16,
    width: int = 64,
) -> str:
    """Render one figure: speedup (y) against cores (x), linear dotted."""
    frameworks = [fw for fw in GLYPHS if fw in series] + [
        fw for fw in series if fw not in GLYPHS
    ]
    points = [pt for fw in frameworks for pt in series[fw] if not pt.failed]
    if not points:
        return f"{app}: no successful runs to plot"
    max_cores = max(pt.cores for fw in frameworks for pt in series[fw])
    max_y = max(max(pt.speedup for pt in points), float(max_cores))

    def col(cores: float) -> int:
        return min(width - 1, int(cores / max_cores * (width - 1)))

    def row(speedup: float) -> int:
        return min(height - 1, int(speedup / max_y * (height - 1)))

    grid = [[" "] * width for _ in range(height)]
    # linear reference
    for c in range(0, max_cores + 1, max(1, max_cores // width)):
        grid[height - 1 - row(float(c))][col(c)] = LINEAR_GLYPH
    # framework curves (drawn last so they overwrite the reference)
    for fw in frameworks:
        glyph = GLYPHS.get(fw, fw[0].upper())
        for pt in series[fw]:
            if pt.failed:
                continue
            grid[height - 1 - row(pt.speedup)][col(pt.cores)] = glyph

    lines = [f"{app}: speedup over sequential C vs cores"]
    for i, r in enumerate(grid):
        y_label = f"{max_y * (height - 1 - i) / (height - 1):6.0f} |"
        lines.append(y_label + "".join(r))
    lines.append(" " * 7 + "+" + "-" * (width - 1))
    lines.append(" " * 8 + f"0 cores {'':<{width - 24}}{max_cores} cores")
    legend = "  ".join(
        f"{GLYPHS.get(fw, fw[0].upper())}={fw}" for fw in frameworks
    )
    failures = [
        f"{fw}@{pt.cores}c" for fw in frameworks for pt in series[fw] if pt.failed
    ]
    lines.append(f"        {legend}  {LINEAR_GLYPH}=linear")
    if failures:
        lines.append(f"        failed runs: {', '.join(failures)}")
    return "\n".join(lines)
