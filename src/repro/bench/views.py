"""The views bench cell: halo traffic vs. full re-ship, and slice-cache
reuse across shifting decompositions.

Two experiments, one JSON payload (``BENCH_views.json``):

* **jacobi** -- the stencil skeleton at 1/2/4 ranks.  The honest
  comparison for a halo exchange is against re-shipping every block
  every sweep (what a planner without ghost placements would do): the
  cell reports the first sweep's placement bytes (``full_reship_bytes``,
  the per-sweep cost of the naive plan) against the steady-state
  per-sweep ``halo_bytes``, plus the headline invariants -- zero interior
  bytes from sweep 2 on, and bit-identity with the sequential oracle.
* **sweeps** -- multi-sweep cutcp over slab :func:`slice_view`\\ s (base /
  offset / offset-again).  The cell reports per-sweep plane deltas and
  the repeat sweep's slice-cache hit rate: re-running an already-seen
  decomposition should be served almost entirely from resident shards
  and cached slices.
"""
from __future__ import annotations

import json

import numpy as np

from repro.apps import cutcp, jacobi
from repro.apps.cutcp.sweeps import run_sweeps
from repro.cluster.machine import PAPER_MACHINE

__all__ = ["run_views_bench", "render", "write_json"]

RANK_COUNTS = (1, 2, 4)
CORES_PER_NODE = 2

JACOBI_N = 256
JACOBI_ITERATIONS = 6


def _jacobi_cell(ranks: int) -> dict:
    machine = PAPER_MACHINE.scaled(nodes=ranks, cores_per_node=CORES_PER_NODE)
    p = jacobi.make_problem(n=JACOBI_N, iterations=JACOBI_ITERATIONS, seed=7)
    ref = jacobi.solve_ref(p)
    run = jacobi.run_triolet(p, machine)
    sections = run.detail["sections"]
    first, rest = sections[0], sections[1:]
    return {
        "ranks": ranks,
        "n": JACOBI_N,
        "iterations": JACOBI_ITERATIONS,
        "bit_identical": bool(run.value.tobytes() == ref.tobytes()),
        "full_reship_bytes": first["input_bytes"],
        "first_halo_bytes": first["halo_bytes"],
        "steady_interior_bytes": max((s["input_bytes"] for s in rest),
                                     default=0),
        "steady_halo_bytes": max((s["halo_bytes"] for s in rest), default=0),
        "halo_refreshes": sum(s["halo_refreshes"] for s in sections),
        "halo_hits": sum(s["halo_hits"] for s in sections),
    }


def _sweep_cell() -> dict:
    machine = PAPER_MACHINE.scaled(nodes=4, cores_per_node=CORES_PER_NODE)
    p = cutcp.make_problem(na=120, grid=(12, 12, 12), cutoff=3.0, seed=7)
    ref = cutcp.solve_ref(p)
    run = run_sweeps(p, machine)
    per_sweep = run.detail["per_sweep"]
    repeat = per_sweep[-1]
    served = (
        repeat["resident_hits"] + repeat["cache_hits"]
    )
    return {
        "correct": bool(np.allclose(run.value, ref)),
        "per_sweep": per_sweep,
        "repeat_hit_rate": served / repeat["requests"]
        if repeat["requests"]
        else 1.0,
        "repeat_input_bytes": repeat["input_bytes"],
    }


def run_views_bench(rank_counts: tuple[int, ...] = RANK_COUNTS) -> dict:
    """The full views dataset (the ``BENCH_views.json`` payload)."""
    return {
        "benchmark": "distributed views and stencil halo exchange",
        "rank_counts": list(rank_counts),
        "jacobi": [_jacobi_cell(r) for r in rank_counts],
        "sweeps": _sweep_cell(),
    }


def write_json(payload: dict, path: str) -> None:
    with open(path, "w") as f:
        json.dump(payload, f, indent=2)
        f.write("\n")


def render(payload: dict) -> str:
    lines = [
        "Stencil halo exchange (jacobi, per-sweep bytes)",
        f"{'ranks':>6}{'ident':>7}{'reship B':>10}{'halo B':>8}"
        f"{'interior B':>12}{'halo %':>8}",
    ]
    for c in payload["jacobi"]:
        frac = (
            c["steady_halo_bytes"] / c["full_reship_bytes"]
            if c["full_reship_bytes"]
            else 0.0
        )
        lines.append(
            f"{c['ranks']:>6}{'bit' if c['bit_identical'] else 'NO':>7}"
            f"{c['full_reship_bytes']:>10,}{c['steady_halo_bytes']:>8,}"
            f"{c['steady_interior_bytes']:>12,}{frac:>8.1%}"
        )
    s = payload["sweeps"]
    lines.append("")
    lines.append("Slab-view sweeps (cutcp, shifting decomposition)")
    lines.append(
        f"{'sweep':<14}{'req':>5}{'resident':>9}{'placed':>8}"
        f"{'c.hit':>7}{'c.miss':>8}{'input B':>10}"
    )
    for sw in s["per_sweep"]:
        lines.append(
            f"{sw['sweep']:<14}{sw['requests']:>5}{sw['resident_hits']:>9}"
            f"{sw['placements']:>8}{sw['cache_hits']:>7}"
            f"{sw['cache_misses']:>8}{sw['input_bytes']:>10,}"
        )
    lines.append(
        f"repeat sweep hit rate: {s['repeat_hit_rate']:.0%} "
        f"({s['repeat_input_bytes']:,} bytes shipped), "
        f"correct={s['correct']}"
    )
    return "\n".join(lines)
