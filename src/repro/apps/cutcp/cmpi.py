"""cutcp in C+MPI+OpenMP style (paper §4.5).

The root scatters atom blocks; each rank runs an OpenMP parallel for over
atom sub-blocks with one private grid per thread (histogram
privatization), adds the thread grids over shared memory, and a tree
reduction sums the node grids -- "the overhead of summing the large
output arrays dominates execution time" at scale.
"""
from __future__ import annotations

import numpy as np

from repro.apps.common import AppRun
from repro.apps.cutcp.data import CutcpProblem
from repro.apps.cutcp.kernel import atom_contribution
from repro.baselines.cmpi import omp_parallel_for, run_cmpi
from repro.cluster.comm import Comm
from repro.cluster.machine import MachineSpec
from repro.core import meter
from repro.partition import block_bounds
from repro.runtime.costs import CostContext

_ATOMS = 31


def _rank_main(comm: Comm, costs: CostContext, p: CutcpProblem):
    rank, size = comm.rank, comm.size
    bounds = block_bounds(p.na, size)

    if rank == 0:
        for dst in range(1, size):
            lo, hi = bounds[dst]
            comm.Send(p.atoms[lo:hi], dst, _ATOMS)
        my_atoms = p.atoms[bounds[0][0] : bounds[0][1]]
    else:
        my_atoms = comm.Recv(0, _ATOMS)

    cores = comm.ctx.machine.cores_per_node
    sub = block_bounds(len(my_atoms), cores * 2)

    def task(lo_hi):
        lo, hi = lo_hi
        grid = np.zeros(p.grid_size)  # the private per-thread grid
        for atom in my_atoms[lo:hi]:
            flat, s = atom_contribution(atom, p.grid_dim, p.spacing, p.cutoff)
            np.add.at(grid, flat, s)
            meter.tally_visits(1)
        return grid

    parts = omp_parallel_for(
        comm, costs, [lambda b=b: task(b) for b in sub], schedule="dynamic"
    )
    node_grid = parts[0]
    merged = 0
    for g in parts[1:]:
        node_grid = node_grid + g
        merged += g.size
    comm.compute(costs.combine_seconds(merged))

    total = comm.reduce(node_grid, op=lambda a, b: a + b, root=0)
    if rank != 0:
        return None
    return total.reshape(p.grid_dim)


def run_cmpi_app(
    p: CutcpProblem, machine: MachineSpec, costs: CostContext
) -> AppRun:
    res = run_cmpi(machine, _rank_main, costs, args=(p,))
    return AppRun(
        framework="cmpi",
        value=res.value,
        elapsed=res.makespan,
        bytes_shipped=res.bytes_shipped,
    )
