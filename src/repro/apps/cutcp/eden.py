"""cutcp in Eden (paper §4.5).

Atom chunks are farmed out; every process builds a private full-size
grid with imperative code ("for nested loops that build histograms in
tpacf and cutcp ... we rewrite tasks to use imperative loops and mutable
arrays") and the grids are summed leader-wise.  Shipping one whole grid
per process -- there is no shared memory to sum into -- is the dominant
cost at scale.
"""
from __future__ import annotations

import numpy as np

from repro.apps.common import AppRun, failure
from repro.apps.cutcp.data import CutcpProblem
from repro.apps.cutcp.kernel import atom_contribution
from repro.baselines.eden import EdenRuntime
from repro.cluster.limits import BufferOverflowError
from repro.cluster.machine import MachineSpec
from repro.core import meter
from repro.partition import block_bounds
from repro.runtime.costs import CostContext


def _work(item, payload):
    atoms = item
    grid_dim, spacing, cutoff = payload
    grid = np.zeros(int(np.prod(grid_dim)))
    for atom in atoms:
        flat, s = atom_contribution(atom, tuple(grid_dim), spacing, cutoff)
        np.add.at(grid, flat, s)
        meter.tally_visits(1)
    return grid


def run_eden(
    p: CutcpProblem, machine: MachineSpec, costs: CostContext
) -> AppRun:
    rt = EdenRuntime(machine, costs=costs)
    nitems = min(p.na, rt.nprocs * 2)
    items = [
        p.atoms[lo:hi] for lo, hi in block_bounds(p.na, nitems) if hi > lo
    ]
    payload = (p.grid_dim, p.spacing, p.cutoff)
    try:
        grid = rt.map_reduce(
            items, _work, lambda a, b: a + b, payload, label="cutcp"
        )
    except BufferOverflowError as e:
        return failure("eden", f"message buffer overflow: {e}")
    return AppRun(
        framework="eden",
        value=grid.reshape(p.grid_dim),
        elapsed=rt.elapsed,
        bytes_shipped=sum(r.bytes_shipped for r in rt.runs),
        detail={"items": len(items)},
    )
