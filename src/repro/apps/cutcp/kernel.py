"""cutcp kernel: one atom's contributions to nearby grid points.

The switched 1/r potential of Parboil's cutcp::

    s(r) = q * (1/r) * (1 - (r/c)^2)^2      for 0 < r < c

Each atom visits the grid points inside the bounding box of its cutoff
sphere, skips points outside the sphere (the irregular/conditional part
the paper emphasizes), and contributes ``s(r)`` -- a floating-point
histogram over the flattened grid.
"""
from __future__ import annotations

import numpy as np

from repro.core import meter


def atom_contribution(
    atom: np.ndarray,
    grid_dim: tuple[int, int, int],
    spacing: float,
    cutoff: float,
) -> tuple[np.ndarray, np.ndarray]:
    """(flat grid indices, potential values) for one atom.

    Tallies one visit per grid point *examined* (the box, not just the
    sphere) minus the caller's one-per-atom count, matching the C code's
    loop trip counts.
    """
    az, ay, ax, q = float(atom[0]), float(atom[1]), float(atom[2]), float(atom[3])
    nz, ny, nx = grid_dim
    c2 = cutoff * cutoff

    zlo = max(0, int(np.ceil((az - cutoff) / spacing)))
    zhi = min(nz - 1, int(np.floor((az + cutoff) / spacing)))
    ylo = max(0, int(np.ceil((ay - cutoff) / spacing)))
    yhi = min(ny - 1, int(np.floor((ay + cutoff) / spacing)))
    xlo = max(0, int(np.ceil((ax - cutoff) / spacing)))
    xhi = min(nx - 1, int(np.floor((ax + cutoff) / spacing)))
    if zlo > zhi or ylo > yhi or xlo > xhi:
        meter.tally_inner(1)
        return np.empty(0, dtype=np.int64), np.empty(0)

    zs = spacing * np.arange(zlo, zhi + 1)
    ys = spacing * np.arange(ylo, yhi + 1)
    xs = spacing * np.arange(xlo, xhi + 1)
    dz2 = ((zs - az) ** 2)[:, None, None]
    dy2 = ((ys - ay) ** 2)[None, :, None]
    dx2 = ((xs - ax) ** 2)[None, None, :]
    r2 = dz2 + dy2 + dx2
    examined = r2.size
    meter.tally_inner(examined)

    inside = (r2 < c2) & (r2 > 0.0)
    r = np.sqrt(r2[inside])
    s = q * (1.0 / r) * (1.0 - r2[inside] / c2) ** 2

    gz, gy, gx = np.nonzero(inside)
    flat = ((gz + zlo) * ny + (gy + ylo)) * nx + (gx + xlo)
    return flat, s


# Cap on the padded per-block box tensor (floats); keeps the batched
# form's temporaries bounded regardless of cutoff/spacing.
_BULK_BUDGET = 1 << 22


def atoms_contribution_bulk(
    atoms: np.ndarray,
    grid_dim: tuple[int, int, int],
    spacing: float,
    cutoff: float,
) -> tuple[tuple[np.ndarray, np.ndarray], np.ndarray]:
    """Batched :func:`atom_contribution` (segmented bulk form).

    Returns ``((flat_indices, potentials), lengths)`` with every atom's
    contributions concatenated in atom order.  Each atom's box is padded
    to the block's maximum extent and masked, so the arithmetic per
    grid point -- and the resulting floats, indices, order, and meter
    tallies -- are identical to the per-atom scalar form.
    """
    atoms = np.asarray(atoms)
    m = len(atoms)
    nz, ny, nx = grid_dim
    c2 = cutoff * cutoff
    empty_out = (np.empty(0, dtype=np.int64), np.empty(0))
    if m == 0:
        return empty_out, np.zeros(0, dtype=np.int64)

    az, ay, ax, q = atoms[:, 0], atoms[:, 1], atoms[:, 2], atoms[:, 3]
    zlo = np.maximum(0, np.ceil((az - cutoff) / spacing).astype(np.int64))
    zhi = np.minimum(nz - 1, np.floor((az + cutoff) / spacing).astype(np.int64))
    ylo = np.maximum(0, np.ceil((ay - cutoff) / spacing).astype(np.int64))
    yhi = np.minimum(ny - 1, np.floor((ay + cutoff) / spacing).astype(np.int64))
    xlo = np.maximum(0, np.ceil((ax - cutoff) / spacing).astype(np.int64))
    xhi = np.minimum(nx - 1, np.floor((ax + cutoff) / spacing).astype(np.int64))

    ez = np.maximum(zhi - zlo + 1, 0)
    ey = np.maximum(yhi - ylo + 1, 0)
    ex = np.maximum(xhi - xlo + 1, 0)
    nonempty = (ez > 0) & (ey > 0) & (ex > 0)
    examined = np.where(nonempty, ez * ey * ex, 0)
    meter.tally_visits(int((examined[nonempty] - 1).sum()))

    box_elems = max(1, int(ez.max() * ey.max() * ex.max()))
    block = max(1, _BULK_BUDGET // box_elems)
    lengths = np.zeros(m, dtype=np.int64)
    idx_parts, s_parts = [], []
    for lo_i in range(0, m, block):
        hi_i = min(lo_i + block, m)
        sl = slice(lo_i, hi_i)
        bez, bey, bex = int(ez[sl].max()), int(ey[sl].max()), int(ex[sl].max())
        if bez == 0 or bey == 0 or bex == 0:
            continue
        kz = zlo[sl][:, None] + np.arange(bez)
        ky = ylo[sl][:, None] + np.arange(bey)
        kx = xlo[sl][:, None] + np.arange(bex)
        vz = kz <= zhi[sl][:, None]
        vy = ky <= yhi[sl][:, None]
        vx = kx <= xhi[sl][:, None]
        dz2 = (spacing * kz - az[sl][:, None]) ** 2
        dy2 = (spacing * ky - ay[sl][:, None]) ** 2
        dx2 = (spacing * kx - ax[sl][:, None]) ** 2
        r2 = (
            dz2[:, :, None, None] + dy2[:, None, :, None] + dx2[:, None, None, :]
        )
        box = vz[:, :, None, None] & vy[:, None, :, None] & vx[:, None, None, :]
        inside = box & (r2 < c2) & (r2 > 0.0)
        r2in = r2[inside]
        r = np.sqrt(r2in)
        ai, zi, yi, xi = np.nonzero(inside)
        s = q[sl][ai] * (1.0 / r) * (1.0 - r2in / c2) ** 2
        flat = (kz[ai, zi] * ny + ky[ai, yi]) * nx + kx[ai, xi]
        idx_parts.append(flat)
        s_parts.append(s)
        lengths[sl] = np.bincount(ai, minlength=hi_i - lo_i)
    if not idx_parts:
        return empty_out, lengths
    return (np.concatenate(idx_parts), np.concatenate(s_parts)), lengths

