"""cutcp kernel: one atom's contributions to nearby grid points.

The switched 1/r potential of Parboil's cutcp::

    s(r) = q * (1/r) * (1 - (r/c)^2)^2      for 0 < r < c

Each atom visits the grid points inside the bounding box of its cutoff
sphere, skips points outside the sphere (the irregular/conditional part
the paper emphasizes), and contributes ``s(r)`` -- a floating-point
histogram over the flattened grid.
"""
from __future__ import annotations

import numpy as np

from repro.core import meter


def atom_contribution(
    atom: np.ndarray,
    grid_dim: tuple[int, int, int],
    spacing: float,
    cutoff: float,
) -> tuple[np.ndarray, np.ndarray]:
    """(flat grid indices, potential values) for one atom.

    Tallies one visit per grid point *examined* (the box, not just the
    sphere) minus the caller's one-per-atom count, matching the C code's
    loop trip counts.
    """
    az, ay, ax, q = float(atom[0]), float(atom[1]), float(atom[2]), float(atom[3])
    nz, ny, nx = grid_dim
    c2 = cutoff * cutoff

    zlo = max(0, int(np.ceil((az - cutoff) / spacing)))
    zhi = min(nz - 1, int(np.floor((az + cutoff) / spacing)))
    ylo = max(0, int(np.ceil((ay - cutoff) / spacing)))
    yhi = min(ny - 1, int(np.floor((ay + cutoff) / spacing)))
    xlo = max(0, int(np.ceil((ax - cutoff) / spacing)))
    xhi = min(nx - 1, int(np.floor((ax + cutoff) / spacing)))
    if zlo > zhi or ylo > yhi or xlo > xhi:
        meter.tally_inner(1)
        return np.empty(0, dtype=np.int64), np.empty(0)

    zs = spacing * np.arange(zlo, zhi + 1)
    ys = spacing * np.arange(ylo, yhi + 1)
    xs = spacing * np.arange(xlo, xhi + 1)
    dz2 = ((zs - az) ** 2)[:, None, None]
    dy2 = ((ys - ay) ** 2)[None, :, None]
    dx2 = ((xs - ax) ** 2)[None, None, :]
    r2 = dz2 + dy2 + dx2
    examined = r2.size
    meter.tally_inner(examined)

    inside = (r2 < c2) & (r2 > 0.0)
    r = np.sqrt(r2[inside])
    s = q * (1.0 / r) * (1.0 - r2[inside] / c2) ** 2

    gz, gy, gx = np.nonzero(inside)
    flat = ((gz + zlo) * ny + (gy + ylo)) * nx + (gx + xlo)
    return flat, s
