"""cutcp problem generator.

Atoms with charges in a periodic box, a regular potential grid, and a
cutoff radius.  The grid-to-cutoff ratio matches Parboil's watbox
configurations (cutoff ~ 12 A at 0.5 A grid spacing, i.e. each atom
touches a few thousand grid points), so both the per-atom work and the
output-array-dominated communication shape carry over.
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: paper-scale instance: watbox-like, ~100k atoms, 208^3 grid points.
NOMINAL_ATOMS = 100_000
NOMINAL_GRID = (208, 208, 208)
#: grid points *examined* per atom: the cutoff sphere's bounding box
#: (the loop trip count of the C code; points outside the sphere are the
#: "skips" the paper's irregular loop makes).
NOMINAL_PTS_PER_ATOM = (2 * 12.0 / 0.5) ** 3  # ~110k


@dataclass(frozen=True)
class CutcpProblem:
    atoms: np.ndarray  # (na, 4): x, y, z, q
    grid_dim: tuple[int, int, int]  # (nz, ny, nx)
    spacing: float  # grid spacing h
    cutoff: float  # cutoff radius c
    nominal_atoms: int = NOMINAL_ATOMS
    nominal_grid: tuple[int, int, int] = NOMINAL_GRID

    @property
    def na(self) -> int:
        return len(self.atoms)

    @property
    def grid_size(self) -> int:
        nz, ny, nx = self.grid_dim
        return nz * ny * nx

    @property
    def pts_per_atom(self) -> float:
        """Grid points examined per atom (the cutoff sphere's bounding
        box -- the inner loop's trip count)."""
        return (2 * self.cutoff / self.spacing) ** 3

    @property
    def visits(self) -> float:
        return self.na * self.pts_per_atom

    @property
    def nominal_visits(self) -> float:
        return self.nominal_atoms * NOMINAL_PTS_PER_ATOM

    @property
    def compute_scale(self) -> float:
        return self.nominal_visits / self.visits

    @property
    def wire_scale(self) -> float:
        # Communication is dominated by the output grid (float32 in the
        # paper's C code) plus the atom array.
        nz, ny, nx = self.nominal_grid
        nominal = nz * ny * nx * 4 + self.nominal_atoms * 16
        sandbox = self.grid_size * 8 + self.na * 32
        return nominal / sandbox


def make_problem(
    na: int = 300,
    grid: tuple[int, int, int] = (24, 24, 24),
    spacing: float = 1.0,
    cutoff: float = 4.0,
    seed: int = 0,
) -> CutcpProblem:
    """A seeded sandbox instance: uniform atoms in the grid's box."""
    if na < 1:
        raise ValueError("need at least one atom")
    nz, ny, nx = grid
    if min(grid) < 2:
        raise ValueError("grid must be at least 2 points per axis")
    rng = np.random.default_rng(seed)
    pos = rng.uniform(
        [0, 0, 0],
        [(nz - 1) * spacing, (ny - 1) * spacing, (nx - 1) * spacing],
        size=(na, 3),
    )
    q = rng.uniform(-1.0, 1.0, size=(na, 1))
    return CutcpProblem(
        atoms=np.hstack([pos, q]),
        grid_dim=grid,
        spacing=spacing,
        cutoff=cutoff,
    )
