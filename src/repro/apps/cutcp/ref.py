"""Sequential reference for cutcp."""
from __future__ import annotations

import numpy as np

from repro.apps.cutcp.data import CutcpProblem
from repro.apps.cutcp.kernel import atom_contribution
from repro.core import meter


def solve_ref(p: CutcpProblem) -> np.ndarray:
    """Potential grid: loop atoms, scatter each one's contributions."""
    grid = np.zeros(p.grid_size)
    for atom in p.atoms:
        flat, s = atom_contribution(atom, p.grid_dim, p.spacing, p.cutoff)
        np.add.at(grid, flat, s)
        meter.tally_visits(1)  # the per-atom outer iteration
    return grid.reshape(p.grid_dim)
