"""cutcp in Triolet (paper §1, §4.5).

The §1 Haskell sketch::

    floatHist [f a r | a <- atoms, r <- gridPts a]

i.e. a floating-point histogram over a nested, variable-length traversal:
atoms in parallel, each expanding to a dynamically determined set of
nearby grid points.  Here the program is::

    histogram(grid_size, map(contrib, par(atoms)))

where ``contrib`` yields one atom's (grid indices, potentials) -- the
hybrid-iterator machinery keeps the outer atom loop partitionable while
the irregular inner loop stays fused into the histogram consumer.
Per-task private grids are summed within nodes and then across the tree
reduction; the cost of moving those large output arrays is what saturates
the figure, and the per-task grid allocations are what the §4.5 GC
observation is about.
"""
from __future__ import annotations

from repro.apps.common import AppRun
from repro.apps.cutcp.data import CutcpProblem
from repro.apps.cutcp.kernel import atom_contribution, atoms_contribution_bulk
from repro.core.engine import SEGMENTED, register_bulk
from repro.cluster.faults import FaultPlan
from repro.cluster.limits import RuntimeLimits, UNLIMITED
from repro.cluster.machine import MachineSpec
from repro.runtime import (
    BOEHM_GC,
    DEFAULT_RECOVERY,
    AllocatorModel,
    CheckpointConfig,
    CostContext,
    FailureBudget,
    RecoveryPolicy,
    triolet_runtime,
)
from repro.obs.spans import active as _obs_active, obs_span as _obs_span
from repro.serial import closure, register_function
import repro.triolet as tri


@register_function
def _contrib(grid_dim, spacing, cutoff, atom):
    return atom_contribution(atom, tuple(grid_dim), spacing, cutoff)


def _contrib_bulk(grid_dim, spacing, cutoff, atoms):
    return atoms_contribution_bulk(atoms, tuple(grid_dim), spacing, cutoff)


register_bulk(_contrib, _contrib_bulk, kind=SEGMENTED)


def run_triolet(
    p: CutcpProblem,
    machine: MachineSpec,
    costs: CostContext,
    alloc: AllocatorModel = BOEHM_GC,
    limits: RuntimeLimits = UNLIMITED,
    faults: FaultPlan | None = None,
    recovery: RecoveryPolicy | None = DEFAULT_RECOVERY,
    budget: FailureBudget | None = None,
    checkpoint: CheckpointConfig | None = None,
) -> AppRun:
    with triolet_runtime(
        machine,
        costs=costs,
        alloc=alloc,
        limits=limits,
        faults=faults,
        recovery=recovery,
        budget=budget,
        checkpoint=checkpoint,
    ) as rt:
        # Atoms shard by rows on the data plane; each rank's block stays
        # resident across sections (and across re-executions, modulo
        # crash invalidation).
        atoms = rt.distribute(p.atoms)
        with _obs_span("phase", "potential_hist"):
            contrib = closure(_contrib, list(p.grid_dim), p.spacing, p.cutoff)
            grid = tri.histogram(
                p.grid_size, tri.map(contrib, tri.par(atoms))
            ).reshape(p.grid_dim)
    detail = {
        "gc_time": rt.total_gc_time(),
        "meter": rt.meter_total,
        "data_plane": rt.plane.stats_dict(),
    }
    if _obs_active() is not None:
        detail["obs"] = _obs_active().detail_snapshot()
    if faults is not None or rt.recovery_report.rejected_messages:
        detail["recovery"] = rt.recovery_report
    return AppRun(
        framework="triolet",
        value=grid,
        elapsed=rt.elapsed,
        bytes_shipped=rt.total_bytes_shipped(),
        detail=detail,
    )
