"""Multi-sweep cutcp over slab views: the slice-cache exercise.

The single-pass cutcp program consumes the whole atom array in one
section.  Real MD pipelines re-traverse the same atoms many times with
*shifting* decompositions (neighbour-list rebuilds, multiple potential
terms), which is exactly the access pattern distributed views exist for:
each sweep cuts the resident atom array into contiguous slabs with
:func:`~repro.data.views.slice_view`, so the planner ships only the rows
each slab actually touches.

The schedule is three sweeps over the same handle:

1. **base** -- slabs aligned at ``i * na/nslabs``: first touch, so the
   plane places every row (cold);
2. **offset** -- slab boundaries shifted by half a slab: rows land on
   different ranks than their resident placement, so the plane re-ships
   (placements / cache misses) -- the cost of changing decomposition;
3. **offset again** -- the same shifted slabs: every row is already
   placed or cached where it's needed, so the sweep should be nearly
   all resident/cache *hits* and ship ~zero bytes.

Each sweep accumulates its slab histograms into a full potential grid,
so every sweep independently equals the single-pass result (modulo
floating-point merge order).
"""
from __future__ import annotations

import numpy as np

from repro.apps.common import AppRun
from repro.apps.cutcp.data import CutcpProblem
from repro.apps.cutcp.triolet import _contrib
from repro.cluster.machine import MachineSpec
from repro.obs.spans import obs_span as _obs_span
from repro.runtime import CostContext, triolet_runtime
from repro.serial import closure
import repro.triolet as tri

__all__ = ["slab_bounds", "run_sweeps"]


def slab_bounds(na: int, nslabs: int, shift: int = 0) -> list[tuple[int, int]]:
    """Contiguous slabs tiling ``[0, na)``, boundaries shifted by *shift*
    rows (the first and last slab absorb the shift)."""
    if nslabs < 1:
        raise ValueError("need at least one slab")
    cuts = [0]
    for i in range(1, nslabs):
        cuts.append(min(na, max(0, i * na // nslabs + shift)))
    cuts.append(na)
    cuts = sorted(cuts)
    return [(lo, hi) for lo, hi in zip(cuts, cuts[1:]) if hi > lo]


def run_sweeps(
    p: CutcpProblem,
    machine: MachineSpec,
    costs: CostContext | None = None,
    nslabs: int = 3,
) -> AppRun:
    """Run the base / offset / offset-again sweep schedule."""
    if costs is None:
        costs = CostContext()
    na = p.na
    shift = (na // nslabs) // 2
    schedule = [
        ("base", slab_bounds(na, nslabs)),
        ("offset", slab_bounds(na, nslabs, shift)),
        ("offset-again", slab_bounds(na, nslabs, shift)),
    ]
    per_sweep = []
    with triolet_runtime(machine, costs=costs) as rt:
        atoms = rt.distribute(p.atoms)
        contrib = closure(_contrib, list(p.grid_dim), p.spacing, p.cutoff)
        grid = None
        for name, bounds in schedule:
            before = dict(rt.plane.totals)
            cache_before = rt.plane.cache_stats()
            with _obs_span("phase", f"sweep_{name}"):
                grid = np.zeros(p.grid_size)
                for lo, hi in bounds:
                    slab = tri.slice_view(atoms, lo, hi)
                    grid += tri.histogram(
                        p.grid_size, tri.map(contrib, tri.par(slab))
                    )
            after = rt.plane.totals
            cache_after = rt.plane.cache_stats()
            per_sweep.append(
                {
                    "sweep": name,
                    "slabs": list(bounds),
                    **{
                        k: after[k] - before[k]
                        for k in (
                            "requests",
                            "resident_hits",
                            "placements",
                            "migrations",
                            "cache_hits",
                            "cache_misses",
                            "input_bytes",
                            "placed_bytes",
                        )
                    },
                    "cache_hits_global": cache_after["hits"]
                    - cache_before["hits"],
                    "cache_misses_global": cache_after["misses"]
                    - cache_before["misses"],
                }
            )
        value = grid.reshape(p.grid_dim)
        detail = {
            "per_sweep": per_sweep,
            "data_plane": rt.plane.stats_dict(),
        }
    return AppRun(
        framework="triolet",
        value=value,
        elapsed=rt.elapsed,
        bytes_shipped=rt.total_bytes_shipped(),
        detail=detail,
    )
