"""cutcp: cutoff Coulombic potential on a 3-D grid (paper §4.5).

"It computes the electrostatic potential induced by a collection of
charged atoms at all points on a grid ...  The body of the computation is
essentially a floating-point histogram: it loops over atoms, loops over
nearby grid points, skips points that are not within distance c, and
updates the grid at the remaining points."
"""
from repro.apps.cutcp.data import CutcpProblem, make_problem
from repro.apps.cutcp.ref import solve_ref
from repro.apps.cutcp.triolet import run_triolet
from repro.apps.cutcp.eden import run_eden
from repro.apps.cutcp.cmpi import run_cmpi_app

__all__ = [
    "CutcpProblem",
    "make_problem",
    "solve_ref",
    "run_triolet",
    "run_eden",
    "run_cmpi_app",
]
