"""mri-q in Eden (paper §4.2).

"In Eden, we build arrays in chunked form, as lists of 1k-element
vectors, so that the runtime can distribute subarrays to processors while
still benefiting from efficient array traversal."  Work items are pixel
chunks; the k-space arrays are the farm payload, replicated to every
*process* (not node -- Eden has no shared memory).  The straggler model
reproduces "tasks occasionally run significantly slower than normal".
"""
from __future__ import annotations

import numpy as np

from repro.apps.common import AppRun
from repro.apps.mriq.data import MriqProblem
from repro.apps.mriq.kernel import q_for_pixels
from repro.baselines.eden import EdenRuntime, StragglerModel, chunk_array
from repro.cluster.machine import MachineSpec
from repro.core import meter
from repro.runtime.costs import CostContext

#: §4.2 observation: "tasks occasionally run significantly slower than
#: normal.  With more nodes, it is more likely that a task will be
#: delayed, reducing the observed scalability."
MRIQ_STRAGGLER = StragglerModel(probability=0.04, min_factor=1.5, max_factor=3.0)


def _work(item, payload):
    idx, xc, yc, zc = item
    kx, ky, kz, mag = payload
    q = q_for_pixels(xc, yc, zc, kx, ky, kz, mag)
    meter.tally_visits(len(xc))  # the per-pixel outer iterations
    return (idx, q)


def run_eden(
    p: MriqProblem,
    machine: MachineSpec,
    costs: CostContext,
    straggler: StragglerModel = MRIQ_STRAGGLER,
) -> AppRun:
    rt = EdenRuntime(machine, costs=costs, straggler=straggler)
    # ~4 chunks per process so an occasional delayed task averages out
    # instead of stretching a whole process's assignment.
    chunk = max(1, min(1024, p.npix // max(1, 4 * rt.nprocs)))
    xs = chunk_array(p.x, chunk)
    ys = chunk_array(p.y, chunk)
    zs = chunk_array(p.z, chunk)
    items = [(i, xc, yc, zc) for i, (xc, yc, zc) in enumerate(zip(xs, ys, zs))]
    payload = (p.kx, p.ky, p.kz, p.mag)
    results = rt.map_collect(items, _work, payload, label="mriq")
    results.sort(key=lambda t: t[0])
    Q = np.concatenate([q for _, q in results])
    return AppRun(
        framework="eden",
        value=Q,
        elapsed=rt.elapsed,
        bytes_shipped=sum(r.bytes_shipped for r in rt.runs),
        detail={"chunks": len(items), "procs": rt.nprocs},
    )
