"""mri-q in Triolet (paper §4.2).

The paper's whole program::

    [sum(ftcoeff(k, r) for k in ks) for r in par(zip3(x, y, z))]

Here: a parallel map over pixels (``par(zip(x, y, z))``), each element
summing contributions from all k-space samples.  The pixel coordinate
arrays are partitioned across nodes by the iterator's sliced sources; the
k-space arrays ride in the element function's closure environment, i.e.
they are replicated to every node -- exactly the data movement the paper
describes.
"""
from __future__ import annotations

import numpy as np

from repro.apps.common import AppRun
from repro.apps.mriq.data import MriqProblem
from repro.apps.mriq.kernel import q_for_one_pixel, q_for_pixels_bulk
from repro.core.engine import register_bulk
from repro.cluster.faults import FaultPlan
from repro.cluster.limits import RuntimeLimits, UNLIMITED
from repro.cluster.machine import MachineSpec
from repro.runtime import (
    BOEHM_GC,
    DEFAULT_RECOVERY,
    AllocatorModel,
    CheckpointConfig,
    CostContext,
    FailureBudget,
    RecoveryPolicy,
    triolet_runtime,
)
from repro.obs.spans import active as _obs_active, obs_span as _obs_span
from repro.serial import closure, register_function
import repro.triolet as tri


@register_function
def _pixel_q(kx, ky, kz, mag, r):
    x, y, z = r
    return q_for_one_pixel(x, y, z, kx, ky, kz, mag)


def _pixel_q_bulk(kx, ky, kz, mag, rs):
    xs, ys, zs = rs
    return q_for_pixels_bulk(kx, ky, kz, mag, xs, ys, zs)


register_bulk(_pixel_q, _pixel_q_bulk)


def run_triolet(
    p: MriqProblem,
    machine: MachineSpec,
    costs: CostContext,
    alloc: AllocatorModel = BOEHM_GC,
    limits: RuntimeLimits = UNLIMITED,
    faults: FaultPlan | None = None,
    recovery: RecoveryPolicy | None = DEFAULT_RECOVERY,
    budget: FailureBudget | None = None,
    checkpoint: CheckpointConfig | None = None,
) -> AppRun:
    with triolet_runtime(
        machine,
        costs=costs,
        alloc=alloc,
        limits=limits,
        faults=faults,
        recovery=recovery,
        budget=budget,
        checkpoint=checkpoint,
    ) as rt:
        # Pixel coordinates shard by rows; the k-space arrays ride in the
        # closure environment, i.e. replicated -- all as resident handles,
        # shipped to each rank at most once.
        with _obs_span("phase", "distribute"):
            x, y, z = (rt.distribute(p.x), rt.distribute(p.y),
                       rt.distribute(p.z))
            kx = rt.distribute(p.kx, layout="replicated")
            ky = rt.distribute(p.ky, layout="replicated")
            kz = rt.distribute(p.kz, layout="replicated")
            mag = rt.distribute(p.mag, layout="replicated")
        with _obs_span("phase", "pixel_map"):
            pixel_fn = closure(_pixel_q, kx, ky, kz, mag)
            Q = tri.build(tri.map(pixel_fn, tri.par(tri.zip(x, y, z))))
    detail = {
        "sections": [s.label for s in rt.sections],
        "meter": rt.meter_total,
        "data_plane": rt.plane.stats_dict(),
    }
    if _obs_active() is not None:
        detail["obs"] = _obs_active().detail_snapshot()
    if faults is not None or rt.recovery_report.rejected_messages:
        detail["recovery"] = rt.recovery_report
    return AppRun(
        framework="triolet",
        value=np.asarray(Q),
        elapsed=rt.elapsed,
        bytes_shipped=rt.total_bytes_shipped(),
        detail=detail,
    )
