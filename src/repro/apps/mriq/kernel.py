"""The mri-q numerical kernel, shared by every framework.

``ftcoeff`` is the paper's per-(sample, pixel) contribution; the chunk
form evaluates a block of pixels against all samples with numpy, which is
how every framework's inner task runs (the paper's inner loops are tight
native code in all three languages; the comparison lives in distribution
and overhead, not in the arithmetic).
"""
from __future__ import annotations

import numpy as np

from repro.core import meter

TWO_PI = 2.0 * np.pi


def ftcoeff(kx, ky, kz, mag, x, y, z) -> complex:
    """One sample's contribution to one pixel (scalar form)."""
    phase = TWO_PI * (kx * x + ky * y + kz * z)
    return complex(mag * np.cos(phase), mag * np.sin(phase))


def q_for_pixels(
    xs: np.ndarray,
    ys: np.ndarray,
    zs: np.ndarray,
    kx: np.ndarray,
    ky: np.ndarray,
    kz: np.ndarray,
    mag: np.ndarray,
) -> np.ndarray:
    """Q values for a block of pixels: sum over all k-space samples.

    Tallies ``len(xs) * len(kx)`` visits minus the ones the caller's
    library already counted per pixel.
    """
    phase = TWO_PI * (
        np.outer(xs, kx) + np.outer(ys, ky) + np.outer(zs, kz)
    )
    re = np.sum(np.cos(phase) * mag, axis=1)
    im = np.sum(np.sin(phase) * mag, axis=1)
    n = len(xs) * len(kx)
    meter.tally_visits(max(0, n - len(xs)))
    return re + 1j * im


def q_for_one_pixel(x, y, z, kx, ky, kz, mag) -> complex:
    """Q value of a single pixel (the Triolet element function).

    The sample sum is ``np.sum`` over elementwise products (not BLAS
    ``@``) so the batched form below reproduces it bit-for-bit.
    """
    phase = TWO_PI * (kx * x + ky * y + kz * z)
    meter.tally_inner(len(kx))
    return complex(
        np.sum(np.cos(phase) * mag), np.sum(np.sin(phase) * mag)
    )


def q_for_pixels_bulk(
    kx, ky, kz, mag, xs, ys, zs
) -> np.ndarray:
    """Batched :func:`q_for_one_pixel`: same phases, same per-row sums.

    Meters exactly like ``len(xs)`` scalar calls.
    """
    n = len(xs)
    phase = TWO_PI * (kx * np.asarray(xs)[:, None] + ky * np.asarray(ys)[:, None] + kz * np.asarray(zs)[:, None])
    out = np.empty(n, dtype=complex)
    out.real = np.sum(np.cos(phase) * mag, axis=1)
    out.imag = np.sum(np.sin(phase) * mag, axis=1)
    meter.tally_visits(n * max(len(kx) - 1, 0))
    return out
