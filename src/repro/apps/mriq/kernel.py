"""The mri-q numerical kernel, shared by every framework.

``ftcoeff`` is the paper's per-(sample, pixel) contribution; the chunk
form evaluates a block of pixels against all samples with numpy, which is
how every framework's inner task runs (the paper's inner loops are tight
native code in all three languages; the comparison lives in distribution
and overhead, not in the arithmetic).
"""
from __future__ import annotations

import numpy as np

from repro.core import meter

TWO_PI = 2.0 * np.pi


def ftcoeff(kx, ky, kz, mag, x, y, z) -> complex:
    """One sample's contribution to one pixel (scalar form)."""
    phase = TWO_PI * (kx * x + ky * y + kz * z)
    return complex(mag * np.cos(phase), mag * np.sin(phase))


def q_for_pixels(
    xs: np.ndarray,
    ys: np.ndarray,
    zs: np.ndarray,
    kx: np.ndarray,
    ky: np.ndarray,
    kz: np.ndarray,
    mag: np.ndarray,
) -> np.ndarray:
    """Q values for a block of pixels: sum over all k-space samples.

    Tallies ``len(xs) * len(kx)`` visits minus the ones the caller's
    library already counted per pixel.
    """
    phase = TWO_PI * (
        np.outer(xs, kx) + np.outer(ys, ky) + np.outer(zs, kz)
    )
    re = np.cos(phase) @ mag
    im = np.sin(phase) @ mag
    n = len(xs) * len(kx)
    meter.tally_visits(max(0, n - len(xs)))
    return re + 1j * im


def q_for_one_pixel(x, y, z, kx, ky, kz, mag) -> complex:
    """Q value of a single pixel (the Triolet element function)."""
    phase = TWO_PI * (kx * x + ky * y + kz * z)
    meter.tally_inner(len(kx))
    return complex(np.cos(phase) @ mag, np.sin(phase) @ mag)
