"""Sequential reference for mri-q (the "sequential C" numerics)."""
from __future__ import annotations

import numpy as np

from repro.apps.mriq.data import MriqProblem
from repro.apps.mriq.kernel import q_for_pixels
from repro.core import meter

_CHUNK = 2048  # bound the npix x nk temporary


def solve_ref(p: MriqProblem) -> np.ndarray:
    """Q for every pixel; tallies exactly ``npix * nk`` visits."""
    out = np.empty(p.npix, dtype=np.complex128)
    for lo in range(0, p.npix, _CHUNK):
        hi = min(lo + _CHUNK, p.npix)
        out[lo:hi] = q_for_pixels(
            p.x[lo:hi], p.y[lo:hi], p.z[lo:hi], p.kx, p.ky, p.kz, p.mag
        )
        # q_for_pixels leaves one visit per pixel to the caller's loop.
        meter.tally_visits(hi - lo)
    return out
