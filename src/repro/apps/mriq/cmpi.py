"""mri-q in C+MPI+OpenMP style (paper §4.2).

"C+MPI+OpenMP is the most verbose, dedicating more code to partitioning
data across MPI ranks than to the actual numerical computation.  While
mri-q's communication pattern fits MPI's scatter, gather, and broadcast
primitives, these were not as efficient as the Triolet code; the fastest
version used nonblocking, point-to-point messaging."  This rank program
does the same: explicit block bounds, point-to-point buffer sends of the
coordinate slices, a broadcast of the k-space arrays, an OpenMP parallel
for over the local pixels, and point-to-point gathers of the image.
"""
from __future__ import annotations

import numpy as np

from repro.apps.common import AppRun
from repro.apps.mriq.data import MriqProblem
from repro.apps.mriq.kernel import q_for_pixels
from repro.baselines.cmpi import omp_parallel_for, run_cmpi
from repro.cluster.comm import Comm
from repro.cluster.machine import MachineSpec
from repro.core import meter
from repro.partition import block_bounds
from repro.runtime.costs import CostContext

_X, _Y, _Z, _KS, _Q = 11, 12, 13, 14, 15


def _rank_main(comm: Comm, costs: CostContext, p: MriqProblem):
    rank, size = comm.rank, comm.size
    bounds = block_bounds(p.npix, size)

    # -- explicit data partitioning (the verbose part) -------------------
    if rank == 0:
        for dst in range(1, size):
            lo, hi = bounds[dst]
            comm.Send(p.x[lo:hi], dst, _X)
            comm.Send(p.y[lo:hi], dst, _Y)
            comm.Send(p.z[lo:hi], dst, _Z)
        lo, hi = bounds[0]
        x, y, z = p.x[lo:hi], p.y[lo:hi], p.z[lo:hi]
        ks = (p.kx, p.ky, p.kz, p.mag)
    else:
        x = comm.Recv(0, _X)
        y = comm.Recv(0, _Y)
        z = comm.Recv(0, _Z)
        ks = None
    kx, ky, kz, mag = comm.bcast(ks, root=0)

    # -- local compute: OpenMP parallel for over pixel blocks -------------
    cores = comm.ctx.machine.cores_per_node
    sub = block_bounds(len(x), cores * 2)

    def task(lo_hi):
        lo, hi = lo_hi
        q = q_for_pixels(x[lo:hi], y[lo:hi], z[lo:hi], kx, ky, kz, mag)
        meter.tally_visits(hi - lo)
        return q

    parts = omp_parallel_for(comm, costs, [lambda b=b: task(b) for b in sub])
    q_local = np.concatenate(parts) if parts else np.empty(0, np.complex128)

    # -- gather the image at the root -------------------------------------
    if rank == 0:
        Q = np.empty(p.npix, dtype=np.complex128)
        Q[bounds[0][0] : bounds[0][1]] = q_local
        for src in range(1, size):
            lo, hi = bounds[src]
            Q[lo:hi] = comm.Recv(src, _Q)
        return Q
    comm.Send(q_local, 0, _Q)
    return None


def run_cmpi_app(
    p: MriqProblem, machine: MachineSpec, costs: CostContext
) -> AppRun:
    res = run_cmpi(machine, _rank_main, costs, args=(p,))
    return AppRun(
        framework="cmpi",
        value=res.value,
        elapsed=res.makespan,
        bytes_shipped=res.bytes_shipped,
    )
