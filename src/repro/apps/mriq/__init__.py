"""mri-q: non-uniform 3-D inverse Fourier transform (paper §4.2).

"The main loop of mri-q computes a non-uniform 3D inverse Fourier
transform to create a 3D image ...  This consists of a parallel map over
image pixels, summing contributions from all frequency-domain samples."
"""
from repro.apps.mriq.data import MriqProblem, make_problem
from repro.apps.mriq.ref import solve_ref
from repro.apps.mriq.triolet import run_triolet
from repro.apps.mriq.eden import run_eden
from repro.apps.mriq.cmpi import run_cmpi_app

__all__ = [
    "MriqProblem",
    "make_problem",
    "solve_ref",
    "run_triolet",
    "run_eden",
    "run_cmpi_app",
]
