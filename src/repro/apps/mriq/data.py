"""mri-q problem generator.

The Parboil datasets carry real k-space trajectories; we generate seeded
random trajectories and pixel coordinates with the same shapes.  The
compute shape (``npix x nk`` multiply-accumulate with sin/cos) and the
communication shape (pixel coordinates partitioned, k-space samples
replicated, complex image gathered) are what the figures depend on.

``nominal_*`` give the paper-scale instance (sequential C in the 20-200 s
window on one 2012 Xeon core); ``compute_scale``/``wire_scale`` map the
sandbox-sized run onto it (DESIGN.md §5).
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: paper-scale instance: 64^3 image, 3072 k-space samples
NOMINAL_NPIX = 64**3
NOMINAL_NK = 3072


@dataclass(frozen=True)
class MriqProblem:
    x: np.ndarray  # pixel coordinates, length npix
    y: np.ndarray
    z: np.ndarray
    kx: np.ndarray  # k-space trajectory, length nk
    ky: np.ndarray
    kz: np.ndarray
    mag: np.ndarray  # |phi_k|^2, length nk
    nominal_npix: int = NOMINAL_NPIX
    nominal_nk: int = NOMINAL_NK

    @property
    def npix(self) -> int:
        return len(self.x)

    @property
    def nk(self) -> int:
        return len(self.kx)

    @property
    def visits(self) -> int:
        """Sandbox work: one visit per (pixel, sample) pair."""
        return self.npix * self.nk

    @property
    def nominal_visits(self) -> int:
        return self.nominal_npix * self.nominal_nk

    @property
    def compute_scale(self) -> float:
        return self.nominal_visits / self.visits

    @property
    def wire_scale(self) -> float:
        sandbox = (3 * self.npix + 4 * self.nk) * 8 + 16 * self.npix
        nominal = (3 * self.nominal_npix + 4 * self.nominal_nk) * 8 + (
            16 * self.nominal_npix
        )
        return nominal / sandbox


def make_problem(
    npix: int = 4096, nk: int = 256, seed: int = 0
) -> MriqProblem:
    """A seeded sandbox instance with realistic value distributions."""
    if npix < 1 or nk < 1:
        raise ValueError("npix and nk must be positive")
    rng = np.random.default_rng(seed)
    # Pixel coordinates span a normalized FOV, as in Parboil's datasets.
    x, y, z = (rng.uniform(-0.5, 0.5, npix) for _ in range(3))
    # k-space trajectory: radial-ish shells.
    kx, ky, kz = (rng.uniform(-64.0, 64.0, nk) for _ in range(3))
    mag = rng.uniform(0.0, 1.0, nk) ** 2
    return MriqProblem(x=x, y=y, z=z, kx=kx, ky=ky, kz=kz, mag=mag)
