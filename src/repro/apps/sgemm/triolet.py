"""sgemm in Triolet (paper §2, §4.3).

The decomposition is the paper's two-liner::

    zipped_AB = outerproduct(rows(A), rows(BT))
    AB = [dot(u, v) for (u, v) in par(zipped_AB)]

plus the transposition, "parallelize[d] over shared memory on a single
node" with ``localpar``.  The 2-D block distribution and per-block row
shipping fall out of the outer-product source's slice method -- no
explicit partitioning code.
"""
from __future__ import annotations

import numpy as np

from repro.apps.common import AppRun
from repro.apps.sgemm.data import SgemmProblem
from repro.apps.sgemm.kernel import row_dot, row_dots_bulk
from repro.core.engine import register_bulk
from repro.cluster.faults import FaultPlan
from repro.cluster.limits import RuntimeLimits, UNLIMITED
from repro.cluster.machine import MachineSpec
from repro.runtime import (
    BOEHM_GC,
    DEFAULT_RECOVERY,
    AllocatorModel,
    CheckpointConfig,
    CostContext,
    FailureBudget,
    RecoveryPolicy,
    triolet_runtime,
)
from repro.obs.spans import active as _obs_active, obs_span as _obs_span
from repro.serial import closure, register_function
import repro.triolet as tri


@register_function
def _transpose_elem(B, yx):
    y, x = yx
    return B[x, y]


@register_function
def _dot_elem(alpha, uv):
    u, v = uv
    return row_dot(u, v, alpha)


def _transpose_bulk(B, yx):
    ys, xs = yx
    return B[xs, ys]


def _dot_bulk(alpha, uvs):
    us, vs = uvs
    return row_dots_bulk(us, vs, alpha)


register_bulk(_transpose_elem, _transpose_bulk)
register_bulk(_dot_elem, _dot_bulk)


def run_triolet(
    p: SgemmProblem,
    machine: MachineSpec,
    costs: CostContext,
    alloc: AllocatorModel = BOEHM_GC,
    limits: RuntimeLimits = UNLIMITED,
    faults: FaultPlan | None = None,
    recovery: RecoveryPolicy | None = DEFAULT_RECOVERY,
    budget: FailureBudget | None = None,
    checkpoint: CheckpointConfig | None = None,
) -> AppRun:
    with triolet_runtime(
        machine,
        costs=costs,
        alloc=alloc,
        limits=limits,
        faults=faults,
        recovery=recovery,
        budget=budget,
        checkpoint=checkpoint,
    ) as rt:
        # Transposition does too little work per byte for distributed
        # memory; localpar uses one node's cores over shared memory.
        with _obs_span("phase", "transpose"):
            BT = tri.build(
                tri.map(
                    closure(_transpose_elem, p.B),
                    tri.localpar(tri.arrayRange((p.m, p.k))),
                )
            )
        transpose_time = rt.elapsed

        # A and the locally built BT become resident handles: the 2-D
        # block grid's row/column slices resolve against rank shards (or
        # the slice cache, when grid blocks straddle shard boundaries).
        with _obs_span("phase", "matmul"):
            A = rt.distribute(p.A)
            BTh = rt.distribute(BT)
            zipped_AB = tri.outerproduct(tri.rows(A), tri.rows(BTh))
            AB = tri.build(
                tri.map(closure(_dot_elem, p.alpha), tri.par(zipped_AB))
            )
    detail = {
        "transpose_time": transpose_time,
        "partition": rt.last_section.partition,
        "gc_time": rt.total_gc_time(),
        "meter": rt.meter_total,
        "data_plane": rt.plane.stats_dict(),
    }
    if _obs_active() is not None:
        detail["obs"] = _obs_active().detail_snapshot()
    if faults is not None or rt.recovery_report.rejected_messages:
        detail["recovery"] = rt.recovery_report
    return AppRun(
        framework="triolet",
        value=np.asarray(AB),
        elapsed=rt.elapsed,
        bytes_shipped=rt.total_bytes_shipped(),
        detail=detail,
    )
