"""sgemm problem generator.

The paper multiplies two 4096 x 4096 single-precision matrices.  The
sandbox instance is a smaller square product with the same structure;
``compute_scale`` maps the n*m*k multiply-accumulate count and
``wire_scale`` the matrix-row byte volumes onto the 4k x 4k instance.
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

NOMINAL_N = 4096  # paper: 4k x 4k matrices


@dataclass(frozen=True)
class SgemmProblem:
    A: np.ndarray  # n x k
    B: np.ndarray  # k x m
    alpha: float
    nominal_n: int = NOMINAL_N

    @property
    def n(self) -> int:
        return self.A.shape[0]

    @property
    def k(self) -> int:
        return self.A.shape[1]

    @property
    def m(self) -> int:
        return self.B.shape[1]

    @property
    def visits(self) -> int:
        """Multiply-accumulates plus the transpose's element moves."""
        return self.n * self.m * self.k + self.k * self.m

    @property
    def nominal_visits(self) -> int:
        return self.nominal_n**3 + self.nominal_n**2

    @property
    def compute_scale(self) -> float:
        return self.nominal_visits / self.visits

    @property
    def wire_scale(self) -> float:
        # Matrices are float32 in the paper; bytes scale with n^2.
        sandbox = (self.n * self.k + self.k * self.m + self.n * self.m) * self.A.dtype.itemsize
        nominal = 3 * self.nominal_n**2 * 4
        return nominal / sandbox


def make_problem(n: int = 96, alpha: float = 1.5, seed: int = 0) -> SgemmProblem:
    """A seeded square sandbox instance (``n x n`` times ``n x n``)."""
    if n < 1:
        raise ValueError("matrix extent must be positive")
    rng = np.random.default_rng(seed)
    A = rng.standard_normal((n, n))
    B = rng.standard_normal((n, n))
    return SgemmProblem(A=A, B=B, alpha=alpha)
