"""sgemm: scaled dense matrix multiply (paper §4.3).

"The scaled product alpha*A*B of two 4k by 4k-element matrices is
computed in sgemm.  We parallelize the multiplication after transposing
matrices so that the innermost loop accesses contiguous matrix elements."
All versions use the 2-D block decomposition that sends each worker only
the input matrix rows it needs.
"""
from repro.apps.sgemm.data import SgemmProblem, make_problem
from repro.apps.sgemm.ref import solve_ref
from repro.apps.sgemm.triolet import run_triolet
from repro.apps.sgemm.eden import run_eden
from repro.apps.sgemm.cmpi import run_cmpi_app

__all__ = [
    "SgemmProblem",
    "make_problem",
    "solve_ref",
    "run_triolet",
    "run_eden",
    "run_cmpi_app",
]
