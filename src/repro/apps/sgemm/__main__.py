"""CLI: ``python -m repro.apps.sgemm`` -- run this benchmark."""
import sys

from repro.apps.common import app_main

if __name__ == "__main__":
    sys.exit(app_main("sgemm"))
