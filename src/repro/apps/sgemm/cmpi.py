"""sgemm in C+MPI+OpenMP style (paper §4.3).

The hand-written version: the root transposes B with OpenMP over shared
memory, computes the 2-D process grid, sends each rank exactly the A-row
and BT-row slices its output block needs (the "over 120 lines of code"
the paper complains about -- here it is still the longest rank program in
this repo), and each rank multiplies its block under an OpenMP parallel
for before the root reassembles the product.
"""
from __future__ import annotations

import numpy as np

from repro.apps.common import AppRun
from repro.apps.sgemm.data import SgemmProblem
from repro.apps.sgemm.kernel import block_product
from repro.baselines.cmpi import omp_parallel_for, run_cmpi
from repro.cluster.comm import Comm
from repro.cluster.machine import MachineSpec
from repro.core import meter
from repro.partition import block2d_bounds, block_bounds, grid_shape
from repro.runtime.costs import CostContext

_AROWS, _BROWS, _BLOCK = 21, 22, 23


def _rank_main(comm: Comm, costs: CostContext, p: SgemmProblem):
    rank, size = comm.rank, comm.size
    py, px = grid_shape(size, p.n, p.m)
    blocks = block2d_bounds(p.n, p.m, py, px)

    if rank == 0:
        # OpenMP transpose over shared memory at the root node.
        strips = block_bounds(p.m, comm.ctx.machine.cores_per_node)

        def transpose_strip(lo_hi):
            lo, hi = lo_hi
            out = np.ascontiguousarray(p.B.T[lo:hi])
            meter.tally_visits(out.size)
            return out

        parts = omp_parallel_for(
            comm, costs, [lambda s=s: transpose_strip(s) for s in strips]
        )
        BT = np.concatenate(parts, axis=0)

        # Ship each rank exactly the rows covering its block.
        for dst in range(1, size):
            (ylo, yhi), (xlo, xhi) = blocks[dst]
            comm.Send(p.A[ylo:yhi], dst, _AROWS)
            comm.Send(BT[xlo:xhi], dst, _BROWS)
        (ylo, yhi), (xlo, xhi) = blocks[0]
        a_rows, bt_rows = p.A[ylo:yhi], BT[xlo:xhi]
    else:
        a_rows = comm.Recv(0, _AROWS)
        bt_rows = comm.Recv(0, _BROWS)

    # Local block product under an OpenMP parallel for over row strips.
    cores = comm.ctx.machine.cores_per_node
    strips = block_bounds(a_rows.shape[0], cores)

    def strip_product(lo_hi):
        lo, hi = lo_hi
        return block_product(a_rows[lo:hi], bt_rows, p.alpha)

    parts = omp_parallel_for(
        comm, costs, [lambda s=s: strip_product(s) for s in strips]
    )
    my_block = (
        np.concatenate([q for q in parts if q.size], axis=0)
        if any(q.size for q in parts)
        else np.empty((0, bt_rows.shape[0]))
    )

    # Reassemble at the root.
    if rank == 0:
        AB = np.empty((p.n, p.m), dtype=p.A.dtype)
        (ylo, yhi), (xlo, xhi) = blocks[0]
        AB[ylo:yhi, xlo:xhi] = my_block
        for src in range(1, size):
            (ylo, yhi), (xlo, xhi) = blocks[src]
            AB[ylo:yhi, xlo:xhi] = comm.Recv(src, _BLOCK)
        return AB
    comm.Send(my_block, 0, _BLOCK)
    return None


def run_cmpi_app(
    p: SgemmProblem, machine: MachineSpec, costs: CostContext
) -> AppRun:
    res = run_cmpi(machine, _rank_main, costs, args=(p,))
    return AppRun(
        framework="cmpi",
        value=res.value,
        elapsed=res.makespan,
        bytes_shipped=res.bytes_shipped,
    )
