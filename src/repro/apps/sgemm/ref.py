"""Sequential reference for sgemm."""
from __future__ import annotations

import numpy as np

from repro.apps.sgemm.data import SgemmProblem
from repro.apps.sgemm.kernel import block_product, transpose_elements


def solve_ref(p: SgemmProblem) -> np.ndarray:
    """alpha*A*B via the transposed inner kernel; tallies n*m*k + k*m."""
    BT = transpose_elements(p.B)
    return block_product(p.A, BT, p.alpha)
