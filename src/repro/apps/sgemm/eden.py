"""sgemm in Eden (paper §4.3).

Two observations from the paper, both reproduced here:

* "Transposition is a sequential bottleneck in Eden since it does too
  little work to parallelize profitably on distributed memory ...  At 128
  cores, transposition takes 35% of Eden's execution time."  The
  transpose runs at the main process.
* "The Eden code fails at 2 nodes because the array data is too large for
  Eden's message-passing runtime to buffer."  Work items embody their
  A-rows and BT-rows (Eden cannot slice lazily); the per-node bundles the
  two-level skeleton sends exceed the runtime's message buffer once they
  cross the network, raising :class:`BufferOverflowError`.
"""
from __future__ import annotations

import numpy as np

from repro.apps.common import AppRun, failure
from repro.apps.sgemm.data import SgemmProblem
from repro.apps.sgemm.kernel import block_product, transpose_elements
from repro.baselines.eden import EdenRuntime
from repro.cluster.limits import BufferOverflowError
from repro.cluster.machine import MachineSpec
from repro.partition import block2d_bounds, grid_shape
from repro.runtime.costs import CostContext


def _work(item, _payload):
    block_id, a_rows, bt_rows, alpha = item
    return (block_id, block_product(a_rows, bt_rows, alpha))


def run_eden(
    p: SgemmProblem, machine: MachineSpec, costs: CostContext
) -> AppRun:
    rt = EdenRuntime(machine, costs=costs)

    # Sequential transposition at the main process (the §4.3 bottleneck).
    BT = rt.run_sequential(lambda: transpose_elements(p.B), label="transpose")
    transpose_time = rt.elapsed

    # 2-D block decomposition with the data embodied in each work item.
    py, px = grid_shape(rt.nprocs, p.n, p.m)
    blocks = block2d_bounds(p.n, p.m, py, px)
    items = [
        (bid, p.A[ylo:yhi], BT[xlo:xhi], p.alpha)
        for bid, ((ylo, yhi), (xlo, xhi)) in enumerate(blocks)
    ]
    try:
        results = rt.map_collect(items, _work, payload=None, label="sgemm")
    except BufferOverflowError as e:
        return failure("eden", f"message buffer overflow: {e}")
    results.sort(key=lambda t: t[0])
    AB = np.block(
        [
            [results[r * px + c][1] for c in range(px)]
            for r in range(py)
        ]
    )
    return AppRun(
        framework="eden",
        value=AB,
        elapsed=rt.elapsed,
        bytes_shipped=sum(r.bytes_shipped for r in rt.runs),
        detail={"transpose_time": transpose_time, "grid": (py, px)},
    )
