"""sgemm kernels shared by the frameworks."""
from __future__ import annotations

import numpy as np

from repro.core import meter


def block_product(
    a_rows: np.ndarray, bt_rows: np.ndarray, alpha: float
) -> np.ndarray:
    """alpha * (rows of A) @ (rows of B^T)^T for one output block.

    Both operands are row-major slices so the inner loop streams
    contiguous memory -- the reason all versions transpose B first.
    Tallies one visit per multiply-accumulate.
    """
    out = alpha * (a_rows @ bt_rows.T)
    meter.tally_visits(a_rows.shape[0] * bt_rows.shape[0] * a_rows.shape[1])
    return out


def row_dot(u: np.ndarray, v: np.ndarray, alpha: float) -> float:
    """One output element (the Triolet element function).

    ``np.sum`` over the elementwise product (not BLAS ``@``) so the
    batched form is bit-identical per row.
    """
    meter.tally_inner(len(u))
    return float(alpha * np.sum(u * v))


def row_dots_bulk(us: np.ndarray, vs: np.ndarray, alpha: float) -> np.ndarray:
    """Batched :func:`row_dot` over paired rows; meters identically."""
    us = np.asarray(us)
    meter.tally_visits(len(us) * max(us.shape[1] - 1 if us.ndim == 2 else 0, 0))
    return alpha * np.sum(us * vs, axis=1)


def transpose_elements(B: np.ndarray) -> np.ndarray:
    """Materialize B^T, tallying one visit per element moved."""
    out = np.ascontiguousarray(B.T)
    meter.tally_visits(B.size)
    return out
