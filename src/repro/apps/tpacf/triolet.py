"""tpacf in Triolet, mirroring the paper's Fig. 6 listing.

::

    def correlation(size, pairs):
        values = (score(size, u, v) for (u, v) in pairs)
        return histogram(size, values)

    def randomSetsCorrelation(size, corr1, rands):
        ...
        return reduce(add, empty, par(corr1(r) for r in rands))

    def selfCorrelations(size, obs, rands):
        def corr1(rand):
            indexed_rand = zip(indices(domain(rand)), rand)
            pairs = localpar((u, v) for (i, u) in indexed_rand
                                    for v in rand[i+1:])
            return correlation(size, pairs)
        return randomSetsCorrelation(size, corr1, rands)

The structure is identical here: ``par`` over the random data sets (whose
rows the sliced array source distributes), ``localpar`` over the
triangular pair loop inside each set, and per-thread private histograms
summed up the reduction tree.  The inner pair loop scores one row against
the remaining rows vectorized (the role the paper's compiler plays in
turning the fused comprehension into tight code).
"""
from __future__ import annotations

import numpy as np

from repro.apps.common import AppRun
from repro.apps.tpacf.data import TpacfProblem
from repro.apps.tpacf.kernel import (
    cross_pairs_bins_bulk,
    cross_set_bins,
    cross_set_bins_batch,
    row_bins,
    self_pairs_bins_bulk,
    self_set_bins,
    self_set_bins_batch,
)
from repro.core.engine import SEGMENTED, register_bulk
from repro.cluster.faults import FaultPlan
from repro.cluster.limits import RuntimeLimits, UNLIMITED
from repro.cluster.machine import MachineSpec
from repro.runtime import (
    BOEHM_GC,
    DEFAULT_RECOVERY,
    AllocatorModel,
    CheckpointConfig,
    CostContext,
    FailureBudget,
    RecoveryPolicy,
    triolet_runtime,
)
from repro.obs.spans import active as _obs_active, obs_span as _obs_span
from repro.serial import closure, register_function
import repro.triolet as tri


@register_function
def _self_pairs_row(nbins, rand, iu):
    """Score row *i* of ``rand`` against rows ``i+1:`` (triangular loop).

    The library's reduction loop tallies the row visit; ``row_bins``
    tallies the vectorized inner pairs.
    """
    i, u = iu
    return row_bins(nbins, u, rand[i + 1 :])


@register_function
def _cross_pairs_row(nbins, other, iu):
    """Score one row against every row of the *other* set."""
    _i, u = iu
    return row_bins(nbins, u, other)


def _self_pairs_rows_bulk(nbins, rand, ius):
    i_arr, us = ius
    return self_pairs_bins_bulk(nbins, rand, i_arr, us)


def _cross_pairs_rows_bulk(nbins, other, ius):
    _i_arr, us = ius
    return cross_pairs_bins_bulk(nbins, other, us)


register_bulk(_self_pairs_row, _self_pairs_rows_bulk, kind=SEGMENTED)
register_bulk(_cross_pairs_row, _cross_pairs_rows_bulk, kind=SEGMENTED)


@register_function
def _cross_set_bins(nbins, other, sv):
    """All pair bins of one (set index, random set) stream element."""
    _s, rand = sv
    return cross_set_bins(nbins, other, rand)


@register_function
def _self_set_bins(nbins, sv):
    _s, rand = sv
    return self_set_bins(nbins, rand)


def _cross_set_bins_bulk(nbins, other, sv):
    _s_arr, stack = sv
    return cross_set_bins_batch(nbins, other, stack)


def _self_set_bins_bulk(nbins, sv):
    _s_arr, stack = sv
    return self_set_bins_batch(nbins, stack)


register_bulk(_cross_set_bins, _cross_set_bins_bulk, kind=SEGMENTED)
register_bulk(_self_set_bins, _self_set_bins_bulk, kind=SEGMENTED)


def correlation(size: int, pair_bins_iter) -> np.ndarray:
    """Fig. 6 lines 1-4: histogram the scored pairs."""
    return tri.histogram(size, pair_bins_iter)


def self_correlation(size: int, rand: np.ndarray) -> np.ndarray:
    """Fig. 6's corr1: the localpar triangular pair loop of one set."""
    indexed_rand = tri.zip(tri.indices(tri.domain(rand)), tri.iterate(rand))
    pairs = tri.map(closure(_self_pairs_row, size, rand), tri.localpar(indexed_rand))
    return correlation(size, pairs)


def cross_correlation(size: int, rand: np.ndarray, obs: np.ndarray) -> np.ndarray:
    indexed_rand = tri.zip(tri.indices(tri.domain(rand)), tri.iterate(rand))
    pairs = tri.map(closure(_cross_pairs_row, size, obs), tri.localpar(indexed_rand))
    return correlation(size, pairs)


@register_function
def _corr1_self(nbins, rand):
    return self_correlation(nbins, rand)


@register_function
def _corr1_cross(nbins, obs, rand):
    return cross_correlation(nbins, rand, obs)


def random_sets_correlation(size: int, corr1, rands: np.ndarray) -> np.ndarray:
    """Fig. 6 lines 6-11: parallel reduction of per-set histograms.

    The legacy per-set-histogram form: ``corr1`` runs a whole nested
    pipeline per set, which the vectorizing engine cannot compile (the
    plan cache records it ``unsupported`` and falls back to the scalar
    loop).  :func:`cross_sets_correlation` / :func:`self_sets_correlation`
    below are the fusible rewrite the runner uses.
    """
    hists = tri.map(corr1, tri.par(rands))
    return tri.sum(hists, zero=np.zeros(size))


def cross_sets_correlation(size: int, obs, rands) -> np.ndarray:
    """DR as one segmented indexed stream: histogram over per-set bins.

    ``tri.indexed(rands)`` streams ``(set index, set)`` pairs off the
    sharded handle; the SEGMENTED kernel emits every pair bin of a set
    as one segment, and the histogram consumer scatters whole chunks.
    One flat pipeline, so the engine compiles it (``unsupported == 0``)
    and every rank still ships only its own row span.
    """
    sets = tri.indexed(rands)
    return correlation(
        size, tri.map(closure(_cross_set_bins, size, obs), tri.par(sets))
    )


def self_sets_correlation(size: int, rands) -> np.ndarray:
    """RR as one segmented indexed stream (triangular pairs per set)."""
    sets = tri.indexed(rands)
    return correlation(
        size, tri.map(closure(_self_set_bins, size), tri.par(sets))
    )


def run_triolet(
    p: TpacfProblem,
    machine: MachineSpec,
    costs: CostContext,
    alloc: AllocatorModel = BOEHM_GC,
    limits: RuntimeLimits = UNLIMITED,
    faults: FaultPlan | None = None,
    recovery: RecoveryPolicy | None = DEFAULT_RECOVERY,
    budget: FailureBudget | None = None,
    checkpoint: CheckpointConfig | None = None,
) -> AppRun:
    with triolet_runtime(
        machine,
        costs=costs,
        alloc=alloc,
        limits=limits,
        faults=faults,
        recovery=recovery,
        budget=budget,
        checkpoint=checkpoint,
    ) as rt:
        # Resident placement: obs rides in closure environments (every
        # rank needs all of it), rands is sharded by rows.  The three
        # correlation phases below share the placement -- DR and RR ship
        # zero input bytes for arrays DD already placed.
        obs = rt.distribute(p.obs, layout="replicated")
        rands = rt.distribute(p.rands)
        # DD: the observed set against itself, parallel over its rows.
        with _obs_span("phase", "dd"):
            indexed_obs = tri.zip(
                tri.indices(tri.domain(obs)), tri.iterate(obs)
            )
            dd = correlation(
                p.nbins,
                tri.map(
                    closure(_self_pairs_row, p.nbins, obs),
                    tri.par(indexed_obs),
                ),
            )
        # DR: each random set against the observed set, as one segmented
        # indexed stream over the sharded sets (fully engine-compiled).
        with _obs_span("phase", "dr"):
            dr = cross_sets_correlation(p.nbins, obs, rands)
        # RR: each random set against itself.
        with _obs_span("phase", "rr"):
            rr = self_sets_correlation(p.nbins, rands)
    detail = {
        "gc_time": rt.total_gc_time(),
        "meter": rt.meter_total,
        "data_plane": rt.plane.stats_dict(),
    }
    if _obs_active() is not None:
        detail["obs"] = _obs_active().detail_snapshot()
    if faults is not None or rt.recovery_report.rejected_messages:
        detail["recovery"] = rt.recovery_report
    return AppRun(
        framework="triolet",
        value={"dd": dd, "dr": dr, "rr": rr},
        elapsed=rt.elapsed,
        bytes_shipped=rt.total_bytes_shipped(),
        detail=detail,
    )
