"""tpacf in C+MPI+OpenMP style (paper §4.4).

"The C+MPI+OpenMP code examines the number of threads in order to
privatize histograms.  For a programmer, identifying and inserting this
code entails one or more iterations of performance optimization."  The
rank program flattens all three loops' row blocks into one work list,
block-partitions it over ranks, runs a dynamic OpenMP for with one
private histogram per task (privatization), and reduces the three
histograms with MPI.
"""
from __future__ import annotations

import numpy as np

from repro.apps.common import AppRun
from repro.apps.tpacf.data import TpacfProblem
from repro.apps.tpacf.kernel import row_bins
from repro.baselines.cmpi import omp_parallel_for, run_cmpi
from repro.cluster.comm import Comm
from repro.cluster.machine import MachineSpec
from repro.core import meter
from repro.partition import block_bounds
from repro.runtime.costs import CostContext


def _score_block(nbins, kind, data, other, lo, hi):
    hist = np.zeros(nbins)
    for j in range(lo, hi):
        vs = data[j + 1 :] if kind == "self-same" else other
        bins = row_bins(nbins, data[j], vs)
        np.add.at(hist, bins, 1.0)
        meter.tally_visits(1)
    return hist


def _rank_main(comm: Comm, costs: CostContext, p: TpacfProblem):
    rank, size = comm.rank, comm.size
    cores = comm.ctx.machine.cores_per_node

    # The root owns the catalogs; everyone needs all of them (any rank may
    # be assigned blocks of any set), so broadcast once.
    obs, rands = comm.bcast((p.obs, p.rands) if rank == 0 else None, root=0)

    # Flatten all pair-loops into (hist_id, kind, set_id, row block) units.
    units: list[tuple] = []
    # Over-decompose ~4 units per core so OpenMP's dynamic schedule can
    # balance the heterogeneous unit costs within each rank.
    per_set_blocks = max(1, (4 * size * cores) // max(1, 2 * p.nr + 1))
    for lo, hi in block_bounds(p.m, max(per_set_blocks, size * cores)):
        if hi > lo:
            units.append(("dd", "self-same", -1, lo, hi))
    for r in range(p.nr):
        for lo, hi in block_bounds(p.m, per_set_blocks):
            if hi > lo:
                units.append(("dr", "cross", r, lo, hi))
        for lo, hi in block_bounds(p.m, per_set_blocks):
            if hi > lo:
                units.append(("rr", "self-same", r, lo, hi))

    # Round-robin assignment: unit costs are heterogeneous (triangular DD
    # rows vs. rectangular DR blocks), so striding balances ranks far
    # better than contiguous blocks -- the hand-tuning §4.4 alludes to.
    my_units = units[rank::size]

    def task(unit):
        hist_id, kind, set_id, lo, hi = unit
        data = obs if set_id < 0 else rands[set_id]
        other = obs if kind == "cross" else data
        return (hist_id, _score_block(p.nbins, kind, data, other, lo, hi))

    results = omp_parallel_for(
        comm, costs, [lambda u=u: task(u) for u in my_units], schedule="dynamic"
    )
    local = {k: np.zeros(p.nbins) for k in ("dd", "dr", "rr")}
    for hist_id, hist in results:
        local[hist_id] += hist

    stacked = np.stack([local["dd"], local["dr"], local["rr"]])
    total = comm.reduce(stacked, op=lambda a, b: a + b, root=0)
    if rank != 0:
        return None
    return {"dd": total[0], "dr": total[1], "rr": total[2]}


def run_cmpi_app(
    p: TpacfProblem, machine: MachineSpec, costs: CostContext
) -> AppRun:
    res = run_cmpi(machine, _rank_main, costs, args=(p,))
    return AppRun(
        framework="cmpi",
        value=res.value,
        elapsed=res.makespan,
        bytes_shipped=res.bytes_shipped,
    )
