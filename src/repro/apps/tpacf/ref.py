"""Sequential reference for tpacf: the three histograms DD, DR, RR."""
from __future__ import annotations

import numpy as np

from repro.apps.tpacf.data import TpacfProblem
from repro.apps.tpacf.kernel import correlate_cross, correlate_self


def solve_ref(p: TpacfProblem) -> dict[str, np.ndarray]:
    """The three correlation histograms of §4.4."""
    dd = correlate_self(p.nbins, p.obs)
    dr = np.zeros(p.nbins)
    rr = np.zeros(p.nbins)
    for r in range(p.nr):
        dr += correlate_cross(p.nbins, p.rands[r], p.obs)
        rr += correlate_self(p.nbins, p.rands[r])
    return {"dd": dd, "dr": dr, "rr": rr}
