"""tpacf: two-point angular correlation function (paper §4.4).

"The tpacf application analyzes the angular distribution of observed
astronomical objects.  It uses histogramming and nested traversals ...
Three histograms are computed using different inputs.  One loop compares
an observed data set with itself [DD]; one compares it with several
random data sets [DR]; and one compares each random data set with itself
[RR].  We parallelize across data sets and across elements of a data
set."
"""
from repro.apps.tpacf.data import TpacfProblem, make_problem
from repro.apps.tpacf.ref import solve_ref
from repro.apps.tpacf.triolet import run_triolet
from repro.apps.tpacf.eden import run_eden
from repro.apps.tpacf.cmpi import run_cmpi_app

__all__ = [
    "TpacfProblem",
    "make_problem",
    "solve_ref",
    "run_triolet",
    "run_eden",
    "run_cmpi_app",
]
