"""tpacf problem generator.

Sky catalogs as unit vectors on the sphere: one observed set and ``nr``
random sets of ``m`` points each.  Parboil's large input uses ~100 random
sets of a few thousand points; the sandbox instance shrinks ``m`` (work
is quadratic in it) and ``nr`` proportionally.
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

NOMINAL_M = 4096
NOMINAL_NR = 100
DEFAULT_NBINS = 20


@dataclass(frozen=True)
class TpacfProblem:
    obs: np.ndarray  # (m, 3) unit vectors
    rands: np.ndarray  # (nr, m, 3) unit vectors
    nbins: int
    nominal_m: int = NOMINAL_M
    nominal_nr: int = NOMINAL_NR

    @property
    def m(self) -> int:
        return self.obs.shape[0]

    @property
    def nr(self) -> int:
        return self.rands.shape[0]

    @staticmethod
    def _work(m: int, nr: int) -> int:
        dd = m * (m - 1) // 2
        rr = nr * (m * (m - 1) // 2)
        dr = nr * m * m
        return dd + rr + dr

    @property
    def visits(self) -> int:
        return self._work(self.m, self.nr)

    @property
    def nominal_visits(self) -> int:
        return self._work(self.nominal_m, self.nominal_nr)

    @property
    def compute_scale(self) -> float:
        return self.nominal_visits / self.visits

    @property
    def wire_scale(self) -> float:
        sandbox = (1 + self.nr) * self.m * 3 * 8
        nominal = (1 + self.nominal_nr) * self.nominal_m * 3 * 8
        return nominal / sandbox


def _unit_vectors(rng: np.random.Generator, m: int) -> np.ndarray:
    v = rng.standard_normal((m, 3))
    return v / np.linalg.norm(v, axis=1, keepdims=True)


def make_problem(
    m: int = 96, nr: int = 12, nbins: int = DEFAULT_NBINS, seed: int = 0
) -> TpacfProblem:
    """A seeded sandbox instance (uniform sky; clustering is irrelevant to
    the performance shape)."""
    if m < 2 or nr < 1:
        raise ValueError("need m >= 2 points and nr >= 1 random sets")
    rng = np.random.default_rng(seed)
    return TpacfProblem(
        obs=_unit_vectors(rng, m),
        rands=np.stack([_unit_vectors(rng, m) for _ in range(nr)]),
        nbins=nbins,
    )
