"""tpacf scoring kernel shared by the frameworks.

``score``/``row_bins`` map pairs of sky positions to angular bins.
Parboil uses logarithmic arcminute bins; the bin edges here are uniform
in angle -- a monotone relabeling that preserves the computation's shape
(dot product, arccos, binning) and cost exactly.

The 3-term dot products are written as explicit component sums (not
BLAS ``@``) so the scalar, row, and batched-row forms perform the exact
same float operations in the same order: the vectorized engine's bulk
forms (``*_bulk``) are bit-identical to per-element evaluation.
"""
from __future__ import annotations

import numpy as np

from repro.core import meter


def score(nbins: int, u: np.ndarray, v: np.ndarray) -> int:
    """Angular bin of one pair (the paper's Fig. 6 ``score``)."""
    cosang = float(np.clip(u[0] * v[0] + u[1] * v[1] + u[2] * v[2], -1.0, 1.0))
    ang = np.arccos(cosang)
    return min(nbins - 1, int(nbins * ang / np.pi))


def row_bins(nbins: int, u: np.ndarray, vs: np.ndarray) -> np.ndarray:
    """Bins of *u* against every row of *vs* (vectorized inner loop).

    Tallies one visit per pair, minus the one the caller's library counts
    for the row element itself.
    """
    if len(vs) == 0:
        meter.tally_inner(1)
        return np.empty(0, dtype=np.int64)
    cosang = np.clip(vs[:, 0] * u[0] + vs[:, 1] * u[1] + vs[:, 2] * u[2], -1.0, 1.0)
    ang = np.arccos(cosang)
    bins = np.minimum(nbins - 1, (nbins * ang / np.pi).astype(np.int64))
    meter.tally_inner(len(vs))
    return bins


def _pair_cos_matrix(us: np.ndarray, vs: np.ndarray) -> np.ndarray:
    """cos(angle) of every (us row, vs row) pair; row *i* performs the
    same component products and sums as ``row_bins(nbins, us[i], vs)``."""
    return (
        vs[:, 0] * us[:, 0][:, None]
        + vs[:, 1] * us[:, 1][:, None]
        + vs[:, 2] * us[:, 2][:, None]
    )


def self_pairs_bins_bulk(
    nbins: int, rand: np.ndarray, i_arr: np.ndarray, us: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Batched triangular pair bins: rows ``i`` of *rand* against rows
    ``i+1:``, concatenated in row order (segmented bulk form).

    Meters exactly like ``len(us)`` calls of ``row_bins``.
    """
    n = len(rand)
    if len(us) == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    cos = _pair_cos_matrix(us, rand)
    keep = np.arange(n) > np.asarray(i_arr)[:, None]
    cosang = np.clip(cos, -1.0, 1.0)[keep]
    ang = np.arccos(cosang)
    vals = np.minimum(nbins - 1, (nbins * ang / np.pi).astype(np.int64))
    lengths = np.maximum(n - 1 - np.asarray(i_arr), 0).astype(np.int64)
    meter.tally_visits(int(np.maximum(lengths - 1, 0).sum()))
    return vals, lengths


def cross_pairs_bins_bulk(
    nbins: int, other: np.ndarray, us: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Batched cross pair bins: every *us* row against all of *other*."""
    m = len(other)
    if len(us) == 0 or m == 0:
        lengths = np.zeros(len(us), dtype=np.int64)
        if len(us):
            meter.tally_visits(0)
        return np.empty(0, dtype=np.int64), lengths
    cosang = np.clip(_pair_cos_matrix(us, other), -1.0, 1.0)
    ang = np.arccos(cosang)
    vals = np.minimum(nbins - 1, (nbins * ang / np.pi).astype(np.int64)).ravel()
    lengths = np.full(len(us), m, dtype=np.int64)
    meter.tally_visits(len(us) * max(m - 1, 0))
    return vals, lengths


def cross_set_bins(nbins: int, other: np.ndarray, rand: np.ndarray) -> np.ndarray:
    """All pair bins of one random set against *other*, concatenated.

    The set-granular scalar form: calls ``row_bins`` per row, so its
    float operations and meter tallies are exactly the per-row loop's.
    """
    if len(rand) == 0:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(
        [row_bins(nbins, rand[j], other) for j in range(len(rand))]
    )


def cross_set_bins_batch(
    nbins: int, other: np.ndarray, stack: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Segmented batch form of :func:`cross_set_bins` over a stack of
    sets: one segment (and one length) per set.  Bit- and meter-identical
    to ``len(stack)`` scalar calls."""
    vals, lengths = [], []
    for rand in stack:
        v, seg = cross_pairs_bins_bulk(nbins, other, rand)
        vals.append(v)
        lengths.append(int(seg.sum()))
    joined = np.concatenate(vals) if vals else np.empty(0, dtype=np.int64)
    return joined, np.asarray(lengths, dtype=np.int64)


def self_set_bins(nbins: int, rand: np.ndarray) -> np.ndarray:
    """All unique-pair bins of one set (rows i vs i+1:), concatenated."""
    if len(rand) == 0:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(
        [row_bins(nbins, rand[i], rand[i + 1 :]) for i in range(len(rand))]
    )


def self_set_bins_batch(
    nbins: int, stack: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Segmented batch form of :func:`self_set_bins` over a stack of sets."""
    vals, lengths = [], []
    for rand in stack:
        i_arr = np.arange(len(rand))
        v, seg = self_pairs_bins_bulk(nbins, rand, i_arr, rand)
        vals.append(v)
        lengths.append(int(seg.sum()))
    joined = np.concatenate(vals) if vals else np.empty(0, dtype=np.int64)
    return joined, np.asarray(lengths, dtype=np.int64)


def correlate_cross(
    nbins: int, a: np.ndarray, b: np.ndarray
) -> np.ndarray:
    """Histogram of all pairs (a_i, b_j); tallies ``len(a)*len(b)``."""
    hist = np.zeros(nbins)
    for i in range(len(a)):
        bins = row_bins(nbins, a[i], b)
        np.add.at(hist, bins, 1.0)
        meter.tally_visits(1)  # the outer-row visit row_bins left to us
    return hist


def correlate_self(nbins: int, a: np.ndarray) -> np.ndarray:
    """Histogram of all unique pairs (a_i, a_j), j > i."""
    hist = np.zeros(nbins)
    for i in range(len(a)):
        bins = row_bins(nbins, a[i], a[i + 1 :])
        np.add.at(hist, bins, 1.0)
        meter.tally_visits(1)
    return hist
