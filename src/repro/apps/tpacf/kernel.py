"""tpacf scoring kernel shared by the frameworks.

``score``/``row_bins`` map pairs of sky positions to angular bins.
Parboil uses logarithmic arcminute bins; the bin edges here are uniform
in angle -- a monotone relabeling that preserves the computation's shape
(dot product, arccos, binning) and cost exactly.
"""
from __future__ import annotations

import numpy as np

from repro.core import meter


def score(nbins: int, u: np.ndarray, v: np.ndarray) -> int:
    """Angular bin of one pair (the paper's Fig. 6 ``score``)."""
    cosang = float(np.clip(np.dot(u, v), -1.0, 1.0))
    ang = np.arccos(cosang)
    return min(nbins - 1, int(nbins * ang / np.pi))


def row_bins(nbins: int, u: np.ndarray, vs: np.ndarray) -> np.ndarray:
    """Bins of *u* against every row of *vs* (vectorized inner loop).

    Tallies one visit per pair, minus the one the caller's library counts
    for the row element itself.
    """
    if len(vs) == 0:
        meter.tally_inner(1)
        return np.empty(0, dtype=np.int64)
    cosang = np.clip(vs @ u, -1.0, 1.0)
    ang = np.arccos(cosang)
    bins = np.minimum(nbins - 1, (nbins * ang / np.pi).astype(np.int64))
    meter.tally_inner(len(vs))
    return bins


def correlate_cross(
    nbins: int, a: np.ndarray, b: np.ndarray
) -> np.ndarray:
    """Histogram of all pairs (a_i, b_j); tallies ``len(a)*len(b)``."""
    hist = np.zeros(nbins)
    for i in range(len(a)):
        bins = row_bins(nbins, a[i], b)
        np.add.at(hist, bins, 1.0)
        meter.tally_visits(1)  # the outer-row visit row_bins left to us
    return hist


def correlate_self(nbins: int, a: np.ndarray) -> np.ndarray:
    """Histogram of all unique pairs (a_i, a_j), j > i."""
    hist = np.zeros(nbins)
    for i in range(len(a)):
        bins = row_bins(nbins, a[i], a[i + 1 :])
        np.add.at(hist, bins, 1.0)
        meter.tally_visits(1)
    return hist
