"""tpacf in Eden (paper §4.4).

"The Eden code subdivides data in order to produce enough work to occupy
all threads."  Work items are *sub-ranges of rows* of each data set (not
whole sets -- with 100 sets and 128 processes, whole sets would starve a
quarter of the machine), and every item carries the data it needs: its
row block plus the full set it correlates against.  That replication --
obs and the full random sets travel with every item -- is the "higher
communication overhead" the paper measures.
"""
from __future__ import annotations

import numpy as np

from repro.apps.common import AppRun
from repro.apps.tpacf.data import TpacfProblem
from repro.apps.tpacf.kernel import row_bins
from repro.baselines.eden import EdenRuntime
from repro.cluster.machine import MachineSpec
from repro.core import meter
from repro.partition import block_bounds
from repro.runtime.costs import CostContext


def _work(item, _payload):
    nbins, kind, lo, rows, other = item
    hist = np.zeros(nbins)
    for j in range(len(rows)):
        if kind == "self":
            vs = other[lo + j + 1 :]
        else:
            vs = other
        bins = row_bins(nbins, rows[j], vs)
        np.add.at(hist, bins, 1.0)
        meter.tally_visits(1)
    return hist


def run_eden(
    p: TpacfProblem, machine: MachineSpec, costs: CostContext
) -> AppRun:
    rt = EdenRuntime(machine, costs=costs)
    # Subdivide each loop's rows so every process gets several items.
    items_per_proc = 2
    blocks_per_set = max(1, (rt.nprocs * items_per_proc) // (2 * p.nr + 1))

    def items_for(kind: str, data: np.ndarray, other: np.ndarray, nblocks: int):
        return [
            (p.nbins, kind, lo, data[lo:hi], other)
            for lo, hi in block_bounds(len(data), nblocks)
            if hi > lo
        ]

    def hist_sum(items):
        return rt.map_reduce(items, _work, lambda a, b: a + b, label="tpacf")

    dd_items = items_for("self", p.obs, p.obs, max(blocks_per_set, rt.nprocs))
    dd = hist_sum(dd_items)
    dr_items = [
        it
        for r in range(p.nr)
        for it in items_for("cross", p.rands[r], p.obs, blocks_per_set)
    ]
    dr = hist_sum(dr_items)
    rr_items = [
        it
        for r in range(p.nr)
        for it in items_for("self", p.rands[r], p.rands[r], blocks_per_set)
    ]
    rr = hist_sum(rr_items)
    return AppRun(
        framework="eden",
        value={"dd": dd, "dr": dr, "rr": rr},
        elapsed=rt.elapsed,
        bytes_shipped=sum(r.bytes_shipped for r in rt.runs),
        detail={"items": len(dd_items) + len(dr_items) + len(rr_items)},
    )
