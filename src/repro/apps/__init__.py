"""The four Parboil benchmarks of the paper's evaluation (§4).

Each app package contains:

* ``data.py`` -- seeded synthetic problem generator with paper-scale work
  and byte accounting (the Parboil datasets are not redistributable; the
  generators preserve shapes and statistics, DESIGN.md §2);
* ``kernel.py`` -- the numerical kernel shared by every framework;
* ``ref.py`` -- the sequential reference ("sequential C" numerics);
* ``triolet.py`` -- the Triolet version (mirrors the paper's listings);
* ``eden.py`` -- the Eden version (chunked arrays, farm skeletons);
* ``cmpi.py`` -- the C+MPI+OpenMP version (explicit partitioning).
"""
