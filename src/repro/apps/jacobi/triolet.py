"""jacobi in Triolet: the ``stencil`` skeleton end to end.

The program is one line::

    rt.stencil(field, radius=1, kernel=jacobi_step, iterations=k)

Each sweep is a distributed section over the field's resident blocks;
the interesting number is in ``detail["data_plane"]``: from the second
sweep on, ``input_bytes`` stays flat (zero interior re-ship) and only
``halo_bytes`` grows -- the dirty ghost rows.
"""
from __future__ import annotations

import numpy as np

from repro.apps.common import AppRun
from repro.apps.jacobi.data import JacobiProblem
from repro.apps.jacobi.kernel import kernel_for
from repro.cluster.faults import FaultPlan
from repro.cluster.limits import RuntimeLimits, UNLIMITED
from repro.cluster.machine import MachineSpec
from repro.obs.spans import active as _obs_active, obs_span as _obs_span
from repro.runtime import (
    BOEHM_GC,
    DEFAULT_RECOVERY,
    AllocatorModel,
    CostContext,
    FailureBudget,
    RecoveryPolicy,
    triolet_runtime,
)


def run_triolet(
    p: JacobiProblem,
    machine: MachineSpec,
    costs: CostContext | None = None,
    alloc: AllocatorModel = BOEHM_GC,
    limits: RuntimeLimits = UNLIMITED,
    faults: FaultPlan | None = None,
    recovery: RecoveryPolicy | None = DEFAULT_RECOVERY,
    budget: FailureBudget | None = None,
) -> AppRun:
    if costs is None:
        costs = CostContext()
    with triolet_runtime(
        machine,
        costs=costs,
        alloc=alloc,
        limits=limits,
        faults=faults,
        recovery=recovery,
        budget=budget,
    ) as rt:
        # The field shards by rows once; every sweep reuses the resident
        # placement and ships only dirty halos.
        field = rt.distribute(np.array(p.init, copy=True))
        with _obs_span("phase", "jacobi_relax"):
            rt.stencil(
                field,
                radius=p.radius,
                kernel=kernel_for(p),
                iterations=p.iterations,
                label="jacobi",
            )
        value = np.array(field.array, copy=True)
    detail = {
        "gc_time": rt.total_gc_time(),
        "meter": rt.meter_total,
        "data_plane": rt.plane.stats_dict(),
        "sections": [dict(s.data_plane) for s in rt.sections if s.data_plane],
    }
    if _obs_active() is not None:
        detail["obs"] = _obs_active().detail_snapshot()
    if faults is not None or rt.recovery_report.rejected_messages:
        detail["recovery"] = rt.recovery_report
    return AppRun(
        framework="triolet",
        value=value,
        elapsed=rt.elapsed,
        bytes_shipped=rt.total_bytes_shipped(),
        detail=detail,
    )
