"""Jacobi relaxation kernels, shared by the reference and Triolet runs.

Both follow the stencil skeleton's vectorized contract: the kernel
receives a padded row window and returns ``len(xpad) - 2 * radius``
updated rows (radius 1 here).  Running the *same* NumPy expressions over
the same row windows is what makes the distributed result bit-identical
to the sequential reference.
"""
from __future__ import annotations

import numpy as np


def jacobi_rod(xpad: np.ndarray) -> np.ndarray:
    """1-D heat: each interior cell averages its two row neighbours."""
    return 0.5 * (xpad[:-2] + xpad[2:])


def jacobi_plate(xpad: np.ndarray) -> np.ndarray:
    """2-D heat as a radius-1 *row* stencil.

    Rows are the halo unit; the column neighbours live inside each row,
    so the left/right Dirichlet edges are held here while the skeleton
    holds the top/bottom boundary rows.
    """
    out = xpad[1:-1].copy()
    out[:, 1:-1] = 0.25 * (
        xpad[:-2, 1:-1]
        + xpad[2:, 1:-1]
        + xpad[1:-1, :-2]
        + xpad[1:-1, 2:]
    )
    return out


def kernel_for(problem) -> callable:
    """The kernel matching *problem*'s dimensionality."""
    return jacobi_plate if problem.is_2d else jacobi_rod
