"""Sequential reference for jacobi."""
from __future__ import annotations

import numpy as np

from repro.apps.jacobi.data import JacobiProblem
from repro.apps.jacobi.kernel import kernel_for
from repro.core import meter


def solve_ref(p: JacobiProblem) -> np.ndarray:
    """Sweep the whole field *iterations* times; boundaries stay fixed.

    Each sweep applies the shared kernel to the full array as one padded
    window -- exactly what the distributed blocks compute piecewise.
    """
    kern = kernel_for(p)
    x = np.array(p.init, copy=True)
    r = p.radius
    for _ in range(p.iterations):
        nxt = x.copy()
        nxt[r:len(x) - r] = kern(x)
        meter.tally_visits(len(x) - 2 * r)
        x = nxt
    return x
