"""jacobi: iterative heat relaxation via the ``stencil`` skeleton.

Not a paper benchmark -- the paper's four apps are all single-pass
pipelines -- but the canonical exercise for the halo-exchange machinery:
a radius-1 Jacobi sweep re-reads every rank's block each iteration, so
from the second sweep on the data plane must ship *only* the dirty ghost
rows (zero interior bytes) for the skeleton to be worth having.  Both the
1-D rod and the 2-D plate run as row stencils; the plate's column
neighbours live inside each row, so rows stay the halo unit.
"""
from repro.apps.jacobi.data import JacobiProblem, make_problem
from repro.apps.jacobi.kernel import jacobi_plate, jacobi_rod, kernel_for
from repro.apps.jacobi.ref import solve_ref
from repro.apps.jacobi.triolet import run_triolet

__all__ = [
    "JacobiProblem",
    "make_problem",
    "jacobi_rod",
    "jacobi_plate",
    "kernel_for",
    "solve_ref",
    "run_triolet",
]
