"""jacobi problem generator: a 1-D rod or 2-D plate with fixed edges."""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class JacobiProblem:
    """An initial temperature field plus a sweep count.

    ``init`` is ``(n,)`` for the rod or ``(n, width)`` for the plate;
    boundary cells (the first/last ``radius`` rows, and for the plate the
    first/last columns) hold their initial values -- Dirichlet conditions.
    """

    init: np.ndarray
    iterations: int
    radius: int = 1

    @property
    def n(self) -> int:
        return len(self.init)

    @property
    def is_2d(self) -> bool:
        return self.init.ndim == 2

    @property
    def row_nbytes(self) -> int:
        return self.init.nbytes // self.n


def make_problem(
    n: int = 96,
    width: int = 0,
    iterations: int = 8,
    seed: int = 0,
) -> JacobiProblem:
    """A seeded sandbox instance: hot top edge, cold bottom edge, noise
    in between.  ``width=0`` makes the 1-D rod; ``width>=2`` the plate."""
    if n < 3:
        raise ValueError("need at least 3 rows (two boundaries + interior)")
    if width == 1:
        raise ValueError("width must be 0 (rod) or >= 2 (plate)")
    if iterations < 0:
        raise ValueError("iterations must be >= 0")
    rng = np.random.default_rng(seed)
    shape = (n,) if width == 0 else (n, width)
    init = rng.uniform(0.0, 1.0, size=shape)
    init[0] = 1.0
    init[-1] = 0.0
    return JacobiProblem(init=init, iterations=iterations)
