"""spMV kernels shared by the frameworks.

The computation is one float multiply per stored entry plus a
scatter-add into the output row -- ``y[row] += a * x[col]`` -- and every
framework here performs exactly those operations.  Because the problem
generator emits dyadic values (see :mod:`repro.apps.spmv.data`), the
scatter order and partial-sum grouping cannot change the result bits,
so per-row loops, chunked ``np.add.at`` scatters, and cross-rank
histogram merges all agree exactly.
"""
from __future__ import annotations

import numpy as np

from repro.core import meter
from repro.core.engine.merge_kernels import member_positions


def csr_rows_matvec(
    indptr: np.ndarray,
    indices: np.ndarray,
    values: np.ndarray,
    x: np.ndarray,
    lo: int,
    hi: int,
) -> np.ndarray:
    """``y[lo:hi]`` of ``A @ x`` for a CSR row block (vectorized).

    Tallies one visit per stored entry of the block, matching the
    entry-granular streams the Triolet variant folds.
    """
    base, stop = int(indptr[lo]), int(indptr[hi])
    prods = values[base:stop] * x[indices[base:stop]]
    rows = np.repeat(
        np.arange(hi - lo, dtype=np.int64), np.diff(indptr[lo : hi + 1])
    )
    y = np.zeros(hi - lo)
    np.add.at(y, rows, prods)
    meter.tally_visits(stop - base)
    return y


def csr_rows_matvec_sparse(
    indptr: np.ndarray,
    indices: np.ndarray,
    values: np.ndarray,
    xkeys: np.ndarray,
    xvals: np.ndarray,
    lo: int,
    hi: int,
) -> np.ndarray:
    """``y[lo:hi]`` of ``A @ x_sparse``: only entries whose column is in
    the sparse operand's index set contribute.

    Tallies one visit per *surviving* entry -- the probe itself is
    position arithmetic, like the indexed-stream merges it mirrors.
    """
    base, stop = int(indptr[lo]), int(indptr[hi])
    cols = indices[base:stop]
    pos, hit = member_positions(xkeys, cols)
    prods = values[base:stop][hit] * xvals[pos[hit]]
    rows = np.repeat(
        np.arange(hi - lo, dtype=np.int64), np.diff(indptr[lo : hi + 1])
    )[hit]
    y = np.zeros(hi - lo)
    np.add.at(y, rows, prods)
    meter.tally_visits(int(hit.sum()))
    return y
