"""spMV in Eden: row-block farm with the operand vector as payload.

As with the paper's applications, Eden distributes chunked subarrays to
worker processes: each work item carries one CSR row block (rebased
``indptr`` plus its ``indices``/``values`` span) and the dense operand
is the farm payload, replicated to every process.
"""
from __future__ import annotations

import numpy as np

from repro.apps.common import AppRun
from repro.apps.spmv.data import SpmvProblem
from repro.apps.spmv.kernel import csr_rows_matvec
from repro.baselines.eden import EdenRuntime, StragglerModel
from repro.cluster.machine import MachineSpec
from repro.runtime.costs import CostContext

SPMV_STRAGGLER = StragglerModel(probability=0.04, min_factor=1.5, max_factor=3.0)


def _work(item, payload):
    idx, indptr, indices, values = item
    (x,) = payload
    nrows = len(indptr) - 1
    y = csr_rows_matvec(indptr, indices, values, x, 0, nrows)
    return (idx, y)


def run_eden(
    p: SpmvProblem,
    machine: MachineSpec,
    costs: CostContext,
    straggler: StragglerModel = SPMV_STRAGGLER,
) -> AppRun:
    rt = EdenRuntime(machine, costs=costs, straggler=straggler)
    chunk = max(1, min(512, p.nrows // max(1, 4 * rt.nprocs)))
    items = []
    for i, lo in enumerate(range(0, p.nrows, chunk)):
        hi = min(lo + chunk, p.nrows)
        base, stop = int(p.indptr[lo]), int(p.indptr[hi])
        items.append(
            (
                i,
                p.indptr[lo : hi + 1] - base,
                p.indices[base:stop],
                p.values[base:stop],
            )
        )
    results = rt.map_collect(items, _work, (p.x,), label="spmv")
    results.sort(key=lambda t: t[0])
    y = (
        np.concatenate([yc for _, yc in results])
        if results
        else np.empty(0)
    )
    return AppRun(
        framework="eden",
        value=y,
        elapsed=rt.elapsed,
        bytes_shipped=sum(r.bytes_shipped for r in rt.runs),
        detail={"chunks": len(items), "procs": rt.nprocs},
    )
