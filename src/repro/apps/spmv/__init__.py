"""spMV: sparse matrix-vector products over indexed streams.

Not one of the paper's four benchmarks -- it is the first customer of
the indexed-stream merge algebra (:mod:`repro.core.iterators.indexed`):
CSR rows stream as flattened segmented ``(row, col, value)`` entries,
and a sparse operand joins the matrix columns with ``tri.intersect``.
It therefore lives outside the benchmark harness's app registry and
carries its own runners.
"""
from repro.apps.spmv.data import SpmvProblem, make_problem
from repro.apps.spmv.ref import solve_ref, solve_ref_sparse
from repro.apps.spmv.triolet import run_triolet
from repro.apps.spmv.eden import run_eden

__all__ = [
    "SpmvProblem",
    "make_problem",
    "solve_ref",
    "solve_ref_sparse",
    "run_triolet",
    "run_eden",
]
