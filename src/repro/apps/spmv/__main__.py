"""Run spMV standalone: ``python -m repro.apps.spmv``.

The app sits outside the benchmark harness's registry (its calibration
tables cover the paper's four applications), so this entry point wires
the runners directly.
"""
from __future__ import annotations

import argparse

import numpy as np

from repro.apps.spmv.data import make_problem
from repro.apps.spmv.eden import run_eden
from repro.apps.spmv.ref import solve_ref, solve_ref_sparse
from repro.apps.spmv.triolet import run_triolet
from repro.cluster.machine import PAPER_MACHINE
from repro.runtime.costs import CostContext


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description="spMV over indexed streams")
    ap.add_argument("--nrows", type=int, default=256)
    ap.add_argument("--ncols", type=int, default=256)
    ap.add_argument("--row-nnz", type=int, default=12)
    ap.add_argument("--xfrac", type=float, default=0.25)
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--nodes", type=int, default=2)
    ap.add_argument("--cores", type=int, default=4)
    args = ap.parse_args(argv)

    p = make_problem(
        nrows=args.nrows,
        ncols=args.ncols,
        row_nnz=args.row_nnz,
        xfrac=args.xfrac,
        seed=args.seed,
    )
    machine = PAPER_MACHINE.scaled(
        nodes=args.nodes, cores_per_node=args.cores
    )
    y_ref = solve_ref(p)
    ys_ref = solve_ref_sparse(p)
    run = run_triolet(p, machine, CostContext())
    eden = run_eden(p, machine, CostContext())
    print(f"spmv: nrows={p.nrows} nnz={p.nnz} xkeys={len(p.xkeys)}")
    print(
        "triolet: dense bit-identical:",
        bool(np.array_equal(run.value["y"], y_ref)),
        "sparse bit-identical:",
        bool(np.array_equal(run.value["ys"], ys_ref)),
        f"elapsed={run.elapsed:.3f}s bytes={run.bytes_shipped}",
    )
    print(
        "eden: bit-identical:",
        bool(np.array_equal(eden.value, y_ref)),
        f"elapsed={eden.elapsed:.3f}s bytes={eden.bytes_shipped}",
    )
    ok = np.array_equal(run.value["y"], y_ref) and np.array_equal(
        run.value["ys"], ys_ref
    )
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
