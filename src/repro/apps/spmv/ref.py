"""Sequential reference for spMV (the "sequential C" numerics)."""
from __future__ import annotations

import numpy as np

from repro.apps.spmv.data import SpmvProblem
from repro.apps.spmv.kernel import csr_rows_matvec, csr_rows_matvec_sparse

_CHUNK = 512  # rows per block: bounds the gathered temporaries


def solve_ref(p: SpmvProblem) -> np.ndarray:
    """``A @ x`` row block by row block; tallies ``nnz`` visits."""
    y = np.empty(p.nrows)
    for lo in range(0, p.nrows, _CHUNK):
        hi = min(lo + _CHUNK, p.nrows)
        y[lo:hi] = csr_rows_matvec(p.indptr, p.indices, p.values, p.x, lo, hi)
    return y


def solve_ref_sparse(p: SpmvProblem) -> np.ndarray:
    """``A @ x_sparse``: the per-block column-membership probe."""
    y = np.empty(p.nrows)
    for lo in range(0, p.nrows, _CHUNK):
        hi = min(lo + _CHUNK, p.nrows)
        y[lo:hi] = csr_rows_matvec_sparse(
            p.indptr, p.indices, p.values, p.xkeys, p.xvals, lo, hi
        )
    return y
