"""spMV in Triolet: CSR as indexed streams, sparse operands by merge.

Dense operand
    The matrix is the flattened segmented stream of its rows -- one
    ``(row, col, value)`` element per stored entry, zipped off three
    sharded handles -- and ``A @ x`` is a *weighted histogram* over the
    row ids: each entry scatters ``value * x[col]`` into bin ``row``.
    The per-entry kernel is ELEMENTWISE (one fancy-indexed multiply per
    chunk), so the whole pipeline compiles and each rank ships only its
    own entry span plus the replicated operand.

Sparse operand
    The matrix entries become a dense :func:`tri.indexed` stream keyed
    by entry position; the sparse operand's occurrences -- the entries
    whose column id is in its index set, found with the same galloping
    probe the merge combinators use -- form a second indexed stream on
    the same key space.  ``tri.intersect`` joins them, and the values
    stay lazy gathers over the sharded handles, so a rank whose key
    window touches few surviving entries ships only those base spans.
"""
from __future__ import annotations

import numpy as np

from repro.apps.common import AppRun
from repro.apps.spmv.data import SpmvProblem
from repro.cluster.faults import FaultPlan
from repro.cluster.limits import RuntimeLimits, UNLIMITED
from repro.cluster.machine import MachineSpec
from repro.core.engine import ELEMENTWISE, register_bulk
from repro.core.engine.merge_kernels import member_positions
from repro.obs.spans import active as _obs_active, obs_span as _obs_span
from repro.runtime import (
    BOEHM_GC,
    DEFAULT_RECOVERY,
    AllocatorModel,
    CheckpointConfig,
    CostContext,
    FailureBudget,
    RecoveryPolicy,
    triolet_runtime,
)
from repro.serial import closure, register_function
import repro.triolet as tri


@register_function
def _entry_contrib(x, rcv):
    """One stored entry's weighted-histogram contribution."""
    r, c, v = rcv
    return (int(r), v * x[c])


def _entry_contrib_bulk(x, rcv):
    rs, cs, vs = rcv
    return (rs, vs * x[cs])


register_bulk(_entry_contrib, _entry_contrib_bulk, kind=ELEMENTWISE)


@register_function
def _hit_contrib(kv):
    """A surviving (matrix entry, sparse-operand value) intersection."""
    _k, ((r, v), xv) = kv
    return (int(r), v * xv)


def _hit_contrib_bulk(kv):
    _ks, ((rs, vs), xvs) = kv
    return (rs, vs * xvs)


register_bulk(_hit_contrib, _hit_contrib_bulk, kind=ELEMENTWISE)


def dense_matvec(nrows: int, rows, cols, vals, x) -> np.ndarray:
    """``A @ x`` as a weighted histogram over the entry stream."""
    entries = tri.zip(tri.iterate(rows), tri.iterate(cols), tri.iterate(vals))
    contrib = tri.map(closure(_entry_contrib, x), tri.par(entries))
    return tri.histogram(nrows, contrib)


def sparse_matvec(nrows: int, rows, vals, cols_np, xkeys, xvals) -> np.ndarray:
    """``A @ x_sparse`` as a stream intersection.

    ``cols_np``/``xkeys``/``xvals`` are driver-side arrays (position
    arithmetic happens at construction, like every merge combinator);
    ``rows``/``vals`` are the sharded handles the lazy gathers slice.
    """
    pos, hit = member_positions(xkeys, cols_np)
    keep = np.flatnonzero(hit).astype(np.int64)
    entries = tri.indexed(tri.par(tri.zip(tri.iterate(rows), tri.iterate(vals))))
    occurrences = tri.indexed_pairs(keep, xvals[pos[hit]])
    joined = tri.intersect(entries, occurrences)
    return tri.histogram(nrows, tri.map(closure(_hit_contrib), joined))


def run_triolet(
    p: SpmvProblem,
    machine: MachineSpec,
    costs: CostContext,
    alloc: AllocatorModel = BOEHM_GC,
    limits: RuntimeLimits = UNLIMITED,
    faults: FaultPlan | None = None,
    recovery: RecoveryPolicy | None = DEFAULT_RECOVERY,
    budget: FailureBudget | None = None,
    checkpoint: CheckpointConfig | None = None,
) -> AppRun:
    with triolet_runtime(
        machine,
        costs=costs,
        alloc=alloc,
        limits=limits,
        faults=faults,
        recovery=recovery,
        budget=budget,
        checkpoint=checkpoint,
    ) as rt:
        # One placement of the entry arrays serves both operands; the
        # dense vector is replicated, the sparse one rides the stream
        # construction as position-gathered context.
        rows = rt.distribute(p.row_ids)
        cols = rt.distribute(p.indices)
        vals = rt.distribute(p.values)
        x = rt.distribute(p.x, layout="replicated")
        with _obs_span("phase", "dense"):
            y = dense_matvec(p.nrows, rows, cols, vals, x)
        with _obs_span("phase", "sparse"):
            ys = sparse_matvec(
                p.nrows, rows, vals, p.indices, p.xkeys, p.xvals
            )
    detail = {
        "gc_time": rt.total_gc_time(),
        "meter": rt.meter_total,
        "data_plane": rt.plane.stats_dict(),
    }
    if _obs_active() is not None:
        detail["obs"] = _obs_active().detail_snapshot()
    if faults is not None or rt.recovery_report.rejected_messages:
        detail["recovery"] = rt.recovery_report
    return AppRun(
        framework="triolet",
        value={"y": y, "ys": ys},
        elapsed=rt.elapsed,
        bytes_shipped=rt.total_bytes_shipped(),
        detail=detail,
    )
