"""spMV problem generator: seeded CSR matrices with dyadic values.

The sandbox instance is a CSR matrix with a seeded random sparsity
pattern (variable row lengths, including empty rows), one dense operand
vector, and one *sparse* operand given as a sorted ``(keys, vals)``
index set -- the indexed-stream form the Triolet variant intersects
against the matrix columns.

Every numeric entry is **dyadic**: an integer in ``[-1024, 1024]``
scaled by ``2**-10``.  Products are then integer multiples of ``2**-20``
with numerators far below ``2**53``, so every partial sum a framework
can form -- per-row, per-chunk, per-rank -- is exact in float64.
Bit-identity of spMV results across scalar, vectorized, distributed and
faulted execution therefore holds by arithmetic, not by luck: float
addition is associative on this value set.
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: paper-scale instance: 2^20 rows at ~48 nonzeros per row
NOMINAL_NROWS = 1 << 20
NOMINAL_ROW_NNZ = 48


@dataclass(frozen=True)
class SpmvProblem:
    indptr: np.ndarray  # int64, length nrows + 1
    indices: np.ndarray  # int64, length nnz; strictly increasing per row
    values: np.ndarray  # float64 (dyadic), length nnz
    x: np.ndarray  # dense operand, length ncols
    xkeys: np.ndarray  # sparse operand: sorted distinct column ids
    xvals: np.ndarray  # sparse operand values (dyadic)
    ncols: int
    nominal_nrows: int = NOMINAL_NROWS
    nominal_row_nnz: int = NOMINAL_ROW_NNZ

    @property
    def nrows(self) -> int:
        return len(self.indptr) - 1

    @property
    def nnz(self) -> int:
        return len(self.indices)

    @property
    def row_ids(self) -> np.ndarray:
        """Row id of every CSR entry (the flattened segmented stream)."""
        return np.repeat(
            np.arange(self.nrows, dtype=np.int64), np.diff(self.indptr)
        )

    @property
    def visits(self) -> int:
        """Sandbox work: one visit per stored matrix entry."""
        return self.nnz

    @property
    def nominal_visits(self) -> int:
        return self.nominal_nrows * self.nominal_row_nnz

    @property
    def compute_scale(self) -> float:
        return self.nominal_visits / max(1, self.visits)

    @property
    def wire_scale(self) -> float:
        sandbox = 24 * self.nnz + 8 * (self.ncols + 2 * self.nrows)
        nominal = 24 * self.nominal_visits + 8 * (3 * self.nominal_nrows)
        return nominal / sandbox


def _dyadic(rng: np.random.Generator, n: int) -> np.ndarray:
    """Exact dyadic rationals: k * 2^-10 with integer |k| <= 1024."""
    return rng.integers(-1024, 1025, n).astype(np.float64) * 2.0**-10


def make_problem(
    nrows: int = 256,
    ncols: int = 256,
    row_nnz: int = 12,
    xfrac: float = 0.25,
    seed: int = 0,
) -> SpmvProblem:
    """A seeded sandbox CSR instance.

    Row lengths are uniform in ``[0, 2 * row_nnz]`` (empty rows
    included, to exercise the zero-contribution edge); columns are drawn
    without replacement, so each row's column ids form a strictly
    increasing index set.  ``xfrac`` of the columns carry the sparse
    operand.
    """
    if nrows < 1 or ncols < 1 or row_nnz < 1:
        raise ValueError("nrows, ncols and row_nnz must be positive")
    rng = np.random.default_rng(seed)
    counts = rng.integers(0, min(2 * row_nnz, ncols) + 1, nrows)
    cols = [
        np.sort(rng.choice(ncols, size=int(k), replace=False))
        for k in counts
    ]
    indptr = np.zeros(nrows + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    indices = (
        np.concatenate(cols).astype(np.int64)
        if indptr[-1]
        else np.empty(0, dtype=np.int64)
    )
    values = _dyadic(rng, int(indptr[-1]))
    x = _dyadic(rng, ncols)
    nkeys = max(1, int(round(ncols * xfrac)))
    xkeys = np.sort(rng.choice(ncols, size=nkeys, replace=False)).astype(
        np.int64
    )
    xvals = _dyadic(rng, nkeys)
    return SpmvProblem(
        indptr=indptr,
        indices=indices,
        values=values,
        x=x,
        xkeys=xkeys,
        xvals=xvals,
        ncols=ncols,
    )
