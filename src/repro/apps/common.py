"""Shared plumbing for app implementations."""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass
class AppRun:
    """Outcome of running one app under one framework."""

    framework: str
    value: Any  # the real numerical result
    elapsed: float  # virtual seconds for the whole program
    bytes_shipped: int = 0
    failed: str | None = None  # failure description (e.g. buffer overflow)
    detail: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.failed is None


def failure(framework: str, reason: str) -> AppRun:
    return AppRun(framework=framework, value=None, elapsed=float("inf"), failed=reason)


def app_main(app: str, argv: list[str] | None = None) -> int:
    """Shared CLI for ``python -m repro.apps.<app>``.

    Runs the app under every framework on the requested machine, checks
    the results against the sequential reference, and prints speedups.
    """
    import argparse

    from repro.bench import APPS, run_point, sequential_seconds, make_problem

    parser = argparse.ArgumentParser(
        prog=f"python -m repro.apps.{app}",
        description=f"Run the {app} benchmark on the simulated cluster.",
    )
    parser.add_argument("--nodes", type=int, default=8)
    parser.add_argument("--cores", type=int, default=16, help="cores per node")
    parser.add_argument(
        "--frameworks", default="cmpi,triolet,eden", help="comma-separated list"
    )
    args = parser.parse_args(argv)
    if args.nodes < 1 or args.cores < 1:
        parser.error("--nodes and --cores must be positive")
    frameworks = [f.strip() for f in args.frameworks.split(",") if f.strip()]
    unknown = set(frameworks) - set(APPS[app].runners)
    if unknown:
        parser.error(f"unknown frameworks: {sorted(unknown)}")

    problem = make_problem(app)
    seq_s, seq_value = sequential_seconds(app, problem)
    print(f"{app}: sequential C reference = {seq_s:.1f} virtual s")
    print(f"machine: {args.nodes} nodes x {args.cores} cores\n")
    print(f"{'framework':<10}{'speedup':>10}{'elapsed (s)':>14}{'correct':>9}")
    for fw in frameworks:
        pt = run_point(
            app,
            fw,
            args.nodes,
            problem=problem,
            reference=(seq_s, seq_value),
            cores_per_node=args.cores,
        )
        if pt.failed:
            print(f"{fw:<10}{'FAIL':>10}{'-':>14}{'-':>9}  ({pt.failed[:48]})")
        else:
            print(
                f"{fw:<10}{pt.speedup:>9.1f}x{pt.elapsed:>14.4f}"
                f"{str(pt.correct):>9}"
            )
    return 0
