"""Per-rank resident shard stores and the plane's slice cache.

A :class:`RankStore` is the worker side of the data plane: it holds, per
handle, one contiguous *resident* row interval (the rank's shard, grown
by replication or boundary migration) plus cached slices for sections
whose work partition doesn't line up with the data partition.  Stores
mutate only by applying explicit shipping operations planned on the main
rank, so their contents are always exactly what the placement metadata
says they are.

:class:`SliceCache` is the main rank's *policy* object: a byte-bounded
LRU over (array, lo, hi) keys with hit/miss/evict counters.  It tracks
metadata only -- the bytes live in the rank stores -- which keeps cache
decisions on the planning side where they can be made before any data
moves.
"""
from __future__ import annotations

import struct
from collections import OrderedDict

import numpy as np

from repro.data.handle import MissingShardError

#: Default per-rank cache budget for partially-overlapping slices.
DEFAULT_CACHE_BYTES = 4 << 20

# Shipping operations (serializable tuples):
#   ("resident", aid, lo, hi, pieces)  -- make [lo, hi) the resident shard
#   ("cache",    aid, lo, hi, pieces)  -- add [lo, hi) as a cached slice
#   ("evict",    aid, lo, hi)          -- drop a cached slice
# where pieces = [(plo, phi, ndarray), ...] are the rows actually shipped;
# rows already present locally are reused instead of re-shipped.
#
# On the wire the array id travels as 8 fixed bytes (see aid_wire): ids
# grow for the life of the process, and a varint id would make a
# section's message size -- and so its virtual wire time -- depend on how
# many handles earlier, unrelated runs created.


def aid_wire(aid: int) -> bytes:
    """Fixed-width wire form of an array id."""
    return struct.pack("<Q", aid)


def _aid_of(x) -> int:
    if isinstance(x, (bytes, memoryview)):
        return struct.unpack("<Q", x)[0]
    if isinstance(x, int):
        return x
    return x.array_id  # a DistArray handle


class SliceCache:
    """Byte-bounded LRU of cached slice intervals (metadata only)."""

    def __init__(self, max_bytes: int = DEFAULT_CACHE_BYTES):
        self.max_bytes = max_bytes
        self._entries: OrderedDict[tuple[int, int, int], int] = OrderedDict()
        # Ghost (halo) entries: stencil ghost intervals live in the same
        # byte budget but outside the hit/miss accounting -- halo traffic
        # has its own conservation law (halo_requests == halo_hits +
        # halo_refreshes) and must not perturb the slice-cache delta
        # check at section boundaries.
        self._ghost: set[tuple[int, int, int]] = set()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def bytes_used(self) -> int:
        return sum(self._entries.values())

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, aid: int, lo: int, hi: int) -> tuple[int, int, int] | None:
        """A cached entry containing ``[lo, hi)`` of *aid*, or None.

        A hit refreshes the entry's LRU position.  Ghost entries are
        invisible here: they are halo placements, not slice-cache state,
        and must not turn a genuine miss into a hit behind the halo
        accounting's back.
        """
        for key in self._entries:
            kaid, klo, khi = key
            if kaid == aid and klo <= lo and hi <= khi and key not in self._ghost:
                self._entries.move_to_end(key)
                self.hits += 1
                return key
        self.misses += 1
        return None

    def contains(self, aid: int, lo: int, hi: int) -> bool:
        """Non-counting containment probe (ghost entries included).

        The stencil planner asks "is this ghost interval still fresh?"
        without charging a hit or a miss -- halo traffic has its own
        counters.
        """
        return any(
            kaid == aid and klo <= lo and hi <= khi
            for kaid, klo, khi in self._entries
        )

    def put(self, aid: int, lo: int, hi: int,
            nbytes: int, ghost: bool = False) -> list[tuple[int, int, int]]:
        """Admit ``[lo, hi)`` and return the entries evicted to fit it.

        An entry larger than the whole budget is still admitted (the
        section needs the data regardless); it simply evicts everything
        else and is the next to go.  ``ghost=True`` flags the entry as a
        halo placement (see :meth:`lookup`).
        """
        key = (aid, lo, hi)
        self._entries[key] = nbytes
        self._entries.move_to_end(key)
        if ghost:
            self._ghost.add(key)
        else:
            self._ghost.discard(key)
        evicted = []
        while self.bytes_used > self.max_bytes and len(self._entries) > 1:
            old, _ = self._entries.popitem(last=False)
            if old == key:  # never evict what we just admitted
                self._entries[key] = nbytes
                continue
            self.evictions += 1
            self._ghost.discard(old)
            evicted.append(old)
        return evicted

    def drop(self, key: tuple[int, int, int]) -> bool:
        """Silently forget one entry (ghost invalidation on writes);
        no eviction is counted -- the entry was not displaced by
        capacity pressure but by the row contents changing."""
        self._ghost.discard(key)
        return self._entries.pop(key, None) is not None

    def ghost_keys(self) -> set[tuple[int, int, int]]:
        return set(self._ghost)

    def keys(self) -> list[tuple[int, int, int]]:
        """All entry keys, LRU order (write-invalidation scans)."""
        return list(self._entries)

    def invalidate(self, aid: int | None = None) -> int:
        """Drop entries (all, or one array's); returns how many."""
        if aid is None:
            n = len(self._entries)
            self._entries.clear()
            self._ghost.clear()
            return n
        victims = [k for k in self._entries if k[0] == aid]
        for k in victims:
            del self._entries[k]
            self._ghost.discard(k)
        return len(victims)

    def keep_only(self, keys) -> int:
        """Drop every entry not in *keys* (post-crash reconciliation
        against a store's actual contents); returns how many dropped.

        Ghost entries are dropped even when their bytes survived in the
        store: a shrink renumbers ranks and re-blocks the partition, so
        every ghost interval is keyed to dead geometry -- keeping one
        would leave orphan halo metadata that the planner's ghost map no
        longer tracks (and that a renumbered store could serve stale).
        """
        victims = [
            k for k in self._entries if k not in keys or k in self._ghost
        ]
        for k in victims:
            del self._entries[k]
            self._ghost.discard(k)
        return len(victims)


class RankStore:
    """One rank's resident shards and cached slices."""

    def __init__(self, rank: int):
        self.rank = rank
        # aid -> (lo, hi, rows buffer) -- one contiguous hull per array.
        self._resident: dict[int, tuple[int, int, np.ndarray]] = {}
        # (aid, lo, hi) -> rows buffer.
        self._cached: dict[tuple[int, int, int], np.ndarray] = {}

    # -- reads --------------------------------------------------------------
    def resident_bounds(self, aid: int) -> tuple[int, int] | None:
        ent = self._resident.get(aid)
        return (ent[0], ent[1]) if ent is not None else None

    def cached_keys(self) -> set[tuple[int, int, int]]:
        return set(self._cached)

    def view(self, aid: int, lo: int, hi: int) -> np.ndarray:
        """A zero-copy view of rows ``[lo, hi)`` from local data."""
        ent = self._resident.get(aid)
        if ent is not None and ent[0] <= lo and hi <= ent[1]:
            return ent[2][lo - ent[0]:hi - ent[0]]
        for (kaid, klo, khi), buf in self._cached.items():
            if kaid == aid and klo <= lo and hi <= khi:
                return buf[lo - klo:hi - klo]
        raise MissingShardError(
            f"rank {self.rank}: rows [{lo}, {hi}) of array {aid} are neither "
            f"resident nor cached"
        )

    # -- writes (shipping ops only) ----------------------------------------
    def apply(self, ops: list) -> None:
        for op in ops:
            kind, aid = op[0], _aid_of(op[1])
            if kind == "resident":
                _, _, lo, hi, pieces = op
                self._resident[aid] = (lo, hi, self._assemble(aid, lo, hi, pieces))
            elif kind == "cache":
                _, _, lo, hi, pieces = op
                self._cached[(aid, lo, hi)] = self._assemble(aid, lo, hi, pieces)
            elif kind == "evict":
                _, _, lo, hi = op
                self._cached.pop((aid, lo, hi), None)
            else:
                raise ValueError(f"unknown shipping op: {kind!r}")

    def _assemble(self, aid: int, lo: int, hi: int, pieces: list) -> np.ndarray:
        """Build the rows ``[lo, hi)`` from shipped pieces plus whatever
        already-resident rows overlap the interval."""
        old = self._resident.get(aid)
        if not pieces and old is None:
            raise MissingShardError(
                f"rank {self.rank}: cannot assemble [{lo}, {hi}) of array "
                f"{aid} from nothing"
            )
        proto = pieces[0][2] if pieces else old[2]
        buf = np.empty((hi - lo,) + proto.shape[1:], dtype=proto.dtype)
        if old is not None:
            olo, _ohi, obuf = old
            s, e = max(lo, olo), min(hi, _ohi)
            if s < e:
                buf[s - lo:e - lo] = obuf[s - olo:e - olo]
        for plo, phi, rows in pieces:
            buf[plo - lo:phi - lo] = rows
        return buf

    def drop_cached(self, key: tuple[int, int, int]) -> bool:
        """Forget one cached slice's bytes (ghost invalidation)."""
        return self._cached.pop(key, None) is not None

    def invalidate(self, aid: int | None = None) -> None:
        if aid is None:
            self._resident.clear()
            self._cached.clear()
        else:
            self._resident.pop(aid, None)
            for k in [k for k in self._cached if k[0] == aid]:
                del self._cached[k]

    def clear(self) -> None:
        self.invalidate()
