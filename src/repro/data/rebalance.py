"""Cost-feedback repartitioning.

After every handle-backed 1-D section the driver reports the per-rank
block bounds and per-rank compute time (virtual seconds from the
``CostMeter``/work-stealing execution, so stragglers and heterogeneous
nodes show up as cost).  The rebalancer maintains an EWMA processing
*rate* (rows per virtual second) per rank; once observed imbalance
exceeds the threshold it activates, and subsequent sections partition by
:func:`repro.partition.weighted_bounds` over those rates instead of the
uniform split -- migrating shard boundaries toward faster ranks.
"""
from __future__ import annotations

from dataclasses import dataclass, field

from repro.partition import weighted_bounds


@dataclass
class Rebalancer:
    """Per-rank rate tracking + threshold-gated weighted repartitioning.

    Activation needs the imbalance to *persist* for ``patience``
    consecutive sections: a single lopsided section usually means the
    workload's cost structure is uneven (a triangular pair loop gives its
    first block more work on any machine), not that a rank is slow.  A
    straggling or throttled node shows up section after section; that is
    the signal worth migrating shard boundaries for.
    """

    threshold: float = 1.25  # activate when max/mean cost exceeds this
    smoothing: float = 0.5  # EWMA weight of the newest observation
    patience: int = 2  # consecutive imbalanced sections before acting
    enabled: bool = True
    _rates: dict[int, float] = field(default_factory=dict)
    _streak: int = 0
    active: bool = False
    activations: int = 0
    observations: int = 0

    def observe(self, bounds: list[tuple[int, int]],
                costs: list[float]) -> None:
        """Record one section's per-rank (rows, virtual cost) feedback."""
        if not self.enabled or len(bounds) != len(costs) or len(costs) < 2:
            return
        self.observations += 1
        for rank, ((lo, hi), cost) in enumerate(zip(bounds, costs)):
            rows = hi - lo
            if rows <= 0 or cost <= 0.0:
                continue
            rate = rows / cost
            prev = self._rates.get(rank)
            self._rates[rank] = (
                rate if prev is None
                else self.smoothing * rate + (1.0 - self.smoothing) * prev
            )
        loaded = [c for (lo, hi), c in zip(bounds, costs) if hi > lo and c > 0.0]
        imbalanced = False
        if len(loaded) >= 2:
            mean = sum(loaded) / len(loaded)
            imbalanced = mean > 0.0 and max(loaded) / mean > self.threshold
        if not imbalanced:
            # Once active, staying balanced means the weighting works;
            # only pre-activation streaks reset.
            self._streak = 0
            return
        self._streak += 1
        if self._streak >= self.patience and not self.active:
            self.active = True
            self.activations += 1

    def weights(self, nchunks: int) -> list[float] | None:
        """Per-rank weights for the next split, or None for the uniform
        split (not active yet, or no rate data for these ranks)."""
        if not (self.enabled and self.active):
            return None
        known = [self._rates[r] for r in range(nchunks) if r in self._rates]
        if not known:
            return None
        default = sum(known) / len(known)
        return [self._rates.get(r, default) for r in range(nchunks)]

    def bounds(self, extent: int, nchunks: int) -> list[tuple[int, int]] | None:
        w = self.weights(nchunks)
        if w is None:
            return None
        return weighted_bounds(extent, w)

    def reset(self) -> None:
        self._rates.clear()
        self.active = False
