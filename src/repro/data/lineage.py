"""Lineage tracking for DistArray handles and section outputs.

RDD-style provenance for the data plane: every handle records how it
came to exist (``source`` = registered from a master copy on the main
rank, ``section`` = produced by a distributed section over input
handles), and every distributed section that touched handles appends a
record of ``(section id, plan, input handle ids)``.

The payoff is *selective* recovery.  When a rank is lost permanently,
the planner knows exactly which shard intervals died and which upstream
arrays can rebuild them; the next section replays only that slice chain
(for ``source`` handles: the master rows of the lost interval) instead
of invalidating and re-shipping every rank's placement, which is what
the transient-crash path does.  The replayed rows are counted apart
from ordinary placement traffic so benchmarks can compare lineage
recovery against full re-materialization byte for byte.
"""
from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class LineageRecord:
    """How one handle (or one section output) came to exist."""

    #: handle id this record produced (``None`` for a section whose
    #: output was reduced/gathered to the main rank, not re-distributed)
    aid: int | None
    #: "source" (registered master copy) or "section" (computed)
    kind: str
    #: producing distributed-section sequence id (-1 for sources)
    section: int = -1
    #: compiled bulk-execution plan of the producing section, if any
    plan: str | None = None
    #: input handle ids the producing section consumed
    inputs: tuple[int, ...] = ()


@dataclass(frozen=True)
class LostShard:
    """One shard interval that died with a permanently lost rank."""

    aid: int
    rank: int
    lo: int
    hi: int

    @property
    def rows(self) -> int:
        return self.hi - self.lo


class LineageLog:
    """Per-plane provenance log + replay accounting.

    ``record_source``/``record_section`` build the graph;
    :meth:`chain` walks it upstream; :meth:`mark_lost` /
    :meth:`note_replay` are the shrink-recovery hooks the planner calls
    when a permanent loss strands shards and when it later rebuilds
    them.
    """

    def __init__(self):
        self._by_aid: dict[int, LineageRecord] = {}
        self.sections: list[LineageRecord] = []
        self.lost: list[LostShard] = []
        #: shards re-materialized by replaying their upstream chain
        self.replays = 0
        self.replayed_rows = 0

    # -- building the graph -------------------------------------------------

    def record_source(self, aid: int) -> LineageRecord:
        rec = self._by_aid.get(aid)
        if rec is None:
            rec = LineageRecord(aid=aid, kind="source")
            self._by_aid[aid] = rec
        return rec

    def record_section(
        self,
        section: int,
        plan: str | None,
        inputs: tuple[int, ...],
        output_aid: int | None = None,
    ) -> LineageRecord:
        rec = LineageRecord(
            aid=output_aid, kind="section", section=section, plan=plan,
            inputs=tuple(sorted(set(inputs))),
        )
        self.sections.append(rec)
        if output_aid is not None:
            self._by_aid[output_aid] = rec
        return rec

    # -- queries ------------------------------------------------------------

    def producer(self, aid: int) -> LineageRecord | None:
        return self._by_aid.get(aid)

    def chain(self, aid: int) -> list[LineageRecord]:
        """The upstream slice chain of *aid*: its producer, then the
        producers of its inputs, breadth-first, each handle once."""
        out: list[LineageRecord] = []
        seen: set[int] = set()
        frontier = [aid]
        while frontier:
            nxt: list[int] = []
            for a in frontier:
                if a in seen:
                    continue
                seen.add(a)
                rec = self._by_aid.get(a)
                if rec is None:
                    continue
                out.append(rec)
                nxt.extend(rec.inputs)
            frontier = nxt
        return out

    # -- loss & replay accounting (called by DataPlane) ---------------------

    def mark_lost(self, aid: int, rank: int, lo: int, hi: int) -> None:
        if hi > lo:
            self.lost.append(LostShard(aid=aid, rank=rank, lo=lo, hi=hi))

    def pending(self) -> set[int]:
        """Handle ids with shards still waiting to be re-materialized."""
        return {s.aid for s in self.lost}

    def note_replay(self, aid: int, rows: int) -> None:
        self.replays += 1
        self.replayed_rows += rows

    def settle(self) -> None:
        """The next section has been planned; anything still marked lost
        will re-materialize through ordinary placement when touched."""
        self.lost.clear()

    def describe(self) -> str:
        srcs = sum(1 for r in self._by_aid.values() if r.kind == "source")
        return (
            f"lineage: {srcs} source handle(s), "
            f"{len(self.sections)} section record(s), "
            f"{self.replays} replay(s) ({self.replayed_rows} rows)"
        )
