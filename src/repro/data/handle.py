"""DistArray handles and handle-backed iterator sources.

A :class:`DistArray` is a first-class handle to an array that the data
plane has placed across rank stores.  The handle itself is tiny -- an id
plus metadata -- and that is all that ever crosses the simulated wire:
it serializes as its id (a few bytes), the way Triolet serializes a
pointer to global data as segment + offset (paper §3.4).  The array's
*bytes* move only through explicit data-plane shipping operations, at
section boundaries, at most once per rank (§3.5 decoupling of data
distribution from work distribution).

A :class:`HandleSource` is the iterator-side view: a ``DataSource`` that
names a half-open row interval of a handle.  Slicing it is index
arithmetic -- no bytes are touched -- and ``context()`` resolves against
the executing rank's :class:`~repro.data.store.RankStore` (bound in a
context variable by the runtime), falling back to the master copy on the
main rank.
"""
from __future__ import annotations

import contextlib
import contextvars
import struct
import threading
import weakref
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.core.domains import Seq
from repro.core.encodings import indexer as _ix
from repro.core.sources import DataSource
from repro.serial.closures import closure, set_env_resolver
from repro.serial.serializer import (
    SerializationError,
    _pack_varint,
    _unpack_varint,
    register_type,
)


class MissingShardError(RuntimeError):
    """A rank touched handle data that the plane never shipped to it."""


# Master handle registry.  All simulated ranks share the interpreter, so
# one registry faithfully models "every node knows the handle metadata";
# only store contents are per-rank.  Weak values: a handle (and its
# master array) lives as long as some plane or program references it,
# not as long as the process.
_HANDLES: "weakref.WeakValueDictionary[int, DistArray]" = (
    weakref.WeakValueDictionary()
)
_next_id = 0
_id_lock = threading.Lock()

#: The executing rank's store, bound by the runtime for ranks > 0 while a
#: parallel task runs.  Unbound (None) means "main rank": resolve against
#: the master copy.
_CURRENT_STORE: contextvars.ContextVar[Any] = contextvars.ContextVar(
    "repro_data_store", default=None
)

LAYOUTS = ("block", "block2d", "replicated")


def current_store():
    return _CURRENT_STORE.get()


@contextlib.contextmanager
def bind_store(store):
    """Bind *store* as the executing rank's store (no-op for ``None``)."""
    if store is None:
        yield
        return
    token = _CURRENT_STORE.set(store)
    try:
        yield
    finally:
        _CURRENT_STORE.reset(token)


def lookup_handle(array_id: int) -> "DistArray":
    h = _HANDLES.get(array_id)
    if h is None:
        raise SerializationError(f"unknown DistArray id: {array_id}")
    return h


class DistArray:
    """Handle to an array resident across rank stores.

    Supports the iterable surface the apps need -- ``len``, ``shape``,
    ``dtype``, and the ``__triolet_idx__`` protocol that makes
    ``tri.iterate``/``tri.rows`` build handle-backed indexers -- but is
    *not* an ndarray: element access goes through :meth:`resolve` so it
    always lands on rank-local data.
    """

    __slots__ = ("array_id", "array", "layout", "__weakref__")

    def __init__(self, array: np.ndarray, layout: str = "block",
                 array_id: int | None = None):
        if layout not in LAYOUTS:
            raise ValueError(f"unknown layout {layout!r}; expected one of {LAYOUTS}")
        arr = np.asarray(array)
        if arr.ndim == 0:
            raise ValueError("cannot distribute a 0-d array")
        global _next_id
        with _id_lock:
            if array_id is None:
                array_id = _next_id
                _next_id += 1
            elif array_id in _HANDLES:
                raise ValueError(f"DistArray id already in use: {array_id}")
            self.array_id = array_id
            self.array = arr
            self.layout = layout
            _HANDLES[array_id] = self

    # -- array-like surface -------------------------------------------------
    def __len__(self) -> int:
        return len(self.array)

    @property
    def shape(self):
        return self.array.shape

    @property
    def dtype(self):
        return self.array.dtype

    @property
    def ndim(self) -> int:
        return self.array.ndim

    @property
    def nbytes(self) -> int:
        return self.array.nbytes

    def row_nbytes(self) -> int:
        """Bytes per outer row (the plane's shipping unit)."""
        n = len(self.array)
        return self.array.nbytes // n if n else self.array.itemsize

    def resolve(self) -> np.ndarray:
        """The full array as seen from the executing rank."""
        store = _CURRENT_STORE.get()
        if store is None:
            return self.array
        return store.view(self.array_id, 0, len(self.array))

    def __triolet_idx__(self) -> "_ix.Idx":
        """Iterator protocol hook: a handle-backed indexer over the rows."""
        return _ix.Idx(
            Seq(len(self.array)),
            closure(_ix._extract_array),
            HandleSource(self.array_id, 0, len(self.array)),
            closure(_ix._bulk_array),
        )

    def __repr__(self) -> str:
        return (f"DistArray(id={self.array_id}, shape={self.array.shape}, "
                f"dtype={self.array.dtype}, layout={self.layout!r})")


def drop_handles() -> None:
    """Forget all handles (test hygiene)."""
    _HANDLES.clear()


@dataclass(frozen=True)
class HandleSource(DataSource):
    """A half-open row interval ``[lo, hi)`` of a :class:`DistArray`.

    Ships as a fixed-width id plus two varints; the referenced rows never
    travel with the iterator.  ``context()`` resolves on the executing
    rank's store.  (The id is fixed-width deliberately: handle ids grow
    monotonically for the life of the process, and a varint id would make
    a section's wire bytes -- and so its virtual time -- depend on how
    many handles earlier runs created.)
    """

    array_id: int
    lo: int
    hi: int

    def context(self):
        handle = lookup_handle(self.array_id)
        store = _CURRENT_STORE.get()
        if store is None or self.hi <= self.lo:
            # Main rank, or a valid empty block (ranks > elements): a
            # zero-length view carries dtype/shape only, never shard data.
            return handle.array[self.lo:self.hi]
        return store.view(self.array_id, self.lo, self.hi)

    def slice_outer(self, lo: int, hi: int) -> "HandleSource":
        n = self.hi - self.lo
        if not (0 <= lo <= hi <= n):
            raise ValueError(f"slice [{lo}, {hi}) out of bounds for extent {n}")
        return HandleSource(self.array_id, self.lo + lo, self.lo + hi)

    def wire_size(self) -> int:
        return 24  # type tag + three varints, give or take


def _encode_handle_source(obj: HandleSource, out: bytearray) -> None:
    out += struct.pack("<Q", obj.array_id)
    _pack_varint(obj.lo, out)
    _pack_varint(obj.hi, out)


def _decode_handle_source(buf: memoryview, offset: int):
    (aid,) = struct.unpack_from("<Q", buf, offset)
    offset += 8
    lo, offset = _unpack_varint(buf, offset)
    hi, offset = _unpack_varint(buf, offset)
    return HandleSource(aid, lo, hi), offset


register_type(
    "repro.HandleSource", HandleSource,
    _encode_handle_source, _decode_handle_source,
)


def _encode_dist_array(obj: DistArray, out: bytearray) -> None:
    out += struct.pack("<Q", obj.array_id)


def _decode_dist_array(buf: memoryview, offset: int):
    (aid,) = struct.unpack_from("<Q", buf, offset)
    return lookup_handle(aid), offset + 8


register_type("repro.DistArray", DistArray, _encode_dist_array, _decode_dist_array)


def _resolve_handle(entry: DistArray) -> np.ndarray:
    return entry.resolve()


# Closure environments carrying handles resolve to rank-local views at
# call time (replicated-layout use: big read-only arrays in closure envs).
set_env_resolver((DistArray,), _resolve_handle)
