"""Lazy, composable distributed views over :class:`DistArray` handles.

In the style of "Distributed Ranges" (arxiv 2406.00158), a view is a
cheap description of a traversal over already-placed data: it carries
*which rows of which handles* the traversal touches, and the extraction
logic to turn those rows into elements.  Nothing is copied at
construction; when a view pipeline runs as a parallel section, the
data plane's chunk-requirement walk reads the view's sources and ships
only the intervals the pipeline actually reads.

Four constructors, freely composable (a view accepts a handle, a plain
ndarray, or another view as its base):

* :func:`slice_view` -- a contiguous row window ``[lo, hi)``;
* :func:`zip_view` -- lockstep traversal of several bases (extent is the
  minimum, and only the first ``extent`` rows of each base are touched);
* :func:`transpose_view` -- the columns of a 2-D base as elements; every
  column reads every row, so the requirement is the whole row range
  (HDArray-style inference: the access pattern *is* the placement);
* :func:`segmented_view` -- variable-length row segments cut by an
  offsets vector; the requirement is exactly ``[offsets[0],
  offsets[-1])``.

Views implement ``__triolet_idx__``, so ``tri.iterate``/``tri.par`` (and
everything downstream: fusion, vectorization, distribution, recovery)
treat them like any other indexable source.
"""
from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

from repro.core.domains import Seq
from repro.core.encodings import indexer as _ix
from repro.core.sources import DataSource
from repro.data.handle import DistArray, current_store, lookup_handle
from repro.serial import closure, register_function
from repro.serial.serializer import (
    _pack_varint,
    _unpack_varint,
    register_type,
    serializable,
)

__all__ = [
    "View",
    "SliceView",
    "ZipView",
    "TransposeView",
    "SegmentedView",
    "slice_view",
    "zip_view",
    "transpose_view",
    "segmented_view",
    "TransposeSource",
    "SegmentedSource",
]


# ---------------------------------------------------------------------------
# Handle-backed sources for the two new access patterns.  Like
# HandleSource, they ship as a fixed-width handle id plus varints -- the
# referenced rows never travel with the iterator.


@dataclass(frozen=True)
class TransposeSource(DataSource):
    """Columns ``[col_lo, col_hi)`` of a 2-D handle, rows all resident.

    Outer positions select *columns*; every column intersects every row,
    so the chunk-requirement walk asks for the full row range on every
    rank (replicated requirement).  Column slicing is pure index
    arithmetic on ``col_lo``.
    """

    array_id: int
    col_lo: int
    col_hi: int

    def context(self):
        handle = lookup_handle(self.array_id)
        store = current_store()
        n = len(handle)
        if store is None or n == 0 or self.col_hi <= self.col_lo:
            # A zero-row base ships nothing (the planner skips empty
            # requirements), so read the handle's own (empty) rows.
            return (handle.array, self.col_lo)
        return (store.view(self.array_id, 0, n), self.col_lo)

    def slice_outer(self, lo: int, hi: int) -> "TransposeSource":
        w = self.col_hi - self.col_lo
        if not (0 <= lo <= hi <= w):
            raise ValueError(f"slice [{lo}, {hi}) out of bounds for {w} columns")
        return TransposeSource(self.array_id, self.col_lo + lo, self.col_lo + hi)

    def wire_size(self) -> int:
        return 24


@register_function
def _extract_column(ctx, i):
    arr, col_lo = ctx
    return arr[:, col_lo + i]


@register_function
def _bulk_transpose(ctx, domain):
    arr, col_lo = ctx
    return np.ascontiguousarray(arr[:, col_lo:col_lo + domain.size].T)


def _encode_transpose_source(obj: TransposeSource, out: bytearray) -> None:
    out += struct.pack("<Q", obj.array_id)
    _pack_varint(obj.col_lo, out)
    _pack_varint(obj.col_hi, out)


def _decode_transpose_source(buf: memoryview, offset: int):
    (aid,) = struct.unpack_from("<Q", buf, offset)
    offset += 8
    lo, offset = _unpack_varint(buf, offset)
    hi, offset = _unpack_varint(buf, offset)
    return TransposeSource(aid, lo, hi), offset


register_type(
    "repro.TransposeSource", TransposeSource,
    _encode_transpose_source, _decode_transpose_source,
)


@dataclass(frozen=True)
class SegmentedSource(DataSource):
    """Variable-length row segments of a handle, cut by *offsets*.

    Element ``i`` is rows ``[offsets[i], offsets[i+1])``; the source
    touches exactly ``[offsets[0], offsets[-1])`` of the handle, and
    slicing the outer (segment) axis narrows the offsets vector -- so a
    rank is shipped only the rows its segments cover.
    """

    array_id: int
    offsets: tuple

    def __post_init__(self):
        if len(self.offsets) < 1:
            raise ValueError("SegmentedSource needs at least one offset")
        if any(b < a for a, b in zip(self.offsets, self.offsets[1:])):
            raise ValueError(f"offsets must be non-decreasing: {self.offsets}")

    def context(self):
        handle = lookup_handle(self.array_id)
        store = current_store()
        lo, hi = self.offsets[0], self.offsets[-1]
        if store is None or hi <= lo:
            return (handle.array[lo:hi], self.offsets)
        return (store.view(self.array_id, lo, hi), self.offsets)

    def slice_outer(self, lo: int, hi: int) -> "SegmentedSource":
        nseg = len(self.offsets) - 1
        if not (0 <= lo <= hi <= nseg):
            raise ValueError(f"slice [{lo}, {hi}) out of bounds for {nseg} segments")
        return SegmentedSource(self.array_id, self.offsets[lo:hi + 1])

    def wire_size(self) -> int:
        return 16 + 4 * len(self.offsets)


@register_function
def _extract_segment(ctx, i):
    arr, offs = ctx
    base = offs[0]
    return arr[offs[i] - base:offs[i + 1] - base]


def _encode_segmented_source(obj: SegmentedSource, out: bytearray) -> None:
    out += struct.pack("<Q", obj.array_id)
    _pack_varint(len(obj.offsets), out)
    for o in obj.offsets:
        _pack_varint(o, out)


def _decode_segmented_source(buf: memoryview, offset: int):
    (aid,) = struct.unpack_from("<Q", buf, offset)
    offset += 8
    count, offset = _unpack_varint(buf, offset)
    offs = []
    for _ in range(count):
        o, offset = _unpack_varint(buf, offset)
        offs.append(o)
    return SegmentedSource(aid, tuple(offs)), offset


register_type(
    "repro.SegmentedSource", SegmentedSource,
    _encode_segmented_source, _decode_segmented_source,
)


# Plain-array fallbacks: views compose over raw ndarrays too (the
# scalar/vectorized differential paths run the identical pipeline with
# no plane underneath).


@serializable
@dataclass(frozen=True)
class LocalSegmentedSource(DataSource):
    """Segments of a plain ndarray (no handle, no plane)."""

    arr: np.ndarray
    offsets: tuple

    def context(self):
        return (self.arr, self.offsets)

    def slice_outer(self, lo: int, hi: int) -> "LocalSegmentedSource":
        nseg = len(self.offsets) - 1
        if not (0 <= lo <= hi <= nseg):
            raise ValueError(f"slice [{lo}, {hi}) out of bounds for {nseg} segments")
        offs = self.offsets[lo:hi + 1]
        base, top = (offs[0], offs[-1]) if offs else (0, 0)
        return LocalSegmentedSource(
            self.arr[base:top], tuple(o - base for o in offs)
        )


# ---------------------------------------------------------------------------
# Interval algebra: which base rows does a view pipeline touch?


def _merge(ivals: list) -> list:
    live = sorted((int(lo), int(hi)) for lo, hi in ivals if hi > lo)
    out: list[tuple[int, int]] = []
    for lo, hi in live:
        if out and lo <= out[-1][1]:
            out[-1] = (out[-1][0], max(out[-1][1], hi))
        else:
            out.append((lo, hi))
    return out


def _merge_maps(maps: list[dict]) -> dict:
    out: dict = {}
    for m in maps:
        for key, ivals in m.items():
            out.setdefault(key, []).extend(ivals)
    return {key: _merge(ivals) for key, ivals in out.items()}


def _base_key(base):
    """Interval-map key for a base: handle id, or ``("local", id)`` for a
    plain ndarray (identity is enough -- the map is per-pipeline)."""
    if isinstance(base, DistArray):
        return base.array_id
    return ("local", id(base))


def base_extent(base) -> int:
    if isinstance(base, View):
        return len(base)
    return len(base)


# ---------------------------------------------------------------------------
# The views themselves


class View:
    """Base class: a lazy traversal description over handles/arrays.

    Subclasses provide ``__len__`` (outer extent), ``_idx()`` (the
    backing indexer) and ``base_intervals()`` (the touched row intervals
    per base, merged -- what the placement planner will ship, and what
    the halo property suite flattens)."""

    def __triolet_idx__(self) -> "_ix.Idx":
        return self._idx()

    def _idx(self) -> "_ix.Idx":
        raise NotImplementedError

    def base_intervals(self) -> dict:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError


def _as_idx(base) -> "_ix.Idx":
    if isinstance(base, View):
        return base._idx()
    if isinstance(base, DistArray):
        return base.__triolet_idx__()
    return _ix.array_indexer(np.asarray(base))


def _as_intervals(base, lo: int | None = None, hi: int | None = None) -> dict:
    """Touched intervals of *base*, optionally restricted to its outer
    positions ``[lo, hi)``."""
    if isinstance(base, View):
        if lo is None:
            return base.base_intervals()
        return base._restricted_intervals(lo, hi)
    n = len(base)
    lo = 0 if lo is None else lo
    hi = n if hi is None else hi
    return {_base_key(base): _merge([(lo, hi)])}


class SliceView(View):
    """Rows ``[lo, hi)`` of the base, rebased to start at zero."""

    def __init__(self, base, lo: int, hi: int):
        n = base_extent(base)
        if not (0 <= lo <= hi <= n):
            raise ValueError(f"slice [{lo}, {hi}) out of bounds for extent {n}")
        self.base = base
        self.lo = lo
        self.hi = hi

    def __len__(self) -> int:
        return self.hi - self.lo

    def _idx(self) -> "_ix.Idx":
        return _as_idx(self.base).slice(self.lo, self.hi)

    def base_intervals(self) -> dict:
        return _as_intervals(self.base, self.lo, self.hi)

    def _restricted_intervals(self, lo: int, hi: int) -> dict:
        return _as_intervals(self.base, self.lo + lo, self.lo + hi)

    def __repr__(self) -> str:
        return f"slice_view({self.base!r}, {self.lo}, {self.hi})"


class ZipView(View):
    """Lockstep traversal; extent is the shortest base's."""

    def __init__(self, *bases):
        if not bases:
            raise ValueError("zip_view needs at least one base")
        self.bases = bases

    def __len__(self) -> int:
        return min(base_extent(b) for b in self.bases)

    def _idx(self) -> "_ix.Idx":
        return _ix.zip_idx(*[_as_idx(b) for b in self.bases])

    def base_intervals(self) -> dict:
        n = len(self)
        return _merge_maps([_as_intervals(b, 0, n) for b in self.bases])

    def _restricted_intervals(self, lo: int, hi: int) -> dict:
        return _merge_maps([_as_intervals(b, lo, hi) for b in self.bases])

    def __repr__(self) -> str:
        return f"zip_view{self.bases!r}"


class TransposeView(View):
    """Columns of a 2-D base as elements (whole-row requirement)."""

    def __init__(self, base):
        if isinstance(base, View):
            raise TypeError(
                "transpose_view composes over a 2-D handle or ndarray, "
                "not another view (transpose a view's base instead)"
            )
        if getattr(base, "ndim", 0) != 2:
            raise ValueError("transpose_view needs a 2-D base")
        self.base = base

    def __len__(self) -> int:
        return int(self.base.shape[1])

    def _idx(self) -> "_ix.Idx":
        w = int(self.base.shape[1])
        if isinstance(self.base, DistArray):
            return _ix.Idx(
                Seq(w),
                closure(_extract_column),
                TransposeSource(self.base.array_id, 0, w),
                closure(_bulk_transpose),
            )
        arr = np.asarray(self.base)
        return _ix.Idx(
            Seq(w),
            closure(_extract_column),
            LocalTransposeSource(arr, 0, w),
            closure(_bulk_transpose),
        )

    def base_intervals(self) -> dict:
        n = int(self.base.shape[0])
        return {_base_key(self.base): _merge([(0, n)])}

    def _restricted_intervals(self, lo: int, hi: int) -> dict:
        # Any non-empty column window still reads every row.
        if hi <= lo:
            return {}
        return self.base_intervals()

    def __repr__(self) -> str:
        return f"transpose_view({self.base!r})"


class SegmentedView(View):
    """Variable-length row segments cut by a non-decreasing offsets
    vector; element ``i`` is ``base[offsets[i]:offsets[i+1]]``."""

    def __init__(self, base, offsets):
        offs = tuple(int(o) for o in offsets)
        if len(offs) < 1:
            raise ValueError("segmented_view needs at least one offset")
        n = base_extent(base)
        if any(b < a for a, b in zip(offs, offs[1:])):
            raise ValueError(f"offsets must be non-decreasing: {offs}")
        if offs and not (0 <= offs[0] and offs[-1] <= n):
            raise ValueError(
                f"offsets {offs} escape base extent {n}"
            )
        if isinstance(base, View):
            raise TypeError(
                "segmented_view composes over a handle or ndarray, not "
                "another view (segment the view's base instead)"
            )
        self.base = base
        self.offsets = offs

    def __len__(self) -> int:
        return len(self.offsets) - 1

    def _idx(self) -> "_ix.Idx":
        nseg = len(self)
        if isinstance(self.base, DistArray):
            return _ix.Idx(
                Seq(nseg),
                closure(_extract_segment),
                SegmentedSource(self.base.array_id, self.offsets),
            )
        arr = np.asarray(self.base)
        lo, hi = self.offsets[0], self.offsets[-1]
        return _ix.Idx(
            Seq(nseg),
            closure(_extract_segment),
            LocalSegmentedSource(
                arr[lo:hi], tuple(o - lo for o in self.offsets)
            ),
        )

    def base_intervals(self) -> dict:
        return self._restricted_intervals(0, len(self))

    def _restricted_intervals(self, lo: int, hi: int) -> dict:
        if hi <= lo:
            return {}
        return {
            _base_key(self.base): _merge(
                [(self.offsets[lo], self.offsets[hi])]
            )
        }

    def __repr__(self) -> str:
        return f"segmented_view({self.base!r}, {self.offsets!r})"


@serializable
@dataclass(frozen=True)
class LocalTransposeSource(DataSource):
    """Columns of a plain 2-D ndarray (no handle, no plane)."""

    arr: np.ndarray
    col_lo: int
    col_hi: int

    def context(self):
        return (self.arr, self.col_lo)

    def slice_outer(self, lo: int, hi: int) -> "LocalTransposeSource":
        w = self.col_hi - self.col_lo
        if not (0 <= lo <= hi <= w):
            raise ValueError(f"slice [{lo}, {hi}) out of bounds for {w} columns")
        return LocalTransposeSource(
            self.arr, self.col_lo + lo, self.col_lo + hi
        )


# ---------------------------------------------------------------------------
# Constructors (the public verbs)


def slice_view(base, lo: int, hi: int) -> SliceView:
    """Rows ``[lo, hi)`` of *base* (handle, ndarray, or view)."""
    return SliceView(base, lo, hi)


def zip_view(*bases) -> ZipView:
    """Lockstep traversal of several bases; extent is the minimum."""
    return ZipView(*bases)


def transpose_view(base) -> TransposeView:
    """The columns of a 2-D base as elements."""
    return TransposeView(base)


def segmented_view(base, offsets) -> SegmentedView:
    """Variable-length row segments of *base* cut by *offsets*."""
    return SegmentedView(base, offsets)
