"""Resident distributed data plane (paper §3.5, taken to its conclusion).

Triolet decouples data distribution from work distribution: iterators
carry sliceable *data sources*, and the runtime ships each rank exactly
the slice its chunk needs.  The seed runtime still re-shipped those
slices from the main rank on every parallel section.  This package makes
placement *resident*:

* :class:`~repro.data.handle.DistArray` -- a handle that places an array
  across ranks once (block / block2d / replicated) and serializes as an
  id, never as bytes;
* :class:`~repro.data.store.RankStore` / ``SliceCache`` -- per-rank
  resident shards plus a byte-bounded LRU for partial-overlap slices;
* :class:`~repro.data.plane.DataPlane` -- section-boundary placement
  planning, cost-feedback boundary migration
  (:class:`~repro.data.rebalance.Rebalancer`), and crash invalidation;
* :mod:`repro.data.views` -- lazy composable views (slice / zip /
  transpose / segmented) whose sources tell the planner exactly which
  row intervals a pipeline touches.
"""
from repro.data.handle import (
    DistArray,
    HandleSource,
    MissingShardError,
    bind_store,
    current_store,
    drop_handles,
    lookup_handle,
)
from repro.data.lineage import LineageLog, LineageRecord, LostShard
from repro.data.plane import DataPlane, SectionShipment, chunk_requirements
from repro.data.rebalance import Rebalancer
from repro.data.store import DEFAULT_CACHE_BYTES, RankStore, SliceCache
from repro.data.views import (
    SegmentedSource,
    SegmentedView,
    SliceView,
    TransposeSource,
    TransposeView,
    View,
    ZipView,
    segmented_view,
    slice_view,
    transpose_view,
    zip_view,
)

__all__ = [
    "DistArray",
    "HandleSource",
    "MissingShardError",
    "bind_store",
    "current_store",
    "drop_handles",
    "lookup_handle",
    "DataPlane",
    "SectionShipment",
    "chunk_requirements",
    "LineageLog",
    "LineageRecord",
    "LostShard",
    "Rebalancer",
    "RankStore",
    "SliceCache",
    "DEFAULT_CACHE_BYTES",
    "View",
    "SliceView",
    "ZipView",
    "TransposeView",
    "SegmentedView",
    "TransposeSource",
    "SegmentedSource",
    "slice_view",
    "zip_view",
    "transpose_view",
    "segmented_view",
]
