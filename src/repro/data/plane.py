"""The data plane: placement planning at parallel-section boundaries.

The :class:`DataPlane` lives on the main rank inside the runtime.  It
owns the handle registry, a metadata mirror of every rank store's
resident shard, and a per-rank :class:`~repro.data.store.SliceCache`
policy.  Just before a distributed section launches, the driver asks the
plane what handle rows each rank's chunk needs (walking the chunk's data
sources *and* its closure environments) and the plane emits explicit
shipping operations:

* first use of an array on a rank ships the rank's layout shard (plus
  whatever the section needs beyond it) and records the placement;
* later sections whose requirements fall inside the recorded shard ship
  **zero** input bytes -- the iterator slices resolve against resident
  rows;
* requirements that only partially overlap the shard go through the
  byte-bounded LRU slice cache: a containing cached slice is a hit (zero
  bytes), otherwise only the missing rows are shipped;
* when the driver repartitions from cost feedback, the shard boundary
  itself migrates (the resident hull grows to the new block);
* a *transient* rank crash invalidates all placement and cache state --
  lost shards re-materialize from the master copy on the next section,
  and the re-shipped bytes are attributed to recovery;
* a *permanent* rank loss instead **shrinks** the plane
  (:meth:`DataPlane.shrink`): surviving ranks keep their shards under
  renumbered ids, only the lost rank's shard intervals are marked for
  lineage replay (:mod:`repro.data.lineage`), and the next section
  rebuilds exactly those rows through the weighted-bounds migration
  path -- strictly fewer bytes than full invalidation.
"""
from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.sources import (
    GatherSource,
    OuterProductSource,
    ReplicatedSource,
    TupleSource,
    WholeObjectSource,
)
from repro.data.handle import DistArray, HandleSource, bind_store, lookup_handle
from repro.data.views import SegmentedSource, TransposeSource
from repro.obs.spans import active as _obs_active
from repro.data.lineage import LineageLog
from repro.data.rebalance import Rebalancer
from repro.data.store import (
    DEFAULT_CACHE_BYTES,
    RankStore,
    SliceCache,
    aid_wire,
)
from repro.partition import block_bounds, halo_intervals, missing_intervals
from repro.serial.closures import Closure

# A requirement is aid -> [lo, hi, replicated]; replicated means "the
# rank needs the whole array resident" (closure-environment use).


@dataclass
class SectionShipment:
    """One section's planned shipping: per-destination ops + stats."""

    ops: list[list]  # indexed by destination rank; ops[0] is always []
    stats: dict = field(default_factory=dict)


def _req_add(reqs: dict, aid: int, lo: int, hi: int, replicated: bool) -> None:
    if hi <= lo:
        # Nothing to ship -- even replicated: planning an empty interval
        # would emit an assemble-from-nothing op (sources over empty
        # arrays read through the handle instead).
        return
    ent = reqs.get(aid)
    if ent is None:
        reqs[aid] = [lo, hi, replicated]
    else:
        ent[0] = min(ent[0], lo)
        ent[1] = max(ent[1], hi)
        ent[2] = ent[2] or replicated


def _walk_env(obj: Any, reqs: dict) -> None:
    if isinstance(obj, DistArray):
        _req_add(reqs, obj.array_id, 0, len(obj), replicated=True)
    elif isinstance(obj, Closure):
        for e in obj.env:
            _walk_env(e, reqs)
    elif isinstance(obj, tuple):
        for e in obj:
            _walk_env(e, reqs)


def _walk_source(src: Any, reqs: dict) -> None:
    if isinstance(src, HandleSource):
        _req_add(reqs, src.array_id, src.lo, src.hi, replicated=False)
    elif isinstance(src, TransposeSource):
        # Every column intersects every row: the touched set genuinely is
        # the whole row range on each rank (HDArray-style inference from
        # the access pattern, not a conservative over-approximation).
        handle = lookup_handle(src.array_id)
        _req_add(reqs, src.array_id, 0, len(handle), replicated=True)
    elif isinstance(src, SegmentedSource):
        # A rank's segments cover exactly [offsets[0], offsets[-1]).
        _req_add(reqs, src.array_id, src.offsets[0], src.offsets[-1],
                 replicated=False)
    elif isinstance(src, GatherSource):
        # The chunk was sliced before requirements are gathered, and
        # slicing a gather narrows its base to exactly the span the
        # position window touches -- so recursing is already the tight
        # "ship only touched index ranges" requirement.
        _walk_source(src.base, reqs)
    elif isinstance(src, TupleSource):
        for m in src.members:
            _walk_source(m, reqs)
    elif isinstance(src, OuterProductSource):
        _walk_source(src.u, reqs)
        _walk_source(src.v, reqs)
    elif isinstance(src, (ReplicatedSource, WholeObjectSource)):
        _walk_env(src.value, reqs)


def chunk_requirements(chunk) -> dict:
    """Handle rows one rank's chunk touches: sources + closure envs."""
    reqs: dict = {}
    idx = getattr(chunk, "idx", None)
    if idx is None:
        return reqs
    _walk_source(idx.source, reqs)
    _walk_env(idx.extract, reqs)
    if idx.bulk is not None:
        _walk_env(idx.bulk, reqs)
    return reqs


_STAT_KEYS = (
    "input_bytes", "placements", "placed_bytes", "resident_hits",
    "cache_hits", "cache_misses", "cache_evictions", "migrated_bytes",
    "requests", "migrations", "lineage_replays", "replayed_bytes",
    "halo_requests", "halo_hits", "halo_refreshes", "halo_bytes",
)

#: Halo traffic keeps its own conservation stream (checked by
#: ``repro.testing.invariants``): ghost intervals are not chunk
#: requirements, so they stay out of ``requests`` and the five-outcome
#: sum, and their bytes stay out of ``input_bytes``:
#:   halo_requests == halo_hits + halo_refreshes
#: with halo_bytes <= 2 * radius * nranks * row_nbytes per section.
_HALO_KEYS = ("halo_requests", "halo_hits", "halo_refreshes", "halo_bytes")

# Conservation law (checked by repro.testing.invariants): every non-root
# chunk requirement is served by exactly one of the five outcomes, so
#   requests == resident_hits + placements + migrations
#               + cache_hits + cache_misses
# must hold per section and for the running totals.
# lineage_replays / replayed_bytes are an *attribution overlay*, not a
# sixth outcome: a replay is also a placement, migration or cache miss,
# so the keys stay outside the served sum.


class DataPlane:
    """Main-rank placement planner + per-rank store registry."""

    def __init__(self, cache_bytes: int = DEFAULT_CACHE_BYTES,
                 rebalancer: Rebalancer | None = None):
        self.cache_bytes = cache_bytes
        self.rebalancer = rebalancer if rebalancer is not None else Rebalancer()
        self.handles: dict[int, DistArray] = {}
        # (rank, aid) -> (lo, hi): planner's mirror of resident shards.
        self._placement: dict[tuple[int, int], tuple[int, int]] = {}
        self._caches: dict[int, SliceCache] = {}
        self._stores: dict[int, RankStore] = {}
        self.section_log: list[dict] = []
        self.invalidations = 0
        self.shrinks = 0
        self.lineage = LineageLog()
        # Registration dedupe: (id(array), layout) -> aid for the exact
        # ndarray object, (layout, shape, dtype, digest) -> aid for
        # equal-content arrays.  Identity keys stay valid because
        # ``self.handles`` strongly references every handle (and through
        # it the registered array), so an id is never recycled while its
        # entry lives.
        self._dedup_ident: dict[tuple[int, str], int] = {}
        self._dedup_content: dict[tuple, int] = {}
        self.dedup_hits = 0
        self.totals = {k: 0 for k in _STAT_KEYS}
        self.totals["sections"] = 0
        self.totals["invalidated_entries"] = 0

    # -- handle lifecycle ---------------------------------------------------
    def register(self, array, layout: str = "block",
                 provenance: tuple | None = None) -> DistArray:
        """Wrap *array* in a handle managed by this plane.

        ``provenance`` is optional ``(section id, plan, input aids)`` for
        arrays computed by a distributed section; without it the handle
        is recorded as a lineage *source* (registered master copy).
        """
        if isinstance(array, DistArray):
            return array
        if provenance is None:
            # Dedupe master-copy datasets: distributing the same ndarray
            # (or an equal-content one, e.g. a recomputed intermediate)
            # twice must share one placement instead of double-shipping.
            arr = np.asarray(array)
            ident = (id(arr), layout)
            aid = self._dedup_ident.get(ident)
            ckey = None
            if aid is None:
                ckey = self._content_key(arr, layout)
                aid = self._dedup_content.get(ckey)
            if aid is not None:
                existing = self.handles.get(aid)
                if existing is not None:
                    self.dedup_hits += 1
                    return existing
            handle = DistArray(arr, layout=layout)
            self.handles[handle.array_id] = handle
            self._dedup_ident[(id(handle.array), layout)] = handle.array_id
            if ckey is None:
                ckey = self._content_key(handle.array, layout)
            self._dedup_content[ckey] = handle.array_id
            self.lineage.record_source(handle.array_id)
            return handle
        handle = DistArray(array, layout=layout)
        self.handles[handle.array_id] = handle
        section, plan, inputs = provenance
        self.lineage.record_section(
            section, plan, tuple(inputs), output_aid=handle.array_id
        )
        return handle

    @staticmethod
    def _content_key(arr: np.ndarray, layout: str) -> tuple:
        digest = hashlib.blake2b(arr.tobytes(), digest_size=16).hexdigest()
        return (layout, arr.shape, arr.dtype.str, digest)

    def record_section(self, section: int, plan: str | None,
                       reqs: list[dict]) -> None:
        """Append a section lineage record: which handles the section's
        chunks consumed (union over all ranks' requirement dicts)."""
        inputs: set[int] = set()
        for r in reqs:
            inputs.update(r)
        if inputs:
            self.lineage.record_section(section, plan, tuple(inputs))

    def has_state(self) -> bool:
        return bool(self._placement) or any(
            len(c) for c in self._caches.values()
        )

    # -- store access -------------------------------------------------------
    def worker_store(self, rank: int) -> RankStore:
        return self._stores[rank]

    def bound_store(self, rank: int):
        """Context manager binding rank *rank*'s store (rank 0: master)."""
        return bind_store(self._stores.get(rank) if rank != 0 else None)

    def _ensure_rank(self, rank: int) -> None:
        if rank not in self._stores:
            self._stores[rank] = RankStore(rank)
            self._caches[rank] = SliceCache(self.cache_bytes)

    # -- partitioning hook --------------------------------------------------
    def partition_bounds(self, extent: int,
                         nchunks: int) -> list[tuple[int, int]] | None:
        """Cost-feedback bounds for a 1-D split, or None for uniform."""
        return self.rebalancer.bounds(extent, nchunks)

    def feedback(self, bounds: list[tuple[int, int]],
                 costs: list[float]) -> None:
        self.rebalancer.observe(bounds, costs)

    # -- section planning ---------------------------------------------------
    def requirements(self, chunks: list) -> list[dict]:
        return [chunk_requirements(c) for c in chunks]

    def plan_section(self, reqs: list[dict], *,
                     migrated: bool = False,
                     recovery: bool = False) -> SectionShipment | None:
        """Plan shipping for one section (one requirement dict per rank).

        Returns None when no chunk references a handle -- the driver then
        uses the legacy ship-the-slice path untouched.  Rank 0 never
        ships to itself (it resolves against the master copy).  *recovery*
        marks a post-crash re-execution attempt: the observability layer
        tags this section's ship spans so re-shipped bytes stay
        attributable.
        """
        if not any(reqs):
            return None
        rec = _obs_active()
        nranks = len(reqs)
        stats = {k: 0 for k in _STAT_KEYS}
        ops: list[list] = [[] for _ in range(nranks)]
        pending = self.lineage.pending()
        for dst in range(1, nranks):
            self._ensure_rank(dst)
            before = dict(stats) if rec is not None else None
            for aid in sorted(reqs[dst]):
                lo, hi, replicated = reqs[dst][aid]
                stats["requests"] += 1
                self._plan_one(dst, aid, lo, hi, replicated, nranks,
                               migrated, pending, ops[dst], stats)
            if rec is not None:
                delta = {k: stats[k] - before[k] for k in _STAT_KEYS
                         if stats[k] != before[k]}
                if delta:
                    if recovery:
                        delta["recovery"] = True
                    rec.instant("ship", f"ship->r{dst}", rank=dst,
                                attrs=delta)
        self.totals["sections"] += 1
        for k in _STAT_KEYS:
            self.totals[k] += stats[k]
        if rec is not None:
            # Independent accumulation stream: the conservation check
            # compares these against self.totals after the run.
            for k in _STAT_KEYS:
                if stats[k]:
                    rec.count(f"plane.{k}", stats[k])
        self.section_log.append(dict(stats))
        if pending:
            # Anything this section did not touch re-materializes through
            # ordinary placement when a later section needs it.
            self.lineage.settle()
        return SectionShipment(ops=ops, stats=stats)

    def plan_stencil(self, aid: int, bounds: list[tuple[int, int]],
                     radius: int, *, migrated: bool = False,
                     recovery: bool = False) -> SectionShipment:
        """Plan one stencil iteration's shipping.

        Each rank's block interior goes through the ordinary placement
        path (:meth:`_plan_one`), so steady-state iterations are resident
        hits shipping **zero** interior bytes, and post-crash attempts
        re-materialize through the same invalidation/lineage machinery as
        any other section.  The block's ghost intervals
        (:func:`~repro.partition.halo.halo_intervals`) become
        ghost-flagged slice-cache entries with their own conservation
        stream: a ghost that is still fresh (not overwritten since the
        last exchange; see :meth:`note_write`) is a ``halo_hit`` costing
        nothing, a stale or absent one is a ``halo_refresh`` shipping
        exactly its rows.  *migrated* routes post-shrink interiors
        through hull migration; *recovery* tags the obs spans.
        """
        rec = _obs_active()
        nranks = len(bounds)
        handle = lookup_handle(aid)
        n = len(handle)
        row_nbytes = handle.row_nbytes()
        stats = {k: 0 for k in _STAT_KEYS}
        ops: list[list] = [[] for _ in range(nranks)]
        pending = self.lineage.pending()
        for dst in range(1, nranks):
            self._ensure_rank(dst)
            before = dict(stats) if rec is not None else None
            lo, hi = bounds[dst]
            stats["requests"] += 1
            self._plan_one(dst, aid, lo, hi, False, nranks, migrated,
                           pending, ops[dst], stats)
            cache = self._caches[dst]
            for glo, ghi in halo_intervals(lo, hi, radius, n):
                stats["halo_requests"] += 1
                if cache.contains(aid, glo, ghi):
                    stats["halo_hits"] += 1
                    continue
                stats["halo_refreshes"] += 1
                nbytes = (ghi - glo) * row_nbytes
                for old in cache.put(aid, glo, ghi, nbytes, ghost=True):
                    stats["cache_evictions"] += 1
                    ops[dst].append(["evict", aid_wire(old[0]), old[1],
                                     old[2]])
                ops[dst].append(["cache", aid_wire(aid), glo, ghi,
                                 [(glo, ghi, handle.array[glo:ghi])]])
                stats["halo_bytes"] += nbytes
            if rec is not None:
                delta = {k: stats[k] - before[k] for k in _STAT_KEYS
                         if stats[k] != before[k]}
                halo_delta = {k: delta.pop(k) for k in _HALO_KEYS
                              if k in delta}
                if delta:
                    if recovery:
                        delta["recovery"] = True
                    rec.instant("ship", f"ship->r{dst}", rank=dst,
                                attrs=delta)
                if halo_delta:
                    if recovery:
                        halo_delta["recovery"] = True
                    rec.instant("halo", f"halo->r{dst}", rank=dst,
                                attrs=halo_delta)
        self.totals["sections"] += 1
        for k in _STAT_KEYS:
            self.totals[k] += stats[k]
        if rec is not None:
            for k in _STAT_KEYS:
                if stats[k]:
                    rec.count(f"plane.{k}", stats[k])
        self.section_log.append(dict(stats))
        if pending:
            self.lineage.settle()
        return SectionShipment(ops=ops, stats=stats)

    def note_write(self, aid: int, lo: int, hi: int) -> int:
        """An in-place write to rows ``[lo, hi)`` of *aid*: every cached
        slice overlapping the written range now holds stale values and is
        silently dropped (metadata and bytes) -- an invalidation, not a
        capacity eviction, so no eviction is counted.  Ghost entries that
        do not overlap (boundary rows a stencil never writes) stay fresh
        and keep serving halo hits.  Returns how many entries dropped."""
        if hi <= lo:
            return 0
        dropped = 0
        for rank, cache in self._caches.items():
            store = self._stores.get(rank)
            for key in cache.keys():
                kaid, klo, khi = key
                if kaid == aid and klo < hi and khi > lo:
                    cache.drop(key)
                    if store is not None:
                        store.drop_cached(key)
                    dropped += 1
        return dropped

    def commit_stencil(self, aid: int, bounds: list[tuple[int, int]],
                       pieces: list[tuple[int, int, Any]]) -> None:
        """Commit one completed stencil iteration.

        *pieces* is the per-rank ``(wlo, whi, rows)`` updates gathered at
        the root.  The master copy absorbs every piece (so a crashed
        *later* iteration re-materializes current values, and lineage
        replay stays deterministic: the master only ever holds completed
        iterations).  Each rank's own piece is mirrored into its store at
        zero wire cost -- the rank computed those rows locally -- while
        resetting its resident hull to exactly its block, so hull rows
        another rank just overwrote can never be served stale.  Finally
        every cached slice overlapping a written range is invalidated
        (:meth:`note_write`), which is what makes the next iteration ship
        only *dirty* halos.
        """
        handle = lookup_handle(aid)
        nranks = len(bounds)
        for wlo, whi, rows in pieces:
            if whi > wlo:
                handle.array[wlo:whi] = rows
        for dst in range(1, nranks):
            store = self._stores.get(dst)
            if store is None:
                continue
            blo, bhi = bounds[dst]
            wlo, whi, rows = pieces[dst]
            ps = [(wlo, whi, np.asarray(rows))] if whi > wlo else []
            if store.resident_bounds(aid) is None and not ps:
                continue
            store.apply([["resident", aid_wire(aid), blo, bhi, ps]])
            self._placement[(dst, aid)] = (blo, bhi)
        # Placements planned by earlier, wider sections reference ranks
        # outside this partition; their rows just went stale with the
        # master write, so forget them (they re-place on next use).
        for (rank, kaid) in list(self._placement):
            if kaid == aid and rank >= nranks:
                del self._placement[(rank, kaid)]
                store = self._stores.get(rank)
                if store is not None:
                    store.invalidate(aid)
                cache = self._caches.get(rank)
                if cache is not None:
                    cache.invalidate(aid)
        for wlo, whi, _rows in pieces:
            self.note_write(aid, wlo, whi)

    def ghost_map(self) -> dict[int, set[tuple[int, int, int]]]:
        """Live ghost (halo) placements per rank, derived from the cache
        metadata: ``rank -> {(aid, lo, hi), ...}``.  Read-only view for
        invariant checkers (every ghost entry's bytes must exist in the
        rank's store once the section's ops have been applied, and its
        interval must sit inside the handle's bounds)."""
        return {
            rank: cache.ghost_keys()
            for rank, cache in self._caches.items()
            if cache.ghost_keys()
        }

    def _plan_one(self, dst: int, aid: int, lo: int, hi: int,
                  replicated: bool, nranks: int, migrated: bool,
                  pending: set, out_ops: list, stats: dict) -> None:
        handle = lookup_handle(aid)
        n = len(handle)
        row_nbytes = handle.row_nbytes()
        if replicated or handle.layout == "replicated":
            lo, hi = 0, n
            replicated = True
        hull = self._placement.get((dst, aid))
        if hull is not None and hull[0] <= lo and hi <= hull[1]:
            stats["resident_hits"] += 1
            return
        if hull is None or replicated or migrated:
            # First placement, replication upgrade, or cost-feedback
            # boundary migration: grow the resident hull.  The initial
            # hull is the union of the layout shard and the requirement,
            # so a compatible later partition lands resident.
            if hull is None:
                slo, shi = self._layout_shard(handle, dst, nranks)
                tlo, thi = min(slo, lo), max(shi, hi)
                stats["placements"] += 1
            else:
                tlo, thi = min(hull[0], lo), max(hull[1], hi)
                stats["migrations"] += 1
            pieces = [
                (plo, phi, handle.array[plo:phi])
                for plo, phi in missing_intervals(tlo, thi, hull)
            ]
            shipped = sum((phi - plo) * row_nbytes for plo, phi, _ in pieces)
            out_ops.append(["resident", aid_wire(aid), tlo, thi, pieces])
            self._placement[(dst, aid)] = (tlo, thi)
            stats["input_bytes"] += shipped
            stats["placed_bytes"] += shipped
            if hull is not None:
                stats["migrated_bytes"] += shipped
            if aid in pending and shipped:
                self._note_replay(aid, pieces, shipped, stats)
            return
        # Partial overlap with a recorded shard and no reason to migrate:
        # the work partition differs from the data partition.  Serve from
        # the slice cache.
        cache = self._caches[dst]
        if cache.lookup(aid, lo, hi) is not None:
            stats["cache_hits"] += 1
            return
        stats["cache_misses"] += 1
        for old in cache.put(aid, lo, hi, (hi - lo) * row_nbytes):
            stats["cache_evictions"] += 1
            out_ops.append(["evict", aid_wire(old[0]), old[1], old[2]])
        pieces = [
            (plo, phi, handle.array[plo:phi])
            for plo, phi in missing_intervals(lo, hi, hull)
        ]
        out_ops.append(["cache", aid_wire(aid), lo, hi, pieces])
        shipped = sum((phi - plo) * row_nbytes for plo, phi, _ in pieces)
        stats["input_bytes"] += shipped
        if aid in pending and shipped:
            self._note_replay(aid, pieces, shipped, stats)

    def _note_replay(self, aid: int, pieces: list, shipped: int,
                     stats: dict) -> None:
        """Attribute one pending shard re-materialization to lineage
        replay (the shipped rows rebuild a lost shard selectively)."""
        stats["lineage_replays"] += 1
        stats["replayed_bytes"] += shipped
        self.lineage.note_replay(
            aid, sum(phi - plo for plo, phi, _ in pieces)
        )

    @staticmethod
    def _layout_shard(handle: DistArray, dst: int,
                      nranks: int) -> tuple[int, int]:
        if handle.layout == "replicated":
            return 0, len(handle)
        # block and block2d both shard the outer (row) axis here; block2d
        # sections additionally slice rows per grid column, which the
        # slice cache absorbs.
        return block_bounds(len(handle), nranks)[dst]

    # -- failure handling ---------------------------------------------------
    def invalidate(self) -> dict:
        """Drop all placement and cache state (rank-crash recovery).

        Stores are cleared too, so a later section re-materializes every
        shard from the master copy -- nothing stale can survive a crash.
        Returns counts for the recovery report.
        """
        dropped_entries = sum(
            c.invalidate() for c in self._caches.values()
        )
        dropped_shards = len(self._placement)
        self._placement.clear()
        for store in self._stores.values():
            store.clear()
        self.invalidations += 1
        self.totals["invalidated_entries"] += dropped_entries
        return {"shards": dropped_shards, "cache_entries": dropped_entries}

    def shrink(self, dead: list[int]) -> dict:
        """Elastic shrink after *permanent* rank losses.

        Unlike :meth:`invalidate`, survivors keep their resident shards
        and caches: ranks are renumbered downward past the dead ones
        (matching the driver's re-partition over survivors), and only the
        dead ranks' shard intervals are marked for lineage replay -- the
        next section rebuilds exactly those rows.  A surviving store that
        renumbers to rank 0 is dropped too (the new root resolves against
        the master copy), but its rows are not *lost*, so they are not
        marked for replay.  Returns loss counts for the recovery report.
        """
        dead_set = set(dead)

        def remap(rank: int) -> int:
            return rank - sum(1 for d in dead_set if d < rank)

        lost_shards = 0
        lost_rows = 0
        new_placement: dict[tuple[int, int], tuple[int, int]] = {}
        for (rank, aid), (lo, hi) in self._placement.items():
            if rank in dead_set:
                lost_shards += 1
                lost_rows += hi - lo
                self.lineage.mark_lost(aid, rank, lo, hi)
                continue
            if remap(rank) < 1:
                continue
            # The mirror records placements at *planning* time, but the
            # crashed attempt may have died before this survivor applied
            # its shipping ops.  Trust only rows that actually arrived;
            # anything else re-places from the master copy.
            store = self._stores.get(rank)
            actual = store.resident_bounds(aid) if store is not None else None
            if actual is not None:
                new_placement[(remap(rank), aid)] = actual
        self._placement = new_placement

        dropped_entries = 0
        new_stores: dict[int, RankStore] = {}
        new_caches: dict[int, SliceCache] = {}
        for rank, store in self._stores.items():
            cache = self._caches[rank]
            if rank in dead_set or remap(rank) < 1:
                dropped_entries += len(cache)
                continue
            # Same reconciliation for cached slices: keep only entries
            # whose bytes the store really holds.  Ghost entries go
            # unconditionally -- the shrink renumbers ranks and re-blocks
            # the partition, so every halo interval is keyed to dead
            # geometry -- and their surviving store bytes go with them, or
            # a renumbered store could serve them stale.
            for k in cache.ghost_keys():
                store.drop_cached(k)
            dropped_entries += cache.keep_only(store.cached_keys())
            store.rank = remap(rank)
            new_stores[remap(rank)] = store
            new_caches[remap(rank)] = cache
        self._stores = new_stores
        self._caches = new_caches

        # Old observations are keyed to the pre-shrink rank numbering;
        # feedback restarts on the shrunken machine.
        self.rebalancer.reset()
        self.shrinks += 1
        return {
            "lost_shards": lost_shards,
            "lost_rows": lost_rows,
            "dropped_cache_entries": dropped_entries,
        }

    # -- reporting ----------------------------------------------------------
    def placement_map(self) -> dict[tuple[int, int], tuple[int, int]]:
        """Copy of the planner's shard mirror: ``(rank, aid) -> (lo, hi)``.

        Read-only view for invariant checkers (placement must never
        reference a rank outside the live set, hulls must stay inside
        the handle's bounds)."""
        return dict(self._placement)

    def cache_stats(self) -> dict:
        return {
            "hits": sum(c.hits for c in self._caches.values()),
            "misses": sum(c.misses for c in self._caches.values()),
            "evictions": sum(c.evictions for c in self._caches.values()),
            "entries": sum(len(c) for c in self._caches.values()),
            "bytes_used": sum(c.bytes_used for c in self._caches.values()),
        }

    def stats_dict(self) -> dict:
        out = dict(self.totals)
        out["arrays"] = len(self.handles)
        out["dedup_hits"] = self.dedup_hits
        out["invalidations"] = self.invalidations
        out["shrinks"] = self.shrinks
        out["rebalance_activations"] = self.rebalancer.activations
        out["cache"] = self.cache_stats()
        return out
