"""The resident-service cell of ``python -m repro.bench --service``."""
import json

import pytest

from repro.bench.service import render, run_service_bench, write_json

pytestmark = pytest.mark.service


@pytest.fixture(scope="module")
def payload():
    return run_service_bench(rank_counts=(2,))


def test_cell_meets_the_service_contract(payload):
    """The headline claims: repeat jobs hit the shared plan cache,
    recompile nothing, ship zero input bytes, and every app's served
    value is bit-identical to a solo run."""
    (cell,) = payload["cells"]
    assert cell["ranks"] == 2
    assert cell["repeat_jobs"] > 0
    assert cell["plan_hits"] > 0
    assert cell["plan_recompiles"] == 0
    assert cell["zero_ship_rate"] == 1.0
    assert cell["bit_identical_to_solo"]
    assert payload["ok"]


def test_latency_and_throughput_are_reported(payload):
    (cell,) = payload["cells"]
    assert cell["jobs_per_second"] > 0
    assert 0 < cell["latency_p50_virtual"] <= cell["latency_p99_virtual"]
    assert cell["virtual_seconds_total"] > 0


def test_payload_is_json_and_renders(payload, tmp_path):
    out = tmp_path / "BENCH_service.json"
    write_json(payload, str(out))
    reread = json.loads(out.read_text())
    assert reread["bench"] == "service"
    assert reread["stream"]["apps"] == ["mriq", "sgemm", "tpacf", "cutcp"]
    text = render(payload)
    assert "jobs/s" in text and "ok=True" in text
