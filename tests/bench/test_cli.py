"""Tests for the ``python -m repro.bench`` CLI."""
import pytest

from repro.bench.__main__ import main


class TestCli:
    def test_fig3_only(self, capsys):
        assert main(["fig3"]) == 0
        out = capsys.readouterr().out
        assert "sequential execution time" in out
        assert "tpacf" in out and "cutcp" in out

    def test_single_figure_with_nodes(self, capsys):
        assert main(["sgemm", "--nodes", "1,2"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 5" in out
        assert "FAIL" in out  # Eden's buffer failure at 2 nodes

    def test_bad_nodes_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["fig3", "--nodes", "zero"])

    def test_negative_nodes_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig3", "--nodes", "0,1"])

    def test_unknown_target_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig9"])
