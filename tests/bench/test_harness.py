"""Tests for the figure-regeneration harness and calibration."""
import numpy as np
import pytest

from repro.bench import (
    APPS,
    SpeedupPoint,
    make_problem,
    render_series,
    run_point,
    scaling_series,
    sequential_seconds,
)
from repro.bench.calibrate import SEQ_SECONDS, costs_for, unit_time


class TestCalibration:
    def test_every_app_calibrated_for_every_framework(self):
        for app in APPS:
            p = make_problem(app)
            for fw in ("c", "triolet", "eden", "cmpi"):
                costs = costs_for(app, fw, p)
                assert costs.unit_time > 0
                assert costs.compute_scale >= 1
                assert costs.wire_scale >= 1

    def test_cmpi_shares_c_constants(self):
        assert unit_time("mriq", "cmpi", 1e9) == unit_time("mriq", "c", 1e9)

    def test_fig3_window(self):
        for app, row in SEQ_SECONDS.items():
            assert 20.0 <= row["c"] <= 200.0, app

    def test_ratios_match_paper_statements(self):
        # mri-q Eden: "about 50% longer"
        r = SEQ_SECONDS["mriq"]["eden"] / SEQ_SECONDS["mriq"]["c"]
        assert 1.4 <= r <= 1.6
        # Triolet close to C everywhere
        for app, row in SEQ_SECONDS.items():
            assert row["c"] <= row["triolet"] <= row["eden"]

    def test_unknown_app_rejected(self):
        with pytest.raises(KeyError):
            unit_time("nosuchapp", "c", 1.0)


class TestRunPoint:
    @pytest.mark.parametrize("app", sorted(APPS))
    def test_single_node_point(self, app):
        pt = run_point(app, "triolet", nodes=1, cores_per_node=4)
        assert isinstance(pt, SpeedupPoint)
        assert pt.correct
        assert 0 < pt.speedup <= 4.5
        assert pt.cores == 4

    def test_speedup_is_relative_to_sequential_c(self):
        p = make_problem("mriq")
        seq_s, _ = sequential_seconds("mriq", p)
        pt = run_point("mriq", "triolet", nodes=2, problem=p, cores_per_node=4)
        assert pt.speedup == pytest.approx(seq_s / pt.elapsed)

    def test_failed_run_reports_failure(self):
        # sgemm Eden at 2 nodes: the paper's buffer failure.
        pt = run_point("sgemm", "eden", nodes=2)
        assert pt.failed is not None
        assert pt.speedup == 0.0

    def test_reference_reuse_gives_same_point(self):
        p = make_problem("tpacf")
        ref = sequential_seconds("tpacf", p)
        a = run_point("tpacf", "cmpi", 2, problem=p, reference=ref)
        b = run_point("tpacf", "cmpi", 2, problem=p, reference=ref)
        assert a.speedup == b.speedup  # deterministic


class TestSeries:
    def test_series_structure(self):
        s = scaling_series("sgemm", frameworks=("cmpi",), node_counts=(1, 2))
        assert list(s) == ["cmpi"]
        assert [pt.cores for pt in s["cmpi"]] == [16, 32]

    def test_render_series_mentions_failures(self):
        s = scaling_series("sgemm", frameworks=("eden",), node_counts=(1, 2))
        text = render_series("sgemm", s)
        assert "FAIL" in text
        assert "linear" in text

    def test_more_nodes_never_wrong(self):
        s = scaling_series("mriq", frameworks=("triolet",), node_counts=(1, 3, 5))
        assert all(pt.correct for pt in s["triolet"])
