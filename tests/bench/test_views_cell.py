"""The views bench cell: stencil halo bytes vs. full re-ship, and
slice-cache reuse across shifting slab decompositions.

Pins the cell's headline claims -- the same ones the CI guard enforces
against ``BENCH_views.json``: bit identity at every rank count, zero
interior bytes after the first sweep, steady halo traffic under 10% of
the naive full re-ship, and a 100% hit rate on a repeated decomposition.
"""
import json

import pytest

from repro.bench.views import render, run_views_bench, write_json

pytestmark = pytest.mark.views

RANKS = (1, 2)  # the test keeps the matrix small; CI runs 1/2/4


@pytest.fixture(scope="module")
def payload():
    return run_views_bench(rank_counts=RANKS)


class TestJacobiCells:
    def test_bit_identical_at_every_rank_count(self, payload):
        cells = payload["jacobi"]
        assert [c["ranks"] for c in cells] == list(RANKS)
        for c in cells:
            assert c["bit_identical"]

    def test_zero_interior_bytes_after_first_sweep(self, payload):
        for c in payload["jacobi"]:
            assert c["steady_interior_bytes"] == 0

    def test_steady_halo_under_ten_percent_of_reship(self, payload):
        """The CI guard's inequality, checked at the source."""
        for c in payload["jacobi"]:
            if c["ranks"] < 2:
                continue  # single rank has no halo traffic
            assert c["full_reship_bytes"] > 0
            assert (
                c["steady_halo_bytes"] < 0.10 * c["full_reship_bytes"]
            ), c

    def test_single_rank_ships_no_halo(self, payload):
        (solo,) = [c for c in payload["jacobi"] if c["ranks"] == 1]
        assert solo["steady_halo_bytes"] == 0
        assert solo["halo_refreshes"] == 0


class TestSweepCells:
    def test_repeat_decomposition_is_free(self, payload):
        s = payload["sweeps"]
        assert s["correct"]
        assert s["repeat_hit_rate"] == 1.0
        assert s["repeat_input_bytes"] == 0

    def test_offset_sweep_ships_less_than_base(self, payload):
        base, offset, repeat = payload["sweeps"]["per_sweep"]
        assert base["sweep"] == "base"
        assert 0 < offset["input_bytes"] < base["input_bytes"]
        assert repeat["placements"] == 0


class TestRenderAndJson:
    def test_render_mentions_the_claims(self, payload):
        text = render(payload)
        assert "Stencil halo exchange" in text
        assert "Slab-view sweeps" in text
        assert "repeat sweep hit rate: 100%" in text

    def test_json_round_trips(self, payload, tmp_path):
        out = tmp_path / "BENCH_views.json"
        write_json(payload, str(out))
        back = json.loads(out.read_text())
        assert back["rank_counts"] == list(RANKS)
        assert back["jacobi"][0]["bit_identical"] is True


class TestCli:
    def test_views_flag_writes_payload(self, tmp_path, capsys):
        from repro.bench.__main__ import main

        out = tmp_path / "cell.json"
        main(["--views", "--ranks", "1", "--out", str(out)])
        text = capsys.readouterr().out
        assert "Stencil halo exchange" in text
        payload = json.loads(out.read_text())
        assert payload["rank_counts"] == [1]
        assert payload["jacobi"][0]["bit_identical"]
