"""The sparse bench cell: indexed-stream spMV and the fused tpacf.

Pins the cell's headline claims -- the same ones the CI guard enforces
against ``BENCH_sparse.json``: bit identity of every execution path
(the dyadic problem values make float addition exact, so this is an
equality the arithmetic owes us, not a tolerance), a real wall-clock
win for the compiled bulk pipelines over the scalar fallback, and the
planner contract ``unsupported == 0``.
"""
import json

import pytest

from repro.bench.sparse import render, run_sparse_bench, write_json

pytestmark = pytest.mark.sparse

RANKS = (1, 2)  # the test keeps the run short; CI runs 1/2/4


@pytest.fixture(scope="module")
def payload():
    return run_sparse_bench(rank_counts=RANKS)


class TestSpmvCells:
    def test_every_path_bit_identical(self, payload):
        cells = payload["spmv"]
        assert [c["ranks"] for c in cells] == list(RANKS)
        for c in cells:
            assert c["bit_identical"]["vectorized"], c
            assert c["bit_identical"]["scalar"], c
            if c["ranks"] > 1:
                assert c["bit_identical"]["faulted"], c

    def test_single_node_speedup_at_least_3x(self, payload):
        """The ISSUE's acceptance bar: vectorized >= 3x scalar fallback."""
        (solo,) = [c for c in payload["spmv"] if c["ranks"] == 1]
        assert solo["speedup"] >= 3.0, solo

    def test_nothing_unsupported(self, payload):
        for c in payload["spmv"]:
            assert c["unsupported"] == 0
            assert c["compiled"] >= 1

    def test_single_rank_ships_no_bytes(self, payload):
        (solo,) = [c for c in payload["spmv"] if c["ranks"] == 1]
        assert solo["bytes_shipped"] == 0

    def test_scalar_and_vectorized_ship_equal_bytes(self, payload):
        for c in payload["spmv"]:
            assert c["bytes_shipped"] == c["bytes_shipped_scalar"]


class TestTpacfCells:
    def test_bit_identical_and_compiled(self, payload):
        for c in payload["tpacf"]:
            assert c["bit_identical"], c
            assert c["unsupported"] == 0
            assert c["compiled"] >= 1


class TestRenderAndJson:
    def test_render_mentions_the_claims(self, payload):
        text = render(payload)
        assert "spMV over indexed streams" in text
        assert "tpacf with segmented indexed DR/RR" in text
        assert "bit" in text

    def test_json_round_trips(self, payload, tmp_path):
        out = tmp_path / "BENCH_sparse.json"
        write_json(payload, str(out))
        back = json.loads(out.read_text())
        assert back["rank_counts"] == list(RANKS)
        assert back["spmv"][0]["bit_identical"]["vectorized"] is True


class TestCli:
    def test_sparse_flag_writes_payload(self, tmp_path, capsys):
        from repro.bench.__main__ import main

        out = tmp_path / "cell.json"
        main(["--sparse", "--ranks", "1", "--out", str(out)])
        text = capsys.readouterr().out
        assert "spMV over indexed streams" in text
        payload = json.loads(out.read_text())
        assert payload["rank_counts"] == [1]
        assert payload["spmv"][0]["bit_identical"]["scalar"]
