"""Perf smoke tests: the bulk engine must stay meaningfully faster.

These guard the wall-clock win of the vectorized engine on the two
irregular pipelines (tpacf's triangular pair loop, cutcp's variable-size
atom expansion).  Budgets are deliberately generous -- min-of-3 timings
and a 2x ratio floor against the ~5-9x measured on an idle machine -- so
they fail on real regressions (engine silently disabled, plan cache
broken, a scalar fallback sneaking in), not on noisy CI neighbors.
"""
import time

import pytest

from repro.bench.calibrate import costs_for
from repro.bench.harness import APPS
from repro.bench.wallclock import BENCH_PARAMS, CORES_PER_NODE
from repro.cluster.machine import PAPER_MACHINE
from repro.core.engine import use_vectorization

MACHINE = PAPER_MACHINE.scaled(nodes=2, cores_per_node=CORES_PER_NODE)
MIN_RATIO = 2.0
MAX_VEC_SECONDS = 10.0  # measured ~0.1s; an order of magnitude of headroom


def _min_wall(app, problem, vectorize, repeats=3):
    spec = APPS[app]
    costs = costs_for(app, "triolet", problem)
    best = float("inf")
    with use_vectorization(vectorize):
        for _ in range(repeats):
            t0 = time.perf_counter()
            run = spec.runners["triolet"](problem, MACHINE, costs)
            best = min(best, time.perf_counter() - t0)
    return best, run


@pytest.mark.perfsmoke
@pytest.mark.parametrize("app", ["tpacf", "cutcp"])
class TestPerfSmoke:
    def test_vectorized_beats_scalar(self, app):
        problem = APPS[app].make_problem(**BENCH_PARAMS[app])
        vec_s, vec_run = _min_wall(app, problem, vectorize=True)
        scalar_s, scalar_run = _min_wall(app, problem, vectorize=False)
        assert vec_s < MAX_VEC_SECONDS
        assert scalar_s / vec_s >= MIN_RATIO, (
            f"{app}: vectorized {vec_s:.3f}s vs scalar {scalar_s:.3f}s "
            f"({scalar_s / vec_s:.1f}x < {MIN_RATIO}x floor)"
        )
        assert vec_run.elapsed == scalar_run.elapsed  # virtual time unchanged


@pytest.mark.perfsmoke
@pytest.mark.dataplane
class TestResidencySmoke:
    """Shipping-cost guard: once a DistArray is placed, a second section
    with a compatible partition must move zero input bytes."""

    def test_second_section_ships_no_input(self):
        import numpy as np

        import repro.triolet as tri
        from repro.runtime import triolet_runtime
        from repro.serial import register_function

        xs = np.arange(20_000.0)
        with triolet_runtime(MACHINE) as rt:
            h = rt.distribute(xs)
            a = tri.sum(tri.par(h))
            b = tri.sum(tri.par(h))
        assert a == b
        plane_sections = [s for s in rt.sections if s.data_plane is not None]
        assert len(plane_sections) >= 2
        first, second = plane_sections[0], plane_sections[1]
        assert first.data_plane["input_bytes"] > 0
        assert second.data_plane["input_bytes"] == 0, (
            "residency broken: second section re-shipped "
            f"{second.data_plane['input_bytes']:,} input bytes"
        )
        assert second.data_plane["resident_hits"] == MACHINE.nodes - 1
