"""The transport scaling cell of ``python -m repro.bench --transport``."""
import pytest

from repro.bench.transport import (
    bench_transport_app,
    run_transport_bench,
    usable_cpus,
)
from repro.cluster.transport import available_transports

pytestmark = pytest.mark.transport

if "local" not in available_transports(nranks=2):
    pytest.skip("LocalTransport unavailable (no fork)", allow_module_level=True)


def test_cell_parity_holds_at_every_shape():
    """Bit-identical values and an equal virtual timeline at every rank
    count -- the invariant that holds regardless of core count."""
    row = bench_transport_app("sgemm", "local", rank_counts=(1, 2))
    assert [p["ranks"] for p in row["points"]] == [1, 2]
    for p in row["points"]:
        assert p["value_bit_identical"]
        assert p["virtual_seconds_equal"]
        assert p["meter_equal"]
        assert p["bytes_shipped_equal"]


def test_payload_records_host_capacity():
    payload = run_transport_bench(("local",), apps=("sgemm",),
                                  rank_counts=(1,))
    assert payload["cpu_count"] >= 1
    assert payload["usable_cpus"] >= 1
    assert payload["results"][0]["transport"] == "local"
    assert payload["skipped"] == []


def test_unavailable_transport_is_skipped_not_fatal():
    if "mpi" in available_transports(nranks=2):
        pytest.skip("mpi4py present; nothing to skip")
    payload = run_transport_bench(("mpi",), apps=("sgemm",),
                                  rank_counts=(1,))
    assert payload["skipped"] == ["mpi"]
    assert payload["results"] == []


def test_wall_speedup_with_enough_cpus():
    """Real parallel scaling -- only assertable when the host actually
    has the cores.  On a 1-core container forked ranks serialize and the
    honest expectation is ~1x, so this gates rather than lies."""
    if usable_cpus() < 4:
        pytest.skip(f"needs >= 4 usable CPUs, have {usable_cpus()}")
    row = bench_transport_app("mriq", "local", rank_counts=(1, 4))
    p4 = row["points"][-1]
    assert p4["ranks"] == 4
    assert p4["wall_speedup_vs_1rank"] >= 1.5
