"""Tests for the ASCII figure renderer."""
import pytest

from repro.bench.figures import plot_series
from repro.bench.harness import SpeedupPoint


def pt(fw, nodes, speedup, failed=None):
    return SpeedupPoint(
        app="x",
        framework=fw,
        nodes=nodes,
        cores=nodes * 16,
        speedup=speedup,
        elapsed=1.0,
        correct=failed is None,
        failed=failed,
    )


class TestPlot:
    def test_basic_plot_contains_glyphs(self):
        series = {
            "cmpi": [pt("cmpi", 1, 15.0), pt("cmpi", 8, 100.0)],
            "triolet": [pt("triolet", 1, 14.0), pt("triolet", 8, 80.0)],
        }
        out = plot_series("x", series)
        assert "C" in out and "T" in out
        assert "=linear" in out
        assert "128 cores" in out

    def test_failed_runs_footnoted_not_plotted(self):
        series = {
            "eden": [pt("eden", 1, 10.0), pt("eden", 8, 0.0, failed="buffer")],
        }
        out = plot_series("x", series)
        assert "failed runs: eden@128c" in out

    def test_all_failed(self):
        series = {"eden": [pt("eden", 1, 0.0, failed="x")]}
        assert "no successful runs" in plot_series("x", series)

    def test_y_axis_covers_linear_reference(self):
        # even if all speedups are small, the axis reaches the core count
        series = {"cmpi": [pt("cmpi", 8, 5.0)]}
        out = plot_series("x", series)
        assert "128" in out.splitlines()[1]  # top y label

    def test_unknown_framework_gets_a_glyph(self):
        series = {"mylang": [pt("mylang", 1, 8.0)]}
        out = plot_series("x", series)
        assert "M=mylang" in out
