"""The recovery bench cell: escalating permanent losses, three modes.

Runs the real bench machinery over a reduced app set (CI runs the full
matrix via ``python -m repro.bench --recovery``) and pins the cell's
headline claims: degraded completion is bit-identical, lineage replay
ships strictly fewer recovery bytes than full invalidation, Eden fails
any nonzero loss, and the checkpoint cell restarts exactly once.
"""
import pytest

from repro.bench.recovery import (
    ESCALATION,
    _savings_apps,
    render,
    run_recovery_bench,
)

pytestmark = pytest.mark.recovery

APPS = ("mriq", "tpacf")  # one single-section app, one multi-section


@pytest.fixture(scope="module")
def payload():
    return run_recovery_bench(apps=APPS)


def _cell(payload, app, losses, mode):
    match = [
        c for c in payload["cells"]
        if (c["app"], c["losses"], c["mode"]) == (app, losses, mode)
    ]
    assert len(match) == 1
    return match[0]


class TestEscalation:
    def test_every_triolet_cell_completes_bit_identically(self, payload):
        for app in APPS:
            for n in ESCALATION:
                cell = _cell(payload, app, n, "lineage")
                assert cell["completed"], cell["failed"]
                assert cell["correct"] and cell["identical"]
                assert cell["rank_losses"] == n

    def test_makespan_overhead_grows_with_losses(self, payload):
        for app in APPS:
            overheads = [
                _cell(payload, app, n, "lineage")["overhead"]
                for n in ESCALATION
            ]
            assert overheads[0] == pytest.approx(0.0)
            assert overheads == sorted(overheads)

    def test_lineage_ships_strictly_fewer_bytes(self, payload):
        assert _savings_apps(payload) == set(APPS)
        for app in APPS:
            for n in ESCALATION:
                if not n:
                    continue
                lin = _cell(payload, app, n, "lineage")
                inv = _cell(payload, app, n, "invalidate")
                assert 0 < lin["reshipped_bytes"] < inv["reshipped_bytes"]
                assert lin["lineage_replays"] > 0
                assert inv["lineage_replays"] == 0

    def test_eden_baseline_dies_on_any_loss(self, payload):
        for app in APPS:
            assert _cell(payload, app, 0, "eden")["completed"]
            for n in ESCALATION:
                if not n:
                    continue
                cell = _cell(payload, app, n, "eden")
                assert not cell["completed"]
                assert "no recovery path" in cell["failed"]


class TestCheckpointCell:
    def test_restart_from_checkpoint_completes(self, payload):
        by_app = {c["app"]: c for c in payload["checkpoint"]}
        assert set(by_app) == set(APPS)
        for app, cell in by_app.items():
            assert cell["completed"], cell["failed"]
            assert cell["identical"]
            assert cell["restarts"] == 1
            assert cell["checkpoints"] > 0 and cell["checkpoint_bytes"] > 0
        # The multi-section app restores its durable prefix instead of
        # re-running it; the single-section app has no prefix to restore.
        assert by_app["tpacf"]["restores"] > 0
        assert by_app["tpacf"]["restored_bytes"] > 0


class TestRender:
    def test_render_mentions_cells_and_savings(self, payload):
        text = render(payload)
        for app in APPS:
            assert app in text
        assert "Restart-from-checkpoint" in text
        assert "strictly fewer bytes" in text
        assert f"{len(APPS)}/{len(APPS)} apps" in text
