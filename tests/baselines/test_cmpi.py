"""Unit tests for the C+MPI+OpenMP-like baseline helpers."""
import numpy as np
import pytest

from repro.baselines.cmpi import omp_parallel_for, run_cmpi
from repro.baselines.seqc import run_seqc
from repro.cluster.machine import MachineSpec
from repro.core import meter
from repro.runtime.costs import CostContext

MACHINE = MachineSpec(nodes=4, cores_per_node=4)
COSTS = CostContext(unit_time=1e-6)


class TestOmpParallelFor:
    def _run(self, durations_visits, schedule="static"):
        def rank_fn(comm, costs):
            def mk(v):
                def task():
                    meter.tally_visits(v)
                    return v

                return task

            results = omp_parallel_for(
                comm, costs, [mk(v) for v in durations_visits], schedule=schedule
            )
            return (results, comm.clock.now)

        from repro.cluster.process import run_spmd

        res = run_spmd(MACHINE, rank_fn, nranks=1, args=(COSTS,))
        return res.results[0]

    def test_results_in_order(self):
        results, _ = self._run([3, 1, 2])
        assert results == [3, 1, 2]

    def test_balanced_speedup(self):
        _, t = self._run([1000] * 4)  # 4 equal tasks on 4 cores
        assert t < 4 * 1000 * 1e-6  # faster than sequential

    def test_static_vs_dynamic_on_imbalance(self):
        skewed = [4000, 10, 10, 10, 10, 10, 10, 10]
        _, t_static = self._run(skewed, "static")
        _, t_dynamic = self._run(skewed, "dynamic")
        assert t_dynamic <= t_static

    def test_empty_task_list(self):
        results, t = self._run([])
        assert results == [] and t >= 0

    def test_unknown_schedule(self):
        with pytest.raises(ValueError):
            self._run([1], schedule="guided-oops")


class TestRunCmpi:
    def test_one_rank_per_node(self):
        def rank_fn(comm, costs):
            return (comm.rank, comm.size, comm.node)

        res = run_cmpi(MACHINE, rank_fn, COSTS)
        assert res.value == (0, 4, 0)

    def test_explicit_nodes(self):
        def rank_fn(comm, costs):
            return comm.size

        res = run_cmpi(MACHINE, rank_fn, COSTS, nodes=2)
        assert res.value == 2

    def test_bytes_counted(self):
        def rank_fn(comm, costs):
            if comm.rank == 0:
                comm.Send(np.zeros(1000), dest=1)
                return None
            if comm.rank == 1:
                return comm.Recv(source=0).sum()
            return None

        res = run_cmpi(MACHINE, rank_fn, COSTS)
        assert res.bytes_shipped >= 8000


class TestSeqC:
    def test_run_seqc_meters_and_prices(self):
        def kernel():
            meter.tally_visits(500)
            return "value"

        out = run_seqc(kernel, CostContext(unit_time=2e-3))
        assert out.value == "value"
        assert out.visits == 500
        assert out.seconds == pytest.approx(1.0)

    def test_compute_scale_applied(self):
        def kernel():
            meter.tally_visits(100)

        out = run_seqc(kernel, CostContext(unit_time=1e-3, compute_scale=10.0))
        assert out.seconds == pytest.approx(1.0)
