"""Unit tests for the Eden-like baseline framework."""
import numpy as np
import pytest

from repro.baselines.eden import (
    EdenRuntime,
    StragglerModel,
    chunk_array,
    chunked_nbytes,
    unchunk,
)
from repro.cluster.limits import RuntimeLimits
from repro.cluster.machine import MachineSpec
from repro.core import meter
from repro.runtime.costs import CostContext

MACHINE = MachineSpec(nodes=4, cores_per_node=4)


def work_square(item, payload):
    meter.tally_visits(int(np.size(item)))
    return np.asarray(item) ** 2


def work_sum(item, payload):
    meter.tally_visits(int(np.size(item)))
    bonus = payload if isinstance(payload, (int, float)) else 0.0
    return float(np.sum(item)) + bonus


class TestChunkedArrays:
    def test_chunk_unchunk_roundtrip(self):
        xs = np.arange(2500.0)
        chunks = chunk_array(xs, 1024)
        assert len(chunks) == 3
        np.testing.assert_array_equal(unchunk(chunks), xs)

    def test_chunks_are_views(self):
        xs = np.arange(10.0)
        chunks = chunk_array(xs, 4)
        assert chunks[0].base is xs

    def test_empty_array(self):
        chunks = chunk_array(np.array([]), 4)
        assert len(chunks) == 1 and len(chunks[0]) == 0

    def test_2d_chunks_by_rows(self):
        A = np.arange(24.0).reshape(6, 4)
        chunks = chunk_array(A, 2)
        assert all(c.shape == (2, 4) for c in chunks)
        np.testing.assert_array_equal(unchunk(chunks), A)

    def test_wire_size_includes_spine_overhead(self):
        xs = np.arange(2048.0)
        one = chunked_nbytes(chunk_array(xs, 2048))
        many = chunked_nbytes(chunk_array(xs, 16))
        assert many > one  # boxed list spine costs per cell

    def test_invalid_chunk(self):
        with pytest.raises(ValueError):
            chunk_array(np.arange(4), 0)
        with pytest.raises(ValueError):
            unchunk([])


class TestFarm:
    def test_map_collect_preserves_order(self):
        rt = EdenRuntime(MACHINE)
        items = [np.full(3, float(i)) for i in range(10)]
        out = rt.map_collect(items, work_square)
        assert len(out) == 10
        for i, arr in enumerate(out):
            np.testing.assert_array_equal(arr, np.full(3, float(i)) ** 2)

    def test_map_reduce(self):
        rt = EdenRuntime(MACHINE)
        items = [np.arange(5.0) for _ in range(8)]
        total = rt.map_reduce(items, work_sum, lambda a, b: a + b)
        assert total == pytest.approx(8 * 10.0)

    def test_payload_reaches_every_item(self):
        rt = EdenRuntime(MACHINE)
        total = rt.map_reduce(
            [np.zeros(1)] * 6, work_sum, lambda a, b: a + b, payload=2.5
        )
        assert total == pytest.approx(6 * 2.5)

    def test_fewer_items_than_processes(self):
        rt = EdenRuntime(MACHINE)
        out = rt.map_collect([np.arange(2.0)], work_square)
        assert len(out) == 1

    def test_single_core_machine(self):
        rt = EdenRuntime(MachineSpec(nodes=1, cores_per_node=1))
        total = rt.map_reduce(
            [np.arange(3.0)] * 4, work_sum, lambda a, b: a + b
        )
        assert total == pytest.approx(4 * 3.0)

    def test_empty_items_rejected(self):
        rt = EdenRuntime(MACHINE)
        with pytest.raises(ValueError):
            rt.map_collect([], work_square)

    def test_clock_advances_per_farm(self):
        rt = EdenRuntime(MACHINE, costs=CostContext(unit_time=1e-6))
        rt.map_collect([np.arange(100.0)] * 4, work_square)
        t1 = rt.elapsed
        rt.map_collect([np.arange(100.0)] * 4, work_square)
        assert rt.elapsed > t1
        assert len(rt.runs) == 2

    def test_run_sequential_charges_main(self):
        rt = EdenRuntime(MACHINE, costs=CostContext(unit_time=1e-3))

        def task():
            meter.tally_visits(100)
            return 7

        assert rt.run_sequential(task) == 7
        assert rt.elapsed == pytest.approx(0.1)


class TestStraggler:
    def test_zero_probability_is_identity(self):
        model = StragglerModel(probability=0.0)
        rng = np.random.default_rng(0)
        assert all(model.factor(rng) == 1.0 for _ in range(100))

    def test_always_straggle_in_range(self):
        model = StragglerModel(probability=1.0, min_factor=2.0, max_factor=3.0)
        rng = np.random.default_rng(0)
        factors = [model.factor(rng) for _ in range(100)]
        assert all(2.0 <= f <= 3.0 for f in factors)

    def test_stragglers_deterministic_per_seed(self):
        def run():
            rt = EdenRuntime(
                MACHINE,
                costs=CostContext(unit_time=1e-6),
                straggler=StragglerModel(probability=0.3, seed=5),
            )
            rt.map_collect([np.arange(50.0)] * 8, work_square)
            return rt.elapsed

        assert run() == run()

    def test_stragglers_slow_the_farm(self):
        calm = EdenRuntime(MACHINE, costs=CostContext(unit_time=1e-6))
        calm.map_collect([np.arange(500.0)] * 16, work_square)
        stormy = EdenRuntime(
            MACHINE,
            costs=CostContext(unit_time=1e-6),
            straggler=StragglerModel(probability=1.0, min_factor=3, max_factor=3),
        )
        stormy.map_collect([np.arange(500.0)] * 16, work_square)
        assert stormy.elapsed > calm.elapsed


class TestWholeDataSemantics:
    def test_payload_replicated_per_process(self):
        """More processes -> proportionally more payload bytes shipped."""
        payload = np.arange(5000.0)

        def run(machine):
            rt = EdenRuntime(machine, costs=CostContext())
            rt.map_reduce(
                [np.zeros(1)] * machine.nodes * machine.cores_per_node,
                work_sum,
                lambda a, b: a + b,
                payload=payload,
            )
            return rt.runs[-1].bytes_shipped

        small = run(MachineSpec(nodes=2, cores_per_node=2))
        large = run(MachineSpec(nodes=4, cores_per_node=4))
        assert large > 3 * small

    def test_buffer_limit_respected(self):
        from repro.cluster.limits import BufferOverflowError

        rt = EdenRuntime(
            MACHINE,
            costs=CostContext(wire_scale=1.0),
            limits=RuntimeLimits(max_message_bytes=1000),
        )
        big = np.zeros(10_000)
        with pytest.raises(BufferOverflowError):
            rt.map_reduce([big] * 8, work_sum, lambda a, b: a + b)
