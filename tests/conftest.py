"""Suite-wide configuration."""
import pytest
from hypothesis import HealthCheck, settings

# Property tests drive real (simulated-cluster) executions whose wall
# time varies with machine load; disable the per-example deadline so the
# suite is robust on slow or shared machines.
settings.register_profile(
    "repro",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@pytest.fixture(autouse=True)
def _fresh_engine_state():
    """Reset process-global engine state around every test.

    The fusion-plan cache and the serialization copy counters are
    process-wide; a test that asserts on cache hit rates or copy deltas
    must not observe traffic from whichever tests happened to run
    before it.  Resetting on both sides keeps tests order-independent
    in either direction (a test that *leaves* state behind cannot taint
    a later one, and a test that *needs* pristine state gets it).
    """
    from repro.core.fusion.planner import reset_planner
    from repro.obs.spans import force_disable
    import repro.serial as serial

    reset_planner()
    serial.reset()
    force_disable()
    yield
    reset_planner()
    serial.reset()
    force_disable()
