"""Suite-wide configuration."""
from hypothesis import HealthCheck, settings

# Property tests drive real (simulated-cluster) executions whose wall
# time varies with machine load; disable the per-example deadline so the
# suite is robust on slow or shared machines.
settings.register_profile(
    "repro",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")
