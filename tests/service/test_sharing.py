"""Cross-job sharing micro-semantics: slice-cache hits and recovery
across job boundaries.

The slice-cache scenario engineers a *partial* overlap: job A's block
partition leaves rank 1 holding the upper half of a dataset; job B's
2-D column grid needs *all* of it, so the first B ships the missing half
(a cache miss) and every later B is a pure cache hit -- zero bytes.
"""
import numpy as np
import pytest

from repro.apps.sgemm.triolet import _dot_elem
from repro.bench.calibrate import costs_for
from repro.bench.harness import make_problem
from repro.cluster.faults import FaultPlan, RankLoss
from repro.cluster.machine import PAPER_MACHINE
from repro.serial import closure, register_function
from repro.service import (
    JobServer,
    JobStatus,
    mriq_job,
    run_solo,
    tpacf_job,
)
import repro.triolet as tri

pytestmark = pytest.mark.service


@register_function
def _row_sum(r):
    return float(np.sum(r))


def _make_slice_jobs():
    """Jobs A and B over a shared dataset ``d`` (see module docstring)."""
    rng = np.random.default_rng(0)
    h, k, w = 8, 6, 32  # h < w: the 2-rank outer-product grid splits columns
    d = rng.standard_normal((h, k))
    e = rng.standard_normal((w, k))

    def job_a(ctx):
        return tri.build(
            tri.map(closure(_row_sum), tri.par(tri.rows(ctx.dataset("d"))))
        )

    def job_b(ctx):
        eh = ctx.rt.distribute(e)
        z = tri.outerproduct(tri.rows(ctx.dataset("d")), tri.rows(eh))
        return np.asarray(
            tri.build(tri.map(closure(_dot_elem, 1.0), tri.par(z)))
        )

    return d, job_a, job_b


def test_cross_job_slice_cache_hits():
    machine = PAPER_MACHINE.scaled(nodes=2, cores_per_node=1)
    d, job_a, job_b = _make_slice_jobs()
    srv = JobServer(machine)
    srv.register_dataset("d", d)
    ha = srv.submit(job_a, name="a")
    hb1 = srv.submit(job_b, name="b1")
    hb2 = srv.submit(job_b, name="b2")
    srv.drain()
    assert ha.status() is JobStatus.DONE
    # first B: rank 1's grid column needs rows A never placed there
    assert hb1.metrics["plane"]["cache_misses"] > 0
    assert hb1.metrics["slice_cache_hits"] == 0
    # repeat B: the missing slice is cached -- hit, zero bytes shipped
    assert hb2.metrics["slice_cache_hits"] > 0
    assert hb2.metrics["plane"]["input_bytes"] == 0
    assert np.array_equal(hb1.result(), hb2.result())


def test_rank_loss_mid_stream_queued_jobs_match_solo():
    """A permanent rank loss during one job shrinks the machine for the
    whole server; queued jobs complete on the survivors, bit-identical
    to fault-free solo runs."""
    machine = PAPER_MACHINE.scaled(nodes=4, cores_per_node=2)
    pm = make_problem("mriq")
    pt = make_problem("tpacf")
    costs = costs_for("mriq", "triolet", pm)
    srv = JobServer(machine, costs=costs)
    h1 = srv.submit(mriq_job(pm), name="before")
    h2 = srv.submit(
        mriq_job(pm), name="lossy",
        faults=FaultPlan([RankLoss(rank=3, at=1e-6)]),
    )
    h3 = srv.submit(tpacf_job(pt), name="queued-tpacf")
    h4 = srv.submit(mriq_job(pm), name="queued-mriq")
    srv.drain()

    solo_m, _ = run_solo(mriq_job(pm), machine, costs=costs)
    assert np.array_equal(h1.result(), solo_m)
    assert np.array_equal(h2.result(), solo_m)  # recovered, same value
    assert np.array_equal(h4.result(), solo_m)  # ran on survivors
    solo_t, _ = run_solo(tpacf_job(pt), machine, costs=costs)
    vt = h3.result()
    assert all(np.array_equal(vt[k], solo_t[k]) for k in solo_t)

    # the shrink outlives the job that absorbed it
    assert srv.lost_ranks == 1
    assert srv.live_ranks == 3
    assert h2.metrics["recovery"].rank_losses == 1
    # per-job isolation: the queued jobs' reports saw no new loss
    assert h4.metrics["recovery"].rank_losses == 0


def test_recovery_reports_stay_isolated_per_job():
    machine = PAPER_MACHINE.scaled(nodes=2, cores_per_node=2)
    pm = make_problem("mriq")
    costs = costs_for("mriq", "triolet", pm)
    srv = JobServer(machine, costs=costs)
    lossy = srv.submit(
        mriq_job(pm), name="lossy",
        faults=FaultPlan([RankLoss(rank=1, at=1e-6)]),
    )
    clean = srv.submit(mriq_job(pm), name="clean")
    srv.drain()
    assert lossy.metrics["recovery"].rank_losses == 1
    assert clean.metrics["recovery"].rank_losses == 0
    assert clean.metrics["recovery"].reexecuted_chunks == 0
