"""Service test hygiene: drop global DistArray handles around every test
(same reasoning as tests/data/conftest.py -- a resident server registers
handles whose registry entries would otherwise leak across tests)."""
import pytest

from repro.data.handle import drop_handles


@pytest.fixture(autouse=True)
def _fresh_handles():
    drop_handles()
    yield
    drop_handles()
