"""JobServer core semantics: attach, share, isolate.

The contract under test: a resident server shares the *expensive* state
(cluster, plans, placements) while keeping per-job accounting isolated
-- and sharing changes when work happens, never what is computed.
"""
import numpy as np
import pytest

from repro.bench.calibrate import costs_for
from repro.bench.harness import make_problem
from repro.cluster.machine import PAPER_MACHINE
from repro.service import (
    JobCancelled,
    JobServer,
    JobStatus,
    mriq_job,
    register_mriq_dataset,
    run_solo,
    sgemm_job,
)

pytestmark = pytest.mark.service

MACHINE = PAPER_MACHINE.scaled(nodes=2, cores_per_node=2)


@pytest.fixture(scope="module")
def mriq_problem():
    return make_problem("mriq")


@pytest.fixture(scope="module")
def sgemm_problem():
    return make_problem("sgemm")


def test_submit_is_async_and_result_runs_the_queue(mriq_problem):
    srv = JobServer(MACHINE, costs=costs_for("mriq", "triolet", mriq_problem))
    h = srv.submit(mriq_job(mriq_problem), name="m")
    assert h.status() is JobStatus.PENDING
    assert srv.now == 0.0  # nothing ran yet
    value = h.result()
    assert h.status() is JobStatus.DONE
    assert srv.now > 0.0
    solo, _ = run_solo(
        mriq_job(mriq_problem), MACHINE,
        costs=costs_for("mriq", "triolet", mriq_problem),
    )
    assert np.array_equal(value, solo)


def test_repeat_job_hits_shared_plan_cache(mriq_problem):
    """Cross-job sharing: the second identical job compiles nothing."""
    srv = JobServer(MACHINE, costs=costs_for("mriq", "triolet", mriq_problem))
    h1 = srv.submit(mriq_job(mriq_problem), name="m1")
    h2 = srv.submit(mriq_job(mriq_problem), name="m2")
    srv.drain()
    assert h1.metrics["planner"]["compiled"] > 0  # cold: paid compilation
    assert h2.metrics["planner"]["compiled"] == 0
    assert h2.metrics["planner"]["hits"] > 0
    assert np.array_equal(h1.result(), h2.result())


def test_resident_dataset_ships_zero_bytes_on_repeat(mriq_problem):
    """A registered dataset is distributed once; later jobs -- any
    tenant -- find the shards resident and ship zero input bytes for
    them (replicated closure arrays dedupe the same way)."""
    p = mriq_problem
    srv = JobServer(MACHINE, costs=costs_for("mriq", "triolet", p))
    srv.add_tenant("a")
    srv.add_tenant("b")
    register_mriq_dataset(srv, "mriq", p)
    h1 = srv.submit(mriq_job(p, dataset="mriq"), tenant="a", name="m1")
    h2 = srv.submit(mriq_job(p, dataset="mriq"), tenant="b", name="m2")
    srv.drain()
    assert h1.metrics["plane"]["input_bytes"] > 0
    assert h2.metrics["plane"]["input_bytes"] == 0
    assert h2.metrics["plane"]["placements"] == 0
    assert h2.metrics["plane"]["resident_hits"] > 0
    assert np.array_equal(h1.result(), h2.result())


def test_distribute_dedupes_rebuilt_equal_content_arrays(sgemm_problem):
    """sgemm rebuilds BT inside every job; content-hash dedupe maps the
    rebuilt array onto the first job's resident handle."""
    p = sgemm_problem
    srv = JobServer(MACHINE, costs=costs_for("sgemm", "triolet", p))
    h1 = srv.submit(sgemm_job(p), name="s1")
    h2 = srv.submit(sgemm_job(p), name="s2")
    srv.drain()
    assert h2.metrics["plane"]["dedup_hits"] >= 2  # A by identity, BT by content
    assert h2.metrics["plane"]["input_bytes"] == 0
    assert h2.metrics["planner"]["compiled"] == 0
    assert np.array_equal(h1.result(), h2.result())


def test_per_job_accounting_is_isolated(mriq_problem):
    """Identical jobs report identical isolated metrics: the second
    job's meter does not include the first job's visits."""
    p = mriq_problem
    srv = JobServer(MACHINE, costs=costs_for("mriq", "triolet", p))
    h1 = srv.submit(mriq_job(p), name="m1")
    h2 = srv.submit(mriq_job(p), name="m2")
    srv.drain()
    assert h1.metrics["visits"] == h2.metrics["visits"] > 0
    assert h1.metrics["sections"] == h2.metrics["sections"]
    # the repeat is *faster* in virtual time (no input shipping)
    assert h2.metrics["virtual_seconds"] <= h1.metrics["virtual_seconds"]
    # and the server's timeline is the sum of the isolated durations
    assert srv.now == pytest.approx(
        h1.metrics["virtual_seconds"] + h2.metrics["virtual_seconds"]
    )


def test_cancel_pending_job(mriq_problem):
    p = mriq_problem
    srv = JobServer(MACHINE, costs=costs_for("mriq", "triolet", p))
    h1 = srv.submit(mriq_job(p), name="m1")
    h2 = srv.submit(mriq_job(p), name="m2")
    assert h2.cancel()
    assert h2.status() is JobStatus.CANCELLED
    assert not h2.cancel()  # idempotent: already finished
    srv.drain()
    assert h1.status() is JobStatus.DONE
    with pytest.raises(JobCancelled):
        h2.result()


def test_programming_errors_surface_at_result(mriq_problem):
    srv = JobServer(MACHINE)

    def bad(ctx):
        raise ValueError("job bug")

    h = srv.submit(bad, name="bad")
    ok = srv.submit(mriq_job(mriq_problem), name="ok")
    srv.drain()  # the failed job must not wedge the queue
    assert h.status() is JobStatus.FAILED
    with pytest.raises(ValueError, match="job bug"):
        h.result()
    assert ok.status() is JobStatus.DONE


def test_closed_server_refuses_submissions(mriq_problem):
    srv = JobServer(MACHINE)
    h = srv.submit(mriq_job(mriq_problem))
    srv.close()
    assert h.status() is JobStatus.CANCELLED
    with pytest.raises(RuntimeError, match="closed"):
        srv.submit(mriq_job(mriq_problem))
