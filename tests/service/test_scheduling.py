"""Fair-share scheduling, admission control, and quota enforcement.

Determinism is the headline property: dispatch order is a pure function
of tenant ledgers (weighted consumed virtual time, name tie-break) and
per-tenant FIFO queues -- *not* of submission interleaving or any seed.
"""
import random

import numpy as np
import pytest

from repro.bench.calibrate import costs_for
from repro.bench.harness import make_problem
from repro.cluster.machine import PAPER_MACHINE
from repro.runtime.recovery import BudgetExhausted
from repro.service import (
    AdmissionError,
    JobServer,
    JobStatus,
    TenantQuota,
    mriq_job,
)

pytestmark = pytest.mark.service

MACHINE = PAPER_MACHINE.scaled(nodes=2, cores_per_node=2)


@pytest.fixture(scope="module")
def mriq_problem():
    return make_problem("mriq")


def _mriq_costs(p):
    return costs_for("mriq", "triolet", p)


def _stream(srv, p, per_tenant: int, seed: int):
    """Submit ``per_tenant`` jobs for tenants a/b/c in an interleaving
    chosen by *seed*; returns handles keyed by job name."""
    pending = {t: list(range(per_tenant)) for t in ("a", "b", "c")}
    rng = random.Random(seed)
    handles = {}
    while any(pending.values()):
        t = rng.choice([t for t, js in pending.items() if js])
        i = pending[t].pop(0)
        name = f"{t}{i}"
        handles[name] = srv.submit(mriq_job(p), tenant=t, name=name)
    return handles


def _dispatch_order(srv):
    done = [r for r in srv.records if r.start_vtime is not None
            and r.status is JobStatus.DONE]
    return [r.name for r in sorted(done, key=lambda r: r.start_vtime)]


@pytest.mark.parametrize("seed", [0, 1, 7])
def test_dispatch_order_is_seed_independent(mriq_problem, seed):
    """Shuffling the submission interleaving (per seed) must not change
    the execution order, the final timeline, or any per-job metric."""
    p = mriq_problem

    def run(seed):
        srv = JobServer(MACHINE, costs=_mriq_costs(p))
        srv.add_tenant("a", weight=1.0)
        srv.add_tenant("b", weight=2.0)
        srv.add_tenant("c", weight=1.0)
        handles = _stream(srv, p, per_tenant=2, seed=seed)
        srv.drain()
        metrics = {
            n: (h.metrics["visits"], h.metrics["virtual_seconds"])
            for n, h in handles.items()
        }
        return _dispatch_order(srv), srv.now, metrics

    order0, now0, metrics0 = run(0)
    order, now, metrics = run(seed)
    assert order == order0
    assert now == now0
    assert metrics == metrics0


def test_weighted_fair_share(mriq_problem):
    """A weight-2 tenant gets twice the service: after every dispatch
    the scheduler picks the minimum weighted consumption, so tenant b
    runs two jobs for each of tenant a's."""
    p = mriq_problem
    srv = JobServer(MACHINE, costs=_mriq_costs(p))
    srv.add_tenant("warmup")
    srv.add_tenant("a", weight=1.0)
    srv.add_tenant("b", weight=2.0)
    # Pre-warm plans and placements so every scheduled job below has
    # the same virtual cost -- the expected order is then exact.
    srv.submit(mriq_job(p), tenant="warmup").result()
    for i in range(2):
        srv.submit(mriq_job(p), tenant="a", name=f"a{i}")
    for i in range(4):
        srv.submit(mriq_job(p), tenant="b", name=f"b{i}")
    srv.drain()
    order = [n for n in _dispatch_order(srv) if n != "job-0"]
    # a0 first (tie on zero consumption, name break); b catches up to
    # twice a's consumption between a's turns; the a/b tie at 2t goes
    # to 'a' by name.
    assert order == ["a0", "b0", "b1", "a1", "b2", "b3"]
    rep = srv.tenant_report()
    assert rep["b"]["consumed"] == pytest.approx(2 * rep["a"]["consumed"],
                                                rel=1e-9)


def test_admission_control_bounds_the_queue(mriq_problem):
    p = mriq_problem
    srv = JobServer(MACHINE, costs=_mriq_costs(p), max_pending=2)
    srv.add_tenant("a")
    srv.submit(mriq_job(p), tenant="a")
    srv.submit(mriq_job(p), tenant="a")
    with pytest.raises(AdmissionError):
        srv.submit(mriq_job(p), tenant="a")
    srv.drain()  # draining frees the queue
    srv.submit(mriq_job(p), tenant="a")


def test_quota_exhaustion_surfaces_as_budget_exhausted(mriq_problem):
    """A tenant over quota has later jobs refused with BudgetExhausted;
    other tenants are unaffected."""
    p = mriq_problem
    srv = JobServer(MACHINE, costs=_mriq_costs(p))
    srv.add_tenant("tiny", quota=TenantQuota(max_visits=1.0))
    srv.add_tenant("big")
    h1 = srv.submit(mriq_job(p), tenant="tiny", name="t1")
    h2 = srv.submit(mriq_job(p), tenant="tiny", name="t2")
    h3 = srv.submit(mriq_job(p), tenant="big", name="b1")
    srv.drain()
    assert h1.status() is JobStatus.DONE  # quota checked before dispatch
    assert h2.status() is JobStatus.FAILED
    with pytest.raises(BudgetExhausted, match="visits"):
        h2.result()
    assert h3.status() is JobStatus.DONE
    assert srv.tenant_report()["tiny"]["exhausted"] == "visits"


def test_compute_seconds_quota(mriq_problem):
    p = mriq_problem
    srv = JobServer(MACHINE, costs=_mriq_costs(p))
    srv.add_tenant("t", quota=TenantQuota(max_compute_seconds=1e-12))
    h1 = srv.submit(mriq_job(p), tenant="t")
    h2 = srv.submit(mriq_job(p), tenant="t")
    srv.drain()
    assert h1.status() is JobStatus.DONE
    with pytest.raises(BudgetExhausted, match="compute_seconds"):
        h2.result()


def test_unknown_tenant_is_rejected(mriq_problem):
    srv = JobServer(MACHINE)
    with pytest.raises(KeyError, match="unknown tenant"):
        srv.submit(mriq_job(mriq_problem), tenant="ghost")


def test_default_tenant_autocreated(mriq_problem):
    p = mriq_problem
    srv = JobServer(MACHINE, costs=_mriq_costs(p))
    h = srv.submit(mriq_job(p))
    assert h.tenant == "default"
    assert isinstance(h.result(), np.ndarray)
