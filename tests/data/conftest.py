"""Data-plane test hygiene.

DistArray handle ids are process-global (the master registry models
"every node knows the handle metadata"), so a test that registers
handles leaks registry entries -- and, through them, master arrays --
into later tests unless something drops them.  Clearing the registry
after every test keeps tests/data order-independent: each test sees a
registry containing only the handles it created itself, and handle-id
assertions never depend on which tests ran first.
"""
import pytest

from repro.data.handle import drop_handles


@pytest.fixture(autouse=True)
def _fresh_handles():
    drop_handles()
    yield
    drop_handles()
