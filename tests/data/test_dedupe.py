"""Registration dedupe: ``distribute()`` of the same (or equal) array
must resolve to the already-resident handle, not re-place it.

Identity dedupe covers re-distributing the same ndarray object (the
common pattern in a resident server: every job distributes its inputs);
content dedupe covers arrays *rebuilt* with equal bytes (e.g. sgemm's
per-job transposed matrix).  Distinct layouts never dedupe -- the same
bytes sharded block-wise and replicated are different placements.
"""
import numpy as np
import pytest

from repro.data.plane import DataPlane

pytestmark = pytest.mark.dataplane


def test_identity_dedupe():
    plane = DataPlane()
    a = np.arange(12.0).reshape(3, 4)
    h1 = plane.register(a)
    h2 = plane.register(a)
    assert h2 is h1
    assert plane.dedup_hits == 1
    assert len(plane.handles) == 1


def test_content_dedupe():
    plane = DataPlane()
    a = np.arange(12.0).reshape(3, 4)
    h1 = plane.register(a)
    h2 = plane.register(a.copy())  # distinct object, equal bytes
    assert h2 is h1
    assert plane.dedup_hits == 1


def test_different_content_is_not_deduped():
    plane = DataPlane()
    a = np.arange(12.0).reshape(3, 4)
    b = a + 1.0
    h1 = plane.register(a)
    h2 = plane.register(b)
    assert h2 is not h1
    assert plane.dedup_hits == 0
    assert len(plane.handles) == 2


def test_layouts_do_not_dedupe_against_each_other():
    plane = DataPlane()
    a = np.arange(12.0).reshape(3, 4)
    h1 = plane.register(a, layout="block")
    h2 = plane.register(a, layout="replicated")
    assert h2 is not h1
    assert plane.dedup_hits == 0


def test_derived_arrays_are_never_deduped():
    """Provenance-tracked registrations (section outputs) are lineage
    nodes; collapsing equal-content outputs would corrupt replay."""
    plane = DataPlane()
    a = np.arange(12.0).reshape(3, 4)
    h1 = plane.register(a)
    h2 = plane.register(a.copy(), provenance=(0, "map", (h1.array_id,)))
    assert h2 is not h1
    assert plane.dedup_hits == 0


def test_dedupe_counter_in_stats():
    plane = DataPlane()
    a = np.arange(6.0)
    plane.register(a)
    plane.register(a)
    assert plane.stats_dict()["dedup_hits"] == 1
