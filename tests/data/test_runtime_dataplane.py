"""End-to-end data-plane behaviour through the Triolet runtime.

The acceptance bar for the resident data plane: a two-section run over
the same DistArray ships each rank its shard at most once -- the second
section moves **zero** input bytes -- and produces values bit-identical
to the legacy ship-every-section path, including under an injected rank
crash (where the re-shipped bytes are attributed to recovery).
"""
import numpy as np
import pytest

import repro.triolet as tri
from repro.cluster import FaultPlan, MachineSpec, RankCrash
from repro.runtime import triolet_runtime
from repro.serial import register_function

pytestmark = pytest.mark.dataplane

MACHINE = MachineSpec(nodes=4, cores_per_node=2)


@register_function
def _sq(x):
    return x * x


@register_function
def _cube(x):
    return x * x * x


def _plane_sections(rt):
    return [s for s in rt.sections if s.data_plane is not None]


class TestResidentShipping:
    def test_second_section_ships_zero_input_bytes(self):
        xs = np.arange(4000.0)
        with triolet_runtime(MACHINE) as rt:
            h = rt.distribute(xs)
            s1 = tri.sum(tri.map(_sq, tri.par(h)))
            s2 = tri.sum(tri.map(_cube, tri.par(h)))
        assert s1 == pytest.approx(float(np.sum(xs**2)))
        assert s2 == pytest.approx(float(np.sum(xs**3)))

        first, second = _plane_sections(rt)[:2]
        assert first.data_plane["placements"] == MACHINE.nodes - 1
        assert first.data_plane["input_bytes"] > 0
        assert second.data_plane["input_bytes"] == 0
        assert second.data_plane["resident_hits"] == MACHINE.nodes - 1
        # Residency saves wire time too, not just a counter.
        assert second.bytes_shipped < first.bytes_shipped

    def test_values_match_ship_every_section_path(self):
        xs = np.arange(3000.0) * 0.5
        with triolet_runtime(MACHINE) as rt:
            h = rt.distribute(xs)
            handle_vals = (tri.sum(tri.map(_sq, tri.par(h))),
                           tri.build(tri.map(_sq, tri.par(h))))
        with triolet_runtime(MACHINE):
            plain_vals = (tri.sum(tri.map(_sq, tri.par(xs))),
                          tri.build(tri.map(_sq, tri.par(xs))))
        assert handle_vals[0] == plain_vals[0]  # bit-identical scalar
        assert handle_vals[1].tobytes() == plain_vals[1].tobytes()

    def test_replicated_closure_env_ships_once(self):
        from repro.serial.closures import closure

        xs = np.arange(600.0)
        weights = np.arange(5.0)

        def _wsum(w, x):
            return float(np.sum(w)) * x

        with triolet_runtime(MACHINE) as rt:
            wh = rt.distribute(weights, layout="replicated")
            fn = closure(_wsum, wh)
            a = tri.sum(tri.map(fn, tri.par(xs)))
            b = tri.sum(tri.map(fn, tri.par(xs)))
        assert a == b == pytest.approx(float(np.sum(weights)) * float(np.sum(xs)))
        first, second = _plane_sections(rt)[:2]
        assert first.data_plane["input_bytes"] == \
            (MACHINE.nodes - 1) * weights.nbytes
        assert second.data_plane["input_bytes"] == 0

    def test_handles_survive_more_ranks_than_rows(self):
        # Empty trailing blocks must execute (zero-length store views).
        xs = np.arange(2.0)
        with triolet_runtime(MACHINE) as rt:
            h = rt.distribute(xs)
            out = tri.sum(tri.par(h))
        assert out == pytest.approx(float(np.sum(xs)))


class TestCrashRecovery:
    def _crash(self):
        return FaultPlan(faults=(RankCrash(rank=1, at=1e-6),))

    def test_reshipped_bytes_attributed_to_recovery(self):
        xs = np.arange(4000.0)
        with triolet_runtime(MACHINE) as rt:
            h = rt.distribute(xs)
            tri.sum(tri.map(_sq, tri.par(h)))  # place shards
        clean_value = float(np.sum(xs**2))

        with triolet_runtime(MACHINE, faults=self._crash()) as frt:
            h = frt.distribute(xs)
            first = tri.sum(tri.map(_sq, tri.par(h)))
            second = tri.sum(tri.map(_cube, tri.par(h)))
        assert first == pytest.approx(clean_value)
        assert second == pytest.approx(float(np.sum(xs**3)))
        rep = frt.recovery_report
        assert rep.reshipped_bytes > 0
        assert f"{rep.reshipped_bytes:,}" in rep.describe()
        # The crash wiped placement; the plane records the invalidation
        # and the next attempt re-materialized shards from the master.
        assert frt.plane.invalidations >= 1

    def test_crash_invalidates_slice_cache(self):
        xs = np.arange(1000.0)
        plan = FaultPlan(faults=(RankCrash(rank=1, at=1e-6),))
        with triolet_runtime(MachineSpec(nodes=2, cores_per_node=2),
                             faults=plan) as rt:
            h = rt.distribute(xs)
            # Warm a cached slice on rank 1: place the layout shard, then
            # request a misaligned interval (applying ops as the driver
            # would, so store contents match the plane's metadata).
            for reqs in ([{}, {h.array_id: [500, 1000, False]}],
                         [{}, {h.array_id: [100, 600, False]}]):
                ship = rt.plane.plan_section(reqs)
                rt.plane.worker_store(1).apply(ship.ops[1])
            assert rt.plane.cache_stats()["entries"] == 1
            tri.sum(tri.par(h))  # crash fires here
        assert rt.plane.invalidations >= 1
        assert rt.plane.cache_stats()["entries"] == 0
        assert rt.plane.totals["invalidated_entries"] >= 1

    def test_crash_values_bit_identical_to_plain_path(self):
        xs = np.arange(2500.0)
        with triolet_runtime(MACHINE, faults=self._crash()) as rt:
            h = rt.distribute(xs)
            hv = tri.build(tri.map(_sq, tri.par(h)))
        with triolet_runtime(MACHINE, faults=self._crash()):
            pv = tri.build(tri.map(_sq, tri.par(xs)))
        assert hv.tobytes() == pv.tobytes()
