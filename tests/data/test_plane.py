"""Unit tests for placement planning at section boundaries."""
import numpy as np
import pytest

import repro.triolet as tri
from repro.data import DataPlane, DistArray, chunk_requirements
from repro.data.handle import lookup_handle
from repro.partition import block_bounds
from repro.serial import serialize, deserialize


def _reqs_for(plane, handle, bounds):
    """Requirement dicts as the driver would build for a 1-D block split."""
    return [{handle.array_id: [lo, hi, False]} for lo, hi in bounds]


class TestPlanSection:
    def test_no_handles_means_no_plan(self):
        plane = DataPlane()
        assert plane.plan_section([{}, {}, {}]) is None

    def test_first_section_places_then_resident_hits(self):
        plane = DataPlane()
        arr = np.arange(120.0).reshape(40, 3)
        h = plane.register(arr)
        bounds = block_bounds(len(h), 4)
        reqs = _reqs_for(plane, h, bounds)

        first = plane.plan_section(reqs)
        # Rank 0 reads the master copy; ranks 1..3 get their shard shipped.
        assert first.stats["placements"] == 3
        assert first.stats["input_bytes"] == 30 * h.row_nbytes()
        assert first.ops[0] == []

        second = plane.plan_section(reqs)
        assert second.stats["input_bytes"] == 0
        assert second.stats["resident_hits"] == 3
        assert all(ops == [] for ops in second.ops)

    def test_worker_stores_serve_the_shipped_rows(self):
        plane = DataPlane()
        arr = np.arange(60.0).reshape(20, 3)
        h = plane.register(arr)
        bounds = block_bounds(len(h), 2)
        ship = plane.plan_section(_reqs_for(plane, h, bounds))
        store = plane.worker_store(1)
        store.apply(ship.ops[1])
        lo, hi = bounds[1]
        np.testing.assert_array_equal(store.view(h.array_id, lo, hi), arr[lo:hi])

    def test_partial_overlap_goes_through_cache(self):
        plane = DataPlane()
        arr = np.arange(100.0)
        h = plane.register(arr)
        bounds = block_bounds(len(h), 2)  # rank 1 resident: [50, 100)
        plane.plan_section(_reqs_for(plane, h, bounds))

        # A different work partition: rank 1 now needs [25, 75).
        ship = plane.plan_section([{}, {h.array_id: [25, 75, False]}])
        assert ship.stats["cache_misses"] == 1
        # Only the 25 rows not already resident travel.
        assert ship.stats["input_bytes"] == 25 * h.row_nbytes()
        assert plane._placement[(1, h.array_id)] == (50, 100)  # hull untouched

        again = plane.plan_section([{}, {h.array_id: [30, 70, False]}])
        assert again.stats["cache_hits"] == 1
        assert again.stats["input_bytes"] == 0

    def test_cache_eviction_ships_evict_ops(self):
        plane = DataPlane(cache_bytes=30 * 8)  # room for ~one 25-row slice
        arr = np.arange(100.0)
        h = plane.register(arr)
        plane.plan_section(_reqs_for(plane, h, block_bounds(len(h), 2)))
        plane.plan_section([{}, {h.array_id: [25, 75, False]}])
        ship = plane.plan_section([{}, {h.array_id: [0, 30, False]}])
        assert ship.stats["cache_evictions"] == 1
        assert any(op[0] == "evict" for op in ship.ops[1])

    def test_replicated_requirement_grows_hull_to_full(self):
        plane = DataPlane()
        arr = np.arange(40.0)
        h = plane.register(arr, layout="replicated")
        ship = plane.plan_section([{}, {h.array_id: [0, 10, True]},
                                   {h.array_id: [10, 20, True]}])
        assert plane._placement[(1, h.array_id)] == (0, 40)
        assert plane._placement[(2, h.array_id)] == (0, 40)
        assert ship.stats["input_bytes"] == 2 * arr.nbytes

    def test_migration_grows_hull_and_counts_bytes(self):
        plane = DataPlane()
        arr = np.arange(100.0)
        h = plane.register(arr)
        plane.plan_section(_reqs_for(plane, h, block_bounds(len(h), 2)))
        # Cost feedback moved the boundary: rank 1 now owns [40, 100).
        ship = plane.plan_section([{}, {h.array_id: [40, 100, False]}],
                                  migrated=True)
        assert plane._placement[(1, h.array_id)] == (40, 100)
        assert ship.stats["migrated_bytes"] == 10 * h.row_nbytes()
        again = plane.plan_section([{}, {h.array_id: [40, 100, False]}])
        assert again.stats["input_bytes"] == 0

    def test_invalidate_drops_everything(self):
        plane = DataPlane()
        arr = np.arange(100.0)
        h = plane.register(arr)
        plane.plan_section(_reqs_for(plane, h, block_bounds(len(h), 2)))
        plane.plan_section([{}, {h.array_id: [25, 75, False]}])
        assert plane.has_state()
        dropped = plane.invalidate()
        assert dropped["shards"] == 1 and dropped["cache_entries"] == 1
        assert not plane.has_state()
        # The next section re-places from the master copy.
        ship = plane.plan_section(_reqs_for(plane, h, block_bounds(len(h), 2)))
        assert ship.stats["placements"] == 1
        assert ship.stats["input_bytes"] > 0


class TestChunkRequirements:
    def test_iterator_chunks_report_their_interval(self):
        from repro.runtime.driver import TrioletRuntime

        arr = np.arange(30.0)
        h = DistArray(arr)
        it = tri.iterate(h)
        part = [TrioletRuntime._reslice(it, lo, hi)
                for lo, hi in block_bounds(30, 3)]
        reqs = [chunk_requirements(c) for c in part]
        assert reqs[0][h.array_id][:2] == [0, 10]
        assert reqs[2][h.array_id][:2] == [20, 30]
        assert not reqs[1][h.array_id][2]  # sliced use is not replicated

    def test_closure_env_handles_are_replicated_requirements(self):
        from repro.runtime.driver import TrioletRuntime
        from repro.serial.closures import closure

        arr = np.arange(10.0)
        h = DistArray(arr)
        fn = closure(np.dot, h)
        it = tri.map(fn, tri.iterate(np.arange(20.0)))
        chunk = TrioletRuntime._reslice(it, 0, 10)
        reqs = chunk_requirements(chunk)
        assert reqs[h.array_id] == [0, 10, True]


class TestHandleWire:
    def test_handle_serializes_as_fixed_width_id(self):
        a = DistArray(np.arange(4.0))
        b = DistArray(np.arange(4.0))
        wa, wb = serialize(a), serialize(b)
        assert len(wa) == len(wb)  # id growth never changes wire size
        assert deserialize(wa) is lookup_handle(a.array_id)

    def test_handle_source_roundtrip(self):
        h = DistArray(np.arange(50.0))
        src = h.__triolet_idx__().source.slice_outer(5, 15)
        out = deserialize(serialize(src))
        assert out == src
