"""Lineage-based shard re-materialization under permanent rank loss.

The durable-recovery acceptance bar: a :class:`RankLoss` mid-job shrinks
the data plane instead of wiping it -- survivors keep their resident
shards, only the lost rank's slice chain replays -- and the degraded run
is bit-identical to the fault-free one while shipping strictly fewer
recovery bytes than the legacy invalidate-everything path.
"""
import numpy as np
import pytest

import repro.triolet as tri
from repro.cluster import FaultPlan, MachineSpec, RankLoss
from repro.runtime import RecoveryPolicy, triolet_runtime
from repro.testing.invariants import check_plane
from repro.testing.kernels import k_double, k_square

pytestmark = [pytest.mark.dataplane, pytest.mark.recovery]

MACHINE = MachineSpec(nodes=4, cores_per_node=2)
XS = np.arange(4096.0)


def _two_sections(rt):
    """Two handle-backed sections; the gated loss fires in the second,
    after every rank's shard went resident in the first."""
    h = rt.distribute(XS)
    a = tri.sum(tri.map(k_square, tri.par(h)))
    b = tri.build(tri.map(k_double, tri.par(h)))
    return a, b


def _loss_plan():
    return FaultPlan(faults=(RankLoss(rank=1, at=1e-6, section=1),))


class TestLineageReplay:
    def test_degraded_run_is_bit_identical(self):
        with triolet_runtime(MACHINE) as rt0:
            a0, b0 = _two_sections(rt0)
        with triolet_runtime(MACHINE, faults=_loss_plan()) as rt:
            a, b = _two_sections(rt)
        assert a == a0  # bit-identical scalar
        assert b.tobytes() == b0.tobytes()
        rep = rt.recovery_report
        assert rep.rank_losses == 1
        assert rt.plane.shrinks == 1
        check_plane(rt.plane)

    def test_replay_ships_fewer_bytes_than_invalidation(self):
        with triolet_runtime(MACHINE, faults=_loss_plan()) as lin:
            _two_sections(lin)
        legacy = RecoveryPolicy(lineage_recovery=False)
        with triolet_runtime(MACHINE, faults=_loss_plan(),
                             recovery=legacy) as inv:
            _two_sections(inv)
        lin_rep, inv_rep = lin.recovery_report, inv.recovery_report
        assert lin_rep.lineage_replays > 0
        assert 0 < lin_rep.replayed_bytes <= lin_rep.reshipped_bytes
        # The headline claim: selective replay of the lost slice chain
        # beats re-materializing every shard from the master copy.
        assert lin_rep.reshipped_bytes < inv_rep.reshipped_bytes
        # The legacy path never consults lineage.
        assert inv_rep.lineage_replays == 0
        assert inv.plane.shrinks == 0
        assert inv.plane.invalidations >= 1

    def test_survivor_placement_matches_store_contents(self):
        """The shrink reconciles the placement mirror against what each
        surviving store actually holds -- no phantom rows."""
        with triolet_runtime(MACHINE, faults=_loss_plan()) as rt:
            _two_sections(rt)
        for (rank, aid), (lo, hi) in rt.plane.placement_map().items():
            actual = rt.plane.worker_store(rank).resident_bounds(aid)
            assert actual is not None, f"stranded placement ({rank}, {aid})"
            alo, ahi = actual
            assert alo <= lo <= hi <= ahi

    def test_shrink_renumbers_and_keeps_residency(self):
        """After absorbing the loss, a further section over the same
        handle reuses the survivors' shards instead of re-shipping."""
        with triolet_runtime(MACHINE, faults=_loss_plan()) as rt:
            h = rt.distribute(XS)
            tri.sum(tri.map(k_square, tri.par(h)))
            tri.sum(tri.map(k_double, tri.par(h)))  # loss + replay here
            before = rt.plane.totals["input_bytes"]
            third = tri.sum(tri.map(k_square, tri.par(h)))
        assert third == pytest.approx(float(np.sum(XS**2)))
        assert rt.plane.totals["input_bytes"] == before  # fully resident
        ranks = {rank for (rank, _aid) in rt.plane.placement_map()}
        assert ranks == set(range(1, MACHINE.nodes - 1))  # renumbered

    @pytest.mark.views
    def test_shrink_drops_ghost_cache_entries(self):
        """Regression: ``SliceCache.keep_only`` used to keep ghost (halo)
        entries whose bytes survived in a surviving store, leaving orphan
        halo metadata keyed to the pre-shrink geometry -- a renumbered
        store could then serve a stale ghost row."""
        from repro.data.store import SliceCache

        # Unit level: a ghost entry dies in keep_only even when its key
        # is still in the survivor set.
        cache = SliceCache(1 << 20)
        cache.put(7, 0, 2, 16)
        cache.put(7, 30, 31, 8, ghost=True)
        assert cache.keep_only({(7, 0, 2), (7, 30, 31)}) == 1
        assert cache.ghost_keys() == set()
        assert (7, 0, 2) in cache.keys()

        # Plane level: after a stencil run populated real ghosts, a
        # shrink must leave no ghost metadata and no orphan ghost bytes
        # in any surviving store.  radius 2 over 2-row blocks leaves
        # ghosts covering the never-written Dirichlet edge rows alive
        # across commits (interior ghosts die with note_write).
        with triolet_runtime(MACHINE) as rt:
            h = rt.distribute(np.arange(8.0))
            rt.stencil(h, radius=2,
                       kernel=lambda x: 0.5 * (x[:-4] + x[4:]),
                       iterations=2)
            ghosts_before = rt.plane.ghost_map()
        assert ghosts_before, "stencil run placed no ghosts to test with"
        ghost_keys = set().union(*ghosts_before.values())
        rt.plane.shrink([1])
        assert rt.plane.ghost_map() == {}
        for rank in rt.plane._stores:
            stored = rt.plane.worker_store(rank).cached_keys()
            assert not (stored & ghost_keys), (
                f"rank {rank} kept orphan ghost bytes: {stored & ghost_keys}"
            )
        check_plane(rt.plane)

    def test_two_escalating_losses_still_identical(self):
        plan = FaultPlan(
            faults=(RankLoss(rank=1, at=1e-6, section=1),
                    RankLoss(rank=1, at=1e-6, section=2))
        )
        with triolet_runtime(MACHINE) as rt0:
            h = rt0.distribute(XS)
            vals0 = [tri.sum(tri.map(k_square, tri.par(h))) for _ in range(3)]
        with triolet_runtime(MACHINE, faults=plan) as rt:
            h = rt.distribute(XS)
            vals = [tri.sum(tri.map(k_square, tri.par(h))) for _ in range(3)]
        assert vals == vals0  # bit-identical throughout the shrinkage
        assert rt.recovery_report.rank_losses == 2
        assert rt.plane.shrinks == 2
        check_plane(rt.plane)
